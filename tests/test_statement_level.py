"""Tests for the statement-level CFG explosion."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.validate import is_valid_cfg
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import LiveVariables, VariableReachingDefs
from repro.ir import statement_level
from repro.lang import lower_program, parse_program
from repro.synth.structured import random_lowered_procedure


def lower(source):
    [proc] = lower_program(parse_program(source))
    return proc


def test_explodes_blocks_into_chains():
    proc = lower("proc f() { x = 1; y = x; z = y; return z; }")
    exploded = statement_level(proc)
    assert is_valid_cfg(exploded.cfg)
    assert exploded.cfg.num_nodes == proc.num_statements() + 2  # + start/end
    for node in exploded.cfg.nodes:
        assert len(exploded.blocks.get(node, [])) <= 1


def test_statement_count_preserved():
    proc = random_lowered_procedure(9, target_statements=60)
    exploded = statement_level(proc)
    assert exploded.num_statements() == proc.num_statements()
    assert sorted(exploded.variables()) == sorted(proc.variables())


def test_branch_labels_preserved():
    proc = lower("proc f(a) { if (a) { x = 1; } else { x = 2; } return x; }")
    exploded = statement_level(proc)
    labels = sorted(e.label for e in exploded.cfg.edges if e.label)
    assert "T" in labels and "F" in labels


def test_empty_blocks_stay_single():
    proc = lower("proc f(a) { if (a) { x = 1; } return x; }")
    exploded = statement_level(proc)
    assert exploded.cfg.start == "start"
    assert exploded.cfg.end == "end"


def test_self_loop_block_explodes_correctly():
    proc = lower("proc f(n) { repeat { n = n - 1; n = n + 0; } until (n < 1); return n; }")
    exploded = statement_level(proc)
    assert is_valid_cfg(exploded.cfg)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 3000), st.sampled_from([20, 50]))
def test_liveness_agrees_across_granularities(seed, size):
    """Block-level liveness at block entry == statement-level liveness at the
    first statement node of the block."""
    proc = random_lowered_procedure(seed, target_statements=size)
    exploded = statement_level(proc)
    coarse = solve_iterative(proc.cfg, LiveVariables(proc))
    fine = solve_iterative(exploded.cfg, LiveVariables(exploded))
    for block in proc.cfg.nodes:
        statements = proc.blocks.get(block, [])
        first = (block, 0) if len(statements) > 1 else block
        assert coarse.before[block] == fine.before[first], block


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2000))
def test_variable_reaching_defs_defs_preserved(seed):
    proc = random_lowered_procedure(seed, target_statements=30)
    exploded = statement_level(proc)
    for var in proc.variables()[:3]:
        coarse_defs = len(proc.defs_of(var))
        fine_defs = len(exploded.defs_of(var))
        assert fine_defs >= coarse_defs  # one node per defining statement
