"""Determinism guarantees: identical inputs give identical artifacts.

The PST construction runs two DFS passes that must see edges in the same
order, benchmarks rely on a byte-stable corpus, and downstream users will
diff analysis outputs across runs -- so determinism is a contract, not an
accident.
"""

from repro.cfg.graph import edge_pairs
from repro.controldep import control_regions
from repro.core.pst import build_pst
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.synth.corpus import standard_corpus
from repro.synth.structured import random_lowered_procedure


def pst_fingerprint(cfg):
    pst = build_pst(cfg)
    return [
        (r.describe(), r.depth, sorted(map(str, r.own_nodes)))
        for r in pst.regions()
    ]


def test_pst_construction_deterministic():
    for seed in range(5):
        proc = random_lowered_procedure(seed, target_statements=60, goto_rate=0.2)
        assert pst_fingerprint(proc.cfg) == pst_fingerprint(proc.cfg)


def test_cycle_equivalence_partition_deterministic():
    proc = random_lowered_procedure(9, target_statements=80)
    a = cycle_equivalence_of_cfg(proc.cfg)
    b = cycle_equivalence_of_cfg(proc.cfg)
    groups_a = sorted(sorted(e.eid for e in v) for v in a.classes().values())
    groups_b = sorted(sorted(e.eid for e in v) for v in b.classes().values())
    assert groups_a == groups_b


def test_control_regions_deterministic():
    proc = random_lowered_procedure(11, target_statements=60, goto_rate=0.3)
    assert control_regions(proc.cfg) == control_regions(proc.cfg)


def test_corpus_sources_stable():
    from repro.synth.corpus import _CACHE

    a = [list(p.sources) for p in standard_corpus(scale=0.05, seed=123)]
    b = [list(p.sources) for p in standard_corpus(scale=0.05, seed=124)]
    _CACHE.pop((123, 0.05), None)  # force regeneration from scratch
    c = [list(p.sources) for p in standard_corpus(scale=0.05, seed=123)]
    assert a == c  # same seed -> byte-identical sources
    assert a != b  # different seed -> different corpus


def test_edge_pairs_helper():
    proc = random_lowered_procedure(2, target_statements=10)
    pairs = edge_pairs(proc.cfg.edges)
    assert len(pairs) == proc.cfg.num_edges
    assert all(isinstance(p, tuple) and len(p) == 2 for p in pairs)
