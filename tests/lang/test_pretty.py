"""Pretty-printer round-trip tests."""

from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.synth.structured import random_procedure_ast
from repro.lang.astnodes import Program


SOURCE = """
proc demo(a, b) {
    x = 0;
    L0:
    while ((x < 10)) {
        if ((a > b)) {
            x = (x + 1);
        } else {
            x = (x - 1);
        }
        if ((x == 5)) {
            break;
        }
        continue;
    }
    switch (x) {
    case 1: {
        y = 1;
    }
    default: {
        goto L0;
    }
    }
    repeat {
        y = (y - 1);
    } until ((y <= 0));
    for (i = 0 to 9) {
        y = (y + i);
    }
    return y;
}
"""


def normalize(program):
    return pretty_program(program)


def test_round_trip_fixed_source():
    once = normalize(parse_program(SOURCE))
    twice = normalize(parse_program(once))
    assert once == twice


def test_round_trip_random_programs():
    for seed in range(15):
        ast = random_procedure_ast(seed, target_statements=40, goto_rate=0.2)
        once = pretty_program(Program([ast]))
        reparsed = parse_program(once)
        assert pretty_program(reparsed) == once, seed


def test_output_is_indented():
    text = normalize(parse_program(SOURCE))
    assert "    x = 0;" in text
    assert "proc demo(a, b) {" in text
