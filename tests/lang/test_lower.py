"""Lowering tests: AST -> validated block-level CFG + IR."""

import pytest

from repro.cfg.graph import InvalidCFGError
from repro.cfg.validate import is_valid_cfg
from repro.ir import Branch, Ret
from repro.lang import lower_program, parse_program
from repro.lang.lower import lower_procedure
from repro.lang.parser import parse_procedure


def lower(source):
    return lower_procedure(parse_procedure(source))


def test_straightline_coalesces_to_one_block():
    proc = lower("proc f() { x = 1; y = x; z = y; return z; }")
    # start, one code block, end
    assert proc.cfg.num_nodes == 3
    interior = [n for n in proc.cfg.nodes if n not in ("start", "end")]
    assert len(proc.blocks[interior[0]]) == 4


def test_start_and_end_stay_empty():
    proc = lower("proc f(a) { if (a) { x = 1; } return x; }")
    assert proc.blocks["start"] == []
    assert proc.blocks["end"] == []
    assert proc.cfg.out_degree("start") == 1


def test_params_defined_in_first_block():
    proc = lower("proc f(a, b) { return a; }")
    first = proc.cfg.successors("start")[0]
    targets = [s.target for s in proc.blocks[first]]
    assert targets[:2] == ["a", "b"]


def test_if_produces_labelled_branch():
    proc = lower("proc f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }")
    branches = [
        (node, stmt)
        for node, stmt in proc.statements()
        if isinstance(stmt, Branch)
    ]
    assert len(branches) == 1
    node = branches[0][0]
    labels = sorted(e.label for e in proc.cfg.out_edges(node))
    assert labels == ["F", "T"]


def test_while_shape():
    proc = lower("proc f(n) { i = 0; while (i < n) { i = i + 1; } return i; }")
    assert is_valid_cfg(proc.cfg)
    # a loop exists: some edge closes a cycle
    from repro.cfg.reducibility import is_reducible

    assert is_reducible(proc.cfg)
    headers = [n for n in proc.cfg.nodes if any(s.target == n for s in (e for e in proc.cfg.edges))]
    assert headers  # at least one node with an in-edge


def test_repeat_until_executes_body_first():
    proc = lower("proc f() { x = 0; repeat { x = x + 1; } until (x > 3); return x; }")
    assert is_valid_cfg(proc.cfg)
    # the until-branch: T exits, F loops back
    branch_nodes = [n for n, s in proc.statements() if isinstance(s, Branch)]
    [cond] = branch_nodes
    labels = {e.label: e.target for e in proc.cfg.out_edges(cond)}
    assert set(labels) == {"T", "F"}


def test_for_lowers_to_init_header_increment():
    proc = lower("proc f(n) { s = 0; for (i = 0 to n) { s = s + i; } return s; }")
    assert is_valid_cfg(proc.cfg)
    increments = [s for _, s in proc.statements() if s.target == "i" and "+ 1" in getattr(s, "text", "")]
    assert len(increments) == 1


def test_switch_without_default_gets_default_edge():
    proc = lower(
        "proc f(x) { switch (x) { case 1: { y = 1; } case 2: { y = 2; } } return y; }"
    )
    branch_nodes = [n for n, s in proc.statements() if isinstance(s, Branch)]
    [sw] = branch_nodes
    labels = sorted(e.label for e in proc.cfg.out_edges(sw))
    assert labels == ["1", "2", "default"]


def test_break_leaves_loop():
    proc = lower(
        "proc f(n) { while (1 < n) { if (n == 2) { break; } n = n - 1; } return n; }"
    )
    assert is_valid_cfg(proc.cfg)


def test_continue_targets_header():
    proc = lower(
        "proc f(n) { while (1 < n) { if (n == 2) { continue; } n = n - 1; } return n; }"
    )
    assert is_valid_cfg(proc.cfg)


def test_break_outside_loop_rejected():
    with pytest.raises(InvalidCFGError, match="break"):
        lower("proc f() { break; }")


def test_continue_outside_loop_rejected():
    with pytest.raises(InvalidCFGError, match="continue"):
        lower("proc f() { continue; }")


def test_goto_undefined_label_rejected():
    with pytest.raises(InvalidCFGError, match="undefined label"):
        lower("proc f() { goto nowhere; return; }")


def test_backward_goto_builds_loop():
    proc = lower(
        """
        proc f(n) {
            top:
            n = n - 1;
            if (n > 0) { goto top; }
            return n;
        }
        """
    )
    assert is_valid_cfg(proc.cfg)
    # there is a cycle: node count stable under pruning, and some retreating edge
    from repro.cfg.reducibility import is_reducible

    assert is_reducible(proc.cfg)


def test_goto_into_loop_is_irreducible():
    proc = lower(
        """
        proc f(n) {
            if (n > 0) { goto inside; }
            while (n < 10) {
                inside:
                n = n + 1;
            }
            return n;
        }
        """
    )
    from repro.cfg.reducibility import is_reducible

    assert is_valid_cfg(proc.cfg)
    assert not is_reducible(proc.cfg)


def test_infinite_loop_rejected():
    with pytest.raises(InvalidCFGError):
        lower("proc f() { spin: goto spin; }")


def test_dead_code_after_return_dropped():
    proc = lower("proc f() { return 1; x = 2; }")
    assert all(s.target != "x" for _, s in proc.statements())


def test_implicit_return_added():
    proc = lower("proc f() { x = 1; }")
    rets = [s for _, s in proc.statements() if isinstance(s, Ret)]
    assert len(rets) == 1


def test_merge_branch_nodes_split():
    """A block that is both a merge and a branch is split (§2.1 model)."""
    proc = lower(
        """
        proc f(a, b) {
            if (a) { x = 1; } else { x = 2; }
            if (b) { y = 1; } else { y = 2; }
            return y;
        }
        """
    )
    for node in proc.cfg.nodes:
        assert not (
            proc.cfg.in_degree(node) >= 2 and proc.cfg.out_degree(node) >= 2
        ), node


def test_lower_program_handles_many_procedures():
    procs = lower_program(parse_program("proc a() { return 1; } proc b() { return 2; }"))
    assert [p.name for p in procs] == ["a", "b"]
