"""MiniLang parser tests."""

import pytest

from repro.lang import astnodes as ast
from repro.lang.parser import ParseError, parse_procedure, parse_program


def test_empty_procedure():
    proc = parse_procedure("proc f() {}")
    assert proc.name == "f"
    assert proc.params == []
    assert proc.body.statements == []


def test_params():
    proc = parse_procedure("proc f(a, b, c) {}")
    assert proc.params == ["a", "b", "c"]


def test_assignment_and_precedence():
    proc = parse_procedure("proc f() { x = 1 + 2 * 3; }")
    [stmt] = proc.body.statements
    assert isinstance(stmt, ast.Assign)
    assert stmt.value.op == "+"
    assert stmt.value.right.op == "*"


def test_parentheses_override_precedence():
    proc = parse_procedure("proc f() { x = (1 + 2) * 3; }")
    [stmt] = proc.body.statements
    assert stmt.value.op == "*"
    assert stmt.value.left.op == "+"


def test_comparison_and_logical_ops():
    proc = parse_procedure("proc f() { x = a < b && c == d || e; }")
    [stmt] = proc.body.statements
    assert stmt.value.op == "||"
    assert stmt.value.left.op == "&&"


def test_unary_desugar():
    proc = parse_procedure("proc f() { x = -y; z = !y; }")
    neg, bang = proc.body.statements
    assert neg.value.op == "-" and isinstance(neg.value.left, ast.Num)
    assert bang.value.op == "=="


def test_if_else_chain():
    proc = parse_procedure(
        "proc f() { if (a) { x = 1; } else if (b) { x = 2; } else { x = 3; } }"
    )
    [stmt] = proc.body.statements
    assert isinstance(stmt, ast.If)
    [inner] = stmt.els.statements
    assert isinstance(inner, ast.If)
    assert inner.els is not None


def test_while_repeat_for():
    proc = parse_procedure(
        """
        proc f() {
            while (x < 3) { x = x + 1; }
            repeat { x = x - 1; } until (x == 0);
            for (i = 0 to 9) { x = x + i; }
        }
        """
    )
    w, r, f = proc.body.statements
    assert isinstance(w, ast.While)
    assert isinstance(r, ast.Repeat)
    assert isinstance(f, ast.For) and f.var == "i"


def test_switch():
    proc = parse_procedure(
        """
        proc f() {
            switch (x) {
                case 1: { y = 1; }
                case 2: { y = 2; }
                default: { y = 0; }
            }
        }
        """
    )
    [stmt] = proc.body.statements
    assert isinstance(stmt, ast.Switch)
    assert [value for value, _ in stmt.cases] == [1, 2]
    assert stmt.default is not None


def test_goto_label_break_continue_return():
    proc = parse_procedure(
        """
        proc f() {
            L:
            while (1) { break; continue; }
            goto L;
            return x;
        }
        """
    )
    label, loop, goto, ret = proc.body.statements
    assert isinstance(label, ast.Label) and label.name == "L"
    assert isinstance(goto, ast.Goto) and goto.label == "L"
    assert isinstance(ret, ast.Return)
    assert isinstance(loop.body.statements[0], ast.Break)
    assert isinstance(loop.body.statements[1], ast.Continue)


def test_bare_return():
    proc = parse_procedure("proc f() { return; }")
    [ret] = proc.body.statements
    assert ret.value is None


def test_call_expression():
    proc = parse_procedure("proc f() { x = g(a, b + 1); }")
    [stmt] = proc.body.statements
    assert isinstance(stmt.value, ast.Call)
    assert stmt.value.name == "g"
    assert len(stmt.value.args) == 2
    assert stmt.value.variables() == {"a", "b"}


def test_multiple_procedures():
    program = parse_program("proc a() {} proc b() {}")
    assert [p.name for p in program.procedures] == ["a", "b"]


def test_parse_procedure_rejects_multiple():
    with pytest.raises(ParseError):
        parse_procedure("proc a() {} proc b() {}")


def test_error_messages_have_location():
    with pytest.raises(ParseError, match="line 1"):
        parse_procedure("proc f() { x = ; }")
    with pytest.raises(ParseError, match="expected"):
        parse_procedure("proc f() { if x { } }")


def test_unexpected_statement_token():
    with pytest.raises(ParseError):
        parse_procedure("proc f() { 42; }")
