"""MiniLang lexer tests."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds_values(source):
    return [(t.kind, t.value) for t in tokenize(source) if t.kind != "eof"]


def test_keywords_vs_identifiers():
    assert kinds_values("while whiles") == [("kw", "while"), ("ident", "whiles")]


def test_numbers():
    assert kinds_values("0 42 007") == [("num", "0"), ("num", "42"), ("num", "007")]


def test_two_char_operators():
    assert kinds_values("== != <= >= && ||") == [
        ("op", "=="),
        ("op", "!="),
        ("op", "<="),
        ("op", ">="),
        ("op", "&&"),
        ("op", "||"),
    ]


def test_two_char_not_split():
    assert kinds_values("a<=b") == [("ident", "a"), ("op", "<="), ("ident", "b")]


def test_single_char_operators():
    assert kinds_values("(){};:,") == [
        ("op", "("),
        ("op", ")"),
        ("op", "{"),
        ("op", "}"),
        ("op", ";"),
        ("op", ":"),
        ("op", ","),
    ]


def test_comments_ignored():
    assert kinds_values("x # comment until eol\ny") == [("ident", "x"), ("ident", "y")]


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].col) == (1, 1)
    assert (tokens[1].line, tokens[1].col) == (2, 3)


def test_eof_token_always_present():
    assert tokenize("")[-1].kind == "eof"
    assert tokenize("x")[-1].kind == "eof"


def test_underscore_identifiers():
    assert kinds_values("_x x_1") == [("ident", "_x"), ("ident", "x_1")]


def test_lex_error_with_position():
    with pytest.raises(LexError, match="line 2"):
        tokenize("ok\n@")


def test_token_str():
    token = tokenize("x")[0]
    assert "x" in str(token)
