"""Robustness fuzzing: the front end fails only with its own error types."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.graph import InvalidCFGError
from repro.lang.lexer import LexError, tokenize
from repro.lang.lower import lower_procedure
from repro.lang.parser import ParseError, parse_program

# Fragments that tend to produce *almost*-valid programs, stressing the
# parser deeper than uniformly random characters would.
_FRAGMENTS = st.sampled_from(
    [
        "proc", "f", "(", ")", "{", "}", ";", "=", "x", "1", "if", "else",
        "while", "repeat", "until", "for", "to", "switch", "case", "default",
        "break", "continue", "goto", "return", "L:", "+", "-", "*", "<", "==",
        "&&", "x = 1;", "if (x) { }", "while (x) { }", "goto L;",
    ]
)


@settings(max_examples=300, deadline=None)
@given(st.text(alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=80))
def test_lexer_total_on_printable_ascii(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens[-1].kind == "eof"


@settings(max_examples=300, deadline=None)
@given(st.lists(_FRAGMENTS, max_size=30))
def test_parser_raises_only_its_own_errors(fragments):
    source = " ".join(fragments)
    try:
        parse_program(source)
    except (LexError, ParseError):
        pass  # rejected with a diagnostic: fine


@settings(max_examples=200, deadline=None)
@given(st.lists(_FRAGMENTS, max_size=30))
def test_lowering_raises_only_its_own_errors(fragments):
    source = "proc fuzz() { " + " ".join(fragments) + " }"
    try:
        program = parse_program(source)
    except (LexError, ParseError):
        return
    for procedure in program.procedures:
        try:
            lower_procedure(procedure)
        except InvalidCFGError:
            pass  # break outside loop, undefined label, infinite loop: fine