"""Tests for FOW control dependence (Definition 8, augmented graph)."""

from repro.cfg.builder import cfg_from_edges
from repro.controldep.fow import (
    RETURN_EDGE,
    control_dependence,
    dependents_of_edge,
    dependents_of_return_edge,
)
from repro.dominance.tree import postdominator_tree
from repro.synth.patterns import diamond, loop_while


def test_diamond_dependences():
    cfg = diamond()
    cd = control_dependence(cfg)
    t_edge = cfg.edge("c", "t")
    f_edge = cfg.edge("c", "f")
    assert cd["t"] == {("c", t_edge)}
    assert cd["f"] == {("c", f_edge)}
    assert ("c", f_edge) not in cd["t"]
    assert ("c", f_edge) in cd["f"]


def test_always_executed_depend_on_return_edge():
    cfg = diamond()
    cd = control_dependence(cfg)
    for node in ("start", "c", "j", "end"):
        assert ("end", RETURN_EDGE) in cd[node], node
    for node in ("t", "f"):
        assert ("end", RETURN_EDGE) not in cd[node], node


def test_loop_header_self_dependence():
    cfg = loop_while(1)
    cd = control_dependence(cfg)
    body_edge = cfg.edge("h", "b0")
    assert ("h", body_edge) in cd["b0"]
    assert ("h", body_edge) in cd["h"]  # the header re-executes iff taken


def test_repeat_until_distinguishes_body_from_latch():
    """The regression behind the Theorem 7 fix: an always-executed loop
    body must NOT share its CD set with the conditional latch block."""
    cfg = cfg_from_edges(
        [
            ("start", "body"),
            ("body", "cond"),
            ("cond", "latch", "F"),
            ("latch", "body"),
            ("cond", "exit", "T"),
            ("exit", "end"),
        ]
    )
    cd = control_dependence(cfg)
    latch_edge = cfg.edge("cond", "latch")
    assert ("cond", latch_edge) in cd["body"]
    assert ("cond", latch_edge) in cd["latch"]
    # ... but body is always executed, latch is not:
    assert ("end", RETURN_EDGE) in cd["body"]
    assert ("end", RETURN_EDGE) not in cd["latch"]
    assert cd["body"] != cd["latch"]


def test_dependents_of_edge_walk():
    cfg = diamond()
    pdtree = postdominator_tree(cfg)
    t_edge = cfg.edge("c", "t")
    assert dependents_of_edge(cfg, pdtree, t_edge) == ["t"]
    spine = cfg.edge("start", "c")
    assert dependents_of_edge(cfg, pdtree, spine) == []


def test_dependents_of_return_edge_are_postdominators_of_start():
    cfg = diamond()
    pdtree = postdominator_tree(cfg)
    assert set(dependents_of_return_edge(cfg, pdtree)) == {"start", "c", "j", "end"}
