"""Theorem 7/8 cross-checks: three control-region algorithms must agree."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.controldep.fow import control_regions_by_definition
from repro.controldep.regions_cfs import control_regions_cfs
from repro.controldep.regions_fast import (
    control_regions,
    node_cycle_equivalence,
    node_expand,
)
from repro.synth.patterns import diamond, loop_while, paper_like_example
from repro.synth.structured import random_lowered_procedure
from tests.conftest import valid_cfgs


def test_diamond_regions():
    regions = control_regions(diamond())
    assert ["c", "end", "j", "start"] in regions
    assert ["t"] in regions
    assert ["f"] in regions


def test_paper_example_regions():
    cfg = paper_like_example()
    fast = control_regions(cfg)
    assert fast == control_regions_by_definition(cfg)
    assert fast == control_regions_cfs(cfg)
    # spine nodes share a region; the two loop nodes i,j share one
    assert ["a", "e", "end", "start"] in fast
    assert ["i", "j"] in fast


def test_loop_regions():
    cfg = loop_while(2)
    fast = control_regions(cfg)
    assert fast == control_regions_by_definition(cfg)
    # both body blocks execute under the same condition
    assert ["b0", "b1"] in fast or ["b0", "b1", "h"] in fast


def test_repeat_until_regression():
    """The latch of a repeat-until must not join the always-executed body
    (this is the case that requires CD on the *augmented* graph)."""
    cfg = cfg_from_edges(
        [
            ("start", "body"),
            ("body", "cond"),
            ("cond", "latch", "F"),
            ("latch", "body"),
            ("cond", "exit", "T"),
            ("exit", "end"),
        ]
    )
    fast = control_regions(cfg)
    assert fast == control_regions_by_definition(cfg)
    assert fast == control_regions_cfs(cfg)
    assert ["latch"] in fast
    assert ["body", "cond"] in fast


def test_node_expansion_shape():
    cfg = diamond()
    augmented, _ = cfg.with_return_edge()
    expanded, representative = node_expand(augmented)
    assert expanded.num_nodes == 2 * augmented.num_nodes
    assert expanded.num_edges == augmented.num_nodes + augmented.num_edges
    for node, edge in representative.items():
        assert edge.pair == (("i", node), ("o", node))


def test_node_cycle_equivalence_direct():
    cfg = diamond()
    augmented, _ = cfg.with_return_edge()
    classes = node_cycle_equivalence(augmented, root=cfg.start)
    assert classes["start"] == classes["c"] == classes["j"] == classes["end"]
    assert classes["t"] != classes["f"]
    assert classes["t"] != classes["start"]


def test_self_loop_node():
    cfg = cfg_from_edges([("start", "a"), ("a", "a"), ("a", "end")])
    fast = control_regions(cfg)
    assert fast == control_regions_by_definition(cfg)


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_theorem_7_and_8(cfg):
    """Fast == FOW-by-definition == CFS90 refinement, on arbitrary CFGs."""
    fast = control_regions(cfg)
    by_def = control_regions_by_definition(cfg)
    assert fast == by_def
    assert control_regions_cfs(cfg) == by_def


def test_lowered_procedures_agree():
    for seed in range(10):
        proc = random_lowered_procedure(seed, target_statements=40, goto_rate=0.3)
        fast = control_regions(proc.cfg)
        assert fast == control_regions_by_definition(proc.cfg), seed
        assert fast == control_regions_cfs(proc.cfg), seed
