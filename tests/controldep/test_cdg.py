"""Factored control-dependence representation tests."""

from hypothesis import given, settings

from repro.controldep.cdg import ControlDependenceGraph
from repro.controldep.fow import control_dependence
from repro.synth.patterns import diamond, paper_like_example
from repro.synth.structured import random_lowered_procedure
from tests.conftest import valid_cfgs


def test_cd_sets_match_fow_diamond():
    cfg = diamond()
    cdg = ControlDependenceGraph(cfg)
    full = control_dependence(cfg)
    for node in cfg.nodes:
        assert cdg.cd_set(node) == frozenset(full[node])


def test_same_region_query():
    cfg = diamond()
    cdg = ControlDependenceGraph(cfg)
    assert cdg.same_region("start", "end")
    assert cdg.same_region("c", "j")
    assert not cdg.same_region("t", "f")


def test_dependent_regions_reverse_map():
    cfg = diamond()
    cdg = ControlDependenceGraph(cfg)
    t_edge = cfg.edge("c", "t")
    dependents = cdg.dependent_regions(("c", t_edge))
    assert [sorted(g) for g in dependents] == [["t"]]


def test_factorization_saves_space():
    proc = random_lowered_procedure(7, target_statements=150)
    cdg = ControlDependenceGraph(proc.cfg)
    assert cdg.stored_pairs() < cdg.unfactored_pairs()
    assert len(cdg.regions) < proc.cfg.num_nodes


@settings(max_examples=80, deadline=None)
@given(valid_cfgs())
def test_cd_sets_match_fow_everywhere(cfg):
    cdg = ControlDependenceGraph(cfg)
    full = control_dependence(cfg)
    for node in cfg.nodes:
        assert cdg.cd_set(node) == frozenset(full[node])


def test_paper_example_factorization():
    cfg = paper_like_example()
    cdg = ControlDependenceGraph(cfg)
    # spine region depends only on the augmentation edge
    spine_deps = cdg.cd_set("start")
    assert len(spine_deps) == 1
    assert cdg.same_region("start", "e")
