"""Tests for the named CFG pattern families."""

import pytest

from repro.cfg.reducibility import is_reducible
from repro.cfg.validate import is_valid_cfg
from repro.core.pst import build_pst
from repro.synth.patterns import (
    diamond,
    if_then,
    irreducible_kernel,
    linear,
    loop_while,
    nested_loops,
    paper_like_example,
    repeat_until_nest,
    sequence_of_diamonds,
    switch_ladder,
)

ALL_PATTERNS = [
    linear(4),
    diamond(),
    if_then(3),
    loop_while(2),
    nested_loops(3),
    repeat_until_nest(4),
    switch_ladder(5),
    sequence_of_diamonds(3),
    irreducible_kernel(),
    paper_like_example(),
]


@pytest.mark.parametrize("cfg", ALL_PATTERNS, ids=lambda c: c.name)
def test_all_patterns_are_valid(cfg):
    assert is_valid_cfg(cfg)


@pytest.mark.parametrize("cfg", ALL_PATTERNS, ids=lambda c: c.name)
def test_all_patterns_have_psts(cfg):
    pst = build_pst(cfg)
    assert len(pst.canonical_regions()) >= 0  # construction succeeds


def test_linear_sizes():
    assert linear(5).num_nodes == 7
    assert linear(5).num_edges == 6


def test_nested_loops_depth_scales():
    for depth in (2, 4, 6):
        pst = build_pst(nested_loops(depth))
        assert pst.max_depth() >= depth


def test_repeat_until_nest_size_scales():
    assert repeat_until_nest(10).num_nodes == 2 * 10 + 2


def test_switch_ladder_arm_count():
    cfg = switch_ladder(7)
    assert cfg.out_degree("s") == 7


def test_irreducibility_flags():
    assert not is_reducible(irreducible_kernel())
    assert is_reducible(nested_loops(3))
    assert is_reducible(repeat_until_nest(3))


def test_sequence_of_diamonds_is_broad_not_deep():
    pst = build_pst(sequence_of_diamonds(8))
    assert pst.max_depth() == 2
    assert len(pst.canonical_regions()) >= 24
