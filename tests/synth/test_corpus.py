"""Tests for the calibrated 254-procedure corpus."""

import pytest

from repro.cfg.validate import is_valid_cfg
from repro.synth.corpus import (
    PAPER_TABLE,
    all_procedures,
    corpus_table,
    standard_corpus,
)


@pytest.fixture(scope="module")
def small_corpus():
    return standard_corpus(scale=0.15)


def test_paper_table_totals():
    assert sum(procs for _, _, _, procs in PAPER_TABLE) == 254
    assert sum(lines for _, _, lines, _ in PAPER_TABLE) == 21549


def test_scaled_corpus_structure(small_corpus):
    assert len(small_corpus) == len(PAPER_TABLE)
    for program, (suite, name, _, procs) in zip(small_corpus, PAPER_TABLE):
        assert program.suite == suite
        assert program.name == name
        assert program.num_procedures == max(1, round(procs * 0.15))


def test_all_cfgs_valid(small_corpus):
    for proc in all_procedures(small_corpus):
        assert is_valid_cfg(proc.cfg), proc.name


def test_corpus_is_cached(small_corpus):
    assert standard_corpus(scale=0.15) is standard_corpus(scale=0.15)


def test_corpus_deterministic_across_cache_keys():
    a = standard_corpus(scale=0.15, seed=77)
    b = standard_corpus(scale=0.15, seed=78)
    assert a is not b
    # different seeds give different programs
    assert a[0].sources != b[0].sources


def test_corpus_table_renders(small_corpus):
    table = corpus_table(small_corpus)
    assert "APS" in table
    assert "linpack" in table
    assert table.strip().splitlines()[-1].startswith("total")


def test_line_counts_tracked(small_corpus):
    for program in small_corpus:
        assert program.lines > 0
        assert len(program.sources) == program.num_procedures


def test_full_scale_calibration():
    """Full corpus shape mirrors the paper's table within tolerance."""
    corpus = standard_corpus()
    total_lines = sum(p.lines for p in corpus)
    total_procs = sum(p.num_procedures for p in corpus)
    assert total_procs == 254
    assert 0.75 * 21549 <= total_lines <= 1.25 * 21549
