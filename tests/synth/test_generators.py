"""Tests for the random program and CFG generators."""

from repro.cfg.validate import is_valid_cfg
from repro.core.pst import build_pst
from repro.synth.structured import random_lowered_procedure, random_procedure_ast
from repro.synth.unstructured import random_cfg, random_dag_cfg
from repro.lang.pretty import pretty_procedure


def test_determinism():
    a = pretty_procedure(random_procedure_ast(42, 30, 0.2))
    b = pretty_procedure(random_procedure_ast(42, 30, 0.2))
    assert a == b


def test_different_seeds_differ():
    a = pretty_procedure(random_procedure_ast(1, 30))
    b = pretty_procedure(random_procedure_ast(2, 30))
    assert a != b


def test_lowered_procedures_always_valid():
    for seed in range(25):
        proc = random_lowered_procedure(seed, target_statements=25, goto_rate=0.3)
        assert is_valid_cfg(proc.cfg), seed


def test_size_scales_with_target():
    small = random_lowered_procedure(7, target_statements=10)
    large = random_lowered_procedure(7, target_statements=300)
    assert large.num_statements() > small.num_statements() * 3
    assert large.cfg.num_nodes > small.cfg.num_nodes


def test_goto_rate_produces_unstructured():
    """At a high goto rate, at least some procedures get cyclic regions."""
    from repro.core.region_kinds import classify_pst, is_completely_structured

    unstructured = 0
    for seed in range(12):
        proc = random_lowered_procedure(seed, target_statements=60, goto_rate=0.4)
        if not is_completely_structured(classify_pst(build_pst(proc.cfg))):
            unstructured += 1
    assert unstructured >= 3


def test_goto_free_procedures_have_no_gotos():
    from repro.lang import astnodes as ast

    proc = random_procedure_ast(5, 80, goto_rate=0.0)

    def walk(block):
        for stmt in block.statements:
            assert not isinstance(stmt, (ast.Goto, ast.Label))
            for attr in ("then", "els", "body", "default"):
                sub = getattr(stmt, attr, None)
                if isinstance(sub, ast.Block):
                    walk(sub)
            for _, sub in getattr(stmt, "cases", []):
                walk(sub)

    walk(proc.body)


def test_deep_nesting_flag_nests_deeper():
    shallow = build_pst(random_lowered_procedure(3, 120, deep_nesting=False).cfg)
    deep = build_pst(random_lowered_procedure(3, 120, deep_nesting=True).cfg)
    assert deep.max_depth() >= shallow.max_depth()


def test_random_cfg_valid_and_deterministic():
    for seed in range(15):
        a = random_cfg(seed, num_nodes=30, extra_edges=20)
        b = random_cfg(seed, num_nodes=30, extra_edges=20)
        assert is_valid_cfg(a)
        assert [e.pair for e in a.edges] == [e.pair for e in b.edges]


def test_random_dag_cfg_is_acyclic():
    from repro.cfg.reducibility import is_reducible

    for seed in range(10):
        cfg = random_dag_cfg(seed, 20, 15)
        assert is_valid_cfg(cfg)
        assert is_reducible(cfg)  # DAGs are trivially reducible
