"""Every diagnostic class must map to a documented process exit code.

The registry in :mod:`repro.errors` resolves through the MRO, so this test
walks the *whole* ``ReproError`` subclass tree: a newly added diagnostic
that only the fallback (exit 1) would catch fails here at development time
instead of silently surprising scripted callers in production.
"""

import pytest

# Import every module that defines ReproError subclasses so the subclass
# walk below actually sees them.
import repro.cli  # noqa: F401
import repro.resilience.engine  # noqa: F401
import repro.service.server  # noqa: F401
from repro.cfg.graph import InvalidCFGError
from repro.errors import (
    DOCUMENTED_EXIT_CODES,
    EXIT_ANALYSIS_FAILED,
    EXIT_BUDGET_EXCEEDED,
    EXIT_CODE_BY_ERROR,
    EXIT_DIAGNOSTICS,
    EXIT_DRAINING,
    EXIT_OK,
    EXIT_SHED,
    EXIT_USAGE_IO,
    AnalysisError,
    BudgetExceeded,
    CheckpointError,
    DeadlineExceeded,
    PostconditionError,
    ReproError,
    ResourceExhausted,
    ServiceDraining,
    ServiceShed,
    ServiceUnavailable,
    exit_code_for,
)


def all_repro_errors():
    """Every concrete + abstract subclass of ReproError, transitively."""
    seen = []
    frontier = [ReproError]
    while frontier:
        cls = frontier.pop()
        for sub in cls.__subclasses__():
            if sub not in seen:
                seen.append(sub)
                frontier.append(sub)
    return seen


def test_the_tree_is_populated():
    tree = all_repro_errors()
    for expected in (
        InvalidCFGError, ResourceExhausted, DeadlineExceeded, BudgetExceeded,
        PostconditionError, AnalysisError, CheckpointError,
        ServiceUnavailable, ServiceShed, ServiceDraining,
    ):
        assert expected in tree


@pytest.mark.parametrize("cls", all_repro_errors(), ids=lambda c: c.__name__)
def test_every_subclass_maps_to_a_documented_code(cls):
    code = exit_code_for(cls)
    assert code in DOCUMENTED_EXIT_CODES
    assert code != EXIT_OK  # an *error* can never mean success


@pytest.mark.parametrize("cls", all_repro_errors(), ids=lambda c: c.__name__)
def test_no_subclass_relies_on_the_fallback(cls):
    # exit_code_for falls back to EXIT_DIAGNOSTICS for unregistered
    # classes; reaching it from the taxonomy is a bug (see repro.errors).
    from repro.errors import _register_invalid_cfg

    _register_invalid_cfg()
    assert any(base in EXIT_CODE_BY_ERROR for base in cls.__mro__), (
        f"{cls.__name__} is reachable only through the exit-1 fallback; "
        "register it (or an ancestor) in EXIT_CODE_BY_ERROR"
    )


def test_specific_documented_mappings():
    assert exit_code_for(InvalidCFGError("x")) == EXIT_BUDGET_EXCEEDED == 3
    assert exit_code_for(DeadlineExceeded("x")) == EXIT_ANALYSIS_FAILED == 4
    assert exit_code_for(BudgetExceeded("x")) == EXIT_ANALYSIS_FAILED
    assert exit_code_for(PostconditionError("x")) == EXIT_ANALYSIS_FAILED
    assert exit_code_for(AnalysisError("x")) == EXIT_ANALYSIS_FAILED
    assert exit_code_for(CheckpointError("x")) == EXIT_USAGE_IO == 2
    assert exit_code_for(ServiceShed("x")) == EXIT_SHED == 5
    assert exit_code_for(ServiceDraining("x")) == EXIT_DRAINING == 6
    assert exit_code_for(ServiceUnavailable("x")) == EXIT_SHED


def test_exit_code_for_accepts_classes_and_instances():
    assert exit_code_for(AnalysisError) == exit_code_for(AnalysisError("x"))


def test_unregistered_error_falls_back_to_diagnostics():
    class Hypothetical(Exception):
        pass

    assert exit_code_for(Hypothetical("x")) == EXIT_DIAGNOSTICS


def test_shed_http_status_tracks_the_reason():
    assert ServiceShed("x", reason="rate").http_status == 429
    assert ServiceShed("x", reason="depth").http_status == 503
    assert ServiceDraining("x").http_status == 503


def test_retry_after_survives_the_taxonomy():
    error = ServiceShed("x", reason="rate", retry_after=0.25)
    assert error.retry_after == 0.25
    assert isinstance(error, ServiceUnavailable)
    assert isinstance(error, ReproError)


def test_documented_codes_are_dense_and_unique():
    assert DOCUMENTED_EXIT_CODES == tuple(range(7))
