"""The canonical top-level surface, and the deprecated deep-import shims."""

import importlib
import warnings

import pytest

import repro


def test_every_all_name_is_importable():
    public = [name for name in repro.__all__ if not name.startswith("_")]
    assert public == sorted(public)
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_promoted_names_resolve_to_their_implementations():
    from repro.cfg.builder import cfg_from_edges
    from repro.config import AnalysisConfig
    from repro.kernel.session import AnalysisSession
    from repro.obs.observer import Observer
    from repro.resilience.batch import run_batch
    from repro.resilience.engine import run_analysis

    assert repro.build_cfg is cfg_from_edges
    assert repro.AnalysisConfig is AnalysisConfig
    assert repro.AnalysisSession is AnalysisSession
    assert repro.Observer is Observer
    assert repro.run_analysis is run_analysis
    assert repro.run_batch is run_batch


def test_lazy_exports_raise_clean_attribute_error():
    with pytest.raises(AttributeError, match="no attribute"):
        repro.definitely_not_a_thing


@pytest.mark.parametrize(
    "module, name",
    [
        ("repro.resilience", "run_analysis"),
        ("repro.resilience", "run_batch"),
        ("repro.kernel", "AnalysisSession"),
        ("repro.kernel", "session_for"),
    ],
)
def test_old_deep_import_spellings_warn_but_work(module, name):
    package = importlib.import_module(module)
    with pytest.warns(DeprecationWarning, match=f"from repro import {name}"):
        deep = getattr(package, name)
    assert deep is getattr(repro, name)


def test_undeprecated_resilience_names_stay_silent():
    package = importlib.import_module("repro.resilience")
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        package.FaultPlan
        package.inject
        package.Ticker


def test_top_level_quickstart_works_end_to_end():
    cfg = repro.build_cfg(
        [("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "end")],
        "start",
        "end",
    )
    result = repro.run_analysis(cfg, config=repro.AnalysisConfig())
    assert result.ok
    assert result.pst is not None
    regions = repro.control_regions(cfg)
    assert regions is not None
