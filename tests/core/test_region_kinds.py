"""Tests for the Figure 7 structural region classifier."""

from repro.cfg.builder import cfg_from_edges
from repro.core.pst import build_pst
from repro.core.region_kinds import (
    RegionKind,
    classify_pst,
    classify_region,
    is_completely_structured,
    region_weight,
)
from repro.lang import lower_program, parse_program
from repro.synth.patterns import (
    diamond,
    if_then,
    irreducible_kernel,
    linear,
    loop_while,
    repeat_until_nest,
    switch_ladder,
)


def kind_of_region_containing(cfg, node):
    pst = build_pst(cfg)
    return classify_region(pst, pst.region_of(node))


def test_linear_is_block():
    pst = build_pst(linear(4))
    kinds = classify_pst(pst)
    assert all(kind is RegionKind.BLOCK for kind in kinds.values())


def test_diamond_outer_region_is_case():
    assert kind_of_region_containing(diamond(), "c") is RegionKind.CASE


def test_if_then_is_case():
    assert kind_of_region_containing(if_then(2), "c") is RegionKind.CASE


def test_switch_is_case():
    assert kind_of_region_containing(switch_ladder(4), "s") is RegionKind.CASE


def test_while_is_loop():
    assert kind_of_region_containing(loop_while(2), "h") is RegionKind.LOOP


def test_repeat_until_is_loop():
    cfg = repeat_until_nest(1)
    assert kind_of_region_containing(cfg, "b0") is RegionKind.LOOP


def test_self_loop_region_is_loop():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "b"), ("b", "end")])
    assert kind_of_region_containing(cfg, "b") is RegionKind.LOOP


def test_irreducible_region_is_cyclic():
    pst = build_pst(irreducible_kernel())
    kinds = set(classify_pst(pst).values())
    assert RegionKind.CYCLIC in kinds


def test_acyclic_unstructured_is_dag():
    cfg = cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "d"),
            ("b", "e", "x"),
            ("c", "e"),
            ("d", "end"),
            ("e", "d"),
        ]
    )
    pst = build_pst(cfg)
    kinds = set(classify_pst(pst).values())
    assert RegionKind.DAG in kinds


def test_case_with_chain_arms():
    """An if whose arm is a sequence of sibling regions is still a case."""
    source = """
    proc f(a) {
        if (a > 0) {
            x = 1;
            while (x < a) { x = x + 1; }
            y = x;
        }
        return a;
    }
    """
    [proc] = lower_program(parse_program(source))
    pst = build_pst(proc.cfg)
    kinds = classify_pst(pst)
    assert RegionKind.DAG not in set(kinds.values())
    assert RegionKind.CASE in set(kinds.values())


def test_weights():
    pst = build_pst(diamond())
    outer = pst.region_of("c")
    assert region_weight(outer) == 2  # if-then-else weighs two (paper §4)
    assert region_weight(pst.region_of("t")) == 1  # blocks weigh one


def test_structured_predicate():
    assert is_completely_structured(classify_pst(build_pst(diamond())))
    assert not is_completely_structured(classify_pst(build_pst(irreducible_kernel())))


def test_kind_enum_structured_flags():
    assert RegionKind.BLOCK.is_structured
    assert RegionKind.CASE.is_structured
    assert RegionKind.LOOP.is_structured
    assert not RegionKind.DAG.is_structured
    assert not RegionKind.CYCLIC.is_structured
