"""Unit tests for PST construction and queries."""

from repro.cfg.builder import cfg_from_edges
from repro.core.pst import REGION_ENTRY, REGION_EXIT, build_pst
from repro.synth.patterns import (
    diamond,
    nested_loops,
    paper_like_example,
    sequence_of_diamonds,
)


def test_diamond_nesting():
    pst = build_pst(diamond())
    regions = {r.entry.pair: r for r in pst.canonical_regions()}
    outer = regions[("start", "c")]
    t_arm = regions[("c", "t")]
    f_arm = regions[("c", "f")]
    assert t_arm.parent is outer
    assert f_arm.parent is outer
    assert outer.parent is pst.root
    assert outer.depth == 1 and t_arm.depth == 2


def test_sequential_regions_are_siblings():
    pst = build_pst(sequence_of_diamonds(3))
    top = [r for r in pst.canonical_regions() if r.depth == 1]
    # four spine regions at top level (3 diamonds chained by shared edges)
    assert all(r.parent is pst.root for r in top)
    assert len(top) >= 3


def test_region_of_node_diamond():
    pst = build_pst(diamond())
    regions = {r.entry.pair: r for r in pst.canonical_regions()}
    assert pst.region_of("t") is regions[("c", "t")]
    assert pst.region_of("f") is regions[("c", "f")]
    assert pst.region_of("c") is regions[("start", "c")]
    assert pst.region_of("start") is pst.root
    assert pst.region_of("end") is pst.root


def test_contains_is_transitive():
    pst = build_pst(diamond())
    outer = pst.region_of("c")
    assert pst.contains(outer, "t")
    assert pst.contains(outer, "f")
    assert pst.contains(pst.root, "t")
    assert not pst.contains(pst.region_of("t"), "f")


def test_region_nodes_and_size():
    pst = build_pst(diamond())
    outer = pst.region_of("c")
    assert sorted(outer.nodes()) == ["c", "f", "j", "t"]
    assert outer.size() == 4


def test_nested_loops_depth():
    pst = build_pst(nested_loops(4))
    assert pst.max_depth() >= 4


def test_edge_level_boundary_vs_interior():
    cfg = diamond()
    pst = build_pst(cfg)
    outer = pst.region_of("c")
    arm = pst.region_of("t")
    # the arm's entry edge belongs to the outer region's level
    assert pst.edge_level(cfg.edge("c", "t")) is outer
    # the outer region's entry belongs to the root level
    assert pst.edge_level(cfg.edge("start", "c")) is pst.root


def test_collapsed_root_diamond():
    cfg = diamond()
    pst = build_pst(cfg)
    sub, edge_map = pst.collapsed_cfg(pst.root)
    # root sees: start, end, and the outer region as one summary node
    assert sub.start == "start" and sub.end == "end"
    summaries = [n for n in sub.nodes if isinstance(n, tuple)]
    assert len(summaries) == 1
    assert cfg.edge("start", "c") in edge_map


def test_collapsed_canonical_region():
    cfg = diamond()
    pst = build_pst(cfg)
    outer = pst.region_of("c")
    sub, edge_map = pst.collapsed_cfg(outer)
    assert sub.start == REGION_ENTRY and sub.end == REGION_EXIT
    # c and j are own nodes; the two arms are summaries
    summaries = [n for n in sub.nodes if isinstance(n, tuple)]
    assert len(summaries) == 2
    assert "c" in sub.nodes and "j" in sub.nodes
    assert edge_map[outer.entry].source == REGION_ENTRY
    assert edge_map[outer.exit].target == REGION_EXIT


def test_collapsed_cfg_cached():
    pst = build_pst(diamond())
    a = pst.collapsed_cfg(pst.root)
    b = pst.collapsed_cfg(pst.root)
    assert a[0] is b[0]


def test_regions_preorder_contains_root_first():
    pst = build_pst(paper_like_example())
    regions = pst.regions()
    assert regions[0] is pst.root
    assert len(regions) == len(pst.canonical_regions()) + 1


def test_len_is_canonical_count():
    pst = build_pst(paper_like_example())
    assert len(pst) == len(pst.canonical_regions())


def test_exit_as_non_tree_edge_still_nests_correctly():
    """A region whose exit edge is a non-tree edge in the DFS.

    DFS explores c->t->j->end first, so the f arm's exit f->j targets an
    already-visited node; its region must still parent under the outer
    region.
    """
    cfg = cfg_from_edges(
        [
            ("start", "c"),
            ("c", "t", "T"),
            ("t", "j"),
            ("j", "end"),
            ("c", "f", "F"),
            ("f", "j"),
        ]
    )
    pst = build_pst(cfg)
    f_region = pst.region_of("f")
    assert f_region.entry.pair == ("c", "f")
    assert f_region.parent.entry.pair == ("start", "c")
