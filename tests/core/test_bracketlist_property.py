"""Property-based model checking of the BracketList ADT (§3.5).

The reference model is a plain Python list with the top at index 0.  A
hypothesis state machine drives random interleavings of all four mutating
operations -- ``push``, ``top``, ``delete``, ``concat`` -- across a pool of
lists, which in particular exercises deletion of brackets that arrived in a
list via the O(1) ``concat`` splice (the operation pattern the cycle
equivalence algorithm relies on when it merges child bracket lists and later
deletes brackets from arbitrary positions of the merged list).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.bracketlist import Bracket, BracketList

N_LISTS = 4


class BracketListMachine(RuleBasedStateMachine):
    """Random push/top/delete/concat over a pool of lists vs list models."""

    def __init__(self):
        super().__init__()
        self.real = [BracketList() for _ in range(N_LISTS)]
        self.model = [[] for _ in range(N_LISTS)]  # top at index 0
        self.counter = 0

    def _owner(self, bracket):
        for i in range(N_LISTS):
            if bracket in self.model[i]:
                return i
        raise AssertionError("bracket not owned by any model list")

    @rule(i=st.integers(0, N_LISTS - 1))
    def push(self, i):
        bracket = Bracket(self.counter)
        self.counter += 1
        self.real[i].push(bracket)
        self.model[i].insert(0, bracket)

    @rule(i=st.integers(0, N_LISTS - 1), pick=st.integers(0, 10**6))
    def delete(self, i, pick):
        if not self.model[i]:
            return
        bracket = self.model[i][pick % len(self.model[i])]
        self.real[i].delete(bracket)
        self.model[i].remove(bracket)
        assert bracket.cell is None

    @rule(i=st.integers(0, N_LISTS - 1), j=st.integers(0, N_LISTS - 1))
    def concat(self, i, j):
        if i == j:
            return
        result = self.real[i].concat(self.real[j])
        assert result is self.real[i]
        self.model[i] = self.model[i] + self.model[j]
        self.model[j] = []

    @invariant()
    def real_matches_model(self):
        for real, model in zip(self.real, self.model):
            assert real.size == len(model)
            assert len(real) == len(model)
            assert real.to_list() == model
            if model:
                assert real.top() is model[0]


TestBracketListMachine = BracketListMachine.TestCase
TestBracketListMachine.settings = settings(
    max_examples=60, stateful_step_count=50, deadline=None
)


@given(
    upper_n=st.integers(0, 6),
    lower_n=st.integers(1, 6),
    delete_seed=st.integers(0, 2**32 - 1),
)
def test_delete_after_concat_matches_model(upper_n, lower_n, delete_seed):
    """Brackets spliced in by ``concat`` are deletable from any position.

    Empties the merged list in a random order so deletions hit the top,
    the bottom, and cells on both sides of the splice boundary.
    """
    upper, lower = BracketList(), BracketList()
    model = []
    for k in range(upper_n):
        b = Bracket(("u", k))
        upper.push(b)
        model.insert(0, b)
    spliced = []
    for k in range(lower_n):
        b = Bracket(("l", k))
        lower.push(b)
        spliced.insert(0, b)
    model.extend(spliced)

    upper.concat(lower)
    assert lower.size == 0 and lower.to_list() == []
    assert upper.to_list() == model

    order = list(model)
    random.Random(delete_seed).shuffle(order)
    for bracket in order:
        upper.delete(bracket)
        model.remove(bracket)
        assert upper.to_list() == model
        assert upper.size == len(model)
    assert upper.size == 0


@given(sizes=st.lists(st.integers(0, 4), min_size=2, max_size=6))
def test_chained_concat_preserves_stack_order(sizes):
    """Folding many lists with ``concat`` behaves like list concatenation."""
    lists, models = [], []
    tag = 0
    for n in sizes:
        bl, model = BracketList(), []
        for _ in range(n):
            b = Bracket(tag)
            tag += 1
            bl.push(b)
            model.insert(0, b)
        lists.append(bl)
        models.append(model)

    acc, acc_model = lists[0], models[0]
    for bl, model in zip(lists[1:], models[1:]):
        acc.concat(bl)
        acc_model = acc_model + model
        assert bl.size == 0
    assert acc.to_list() == acc_model
    # a push after the fold still lands on top of everything
    newest = Bracket("newest")
    acc.push(newest)
    assert acc.top() is newest
    assert acc.to_list() == [newest] + acc_model
