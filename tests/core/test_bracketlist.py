"""Unit and property tests for the BracketList ADT (§3.5)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bracketlist import Bracket, BracketList


def test_empty_list():
    bl = BracketList()
    assert bl.size == 0
    assert len(bl) == 0
    assert bl.to_list() == []
    with pytest.raises(IndexError):
        bl.top()


def test_push_top_lifo():
    bl = BracketList()
    a, b, c = Bracket("a"), Bracket("b"), Bracket("c")
    bl.push(a)
    assert bl.top() is a
    bl.push(b)
    bl.push(c)
    assert bl.top() is c
    assert bl.to_list() == [c, b, a]
    assert bl.size == 3


def test_double_push_rejected():
    bl = BracketList()
    a = Bracket("a")
    bl.push(a)
    with pytest.raises(ValueError):
        bl.push(a)


def test_delete_from_middle():
    bl = BracketList()
    brackets = [Bracket(i) for i in range(5)]
    for b in brackets:
        bl.push(b)
    bl.delete(brackets[2])
    assert bl.size == 4
    assert brackets[2] not in bl.to_list()
    assert bl.top() is brackets[4]


def test_delete_top_and_bottom():
    bl = BracketList()
    a, b, c = Bracket("a"), Bracket("b"), Bracket("c")
    for x in (a, b, c):
        bl.push(x)
    bl.delete(c)  # top
    assert bl.top() is b
    bl.delete(a)  # bottom
    assert bl.to_list() == [b]


def test_delete_not_present():
    bl = BracketList()
    with pytest.raises(ValueError):
        bl.delete(Bracket("ghost"))


def test_deleted_bracket_can_be_repushed():
    bl = BracketList()
    a = Bracket("a")
    bl.push(a)
    bl.delete(a)
    bl.push(a)
    assert bl.top() is a


def test_concat_keeps_self_on_top():
    upper, lower = BracketList(), BracketList()
    a, b = Bracket("a"), Bracket("b")
    upper.push(a)
    lower.push(b)
    upper.concat(lower)
    assert upper.to_list() == [a, b]
    assert upper.size == 2
    assert lower.size == 0
    assert lower.to_list() == []


def test_concat_into_empty():
    upper, lower = BracketList(), BracketList()
    b = Bracket("b")
    lower.push(b)
    upper.concat(lower)
    assert upper.top() is b


def test_concat_empty_other():
    upper = BracketList()
    upper.push(Bracket("a"))
    upper.concat(BracketList())
    assert upper.size == 1


def test_concat_self_rejected():
    bl = BracketList()
    with pytest.raises(ValueError):
        bl.concat(bl)


def test_delete_after_concat():
    """Deletion must work on brackets that arrived via concat."""
    upper, lower = BracketList(), BracketList()
    a, b, c = Bracket("a"), Bracket("b"), Bracket("c")
    upper.push(a)
    lower.push(b)
    lower.push(c)
    upper.concat(lower)
    upper.delete(b)
    assert upper.to_list() == [a, c]


@given(st.lists(st.tuples(st.sampled_from(["push", "delete"]), st.integers(0, 9)), max_size=60))
def test_model_based(operations):
    """BracketList behaves like a Python list under push/delete/top/size."""
    bl = BracketList()
    model = []  # top at index 0
    pool = {i: Bracket(i) for i in range(10)}
    for op, i in operations:
        bracket = pool[i]
        if op == "push" and bracket.cell is None:
            bl.push(bracket)
            model.insert(0, bracket)
        elif op == "delete" and bracket.cell is not None:
            bl.delete(bracket)
            model.remove(bracket)
        assert bl.size == len(model)
        assert bl.to_list() == model
        if model:
            assert bl.top() is model[0]
