"""Property tests for the PST: containment oracle, tree shape, Theorem 10."""

from hypothesis import given, settings

from repro.cfg.reducibility import is_reducible
from repro.cfg.subgraph import region_subgraph
from repro.cfg.validate import is_valid_cfg
from repro.core.pst import build_pst
from repro.dominance.tree import dominator_tree, postdominator_tree
from tests.conftest import valid_cfgs


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_containment_matches_definition_6(cfg):
    """Node n is in region (a, b) iff a dominates n and b postdominates n."""
    pst = build_pst(cfg)
    split, edge_map = cfg.edge_split()
    dtree = dominator_tree(split)
    pdtree = postdominator_tree(split)
    for region in pst.canonical_regions():
        a = edge_map[region.entry]
        b = edge_map[region.exit]
        inside = set(region.nodes())
        for node in cfg.nodes:
            expected = dtree.dominates(a, node) and pdtree.dominates(b, node)
            assert (node in inside) == expected


@settings(max_examples=150, deadline=None)
@given(valid_cfgs())
def test_tree_shape_invariants(cfg):
    pst = build_pst(cfg)
    # every node has exactly one innermost region
    assert set(pst.region_of_node) == set(cfg.nodes)
    # regions partition the nodes via own_nodes
    seen = []
    for region in pst.regions():
        seen.extend(region.own_nodes)
    assert sorted(seen, key=repr) == sorted(cfg.nodes, key=repr)
    # parent/child links are consistent and acyclic
    for region in pst.canonical_regions():
        assert region in region.parent.children
        assert region.depth == region.parent.depth + 1


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_nesting_theorem_1(cfg):
    """Canonical regions are node disjoint or nested (Theorem 1)."""
    pst = build_pst(cfg)
    regions = pst.canonical_regions()
    node_sets = {r.region_id: set(r.nodes()) for r in regions}
    for i, r1 in enumerate(regions):
        for r2 in regions[i + 1 :]:
            s1, s2 = node_sets[r1.region_id], node_sets[r2.region_id]
            if s1 & s2:
                assert s1 <= s2 or s2 <= s1


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_theorem_10_reducible_regions(cfg):
    """Theorem 10: if G is reducible, all its SESE regions are reducible."""
    if not is_reducible(cfg):
        return
    pst = build_pst(cfg)
    for region in pst.canonical_regions():
        sub, _ = region_subgraph(cfg, region.entry, region.exit, region.nodes())
        assert is_reducible(sub)


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_every_region_extracts_as_valid_cfg(cfg):
    """Each SESE region is a control flow graph in its own right (§6)."""
    pst = build_pst(cfg)
    for region in pst.canonical_regions():
        sub, _ = region_subgraph(cfg, region.entry, region.exit, region.nodes())
        assert is_valid_cfg(sub)


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_collapsed_views_cover_every_edge_once(cfg):
    """Each CFG edge appears at exactly one region level."""
    pst = build_pst(cfg)
    covered = []
    for region in pst.regions():
        covered.extend(pst.level_edges(region))
    assert sorted(covered) == sorted(cfg.edges)


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_collapsed_views_are_valid_cfgs(cfg):
    pst = build_pst(cfg)
    for region in pst.regions():
        sub, _ = pst.collapsed_cfg(region)
        assert is_valid_cfg(sub), region.describe()
