"""Unit tests for the fast cycle-equivalence algorithm on known graphs."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG, InvalidCFGError
from repro.core.cycle_equiv import (
    cycle_equivalence,
    cycle_equivalence_of_cfg,
    cycle_equivalence_scc,
)
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    linear,
    loop_while,
    paper_like_example,
    sequence_of_diamonds,
)


def classes_of(cfg):
    equiv = cycle_equivalence_of_cfg(cfg)
    return {
        frozenset(e.pair for e in edges) for edges in equiv.classes().values()
    }


def test_linear_chain_single_class():
    cfg = linear(3)
    # All edges lie on the single start->end cycle of S.
    assert classes_of(cfg) == {
        frozenset({("start", "n0"), ("n0", "n1"), ("n1", "n2"), ("n2", "end")})
    }


def test_diamond_classes():
    assert classes_of(diamond()) == {
        frozenset({("start", "c"), ("j", "end")}),
        frozenset({("c", "t"), ("t", "j")}),
        frozenset({("c", "f"), ("f", "j")}),
    }


def test_while_loop_classes():
    cfg = loop_while(1)
    got = classes_of(cfg)
    # The body arm (h -> b0 -> h) is its own cycle, hence its own class;
    # the spine lies on every start-to-end cycle of S.
    assert got == {
        frozenset({("h", "b0"), ("b0", "h")}),
        frozenset({("start", "h"), ("h", "x"), ("x", "end")}),
    }


def test_self_loop_is_singleton():
    cfg = cfg_from_edges([("start", "a"), ("a", "a"), ("a", "end")])
    equiv = cycle_equivalence_of_cfg(cfg)
    loop_edge = [e for e in cfg.edges if e.is_self_loop][0]
    cls = equiv.class_of[loop_edge]
    same = [e for e in cfg.edges if equiv.class_of[e] == cls]
    assert same == [loop_edge]


def test_parallel_edges_not_equivalent_to_each_other():
    cfg = cfg_from_edges([("start", "a"), ("a", "end"), ("a", "end")])
    equiv = cycle_equivalence_of_cfg(cfg)
    par = cfg.find_edges("a", "end")
    assert equiv.class_of[par[0]] != equiv.class_of[par[1]]


def test_sequence_of_diamonds_shares_spine_class():
    cfg = sequence_of_diamonds(3)
    equiv = cycle_equivalence_of_cfg(cfg)
    spine = [
        cfg.edge("start", "c0"),
        cfg.edge("j0", "c1"),
        cfg.edge("j1", "c2"),
        cfg.edge("j2", "end"),
    ]
    classes = {equiv.class_of[e] for e in spine}
    assert len(classes) == 1


def test_irreducible_graph_still_works():
    equiv = cycle_equivalence_of_cfg(irreducible_kernel())
    assert len(equiv) == irreducible_kernel().num_edges


def test_paper_like_example_region_count():
    cfg = paper_like_example()
    equiv = cycle_equivalence_of_cfg(cfg)
    # spine edges (always executed) are one class
    spine = [cfg.edge("start", "a"), cfg.edge("e", "i"), cfg.edge("j", "end")]
    assert len({equiv.class_of[e] for e in spine}) == 1


def test_cycle_equivalence_returns_augmentation_edge():
    cfg = diamond()
    equiv, back = cycle_equivalence(cfg)
    assert back.label == "$return$"
    assert back in equiv.class_of
    # the return edge is equivalent to the always-executed spine
    aug_spine_class = equiv.class_of[back]
    spine_pairs = {("start", "c"), ("j", "end")}
    got = {e.pair for e in equiv.classes()[aug_spine_class]} - {("end", "start")}
    assert got == spine_pairs


def test_scc_rejects_disconnected():
    graph = CFG()
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    graph.add_edge("c", "d")
    graph.add_edge("d", "c")
    with pytest.raises(InvalidCFGError, match="not connected"):
        cycle_equivalence_scc(graph)


def test_scc_rejects_bridges():
    graph = CFG()
    graph.add_edge("a", "b")
    graph.add_edge("b", "a")
    graph.add_edge("b", "c")  # bridge: c is a dead end
    graph.add_edge("c", "c")
    with pytest.raises(InvalidCFGError, match="bridge"):
        cycle_equivalence_scc(graph)


def test_invalid_cfg_rejected_by_default():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a")  # a never reaches e
    cfg.add_edge("s", "e")
    cfg.add_edge("a", "a")
    with pytest.raises(InvalidCFGError):
        cycle_equivalence_of_cfg(cfg)


def test_empty_graph():
    assert len(cycle_equivalence_scc(CFG())) == 0


def test_equivalent_helper():
    cfg = diamond()
    equiv = cycle_equivalence_of_cfg(cfg)
    assert equiv.equivalent(cfg.edge("start", "c"), cfg.edge("j", "end"))
    assert not equiv.equivalent(cfg.edge("c", "t"), cfg.edge("c", "f"))
