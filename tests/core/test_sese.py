"""Tests for canonical SESE region discovery against the definition."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.core.sese import canonical_sese_regions
from repro.dominance.tree import dominator_tree, postdominator_tree
from repro.synth.patterns import diamond, linear, loop_while, sequence_of_diamonds
from tests.conftest import valid_cfgs


def region_pairs(cfg):
    return {
        (r.entry.pair, r.exit.pair) for r in canonical_sese_regions(cfg)
    }


def test_linear_regions_are_adjacent_pairs():
    cfg = linear(2)
    assert region_pairs(cfg) == {
        (("start", "n0"), ("n0", "n1")),
        (("n0", "n1"), ("n1", "end")),
    }


def test_diamond_regions():
    assert region_pairs(diamond()) == {
        (("start", "c"), ("j", "end")),
        (("c", "t"), ("t", "j")),
        (("c", "f"), ("f", "j")),
    }


def test_loop_region():
    cfg = loop_while(1)
    pairs = region_pairs(cfg)
    assert (("h", "b0"), ("b0", "h")) in pairs
    assert (("start", "h"), ("h", "x")) in pairs
    assert (("h", "x"), ("x", "end")) in pairs


def test_sequential_composition_shares_edges():
    cfg = sequence_of_diamonds(2)
    pairs = region_pairs(cfg)
    # diamond 0 exits where diamond 1 enters
    assert (("start", "c0"), ("j0", "c1")) in pairs
    assert (("j0", "c1"), ("j1", "end")) in pairs


def test_region_ids_are_sequential():
    regions = canonical_sese_regions(diamond())
    assert [r.region_id for r in regions] == list(range(len(regions)))


def test_entry_exit_unique_per_region():
    cfg = sequence_of_diamonds(3)
    regions = canonical_sese_regions(cfg)
    entries = [r.entry for r in regions]
    exits = [r.exit for r in regions]
    assert len(entries) == len(set(entries))
    assert len(exits) == len(set(exits))


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_regions_satisfy_the_definition(cfg):
    """Definition 3: entry dominates exit, exit postdominates entry, and
    the pair is cycle equivalent (guaranteed by construction; the first two
    conditions are checked against the edge-split dominance oracle)."""
    split, edge_map = cfg.edge_split()
    dtree = dominator_tree(split)
    pdtree = postdominator_tree(split)
    for region in canonical_sese_regions(cfg):
        a = edge_map[region.entry]
        b = edge_map[region.exit]
        assert dtree.dominates(a, b)
        assert pdtree.dominates(b, a)


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_canonicality(cfg):
    """Definition 5: among same-class regions sharing an entry, the exit is
    the dominance-closest; equivalently no two canonical regions share an
    entry or an exit edge."""
    regions = canonical_sese_regions(cfg)
    entries = [r.entry for r in regions]
    exits = [r.exit for r in regions]
    assert len(entries) == len(set(entries))
    assert len(exits) == len(set(exits))


def test_trivial_graph_has_no_regions():
    cfg = cfg_from_edges([("start", "end")])
    assert canonical_sese_regions(cfg) == []
