"""Property tests: the fast algorithm against two independent oracles.

* brute force -- Definition 4 executed literally over all simple cycles
  (small graphs);
* the §3.3 slow algorithm -- full bracket-set comparison per Theorems 4/5
  (larger graphs).

Both comparisons are partition equality, which is exactly what "cycle
equivalence classes" means.
"""

from hypothesis import given, settings

from repro.core.cycle_equiv import cycle_equivalence_scc
from repro.core.cycle_equiv_slow import (
    cycle_equivalence_bracket_sets,
    cycle_equivalence_bruteforce,
    enumerate_simple_cycles,
    same_partition,
)
from tests.conftest import small_valid_cfgs, valid_cfgs


def fast_partition(graph, root):
    return {e: str(c) for e, c in cycle_equivalence_scc(graph, root=root).class_of.items()}


@settings(max_examples=150, deadline=None)
@given(small_valid_cfgs())
def test_fast_matches_bruteforce(cfg):
    augmented, _ = cfg.with_return_edge()
    fast = fast_partition(augmented, cfg.start)
    brute = cycle_equivalence_bruteforce(augmented)
    assert same_partition(fast, brute)


@settings(max_examples=150, deadline=None)
@given(valid_cfgs(max_interior=20, max_extra=18))
def test_fast_matches_bracket_sets(cfg):
    augmented, _ = cfg.with_return_edge()
    fast = fast_partition(augmented, cfg.start)
    slow = cycle_equivalence_bracket_sets(augmented)
    assert same_partition(fast, slow)


@settings(max_examples=60, deadline=None)
@given(small_valid_cfgs())
def test_oracles_agree_with_each_other(cfg):
    augmented, _ = cfg.with_return_edge()
    brute = cycle_equivalence_bruteforce(augmented)
    slow = cycle_equivalence_bracket_sets(augmented)
    assert same_partition(brute, slow)


@settings(max_examples=80, deadline=None)
@given(small_valid_cfgs())
def test_root_choice_does_not_matter(cfg):
    """Cycle equivalence is a property of the graph, not the DFS root."""
    augmented, _ = cfg.with_return_edge()
    a = fast_partition(augmented, cfg.start)
    b = fast_partition(augmented, cfg.end)
    assert same_partition(a, b)


@settings(max_examples=60, deadline=None)
@given(small_valid_cfgs())
def test_every_edge_gets_a_class(cfg):
    augmented, _ = cfg.with_return_edge()
    equiv = cycle_equivalence_scc(augmented, root=cfg.start)
    assert set(equiv.class_of) == set(augmented.edges)


@settings(max_examples=40, deadline=None)
@given(small_valid_cfgs())
def test_brute_force_cycles_are_simple_and_closed(cfg):
    augmented, _ = cfg.with_return_edge()
    for cycle in enumerate_simple_cycles(augmented):
        assert cycle[0].source == cycle[-1].target  # closed
        for a, b in zip(cycle, cycle[1:]):
            assert a.target == b.source  # connected
        nodes = [e.source for e in cycle]
        assert len(nodes) == len(set(nodes))  # node-simple
