"""Divide-and-conquer soundness: a region's PST contains its descendants.

"Each SESE region is a control flow graph in its own right" (§6): when a
canonical region is extracted as a standalone CFG, every region nested
inside it must reappear as a canonical region of the extracted graph --
this is what entitles every PST-based algorithm to recurse into regions
independently.
"""

from hypothesis import given, settings

from repro.cfg.subgraph import region_subgraph
from repro.core.pst import build_pst
from repro.synth.patterns import nested_loops, paper_like_example
from repro.synth.structured import random_lowered_procedure
from tests.conftest import valid_cfgs


def assert_self_similar(cfg):
    pst = build_pst(cfg)
    for region in pst.canonical_regions():
        descendants = region.descendants()
        if not descendants:
            continue
        sub, edge_map = region_subgraph(cfg, region.entry, region.exit, region.nodes())
        sub_pst = build_pst(sub)
        sub_pairs = {
            (r.entry, r.exit) for r in sub_pst.canonical_regions()
        }
        for inner in descendants:
            mapped = (edge_map[inner.entry], edge_map[inner.exit])
            assert mapped in sub_pairs, (region.describe(), inner.describe())


def test_paper_example_self_similar():
    assert_self_similar(paper_like_example())


def test_nested_loops_self_similar():
    assert_self_similar(nested_loops(5))


def test_lowered_procedures_self_similar():
    for seed in range(6):
        proc = random_lowered_procedure(seed, target_statements=50, goto_rate=0.2)
        assert_self_similar(proc.cfg)


@settings(max_examples=60, deadline=None)
@given(valid_cfgs())
def test_random_graphs_self_similar(cfg):
    assert_self_similar(cfg)
