"""Tests for CFG construction helpers."""

import pytest

from repro.cfg.builder import CFGBuilder, cfg_from_edges, linear_chain
from repro.cfg.graph import InvalidCFGError


def test_cfg_from_edges_basic():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    assert cfg.num_nodes == 3
    assert cfg.start == "start" and cfg.end == "end"


def test_cfg_from_edges_with_labels():
    cfg = cfg_from_edges(
        [("start", "a"), ("a", "b", "T"), ("a", "end", "F"), ("b", "end")]
    )
    assert cfg.edge("a", "b").label == "T"
    assert cfg.edge("a", "end").label == "F"


def test_cfg_from_edges_validates():
    with pytest.raises(InvalidCFGError):
        cfg_from_edges([("start", "a"), ("a", "end"), ("b", "b")])


def test_cfg_from_edges_validation_optional():
    cfg = cfg_from_edges([("start", "a")], validate=False)
    assert cfg.num_nodes == 3  # end present but dangling


def test_builder_branch_and_goto():
    builder = CFGBuilder()
    cond = builder.block("cond")
    builder.goto(builder.start, cond)
    arm = builder.block()
    t, f = builder.branch(cond, arm, builder.end)
    builder.goto(arm, builder.end)
    cfg = builder.finish()
    assert t.label == "T" and f.label == "F"
    assert cfg.num_nodes == 4


def test_builder_switch_labels():
    builder = CFGBuilder()
    sw = builder.block("sw")
    builder.goto(builder.start, sw)
    arms = [builder.block() for _ in range(3)]
    edges = builder.switch(sw, arms)
    for arm in arms:
        builder.goto(arm, builder.end)
    cfg = builder.finish()
    assert [e.label for e in edges] == ["0", "1", "2"]
    assert cfg.out_degree(sw) == 3


def test_builder_autonames_are_unique():
    builder = CFGBuilder()
    names = {builder.block() for _ in range(10)}
    assert len(names) == 10


def test_linear_chain():
    cfg = linear_chain(3)
    assert cfg.num_nodes == 5
    assert cfg.num_edges == 4


def test_linear_chain_zero():
    cfg = linear_chain(0)
    assert cfg.num_edges == 1
    assert cfg.edge("start", "end")


def test_linear_chain_negative():
    with pytest.raises(ValueError):
        linear_chain(-1)
