"""Tests for Definition 1 validation."""

import pytest

from repro.cfg.graph import CFG, InvalidCFGError
from repro.cfg.validate import check_cfg, is_valid_cfg, validate_cfg


def valid():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a")
    cfg.add_edge("a", "e")
    return cfg


def test_valid_graph_passes():
    assert is_valid_cfg(valid())
    assert check_cfg(valid()) == []
    validate_cfg(valid())  # no raise


def test_missing_start():
    cfg = CFG()
    cfg.end = cfg.add_node("e")
    problems = check_cfg(cfg)
    assert any("start" in p for p in problems)


def test_missing_end():
    cfg = CFG()
    cfg.start = cfg.add_node("s")
    problems = check_cfg(cfg)
    assert any("end" in p for p in problems)


def test_start_equals_end_rejected():
    cfg = CFG()
    node = cfg.add_node("x")
    cfg.start = cfg.end = node
    assert any("distinct" in p for p in check_cfg(cfg))


def test_start_with_predecessor_rejected():
    cfg = valid()
    cfg.add_edge("a", "s")
    assert any("predecessors" in p for p in check_cfg(cfg))


def test_end_with_successor_rejected():
    cfg = valid()
    cfg.add_edge("e", "a")
    assert any("successors" in p for p in check_cfg(cfg))


def test_unreachable_node_rejected():
    cfg = valid()
    cfg.add_node("island")
    cfg.add_edge("island", "e")
    problems = check_cfg(cfg)
    assert any("unreachable" in p for p in problems)


def test_node_not_reaching_end_rejected():
    cfg = valid()
    cfg.add_edge("a", "trap")
    cfg.add_edge("trap", "trap")
    assert any("cannot reach end" in p for p in check_cfg(cfg))


def test_validate_raises_with_name():
    cfg = CFG(start="s", end="e", name="bad")
    with pytest.raises(InvalidCFGError, match="bad"):
        validate_cfg(cfg)
