"""Unit tests for the CFG multigraph representation."""

import pytest

from repro.cfg.graph import CFG, Edge, InvalidCFGError


def test_add_nodes_and_edges():
    cfg = CFG(start="s", end="e")
    edge = cfg.add_edge("s", "a")
    cfg.add_edge("a", "e")
    assert cfg.num_nodes == 3
    assert cfg.num_edges == 2
    assert edge.source == "s" and edge.target == "a"
    assert cfg.successors("s") == ["a"]
    assert cfg.predecessors("a") == ["s"]


def test_start_end_added_at_construction():
    cfg = CFG(start="s", end="e")
    assert cfg.has_node("s") and cfg.has_node("e")
    assert cfg.in_degree("s") == 0 and cfg.out_degree("e") == 0


def test_parallel_edges_are_distinct_objects():
    cfg = CFG(start="s", end="e")
    e1 = cfg.add_edge("s", "e")
    e2 = cfg.add_edge("s", "e")
    assert e1 is not e2
    assert e1 != e2
    assert cfg.num_edges == 2
    assert len(cfg.find_edges("s", "e")) == 2


def test_self_loop():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a")
    loop = cfg.add_edge("a", "a")
    cfg.add_edge("a", "e")
    assert loop.is_self_loop
    assert cfg.in_degree("a") == 2
    assert cfg.out_degree("a") == 2


def test_edge_lookup_unique():
    cfg = CFG(start="s", end="e")
    edge = cfg.add_edge("s", "e")
    assert cfg.edge("s", "e") is edge
    cfg.add_edge("s", "e")
    with pytest.raises(KeyError):
        cfg.edge("s", "e")  # now ambiguous
    with pytest.raises(KeyError):
        cfg.edge("e", "s")  # absent


def test_remove_edge_and_node():
    cfg = CFG(start="s", end="e")
    e1 = cfg.add_edge("s", "a")
    cfg.add_edge("a", "a")
    cfg.add_edge("a", "e")
    cfg.remove_edge(e1)
    assert cfg.num_edges == 2
    cfg.remove_node("a")
    assert cfg.num_edges == 0
    assert not cfg.has_node("a")


def test_copy_preserves_structure_and_order():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a", "T")
    cfg.add_edge("s", "b", "F")
    cfg.add_edge("a", "e")
    cfg.add_edge("b", "e")
    clone = cfg.copy()
    assert clone.start == "s" and clone.end == "e"
    assert [e.pair for e in clone.edges] == [e.pair for e in cfg.edges]
    assert [e.label for e in clone.edges] == ["T", "F", None, None]
    clone.add_edge("a", "b")
    assert cfg.num_edges == 4  # original untouched


def test_reversed_swaps_everything():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a")
    cfg.add_edge("a", "e")
    rev = cfg.reversed()
    assert rev.start == "e" and rev.end == "s"
    assert sorted(e.pair for e in rev.edges) == [("a", "s"), ("e", "a")]


def test_edge_split_maps_every_edge():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "a")
    cfg.add_edge("a", "e")
    split, mapping = cfg.edge_split()
    assert len(mapping) == 2
    assert split.num_edges == 4
    for edge, mid in mapping.items():
        assert split.find_edges(edge.source, mid)
        assert split.find_edges(mid, edge.target)


def test_with_return_edge():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "e")
    aug, back = cfg.with_return_edge()
    assert back.source == "e" and back.target == "s"
    assert aug.num_edges == cfg.num_edges + 1
    # positional correspondence used by cycle_equivalence_of_cfg
    assert [e.pair for e in aug.edges[:-1]] == [e.pair for e in cfg.edges]


def test_with_return_edge_requires_start_end():
    cfg = CFG()
    cfg.add_edge("a", "b")
    with pytest.raises(InvalidCFGError):
        cfg.with_return_edge()


def test_edge_ordering_by_eid():
    cfg = CFG(start="s", end="e")
    e1 = cfg.add_edge("s", "e")
    e2 = cfg.add_edge("s", "e")
    assert e1 < e2
    assert sorted([e2, e1]) == [e1, e2]


def test_container_protocol():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "e")
    assert "s" in cfg
    assert "nope" not in cfg
    assert set(iter(cfg)) == {"s", "e"}
    assert len(cfg) == 2
