"""Tests for deterministic traversals."""

from hypothesis import given

from repro.cfg.builder import cfg_from_edges
from repro.cfg.traversal import (
    dfs_edges,
    dfs_numbering,
    dfs_postorder,
    dfs_preorder,
    reachable_from,
    reaches,
    reverse_postorder,
)
from tests.conftest import valid_cfgs


def sample_cfg():
    return cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "d"),
            ("c", "d"),
            ("d", "a"),
            ("d", "end"),
        ]
    )


def test_preorder_starts_at_root():
    order = dfs_preorder(sample_cfg())
    assert order[0] == "start"
    assert set(order) == {"start", "a", "b", "c", "d", "end"}


def test_postorder_parent_after_children():
    cfg = sample_cfg()
    order = dfs_postorder(cfg)
    assert order[-1] == "start"
    assert set(order) == set(cfg.nodes)


def test_reverse_postorder_is_topological_on_dags():
    cfg = cfg_from_edges(
        [("start", "a"), ("start", "b"), ("a", "c"), ("b", "c"), ("c", "end")]
    )
    order = reverse_postorder(cfg)
    position = {node: i for i, node in enumerate(order)}
    for edge in cfg.edges:
        assert position[edge.source] < position[edge.target]


def test_dfs_edges_visits_each_edge_once():
    cfg = sample_cfg()
    visited = dfs_edges(cfg)
    assert len(visited) == cfg.num_edges
    assert len(set(visited)) == cfg.num_edges


def test_dfs_edges_deterministic():
    cfg = sample_cfg()
    assert dfs_edges(cfg) == dfs_edges(cfg)


def test_dfs_edges_callback_order():
    cfg = sample_cfg()
    seen = []
    dfs_edges(cfg, on_edge=seen.append)
    assert seen == dfs_edges(cfg)


def test_reachable_and_reaches():
    cfg = sample_cfg()
    assert reachable_from(cfg) == set(cfg.nodes)
    assert reaches(cfg) == set(cfg.nodes)


def test_reaches_partial():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")], validate=False)
    cfg.add_edge("end", "sink")  # node beyond end (invalid CFG, fine here)
    assert "sink" not in reaches(cfg)


def test_dfs_numbering_is_preorder():
    cfg = sample_cfg()
    numbering = dfs_numbering(cfg)
    order = dfs_preorder(cfg)
    assert [numbering[n] for n in order] == list(range(len(order)))


@given(valid_cfgs())
def test_dfs_edge_source_discovered_before_edge(cfg):
    """An edge is visited only after its source is discovered."""
    discovered = {cfg.start}
    for edge in dfs_edges(cfg):
        assert edge.source in discovered
        discovered.add(edge.target)


@given(valid_cfgs())
def test_preorder_covers_all_nodes(cfg):
    assert set(dfs_preorder(cfg)) == set(cfg.nodes)
