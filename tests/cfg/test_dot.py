"""Tests for DOT export."""

from repro.cfg.builder import cfg_from_edges
from repro.cfg.dot import cfg_to_dot, pst_to_dot
from repro.core.pst import build_pst


def test_cfg_dot_contains_nodes_and_edges():
    cfg = cfg_from_edges([("start", "a"), ("a", "end", "T"), ("a", "end", "F")])
    dot = cfg_to_dot(cfg)
    assert dot.startswith("digraph")
    assert '"a"' in dot
    assert '"a" -> "end" [label="T"];' in dot
    assert dot.count('"a" -> "end"') == 2
    assert "doublecircle" in dot  # start/end marked


def test_cfg_dot_escapes_quotes():
    cfg = cfg_from_edges([("start", 'we"ird'), ('we"ird', "end")])
    dot = cfg_to_dot(cfg)
    assert '\\"' in dot


def test_pst_dot_mentions_every_region(paper_cfg):
    pst = build_pst(paper_cfg)
    dot = pst_to_dot(pst)
    for region in pst.canonical_regions():
        assert region.describe() in dot
    # one tree edge per canonical region (each has exactly one parent)
    assert dot.count(" -> ") == len(pst.canonical_regions())
