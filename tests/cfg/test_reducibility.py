"""Tests for T1/T2 reducibility testing."""

from hypothesis import given

from repro.cfg.builder import cfg_from_edges
from repro.cfg.reducibility import is_reducible
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    loop_while,
    nested_loops,
    repeat_until_nest,
)
from repro.synth.structured import random_lowered_procedure
from repro.synth.unstructured import random_dag_cfg
from tests.conftest import valid_cfgs


def test_linear_is_reducible():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    assert is_reducible(cfg)


def test_diamond_is_reducible():
    assert is_reducible(diamond())


def test_while_loop_is_reducible():
    assert is_reducible(loop_while(3))


def test_nested_loops_reducible():
    assert is_reducible(nested_loops(4))


def test_repeat_until_nest_reducible():
    assert is_reducible(repeat_until_nest(5))


def test_self_loop_reducible():
    cfg = cfg_from_edges([("start", "a"), ("a", "a"), ("a", "end")])
    assert is_reducible(cfg)


def test_classic_irreducible_kernel():
    assert not is_reducible(irreducible_kernel())


def test_two_entry_loop_irreducible():
    cfg = cfg_from_edges(
        [
            ("start", "a", "T"),
            ("start", "b", "F"),
            ("a", "b"),
            ("b", "a"),
            ("a", "end"),
        ]
    )
    assert not is_reducible(cfg)


def test_goto_free_lowered_procedures_are_reducible():
    for seed in range(8):
        proc = random_lowered_procedure(seed, target_statements=30, goto_rate=0.0)
        assert is_reducible(proc.cfg), seed


@given(valid_cfgs())
def test_dag_subsets_reducible(cfg):
    """Any graph whose cycles are only self-loops must be reducible."""
    has_nontrivial_cycle = False
    # cheap check: DFS back edges other than self-loops
    from repro.cfg.traversal import dfs_preorder

    order = {n: i for i, n in enumerate(dfs_preorder(cfg))}
    # (approximate: only assert on DAG-with-self-loop graphs)
    for edge in cfg.edges:
        if edge.source != edge.target and order.get(edge.target, 0) <= order.get(edge.source, 0):
            has_nontrivial_cycle = True
            break
    if not has_nontrivial_cycle:
        assert is_reducible(cfg)


def test_random_dags_reducible():
    for seed in range(10):
        assert is_reducible(random_dag_cfg(seed, 15, 10))
