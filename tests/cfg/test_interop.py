"""networkx interop round-trips, plus networkx as a dominance oracle."""

import pytest

networkx = pytest.importorskip("networkx")

from hypothesis import given, settings

from repro.cfg.interop import from_networkx, to_networkx
from repro.cfg.validate import is_valid_cfg
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.synth.patterns import diamond, irreducible_kernel, paper_like_example
from tests.conftest import valid_cfgs


def test_round_trip_preserves_structure():
    cfg = paper_like_example()
    back = from_networkx(to_networkx(cfg))
    assert back.start == cfg.start and back.end == cfg.end
    assert sorted(back.nodes, key=str) == sorted(cfg.nodes, key=str)
    assert sorted(e.pair for e in back.edges) == sorted(e.pair for e in cfg.edges)
    assert is_valid_cfg(back)


def test_labels_survive():
    cfg = diamond()
    back = from_networkx(to_networkx(cfg))
    assert sorted(e.label for e in back.find_edges("c", "t")) == ["T"]


def test_parallel_edges_survive():
    from repro.cfg.builder import cfg_from_edges

    cfg = cfg_from_edges([("start", "a"), ("a", "end"), ("a", "end")])
    back = from_networkx(to_networkx(cfg))
    assert len(back.find_edges("a", "end")) == 2


def test_explicit_start_end_override():
    g = networkx.DiGraph()
    g.add_edge("s", "e")
    cfg = from_networkx(g, start="s", end="e")
    assert is_valid_cfg(cfg)


def _nx_idoms(cfg):
    """networkx idoms normalized to our ``idom[root] == root`` convention."""
    expected = dict(networkx.immediate_dominators(to_networkx(cfg), cfg.start))
    expected[cfg.start] = cfg.start
    return expected


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_networkx_dominators_agree(cfg):
    """networkx.immediate_dominators as a third dominance oracle."""
    expected = _nx_idoms(cfg)
    assert immediate_dominators(cfg) == expected
    assert lengauer_tarjan(cfg) == expected


def test_networkx_dominators_on_irreducible():
    cfg = irreducible_kernel()
    assert immediate_dominators(cfg) == _nx_idoms(cfg)
