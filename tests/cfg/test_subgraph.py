"""Tests for SESE region subgraph extraction."""

import pytest

from repro.cfg.graph import InvalidCFGError
from repro.cfg.subgraph import REGION_END, REGION_START, region_subgraph
from repro.cfg.validate import is_valid_cfg
from repro.core.pst import build_pst
from repro.synth.patterns import paper_like_example
from repro.synth.structured import random_lowered_procedure


def test_extract_diamond_arm(diamond_cfg):
    entry = diamond_cfg.edge("c", "t")
    exit_edge = diamond_cfg.edge("t", "j")
    sub, edge_map = region_subgraph(diamond_cfg, entry, exit_edge, ["t"])
    assert sub.start == REGION_START and sub.end == REGION_END
    assert sub.num_nodes == 3
    assert is_valid_cfg(sub)
    assert edge_map[entry].source == REGION_START
    assert edge_map[exit_edge].target == REGION_END


def test_extract_loop_region(paper_cfg):
    entry = paper_cfg.edge("e", "i")
    exit_edge = paper_cfg.edge("j", "end")
    sub, edge_map = region_subgraph(paper_cfg, entry, exit_edge, ["i", "j"])
    assert is_valid_cfg(sub)
    assert len(sub.find_edges("j", "i")) == 1  # the backedge survives
    assert len(edge_map) == 4


def test_rejects_wrong_interior(paper_cfg):
    entry = paper_cfg.edge("e", "i")
    exit_edge = paper_cfg.edge("j", "end")
    with pytest.raises(InvalidCFGError):
        region_subgraph(paper_cfg, entry, exit_edge, ["i"])  # j missing


def test_rejects_escaping_edge(paper_cfg):
    entry = paper_cfg.edge("a", "b")
    exit_edge = paper_cfg.edge("d", "e")
    # interior {b, d} is correct; now lie about it including h
    with pytest.raises(InvalidCFGError):
        region_subgraph(paper_cfg, entry, exit_edge, ["b", "d", "h"])


def test_every_pst_region_extracts_cleanly():
    proc = random_lowered_procedure(11, target_statements=40)
    pst = build_pst(proc.cfg)
    for region in pst.canonical_regions():
        sub, edge_map = region_subgraph(
            proc.cfg, region.entry, region.exit, region.nodes()
        )
        assert is_valid_cfg(sub)
        assert sub.num_nodes == region.size() + 2
        # every interior edge mapped
        assert edge_map[region.entry].source == REGION_START
        assert edge_map[region.exit].target == REGION_END
