"""Interval partitioning tests + derived-sequence reducibility oracle."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.cfg.intervals import (
    derived_graph,
    derived_sequence,
    interval_partition,
    is_reducible_by_intervals,
)
from repro.cfg.reducibility import is_reducible
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    loop_while,
    nested_loops,
    repeat_until_nest,
)
from tests.conftest import valid_cfgs


def test_linear_graph_single_interval():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")])
    intervals = interval_partition(cfg)
    assert len(intervals) == 1
    assert intervals[0].header == "start"
    assert set(intervals[0].nodes) == set(cfg.nodes)


def test_diamond_single_interval():
    intervals = interval_partition(diamond())
    assert len(intervals) == 1


def test_loop_creates_second_interval():
    cfg = loop_while(1)
    intervals = interval_partition(cfg)
    headers = {interval.header for interval in intervals}
    assert "h" in headers  # the loop header heads its own interval
    assert len(intervals) >= 2


def test_interval_order_preds_first():
    cfg = diamond()
    [interval] = interval_partition(cfg)
    position = {node: i for i, node in enumerate(interval.nodes)}
    for edge in cfg.edges:
        if edge.target != interval.header:
            assert position[edge.source] < position[edge.target]


def test_derived_graph_of_loop():
    cfg = loop_while(1)
    intervals = interval_partition(cfg)
    derived = derived_graph(cfg, intervals)
    assert derived.num_nodes == len(intervals)
    assert derived.start == "start"


def test_derived_sequence_converges_to_one_node_when_reducible():
    for cfg in (diamond(), loop_while(2), nested_loops(4), repeat_until_nest(5)):
        sequence = derived_sequence(cfg)
        assert sequence[-1].num_nodes == 1, cfg.name


def test_irreducible_limit_is_bigger():
    sequence = derived_sequence(irreducible_kernel())
    assert sequence[-1].num_nodes > 1


def test_intervals_partition_all_nodes():
    cfg = nested_loops(3)
    intervals = interval_partition(cfg)
    seen = [node for interval in intervals for node in interval.nodes]
    assert sorted(seen, key=str) == sorted(cfg.nodes, key=str)


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_matches_t1_t2_reducibility(cfg):
    """The derived-sequence criterion equals the T1/T2 criterion."""
    assert is_reducible_by_intervals(cfg) == is_reducible(cfg)


@settings(max_examples=80, deadline=None)
@given(valid_cfgs())
def test_inter_interval_edges_enter_headers(cfg):
    """The defining property: an edge entering an interval enters its header."""
    intervals = interval_partition(cfg)
    interval_of = {}
    for interval in intervals:
        for node in interval.nodes:
            interval_of[node] = interval
    for edge in cfg.edges:
        src, dst = interval_of[edge.source], interval_of[edge.target]
        if src is not dst:
            assert edge.target == dst.header
