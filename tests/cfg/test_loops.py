"""Natural-loop and loop-forest tests."""

from repro.cfg.builder import cfg_from_edges
from repro.cfg.loops import loop_nest_forest, natural_loops
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    loop_while,
    nested_loops,
    repeat_until_nest,
)


def test_acyclic_graph_has_no_loops():
    assert natural_loops(diamond()) == []


def test_while_loop_found():
    cfg = loop_while(2)
    [loop] = natural_loops(cfg)
    assert loop.header == "h"
    assert loop.body == {"h", "b0", "b1"}
    assert loop.latches == ["b1"]


def test_self_loop():
    cfg = cfg_from_edges([("start", "a"), ("a", "a"), ("a", "end")])
    [loop] = natural_loops(cfg)
    assert loop.header == "a"
    assert loop.body == {"a"}


def test_shared_header_loops_merged():
    cfg = cfg_from_edges(
        [
            ("start", "h"),
            ("h", "a", "T"),
            ("h", "b", "F"),
            ("a", "h"),
            ("b", "h"),
            ("h", "x", "2"),
            ("x", "end"),
        ]
    )
    [loop] = natural_loops(cfg)
    assert loop.body == {"h", "a", "b"}
    assert sorted(loop.latches) == ["a", "b"]


def test_nested_loops_forest():
    cfg = nested_loops(3)
    roots = loop_nest_forest(cfg)
    assert len(roots) == 1
    depth = 0
    node = roots[0]
    while node.children:
        assert len(node.children) == 1
        node = node.children[0]
        depth += 1
    assert depth == 2  # three loops, two nested below the root loop


def test_repeat_until_nest_depths():
    cfg = repeat_until_nest(4)
    roots = loop_nest_forest(cfg)
    assert len(roots) == 1
    loops = natural_loops(cfg)
    assert len(loops) == 4
    assert max(l.depth for l in loop_nest_forest_all(cfg)) == 3


def loop_nest_forest_all(cfg):
    roots = loop_nest_forest(cfg)
    out = []
    stack = list(roots)
    while stack:
        loop = stack.pop()
        out.append(loop)
        stack.extend(loop.children)
    return out


def test_irreducible_cycle_has_no_natural_loop():
    # in the two-entry loop neither a nor b dominates the other, so the
    # cycle induces no natural loop at all
    assert natural_loops(irreducible_kernel()) == []


def test_loop_regions_contain_natural_loops():
    """Every natural loop of these reducible graphs sits inside some PST
    region classified as a loop."""
    from repro.core.pst import build_pst
    from repro.core.region_kinds import RegionKind, classify_pst

    for cfg in (loop_while(3), nested_loops(3), repeat_until_nest(3)):
        pst = build_pst(cfg)
        kinds = classify_pst(pst)
        loop_regions = [r for r, k in kinds.items() if k is RegionKind.LOOP]
        for loop in natural_loops(cfg):
            assert any(
                loop.body <= set(region.nodes())
                for region in loop_regions
                if not region.is_root
            ), loop
