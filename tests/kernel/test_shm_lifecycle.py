"""Shared-memory segment lifecycle: no leaked ``/dev/shm`` entries, ever.

Each test asserts the strongest form of "unlinked": re-opening the segment
by name raises ``FileNotFoundError``.  The paths covered are the ones the
batch protocol promises (see :mod:`repro.kernel.shm`):

* normal completion of a parallel ``run_batch``;
* a worker SIGKILLed mid-item (the future resolves broken; the *parent*
  still owns and releases the segment);
* a SIGTERM-drained ``repro serve`` process (the drain flush hook, not
  ``atexit``, does the unlinking -- proven by exiting via ``os._exit``).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.config import AnalysisConfig
from repro.kernel import shm
from repro.kernel.registry import shared_frozen
from repro.resilience.batch import run_batch
from repro.synth.unstructured import random_cfg

pytestmark = pytest.mark.skipif(
    not shm.shared_memory_available(), reason="multiprocessing.shared_memory unavailable"
)


def assert_unlinked(name: str) -> None:
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def corpus(n=4, num_nodes=30):
    return [
        (f"item{i}", (lambda s=i: random_cfg(seed=s, num_nodes=num_nodes, extra_edges=num_nodes // 2)))
        for i in range(n)
    ]


@pytest.fixture
def exported_names(monkeypatch):
    """Record every segment name run_batch exports, without changing behaviour."""
    names = []
    real = shm.export_frozen

    def recording(frozen):
        meta = real(frozen)
        names.append(meta[0])
        return meta

    monkeypatch.setattr(shm, "export_frozen", recording)
    return names


def test_export_attach_release_roundtrip():
    cfg = random_cfg(seed=1, num_nodes=20, extra_edges=10)
    frozen = shared_frozen(cfg)
    meta = shm.export_frozen(frozen)
    assert meta[0] in shm.live_segment_names()
    attached, segment = shm.attach_frozen(meta)
    try:
        assert list(attached.nodes) == list(frozen.node_ids)
        assert attached.num_edges == frozen.num_edges
        assert list(attached._frozen.edge_src) == list(frozen.edge_src)
    finally:
        del attached
        shm.close_attachment(segment)
    shm.release_segment(meta[0])
    assert meta[0] not in shm.live_segment_names()
    assert_unlinked(meta[0])


def test_release_segment_is_idempotent():
    cfg = random_cfg(seed=2, num_nodes=10, extra_edges=4)
    meta = shm.export_frozen(shared_frozen(cfg))
    shm.release_segment(meta[0])
    shm.release_segment(meta[0])  # second release is a no-op, not an error
    assert_unlinked(meta[0])


def test_run_batch_unlinks_every_segment(exported_names):
    report = run_batch(corpus(), config=AnalysisConfig(workers=2, retries=0))
    assert report.ok
    assert len(exported_names) == 4  # the zero-copy path actually ran
    assert shm.live_segment_names() == []
    for name in exported_names:
        assert_unlinked(name)


def test_attach_cache_reuses_one_mapping():
    """Repeat attaches of one segment return the very same CFG shell."""
    cfg = random_cfg(seed=3, num_nodes=25, extra_edges=10)
    meta = shm.export_frozen(shared_frozen(cfg))
    try:
        first = shm.attach_frozen_cached(meta)
        second = shm.attach_frozen_cached(meta)
        assert first is second
        assert list(first.nodes) == list(cfg.nodes)
    finally:
        with shm._ATTACH_LOCK:
            entry = shm._ATTACH_CACHE.pop(meta[0], None)
        if entry is not None:
            del entry
        shm.release_segment(meta[0])
    assert_unlinked(meta[0])


def test_attach_cache_evicts_beyond_max(monkeypatch):
    monkeypatch.setattr(shm, "ATTACH_CACHE_MAX", 2)
    cfgs = [random_cfg(seed=s, num_nodes=10, extra_edges=3) for s in (11, 12, 13)]
    metas = [shm.export_frozen(shared_frozen(cfg)) for cfg in cfgs]  # cfgs held: FrozenCFG is weak
    try:
        for meta in metas:
            shm.attach_frozen_cached(meta)
        with shm._ATTACH_LOCK:
            assert len(shm._ATTACH_CACHE) == 2
            assert metas[0][0] not in shm._ATTACH_CACHE  # oldest evicted
    finally:
        with shm._ATTACH_LOCK:
            for meta in metas:
                shm._ATTACH_CACHE.pop(meta[0], None)
        for meta in metas:
            shm.release_segment(meta[0])


def test_sweep_corpus_exports_one_segment(exported_names):
    """Items resolving to the same frozen snapshot share one segment.

    Release must wait for the *last* consumer: with 6 keys over one graph
    and 2 workers, several in-flight items map the same pages, and the
    segment may only be unlinked once all their futures resolve.
    """
    big = random_cfg(seed=5, num_nodes=60, extra_edges=30)
    corpus = [(f"sweep{i}", (lambda: big)) for i in range(6)]
    report = run_batch(corpus, config=AnalysisConfig(workers=2, retries=0))
    assert report.ok
    assert len(exported_names) == 1
    assert shm.live_segment_names() == []
    assert_unlinked(exported_names[0])


def test_run_batch_cleanup_all_backstop(exported_names):
    """cleanup_all (the drain/atexit hook) sweeps anything still live."""
    cfg = random_cfg(seed=9, num_nodes=12, extra_edges=4)
    meta = shm.export_frozen(shared_frozen(cfg))
    assert shm.cleanup_all() >= 1
    assert shm.live_segment_names() == []
    assert_unlinked(meta[0])


def test_worker_killed_mid_item_still_unlinks(exported_names):
    """SIGKILLing a pool worker must not leak its item's segment.

    The broken future resolves with an exception; the parent's completion
    loop (and its finally sweep) release the segment regardless of the
    worker's fate.  The batch reports the affected items as errors -- the
    lifecycle contract, not the analysis outcome, is under test.
    """
    import multiprocessing
    import threading

    def killer():
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            workers = multiprocessing.active_children()
            if workers:
                os.kill(workers[0].pid, signal.SIGKILL)
                return
            time.sleep(0.01)

    thread = threading.Thread(target=killer, daemon=True)
    thread.start()
    # Large-ish graphs so at least one item is still in flight when the
    # SIGKILL lands; a fully drained pool just makes the test vacuous-ok.
    report = run_batch(corpus(n=6, num_nodes=400), config=AnalysisConfig(workers=2, retries=0))
    thread.join(timeout=10.0)
    assert exported_names, "shm path did not run"
    assert shm.live_segment_names() == []
    for name in exported_names:
        assert_unlinked(name)
    # Every item got *a* result -- crashed ones as errors, the rest ok.
    assert len(report.results) == 6


SERVE_SCRIPT = textwrap.dedent(
    """
    import os, sys
    from repro.kernel import shm
    from repro.kernel.registry import shared_frozen
    from repro.service.server import AnalysisServer, ServiceConfig
    from repro.synth.unstructured import random_cfg

    cfg = random_cfg(seed=1, num_nodes=20, extra_edges=8)  # FrozenCFG holds it weakly
    meta = shm.export_frozen(shared_frozen(cfg))
    server = AnalysisServer(ServiceConfig(port=0))
    server.start()
    print("SEG " + meta[0], flush=True)
    server.serve_forever()  # parks until SIGTERM, then drains + flushes
    print("LIVE " + ",".join(shm.live_segment_names()), flush=True)
    # Skip atexit: if the segment is gone it was the drain hook that did it.
    os._exit(0)
    """
)


def test_sigterm_drain_unlinks_service_segments(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath("src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-c", SERVE_SCRIPT],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline().strip()
        assert line.startswith("SEG "), line
        seg_name = line.split(" ", 1)[1]
        time.sleep(0.2)  # let serve_forever reach its parking loop
        proc.send_signal(signal.SIGTERM)
        out, err = proc.communicate(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 0, err
    assert "LIVE \n" in out + "\n" or out.strip().endswith("LIVE"), out
    assert_unlinked(seg_name)
