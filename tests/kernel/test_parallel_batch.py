"""Parallel batch execution: parity with serial mode, checkpointing, fallback.

These tests exercise the real process pool (workers=2), so corpora are kept
tiny.  Behavioral parity -- same keys, same order, same statuses as the
serial path -- is the contract; wall-clock speedup is only asserted where
the host actually has cores to parallelize over.
"""

from __future__ import annotations

import os

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG
from repro.resilience.batch import (
    _decode_cfg,
    _encode_cfg,
    load_checkpoint,
    run_batch,
)
from tests.resilience.conftest import RecordingSleep


def good_cfg() -> CFG:
    return cfg_from_edges(
        [("start", "a"), ("start", "b"), ("a", "b"), ("b", "a"), ("a", "end"), ("b", "end")]
    )


def bad_cfg() -> CFG:
    cfg = cfg_from_edges([("start", "a"), ("a", "end")], validate=False)
    cfg.add_node("orphan")  # unreachable: fails Definition 1 in the engine
    return cfg


def crasher() -> CFG:
    raise RuntimeError("corpus item exploded")


def corpus():
    return [
        ("good.one", good_cfg),
        ("bad.orphan", bad_cfg),
        ("crash.load", crasher),
        ("good.two", good_cfg),
    ]


def strip(report):
    return [(r.key, r.status, r.paths, r.error) for r in report.results]


def test_encode_decode_roundtrip_preserves_structure():
    cfg = good_cfg()
    cfg.edges[0].label = "T"
    clone = _decode_cfg(_encode_cfg(cfg))
    assert clone.nodes == cfg.nodes
    assert clone.start == cfg.start and clone.end == cfg.end
    assert [(e.source, e.target, e.label) for e in clone.edges] == [
        (e.source, e.target, e.label) for e in cfg.edges
    ]


def test_parallel_matches_serial_in_order_and_status():
    serial = run_batch(corpus(), retries=0)
    parallel = run_batch(corpus(), retries=0, workers=2)
    assert strip(parallel) == strip(serial)
    assert [r.key for r in parallel.results] == [k for k, _ in corpus()]
    statuses = {r.key: r.status for r in parallel.results}
    assert statuses["good.one"] == "ok"
    assert statuses["bad.orphan"] == "failed"
    assert statuses["crash.load"] == "error"
    assert "RuntimeError" in {r.key: r for r in parallel.results}["crash.load"].error


def test_parallel_writes_and_resumes_checkpoint(tmp_path):
    path = str(tmp_path / "batch.jsonl")
    first = run_batch(corpus(), retries=0, workers=2, checkpoint_path=path)
    assert len(load_checkpoint(path)) == len(first.results)
    second = run_batch(corpus(), retries=0, workers=2, checkpoint_path=path)
    assert all(r.resumed for r in second.results)
    assert [r.key for r in second.results] == [k for k, _ in corpus()]


def test_parallel_on_item_sees_every_fresh_result():
    seen = []
    run_batch(corpus(), retries=0, workers=2, on_item=seen.append)
    assert sorted(r.key for r in seen) == sorted(k for k, _ in corpus())


def test_custom_sleep_forces_serial_path_despite_workers():
    # A crasher with retries>0 sleeps between attempts; the recorder only
    # observes those pauses when the serial path runs them in-process.
    recorder = RecordingSleep()
    report = run_batch(
        [("crash", crasher)], retries=2, backoff=0.5, workers=4, sleep=recorder
    )
    assert report.results[0].status == "error"
    assert recorder.calls == [0.5, 1.0]


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs real cores")
def test_parallel_is_faster_on_multicore():
    items = [(f"item.{i}", good_cfg) for i in range(16)]
    serial = run_batch(items, retries=0)
    parallel = run_batch(items, retries=0, workers=4)
    assert parallel.elapsed < serial.elapsed
