"""Parallel batch execution: parity with serial mode, checkpointing, fallback.

These tests exercise the real process pool (workers=2), so corpora are kept
tiny.  Behavioral parity -- same keys, same order, same statuses as the
serial path -- is the contract; wall-clock speedup is only asserted where
the host actually has cores to parallelize over.
"""

from __future__ import annotations

import io
import os
import warnings

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG
from repro.config import AnalysisConfig
from repro.obs.observer import Observer
from repro.obs.schema import validate_trace
from repro.obs.trace import read_jsonl
from repro.resilience.batch import (
    BatchSerialFallback,
    _decode_cfg,
    _encode_cfg,
    load_checkpoint,
    run_batch,
)
from tests.resilience.conftest import RecordingSleep


def good_cfg() -> CFG:
    return cfg_from_edges(
        [("start", "a"), ("start", "b"), ("a", "b"), ("b", "a"), ("a", "end"), ("b", "end")]
    )


def bad_cfg() -> CFG:
    cfg = cfg_from_edges([("start", "a"), ("a", "end")], validate=False)
    cfg.add_node("orphan")  # unreachable: fails Definition 1 in the engine
    return cfg


def crasher() -> CFG:
    raise RuntimeError("corpus item exploded")


def corpus():
    return [
        ("good.one", good_cfg),
        ("bad.orphan", bad_cfg),
        ("crash.load", crasher),
        ("good.two", good_cfg),
    ]


def strip(report):
    return [(r.key, r.status, r.paths, r.error) for r in report.results]


def test_encode_decode_roundtrip_preserves_structure():
    cfg = good_cfg()
    cfg.edges[0].label = "T"
    clone = _decode_cfg(_encode_cfg(cfg))
    assert clone.nodes == cfg.nodes
    assert clone.start == cfg.start and clone.end == cfg.end
    assert [(e.source, e.target, e.label) for e in clone.edges] == [
        (e.source, e.target, e.label) for e in cfg.edges
    ]


def test_parallel_matches_serial_in_order_and_status():
    serial = run_batch(corpus(), retries=0)
    parallel = run_batch(corpus(), retries=0, workers=2)
    assert strip(parallel) == strip(serial)
    assert [r.key for r in parallel.results] == [k for k, _ in corpus()]
    statuses = {r.key: r.status for r in parallel.results}
    assert statuses["good.one"] == "ok"
    assert statuses["bad.orphan"] == "failed"
    assert statuses["crash.load"] == "error"
    assert "RuntimeError" in {r.key: r for r in parallel.results}["crash.load"].error


def test_parallel_writes_and_resumes_checkpoint(tmp_path):
    path = str(tmp_path / "batch.jsonl")
    first = run_batch(corpus(), retries=0, workers=2, checkpoint_path=path)
    assert len(load_checkpoint(path)) == len(first.results)
    second = run_batch(corpus(), retries=0, workers=2, checkpoint_path=path)
    assert all(r.resumed for r in second.results)
    assert [r.key for r in second.results] == [k for k, _ in corpus()]


def test_parallel_on_item_sees_every_fresh_result():
    seen = []
    run_batch(corpus(), retries=0, workers=2, on_item=seen.append)
    assert sorted(r.key for r in seen) == sorted(k for k, _ in corpus())


def test_custom_sleep_forces_serial_path_despite_workers():
    # A crasher with retries>0 sleeps between attempts; the recorder only
    # observes those pauses when the serial path runs them in-process.
    # The downgrade is no longer silent: a BatchSerialFallback names why.
    recorder = RecordingSleep()
    with pytest.warns(BatchSerialFallback) as caught:
        report = run_batch(
            [("crash", crasher)], retries=2, backoff=0.5, workers=4, sleep=recorder
        )
    assert report.results[0].status == "error"
    assert recorder.calls == [0.5, 1.0]
    fallback = [w.message for w in caught if isinstance(w.message, BatchSerialFallback)]
    assert len(fallback) == 1
    assert fallback[0].workers == 4
    assert fallback[0].reasons == ("custom sleep callable",)


def diamond_cfg() -> CFG:
    return cfg_from_edges(
        [("start", "l"), ("start", "r"), ("l", "join"), ("r", "join"), ("join", "end")]
    )


def merge_corpus():
    """Structurally *distinct* good CFGs plus one engine failure.

    Distinct shapes matter: identical structures hit the in-process frozen
    session cache on a serial run (fewer freeze spans) but not across
    worker processes, which would make span-for-span parity unfair.
    """
    return [
        ("good.loop", good_cfg),
        ("good.diamond", diamond_cfg),
        ("bad.orphan", bad_cfg),
    ]


def _batch_trace(workers: int):
    """Run merge_corpus under a full observer; return (report, records, observer)."""
    observer = Observer()
    report = run_batch(
        merge_corpus(),
        config=AnalysisConfig(retries=0, workers=workers, observer=observer),
    )
    buffer = io.StringIO()
    observer.write_jsonl(buffer)
    return report, read_jsonl(buffer.getvalue().splitlines()), observer


def spans_named(records, name):
    return [r for r in records if r["type"] == "span" and r["name"] == name]


def test_observer_no_longer_forces_serial_and_merge_matches_serial():
    serial_report, serial_records, serial_obs = _batch_trace(workers=1)
    with warnings.catch_warnings():
        # An observer-carrying config must take the parallel path silently.
        warnings.simplefilter("error", BatchSerialFallback)
        parallel_report, parallel_records, parallel_obs = _batch_trace(workers=2)
    assert strip(parallel_report) == strip(serial_report)
    # The merged trace passes the schema + structural validator...
    assert validate_trace(parallel_records) == []
    # ...with one item span per corpus entry that reached the engine, same
    # as serial.  (Full span-multiset parity would be cache-dependent: cold
    # worker processes re-freeze structures a warm serial process reuses.)
    assert len(spans_named(parallel_records, "run_analysis")) == len(
        spans_named(serial_records, "run_analysis")
    ) == len(merge_corpus())
    # And the engine-ladder and batch counters merge to the same totals
    # the serial registry accumulates in-process.
    for family in ("engine.attempts", "engine.retries", "batch.items"):
        assert parallel_obs.metrics.counts_matching(
            family
        ) == serial_obs.metrics.counts_matching(family)


def test_parallel_worker_spans_stitch_under_the_batch_span():
    _, records, _ = _batch_trace(workers=2)
    spans = [r for r in records if r["type"] == "span"]
    batch_spans = [s for s in spans if s["name"] == "run_batch"]
    assert len(batch_spans) == 1
    assert batch_spans[0]["attrs"]["parallel"] is True
    roots = [s for s in spans if s["name"] == "run_analysis"]
    assert roots  # the engine ran in workers, yet its spans are here
    for root in roots:
        assert root["parent"] == batch_spans[0]["span"]
        assert root["attrs"]["item"] in {k for k, _ in merge_corpus()}
        assert isinstance(root["attrs"]["worker_pid"], int)
    # Worker shards really were recorded out-of-process.
    assert any(s["attrs"]["worker_pid"] != os.getpid() for s in roots)


def test_parallel_histograms_merge_counts_across_shards():
    _, _, observer = _batch_trace(workers=2)
    histograms = observer.metrics.snapshot()["histograms"]
    # All three items (the two good CFGs and the invalid one) reach
    # run_analysis, each timed inside its worker's shard.
    assert histograms["engine.run_seconds"]["count"] == len(merge_corpus())


@pytest.mark.skipif((os.cpu_count() or 1) < 4, reason="needs real cores")
def test_parallel_is_faster_on_multicore():
    items = [(f"item.{i}", good_cfg) for i in range(16)]
    serial = run_batch(items, retries=0)
    parallel = run_batch(items, retries=0, workers=4)
    assert parallel.elapsed < serial.elapsed
