"""Deterministic kernel-vs-reference spot checks on multigraph edge cases.

The fuzz campaign (``repro.fuzz`` with the ``kernel/reference`` oracle)
covers breadth; these pin the shapes CSR encodings historically get wrong
-- parallel edges, self-loops, back edges -- with exact-id equality, so a
regression fails loudly in the unit suite rather than only under fuzzing.
"""

from __future__ import annotations

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG, InvalidCFGError
from repro.controldep.regions_fast import control_regions, control_regions_reference
from repro.core.cycle_equiv import (
    cycle_equivalence_of_cfg,
    cycle_equivalence_of_cfg_reference,
)
from repro.core.pst import build_pst, build_pst_reference
from repro.dominance.lengauer_tarjan import lengauer_tarjan, lengauer_tarjan_reference


def loopy_multigraph() -> CFG:
    """Parallel edges, a self-loop, and a back edge in one graph."""
    cfg = CFG(start="start", end="end", name="loopy")
    cfg.add_edge("start", "a")
    cfg.add_edge("a", "b", "T")
    cfg.add_edge("a", "b", "F")  # parallel
    cfg.add_edge("b", "b")  # self-loop
    cfg.add_edge("b", "a")  # back edge
    cfg.add_edge("b", "end")
    return cfg


CASES = [
    pytest.param(
        cfg_from_edges(
            [("start", "a"), ("start", "b"), ("a", "end"), ("b", "end")]
        ),
        id="diamond",
    ),
    pytest.param(
        cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")]), id="chain"
    ),
    pytest.param(loopy_multigraph(), id="loopy-multigraph"),
]


@pytest.mark.parametrize("cfg", CASES)
def test_cycle_equivalence_ids_match_exactly(cfg):
    kernel = cycle_equivalence_of_cfg(cfg)
    reference = cycle_equivalence_of_cfg_reference(cfg)
    # Identical class ids per edge, not merely the same partition.
    assert kernel.class_of == reference.class_of


@pytest.mark.parametrize("cfg", CASES)
def test_dominators_match(cfg):
    assert lengauer_tarjan(cfg) == lengauer_tarjan_reference(cfg)


@pytest.mark.parametrize("cfg", CASES)
def test_pst_structure_matches(cfg):
    def signature(pst):
        out, stack = [], [pst.root]
        while stack:
            region = stack.pop()
            out.append(
                (
                    region.depth,
                    region.entry.eid if region.entry else None,
                    region.exit.eid if region.exit else None,
                    tuple(region.own_nodes),
                )
            )
            stack.extend(reversed(region.children))
        return out

    assert signature(build_pst(cfg)) == signature(build_pst_reference(cfg))


@pytest.mark.parametrize("cfg", CASES)
def test_control_regions_match(cfg):
    assert control_regions(cfg) == control_regions_reference(cfg)


def test_kernel_and_reference_agree_on_rejection():
    cfg = CFG(name="no-roots")
    cfg.add_edge("a", "b")
    with pytest.raises(InvalidCFGError):
        cycle_equivalence_of_cfg(cfg)
    with pytest.raises(InvalidCFGError):
        cycle_equivalence_of_cfg_reference(cfg)
