"""FrozenCFG CSR encoding: multigraph edge cases, staleness, snapshot caches."""

from __future__ import annotations

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.kernel.csr import freeze
from repro.kernel.registry import shared_frozen


def diamond() -> CFG:
    return cfg_from_edges(
        [("start", "a"), ("start", "b"), ("a", "end"), ("b", "end")]
    )


def multigraph() -> CFG:
    """Parallel edges and a self-loop, the shapes CSR must not collapse."""
    cfg = CFG(start="start", end="end", name="multi")
    cfg.add_edge("start", "a", "T")
    cfg.add_edge("start", "a", "F")  # parallel to the edge above
    cfg.add_edge("a", "a")  # self-loop
    cfg.add_edge("a", "end")
    return cfg


def test_edge_arrays_are_positional():
    cfg = multigraph()
    frozen = freeze(cfg)
    assert frozen.num_nodes == len(cfg.nodes)
    assert frozen.num_edges == len(cfg.edges)
    for e, edge in enumerate(cfg.edges):
        assert frozen.node_ids[frozen.edge_src[e]] == edge.source
        assert frozen.node_ids[frozen.edge_dst[e]] == edge.target


def test_parallel_edges_stay_distinct():
    cfg = multigraph()
    frozen = freeze(cfg)
    start = frozen.index_of["start"]
    row = frozen.out_edge_indices(start)
    # Two distinct edge indices with equal endpoints, in insertion order.
    assert row == [0, 1]
    assert frozen.edge_src[0] == frozen.edge_src[1]
    assert frozen.edge_dst[0] == frozen.edge_dst[1]
    assert cfg.edges[0].label == "T" and cfg.edges[1].label == "F"


def test_self_loop_in_both_rows_and_self_loops_list():
    cfg = multigraph()
    frozen = freeze(cfg)
    a = frozen.index_of["a"]
    loop = next(
        e for e in range(frozen.num_edges)
        if frozen.edge_src[e] == a and frozen.edge_dst[e] == a
    )
    assert frozen.self_loops == [loop]
    assert loop in frozen.out_edge_indices(a)
    assert loop in frozen.in_edge_indices(a)


def test_csr_rows_partition_all_edges():
    cfg = multigraph()
    frozen = freeze(cfg)
    out_all = [
        e for v in range(frozen.num_nodes) for e in frozen.out_edge_indices(v)
    ]
    in_all = [
        e for v in range(frozen.num_nodes) for e in frozen.in_edge_indices(v)
    ]
    assert sorted(out_all) == list(range(frozen.num_edges))
    assert sorted(in_all) == list(range(frozen.num_edges))
    # Flat neighbor arrays mirror the edge rows.
    assert frozen.succ_dst == [frozen.edge_dst[e] for e in frozen.succ_edge]
    assert frozen.pred_src == [frozen.edge_src[e] for e in frozen.pred_edge]


def test_missing_start_end_encode_as_minus_one():
    cfg = CFG(name="bare")
    cfg.add_edge("a", "b")
    frozen = freeze(cfg)
    assert frozen.start == -1
    assert frozen.end == -1


def test_staleness_and_shared_snapshot_identity():
    cfg = diamond()
    frozen = shared_frozen(cfg)
    assert not frozen.is_stale()
    assert shared_frozen(cfg) is frozen  # same version -> same snapshot
    cfg.add_edge("a", "b")
    assert frozen.is_stale()
    refrozen = shared_frozen(cfg)
    assert refrozen is not frozen
    assert not refrozen.is_stale()
    assert refrozen.num_edges == frozen.num_edges + 1


def test_validation_is_memoized_per_snapshot():
    cfg = diamond()
    frozen = shared_frozen(cfg)
    assert frozen.validated is False
    cycle_equivalence_of_cfg(cfg)  # validate=True marks the snapshot
    assert frozen.validated is True
    cfg.add_edge("b", "a")  # mutation -> fresh, unvalidated snapshot
    assert shared_frozen(cfg).validated is False


def test_undirected_csr_cached_per_virtual_edge_tuple():
    cfg = diamond()
    cycle_equivalence_of_cfg(cfg)
    frozen = shared_frozen(cfg)
    assert len(frozen.undirected) == 1
    (key, cached) = next(iter(frozen.undirected.items()))
    assert key == ((frozen.end, frozen.start),)
    cycle_equivalence_of_cfg(cfg)
    assert frozen.undirected[key] is cached  # reused, not rebuilt
