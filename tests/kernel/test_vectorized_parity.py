"""Vectorized-tier selection and exact three-way parity spot checks.

The fuzz campaign (``repro fuzz`` with the ``backend/three-way`` oracle)
covers breadth; these pin the dispatch mechanics -- backend resolution
order, the ``REPRO_NO_NUMPY`` degradation, config validation -- and a few
deterministic kernel-vs-vectorized-vs-reference equalities so a tier
divergence fails loudly in the unit suite.  Everything here runs with or
without NumPy installed: without it the vectorized tier resolves to the
array kernels, and the parity assertions collapse to (still meaningful)
kernel-vs-reference checks.
"""

from __future__ import annotations

import pytest

from repro.config import AnalysisConfig
from repro.controldep.regions_fast import control_regions, control_regions_reference
from repro.core.cycle_equiv import (
    cycle_equivalence_of_cfg,
    cycle_equivalence_of_cfg_reference,
)
from repro.dataflow.iterative import solve_iterative, solve_iterative_reference
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
)
from repro.dominance.iterative import (
    immediate_dominators,
    immediate_dominators_reference,
)
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.kernel import backend
from repro.kernel.backend import resolve_backend, use_backend
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.synth.structured import random_lowered_procedure
from repro.synth.unstructured import random_cfg

HAS_NUMPY = backend.numpy_or_none() is not None


# ----------------------------------------------------------------------
# backend selection
# ----------------------------------------------------------------------

def test_auto_resolves_by_numpy_presence():
    expected = "vectorized" if HAS_NUMPY else "kernel"
    with use_backend("auto"):
        assert resolve_backend() == expected
    with use_backend(None):
        assert resolve_backend() == expected


def test_explicit_kernel_always_wins():
    with use_backend("kernel"):
        assert resolve_backend() == "kernel"


def test_env_variable_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "kernel")
    assert resolve_backend() == "kernel"
    monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
    # Unknown env spellings fall back to auto rather than erroring.
    assert resolve_backend() == ("vectorized" if HAS_NUMPY else "kernel")


def test_override_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "vectorized")
    with use_backend("kernel"):
        assert resolve_backend() == "kernel"


def test_no_numpy_degrades_even_explicit_vectorized(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    with use_backend("vectorized"):
        assert resolve_backend() == "kernel"
    monkeypatch.delenv("REPRO_NO_NUMPY")
    # Module-level HAS_NUMPY was probed under the *outer* environment,
    # which may itself set the kill switch (the no-NumPy CI leg does);
    # with the variable gone the real probe is the only valid expectation.
    numpy_present = backend.numpy_or_none() is not None
    with use_backend("vectorized"):
        assert resolve_backend() == ("vectorized" if numpy_present else "kernel")


def test_use_backend_rejects_unknown_names():
    with pytest.raises(ValueError):
        with use_backend("gpu"):
            pass  # pragma: no cover


def test_config_validates_backend():
    assert AnalysisConfig(backend="vectorized").backend == "vectorized"
    with pytest.raises(ValueError):
        AnalysisConfig(backend="bogus")


# ----------------------------------------------------------------------
# exact parity: kernel tier vs vectorized tier vs reference
# ----------------------------------------------------------------------

SEEDS = (0, 3, 7, 12, 21)


def _cfg(seed):
    return random_cfg(seed=seed, num_nodes=30, extra_edges=18)


@pytest.mark.parametrize("seed", SEEDS)
def test_cycle_equivalence_three_way_exact(seed):
    cfg = _cfg(seed)
    with use_backend("kernel"):
        kernel = cycle_equivalence_of_cfg(cfg).class_of
    with use_backend("vectorized"):
        vectorized = cycle_equivalence_of_cfg(cfg).class_of
        again = cycle_equivalence_of_cfg(cfg).class_of  # cached-skeleton path
    reference = cycle_equivalence_of_cfg_reference(cfg).class_of
    assert kernel == vectorized == again == reference


@pytest.mark.parametrize("seed", SEEDS)
def test_control_regions_three_way_exact(seed):
    cfg = _cfg(seed)
    with use_backend("kernel"):
        kernel = control_regions(cfg)
    with use_backend("vectorized"):
        vectorized = control_regions(cfg)
    assert kernel == vectorized == control_regions_reference(cfg)


@pytest.mark.parametrize("seed", SEEDS)
def test_dominators_three_way_exact(seed):
    cfg = _cfg(seed)
    with use_backend("kernel"):
        kernel = immediate_dominators(cfg)
    with use_backend("vectorized"):
        vectorized = immediate_dominators(cfg)
    reference = immediate_dominators_reference(cfg)
    assert kernel == vectorized == reference
    # Different algorithm, same tree: the LT kernel (with its vectorized
    # DFS-cache assist active under the vectorized tier) must agree too.
    with use_backend("vectorized"):
        assert lengauer_tarjan(cfg) == reference
        assert lengauer_tarjan(cfg) == reference  # cached lt_dfs path


@pytest.mark.parametrize("seed", (1, 5, 9))
def test_dataflow_three_way_exact(seed):
    proc = random_lowered_procedure(seed=seed, target_statements=40, goto_rate=0.1)
    for problem_cls in (ReachingDefinitions, LiveVariables, AvailableExpressions):
        problem = problem_cls(proc)
        with use_backend("kernel"):
            kernel = solve_iterative(proc.cfg, problem)
        with use_backend("vectorized"):
            vectorized = solve_iterative(proc.cfg, problem)
        reference = solve_iterative_reference(proc.cfg, problem)
        assert kernel == vectorized == reference


@pytest.mark.skipif(not HAS_NUMPY, reason="vectorized solver needs NumPy")
def test_dataflow_dispatch_reports_vectorized():
    proc = random_lowered_procedure(seed=2, target_statements=30)
    observer = Observer(trace=False)
    with _obs.observe(observer), use_backend("vectorized"):
        solve_iterative(proc.cfg, ReachingDefinitions(proc))
    counts = observer.metrics.counts_matching("dispatch")
    assert counts.get("dispatch{component=solve_iterative,impl=vectorized}") == 1.0


def test_dataflow_dispatch_reports_kernel_when_forced():
    proc = random_lowered_procedure(seed=2, target_statements=30)
    observer = Observer(trace=False)
    with _obs.observe(observer), use_backend("kernel"):
        solve_iterative(proc.cfg, ReachingDefinitions(proc))
    counts = observer.metrics.counts_matching("dispatch")
    assert counts.get("dispatch{component=solve_iterative,impl=kernel}") == 1.0


def test_fallback_dispatch_without_numpy(monkeypatch):
    """REPRO_NO_NUMPY proves the degraded path end to end: the vectorized
    request must run (not crash) and produce the kernel tier's answers."""
    cfg = _cfg(4)
    with use_backend("kernel"):
        expected = immediate_dominators(cfg)
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    observer = Observer(trace=False)
    with _obs.observe(observer), use_backend("vectorized"):
        proc = random_lowered_procedure(seed=2, target_statements=30)
        solve_iterative(proc.cfg, ReachingDefinitions(proc))
        assert immediate_dominators(cfg) == expected
    counts = observer.metrics.counts_matching("dispatch")
    assert "dispatch{component=solve_iterative,impl=vectorized}" not in counts
    assert counts.get("dispatch{component=solve_iterative,impl=kernel}") == 1.0


def test_run_analysis_applies_config_backend():
    from repro.resilience.engine import run_analysis

    cfg = _cfg(6)
    auto = run_analysis(cfg, config=AnalysisConfig())
    forced = run_analysis(cfg, config=AnalysisConfig(backend="kernel"))
    vect = run_analysis(cfg, config=AnalysisConfig(backend="vectorized"))
    assert auto.ok and forced.ok and vect.ok
    assert auto.idom == forced.idom == vect.idom
    assert auto.control_regions == forced.control_regions == vect.control_regions
