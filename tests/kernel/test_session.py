"""AnalysisSession memoization: hits/misses, invalidation, registry identity."""

from __future__ import annotations

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG
from repro.core.pst import build_pst_reference
from repro.dominance.lengauer_tarjan import lengauer_tarjan_reference
from repro.kernel.session import AnalysisSession, session_for


def diamond() -> CFG:
    return cfg_from_edges(
        [("start", "a"), ("start", "b"), ("a", "end"), ("b", "end")]
    )


def pst_signature(pst):
    """Preorder (depth, entry eid, exit eid, own_nodes) tuples."""
    out = []
    stack = [pst.root]
    while stack:
        region = stack.pop()
        out.append(
            (
                region.depth,
                region.entry.eid if region.entry is not None else None,
                region.exit.eid if region.exit is not None else None,
                tuple(region.own_nodes),
            )
        )
        stack.extend(reversed(region.children))
    return out


def test_pst_computed_once_then_served_from_cache():
    session = AnalysisSession(diamond())
    first = session.pst()
    # First call misses twice: the PST itself and its equiv prerequisite.
    assert session.cache_info() == {"hits": 0, "misses": 2, "size": 2, "stale": 0}
    assert session.pst() is first
    assert session.cache_info()["hits"] == 1


def test_validate_spellings_share_one_equiv_slot():
    session = AnalysisSession(diamond())
    equiv = session.cycle_equivalence(validate=True)
    assert session.cycle_equivalence(validate=False) is equiv
    assert session.cache_info() == {"hits": 1, "misses": 1, "size": 1, "stale": 0}


def test_mutation_invalidates_transparently():
    cfg = diamond()
    session = AnalysisSession(cfg)
    before = session.pst()
    cfg.add_edge("a", "b")
    after = session.pst()
    assert after is not before
    assert session.cache_info()["misses"] == 4  # both artifacts recomputed


def test_explicit_invalidate_drops_artifacts():
    session = AnalysisSession(diamond())
    session.dominators()
    assert session.cache_info()["size"] == 1
    session.invalidate()
    assert session.cache_info()["size"] == 0
    session.dominators()
    assert session.cache_info()["misses"] == 2


def test_session_for_is_per_cfg_identity():
    cfg, other = diamond(), diamond()
    session = session_for(cfg)
    assert session_for(cfg) is session
    assert session_for(other) is not session
    assert session.cfg is cfg


def test_cached_artifacts_match_references():
    cfg = cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "d"),
            ("c", "d"),
            ("d", "a"),  # back edge
            ("d", "end"),
        ]
    )
    session = AnalysisSession(cfg)
    assert session.dominators() == lengauer_tarjan_reference(cfg)
    assert pst_signature(session.pst()) == pst_signature(build_pst_reference(cfg))
    assert session.sese_regions() == session.pst().canonical_regions()


def test_postdominators_on_diamond():
    session = AnalysisSession(diamond())
    pdom = session.postdominators()
    assert pdom["start"] == "end"  # neither branch alone postdominates
    assert pdom["a"] == "end"
    assert pdom["b"] == "end"
    assert pdom["end"] == "end"  # idom[root] == root, same as dominators
