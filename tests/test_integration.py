"""End-to-end integration tests across the whole library."""

from repro import build_pst, cycle_equivalence_of_cfg
from repro.controldep import control_regions, control_regions_by_definition
from repro.core.region_kinds import classify_pst
from repro.dataflow import (
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
    solve_elimination,
    solve_iterative,
    solve_qpg,
)
from repro.dominance import pst_immediate_dominators
from repro.dominance.iterative import immediate_dominators
from repro.lang import lower_program, parse_program
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import place_phis_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.verify import verify_ssa
from repro.synth.corpus import all_procedures, standard_corpus

SOURCE = """
proc saxpy(n, a) {
    i = 0;
    s = 0;
    while (i < n) {
        t = a * i;
        if (t > 100) {
            s = s + t;
        } else {
            s = s - t;
        }
        i = i + 1;
    }
    return s;
}

proc tricky(n) {
    if (n > 0) { goto inner; }
    while (n < 64) {
        inner:
        n = n * 2;
    }
    repeat { n = n - 3; } until (n < 10);
    return n;
}
"""


def test_full_pipeline_on_source():
    procs = lower_program(parse_program(SOURCE))
    assert [p.name for p in procs] == ["saxpy", "tricky"]
    for proc in procs:
        pst = build_pst(proc.cfg)
        # PST-based algorithms agree with their global baselines
        assert pst_immediate_dominators(proc.cfg, pst) == immediate_dominators(proc.cfg)
        assert place_phis_pst(proc, pst).phi_blocks == phi_blocks_cytron(proc)
        ssa = construct_ssa(proc)
        assert verify_ssa(ssa) == []
        for problem in (ReachingDefinitions(proc), LiveVariables(proc)):
            baseline = solve_iterative(proc.cfg, problem)
            assert solve_elimination(proc.cfg, problem, pst) == baseline
            assert solve_qpg(proc.cfg, problem, pst).solution == baseline
        assert control_regions(proc.cfg) == control_regions_by_definition(proc.cfg)


def test_corpus_smoke_all_analyses():
    """Every analysis over a slice of the real corpus, consistency-checked."""
    procs = all_procedures(standard_corpus(scale=0.05))
    assert procs
    for proc in procs:
        pst = build_pst(proc.cfg)
        equiv = cycle_equivalence_of_cfg(proc.cfg)
        assert len(equiv) == proc.cfg.num_edges
        kinds = classify_pst(pst)
        assert len(kinds) == len(pst.canonical_regions()) + 1
        assert pst_immediate_dominators(proc.cfg, pst) == immediate_dominators(proc.cfg)
        assert verify_ssa(construct_ssa(proc)) == []
        var = proc.variables()[0]
        problem = VariableReachingDefs(proc, var)
        assert solve_qpg(proc.cfg, problem, pst).solution == solve_iterative(proc.cfg, problem)


def test_readme_quickstart_snippet():
    """The code shown in the README must actually run."""
    from repro import cfg_from_edges

    g = cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "d"),
            ("c", "d"),
            ("d", "end"),
        ]
    )
    pst = build_pst(g)
    described = [r.describe() for r in pst.canonical_regions()]
    assert len(described) == 3
