"""Tests for the iterative worklist solver on hand-checkable graphs."""

from repro.cfg.builder import cfg_from_edges
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import LiveVariables, ReachingDefinitions
from repro.ir import Assign, LoweredProcedure, Ret


def test_reaching_defs_diamond():
    cfg = cfg_from_edges(
        [
            ("start", "c"),
            ("c", "t", "T"),
            ("c", "f", "F"),
            ("t", "j"),
            ("f", "j"),
            ("j", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("x", (), "1"))
    proc.blocks["f"].append(Assign("x", (), "2"))
    solution = solve_iterative(cfg, ReachingDefinitions(proc))
    assert solution.before["j"] == {("x", "t", 0), ("x", "f", 0)}
    assert solution.after["t"] == {("x", "t", 0)}
    assert solution.before["t"] == frozenset()


def test_reaching_defs_loop_fixpoint():
    cfg = cfg_from_edges(
        [("start", "h"), ("h", "b", "T"), ("b", "h"), ("h", "x", "F"), ("x", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["start"].append(Assign("i", (), "0"))
    proc.blocks["b"].append(Assign("i", ("i",), "i+1"))
    solution = solve_iterative(cfg, ReachingDefinitions(proc))
    # both the initial and the loop-carried definition reach the header
    assert solution.before["h"] == {("i", "start", 0), ("i", "b", 0)}
    assert solution.before["x"] == {("i", "start", 0), ("i", "b", 0)}


def test_liveness_backward():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["a"].append(Assign("dead", (), "2"))
    proc.blocks["b"].append(Ret(("x",)))
    solution = solve_iterative(cfg, LiveVariables(proc))
    # program-order semantics: before = live-in, after = live-out
    assert "x" in solution.after["a"]
    assert "dead" not in solution.after["b"]
    assert "x" not in solution.before["a"]  # defined there, not upward exposed
    assert solution.before["b"] == {"x"}


def test_liveness_through_loop():
    cfg = cfg_from_edges(
        [("start", "h"), ("h", "b", "T"), ("b", "h"), ("h", "x", "F"), ("x", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b"].append(Assign("s", ("s", "i"), "s+i"))
    proc.blocks["x"].append(Ret(("s",)))
    solution = solve_iterative(cfg, LiveVariables(proc))
    assert {"s", "i"} <= solution.before["h"]
    assert "i" not in solution.before["x"]


def test_parallel_edges_harmless():
    cfg = cfg_from_edges([("start", "a"), ("a", "end"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    solution = solve_iterative(cfg, ReachingDefinitions(proc))
    assert solution.before["end"] == {("x", "a", 0)}
