"""Constant propagation tests (incl. QPG sparsity for a non-gen/kill problem)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.constprop import (
    NAC,
    ConstantPropagation,
    constant_value,
    evaluate_expression,
    state_dict,
)
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.qpg import solve_qpg
from repro.lang import astnodes as ast
from repro.lang import lower_program, parse_program
from repro.synth.structured import random_lowered_procedure


def lower(source):
    [proc] = lower_program(parse_program(source))
    return proc


def solve(source):
    proc = lower(source)
    return proc, solve_iterative(proc.cfg, ConstantPropagation(proc))


def test_straightline_folding():
    proc, solution = solve("proc f() { x = 2; y = x * 3 + 1; return y; }")
    at_end = solution.before[proc.cfg.end]
    assert constant_value(at_end, "x") == 2
    assert constant_value(at_end, "y") == 7


def test_branch_merge_same_constant():
    proc, solution = solve(
        "proc f(a) { if (a > 0) { x = 5; } else { x = 5; } return x; }"
    )
    assert constant_value(solution.before[proc.cfg.end], "x") == 5


def test_branch_merge_different_constants_is_nac():
    proc, solution = solve(
        "proc f(a) { if (a > 0) { x = 1; } else { x = 2; } return x; }"
    )
    state = state_dict(solution.before[proc.cfg.end])
    assert state["x"] is NAC


def test_parameters_are_nac():
    proc, solution = solve("proc f(a) { x = a + 1; return x; }")
    state = state_dict(solution.before[proc.cfg.end])
    assert state["a"] is NAC
    assert state["x"] is NAC


def test_loop_invariant_constant_survives():
    proc, solution = solve(
        "proc f(n) { c = 7; i = 0; while (i < n) { i = i + c; } return i; }"
    )
    at_end = solution.before[proc.cfg.end]
    assert constant_value(at_end, "c") == 7
    assert state_dict(at_end)["i"] is NAC  # loop-varying


def test_loop_modified_constant_becomes_nac():
    proc, solution = solve(
        "proc f(n) { c = 1; while (c < n) { c = c * 2; } return c; }"
    )
    assert state_dict(solution.before[proc.cfg.end])["c"] is NAC


def test_division_by_zero_folds_to_zero():
    # MiniLang defines x/0 == 0 (see repro.interp); folding must agree.
    proc, solution = solve("proc f() { z = 0; x = 5 / z; return x; }")
    assert constant_value(solution.before[proc.cfg.end], "x") == 0


def test_calls_are_opaque():
    proc, solution = solve("proc f() { x = g(1); return x; }")
    assert state_dict(solution.before[proc.cfg.end])["x"] is NAC


def test_evaluate_expression_operators():
    state = {"a": 6, "b": 2}
    cases = [
        ("+", 8), ("-", 4), ("*", 12), ("/", 3), ("%", 0),
        ("<", 0), ("<=", 0), (">", 1), (">=", 1), ("==", 0), ("!=", 1),
        ("&&", 1), ("||", 1),
    ]
    for op, expected in cases:
        expr = ast.BinOp(op, ast.Var("a"), ast.Var("b"))
        assert evaluate_expression(expr, state) == expected, op


def test_evaluate_with_undef_operand_is_nac():
    expr = ast.BinOp("+", ast.Var("ghost"), ast.Num(1))
    assert evaluate_expression(expr, {}) is NAC


def test_plain_int_text_without_expr():
    from repro.cfg.builder import cfg_from_edges
    from repro.ir import Assign, LoweredProcedure

    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "41"))
    solution = solve_iterative(cfg, ConstantPropagation(proc))
    assert constant_value(solution.before["end"], "x") == 41


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 3000), st.sampled_from([20, 50]))
def test_qpg_matches_iterative(seed, size):
    """Constant propagation through the sparse QPG solver (§6.2 applies to
    any problem with identity regions, not just bit-vector ones)."""
    proc = random_lowered_procedure(seed, target_statements=size)
    problem = ConstantPropagation(proc)
    assert solve_qpg(proc.cfg, problem).solution == solve_iterative(proc.cfg, problem)


def test_qpg_self_assignment_in_a_loop_matches_iterative():
    """Regression (seed 278): a block holding ``v2 = v2`` sits in a loop
    whose transparent neighbours the QPG bypasses.  Transfer functions that
    are non-monotone at top (an UNDEF read evaluates to NAC) must not have
    their ``transfer(top)`` seed leak into a successor's first meet, or the
    collapsed graph computes a spuriously NAC value the full CFG does not.
    """
    proc = random_lowered_procedure(278, target_statements=20)
    problem = ConstantPropagation(proc)
    result = solve_qpg(proc.cfg, problem)
    assert result.bypassed_regions > 0
    assert result.solution == solve_iterative(proc.cfg, problem)
    assert constant_value(result.solution.before["b3"], "v2") == 89


def test_constants_actually_found_in_random_programs():
    found = 0
    for seed in range(10):
        proc = random_lowered_procedure(seed, target_statements=40)
        solution = solve_iterative(proc.cfg, ConstantPropagation(proc))
        at_end = solution.before[proc.cfg.end]
        found += sum(1 for _, v in at_end if isinstance(v, int))
    assert found > 0
