"""Incremental PST dataflow: correctness vs full re-solve, and locality."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.core.pst import build_pst
from repro.dataflow.incremental import IncrementalDataflow
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import LiveVariables, ReachingDefinitions
from repro.ir import Assign, LoweredProcedure, Ret
from repro.synth.patterns import sequence_of_diamonds
from repro.synth.structured import random_lowered_procedure


def test_initial_solution_matches_iterative():
    proc = random_lowered_procedure(31, target_statements=60)
    problem = ReachingDefinitions(proc)
    engine = IncrementalDataflow(proc.cfg, problem)
    assert engine.solution() == solve_iterative(proc.cfg, problem)


def test_update_matches_full_resolve():
    cfg = sequence_of_diamonds(4)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    proc.blocks["t2"].append(Assign("y", ("x",), "x"))
    proc.blocks["j3"].append(Ret(("y",)))
    problem = LiveVariables(proc)
    engine = IncrementalDataflow(cfg, problem)

    # edit: t2's sole use of x disappears, so x goes dead from t0 to t2
    proc.blocks["t2"][0] = Assign("y", (), "0")
    new_problem = LiveVariables(proc)
    changed = engine.update(["t2"], new_problem)
    assert engine.solution() == solve_iterative(cfg, new_problem)
    assert changed  # x's liveness between t0 and t2 flipped
    for node in changed:
        assert "x" not in engine.before[node] or "x" not in engine.after[node]


def test_update_reports_no_change_for_equivalent_edit():
    cfg = sequence_of_diamonds(3)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    problem = ReachingDefinitions(proc)
    engine = IncrementalDataflow(cfg, problem)
    # "edit" that leaves gen/kill identical
    changed = engine.update(["t0"], ReachingDefinitions(proc))
    assert changed == set()


def test_locality_of_recomputation():
    """An edit deep in one diamond must not re-solve sibling diamonds."""
    cfg = sequence_of_diamonds(8)
    proc = LoweredProcedure("p", cfg)
    for i in range(8):
        proc.blocks[f"t{i}"].append(Assign("x", (), str(i)))
    problem = ReachingDefinitions(proc)
    engine = IncrementalDataflow(cfg, problem)
    pst = build_pst(cfg)
    total_regions = len(pst.canonical_regions()) + 1

    # an externally invisible edit (x still defined in t3, same site id)
    proc.blocks["t3"][0] = Assign("x", (), "99")
    changed = engine.update(["t3"], ReachingDefinitions(proc))
    assert engine.solution() == solve_iterative(cfg, ReachingDefinitions(proc))
    assert changed == set()  # same def site, so same reaching-def facts
    assert engine.last_regions_resolved <= 3
    assert engine.last_regions_resolved < total_regions / 2


def test_visible_edit_propagates_downstream_only():
    cfg = sequence_of_diamonds(6)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t1"].append(Assign("x", (), "1"))
    proc.blocks["t4"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    engine = IncrementalDataflow(cfg, problem)

    # remove the definition in t1 entirely
    proc.blocks["t1"].clear()
    # note: universe shrinks -> engine must refuse the cheap path
    with pytest.raises(ValueError, match="universe"):
        engine.update(["t1"], ReachingDefinitions(proc))


def test_visible_edit_with_stable_universe():
    """A liveness edit that changes facts far upstream of the edited block."""
    cfg = sequence_of_diamonds(6)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    proc.blocks["t5"].append(Assign("z", ("x",), "x"))
    problem = LiveVariables(proc)
    engine = IncrementalDataflow(cfg, problem)
    assert "x" in engine.before["c3"]  # live through the middle diamonds

    # the use of x moves to a reference of z instead; x still in the
    # universe via its definition in t0
    proc.blocks["t5"][0] = Assign("z", ("z",), "z")
    new_problem = LiveVariables(proc)
    changed = engine.update(["t5"], new_problem)
    assert engine.solution() == solve_iterative(cfg, new_problem)
    assert "x" not in engine.before["c3"]
    assert "c3" in changed


def test_random_program_random_edits():
    proc = random_lowered_procedure(77, target_statements=120)
    problem = LiveVariables(proc)
    engine = IncrementalDataflow(proc.cfg, problem)
    # pick blocks with >= 2 statements and swap their first two statements
    edited = []
    for block in proc.cfg.nodes:
        statements = proc.blocks.get(block, [])
        if len(statements) >= 2:
            statements[0], statements[1] = statements[1], statements[0]
            edited.append(block)
        if len(edited) == 4:
            break
    new_problem = LiveVariables(proc)
    engine.update(edited, new_problem)
    assert engine.solution() == solve_iterative(proc.cfg, new_problem)


def test_multiple_updates_in_sequence():
    cfg = sequence_of_diamonds(4)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    proc.blocks["t2"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    engine = IncrementalDataflow(cfg, problem)
    for block in ("t0", "t2", "t0"):
        # no-op edits interleaved with checks keep the caches honest
        engine.update([block], ReachingDefinitions(proc))
        assert engine.solution() == solve_iterative(cfg, ReachingDefinitions(proc))
