"""Structure-based region processing vs the iterative baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pst import build_pst
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
)
from repro.dataflow.structural import (
    StructuralSolver,
    apply_function,
    compose,
    identity_function,
    meet_functions,
    solve_structural,
)
from repro.lang import lower_program, parse_program
from repro.synth.structured import random_lowered_procedure


def test_compose_algebra():
    universe = frozenset(range(6))
    f1 = (frozenset({1}), frozenset({2, 3}))
    f2 = (frozenset({4}), frozenset({1, 2}))
    composed = compose(f2, f1)
    for x in (frozenset(), frozenset({2}), frozenset({3, 5}), universe):
        assert apply_function(composed, x) == apply_function(f2, apply_function(f1, x))


def test_meet_union_algebra():
    universe = frozenset(range(5))
    f1 = (frozenset({1}), frozenset({2}))
    f2 = (frozenset({3}), frozenset({2, 4}))
    met = meet_functions([f1, f2], union_meet=True, universe=universe)
    for x in (frozenset(), frozenset({2, 4}), universe):
        assert apply_function(met, x) == apply_function(f1, x) | apply_function(f2, x)


def test_meet_intersection_algebra():
    universe = frozenset(range(5))
    f1 = (frozenset({1}), frozenset({2}))
    f2 = (frozenset({1, 2}), frozenset({4}))
    met = meet_functions([f1, f2], union_meet=False, universe=universe)
    for x in (frozenset(), frozenset({2, 4}), universe):
        assert apply_function(met, x) == apply_function(f1, x) & apply_function(f2, x)


def test_identity():
    universe = frozenset(range(4))
    ident = identity_function(universe)
    assert apply_function(ident, frozenset({1, 2})) == frozenset({1, 2})


def test_structured_source_uses_closed_forms():
    source = """
    proc f(a, b) {
        x = a + b;
        if (x > 0) { y = 1; } else { y = 2; x = x - 1; }
        z = x + y;
        if (z > 5) { z = 5; }
        return z;
    }
    """
    [proc] = lower_program(parse_program(source))
    problem = ReachingDefinitions(proc)
    solver = StructuralSolver(proc.cfg, problem)
    solution = solver.solve()
    assert solution == solve_iterative(proc.cfg, problem)
    assert solver.closed_form_regions > 0
    assert solver.iterative_regions == 0  # fully structured, acyclic


def test_loops_fall_back_to_iteration():
    source = "proc f(n) { i = 0; while (i < n) { i = i + 1; } return i; }"
    [proc] = lower_program(parse_program(source))
    problem = ReachingDefinitions(proc)
    solver = StructuralSolver(proc.cfg, problem)
    solution = solver.solve()
    assert solution == solve_iterative(proc.cfg, problem)
    assert solver.iterative_regions > 0  # the loop region


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 4000), st.sampled_from([15, 45]), st.sampled_from([0.0, 0.25]))
def test_matches_iterative_on_random_programs(seed, size, goto_rate):
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    pst = build_pst(proc.cfg)
    for make in (ReachingDefinitions, LiveVariables, AvailableExpressions):
        problem = make(proc)
        assert solve_structural(proc.cfg, problem, pst) == solve_iterative(proc.cfg, problem)


def test_mostly_closed_form_on_structured_corpus():
    proc = random_lowered_procedure(3, target_statements=150, goto_rate=0.0)
    solver = StructuralSolver(proc.cfg, ReachingDefinitions(proc))
    solver.solve()
    total = solver.closed_form_regions + solver.iterative_regions
    assert solver.closed_form_regions > total / 2
