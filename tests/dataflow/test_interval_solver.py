"""Interval elimination vs the iterative baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import cfg_from_edges
from repro.dataflow.interval_solver import solve_interval
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
)
from repro.ir import Assign, LoweredProcedure, Ret
from repro.synth.patterns import irreducible_kernel, nested_loops, repeat_until_nest
from repro.synth.structured import random_lowered_procedure


def test_reaching_defs_through_loop():
    cfg = cfg_from_edges(
        [("start", "h"), ("h", "b", "T"), ("b", "h"), ("h", "x", "F"), ("x", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["start"].append(Assign("i", (), "0"))
    proc.blocks["b"].append(Assign("i", ("i",), "i+1"))
    problem = ReachingDefinitions(proc)
    assert solve_interval(cfg, problem) == solve_iterative(cfg, problem)


def test_nested_loops_closure():
    cfg = nested_loops(4)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["body"].append(Assign("x", ("x",), "x+1"))
    proc.blocks["x"].append(Ret(("x",)))
    problem = ReachingDefinitions(proc)
    assert solve_interval(cfg, problem) == solve_iterative(cfg, problem)


def test_repeat_until_nest():
    cfg = repeat_until_nest(6)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b0"].append(Assign("x", (), "1"))
    proc.blocks["b5"].append(Assign("x", ("x",), "x+1"))
    problem = ReachingDefinitions(proc)
    assert solve_interval(cfg, problem) == solve_iterative(cfg, problem)


def test_irreducible_hybrid_fallback():
    cfg = irreducible_kernel()
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["b"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    assert solve_interval(cfg, problem) == solve_iterative(cfg, problem)


def test_backward_liveness():
    cfg = nested_loops(2)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["body"].append(Assign("s", ("s", "i"), "s+i"))
    proc.blocks["x"].append(Ret(("s",)))
    problem = LiveVariables(proc)
    assert solve_interval(cfg, problem) == solve_iterative(cfg, problem)


def test_must_problems_rejected():
    proc = random_lowered_procedure(1, target_statements=10)
    with pytest.raises(ValueError, match="union-meet"):
        solve_interval(proc.cfg, AvailableExpressions(proc))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 4000), st.sampled_from([15, 45]), st.sampled_from([0.0, 0.25]))
def test_matches_iterative_on_random_programs(seed, size, goto_rate):
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    for make in (ReachingDefinitions, LiveVariables):
        problem = make(proc)
        assert solve_interval(proc.cfg, problem) == solve_iterative(proc.cfg, problem)
    var = proc.variables()[0]
    problem = VariableReachingDefs(proc, var)
    assert solve_interval(proc.cfg, problem) == solve_iterative(proc.cfg, problem)
