"""Quick propagation graph tests: structure, solution equality, sparsity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import cfg_from_edges
from repro.core.pst import build_pst
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
)
from repro.dataflow.qpg import build_qpg, solve_qpg
from repro.ir import Assign, LoweredProcedure
from repro.synth.patterns import sequence_of_diamonds
from repro.synth.structured import random_lowered_procedure


def test_transparent_diamonds_bypassed():
    """Only the first diamond touches x; the rest must be bypassed."""
    cfg = sequence_of_diamonds(4)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    problem = VariableReachingDefs(proc, "x")
    qpg, chains, bypassed = build_qpg(cfg, problem)
    assert len(bypassed) >= 3  # diamonds 1..3 are transparent
    assert qpg.num_nodes < cfg.num_nodes / 2
    # the solution still covers every node and matches the baseline
    result = solve_qpg(cfg, problem)
    assert result.solution == solve_iterative(cfg, problem)
    assert set(result.solution.before) == set(cfg.nodes)


def test_qpg_chain_edges_annotated():
    cfg = sequence_of_diamonds(3)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    qpg, chains, _ = build_qpg(cfg, VariableReachingDefs(proc, "x"))
    # every QPG edge maps to an original (first, last) pair
    for qpg_edge, (first, last) in chains.items():
        assert qpg_edge.source == first.source
        assert qpg_edge.target == last.target


def test_all_identity_problem_collapses_to_spine():
    cfg = sequence_of_diamonds(5)
    proc = LoweredProcedure("p", cfg)  # no statements at all
    problem = VariableReachingDefs(proc, "ghost")
    qpg, _, bypassed = build_qpg(cfg, problem)
    assert qpg.num_nodes <= 4  # start, end and at most trivial residue
    result = solve_qpg(cfg, problem)
    assert result.solution == solve_iterative(cfg, problem)


def test_dense_problem_keeps_whole_graph():
    cfg = sequence_of_diamonds(2)
    proc = LoweredProcedure("p", cfg)
    for node in cfg.nodes:
        proc.blocks[node].append(Assign("x", (), "1"))
    problem = VariableReachingDefs(proc, "x")
    qpg, _, bypassed = build_qpg(cfg, problem)
    assert bypassed == set()
    assert qpg.num_nodes == cfg.num_nodes


def test_size_ratio_helper():
    cfg = sequence_of_diamonds(4)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    result = solve_qpg(cfg, VariableReachingDefs(proc, "x"))
    assert 0 < result.size_ratio(cfg) < 1
    assert result.qpg_edges >= 1


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5000), st.sampled_from([20, 50]), st.sampled_from([0.0, 0.25]))
def test_qpg_equals_iterative_on_random_programs(seed, size, goto_rate):
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    pst = build_pst(proc.cfg)
    for problem in (
        ReachingDefinitions(proc),
        LiveVariables(proc),
        AvailableExpressions(proc),
    ):
        assert solve_qpg(proc.cfg, problem, pst).solution == solve_iterative(proc.cfg, problem)
    for var in proc.variables()[:3]:
        problem = VariableReachingDefs(proc, var)
        assert solve_qpg(proc.cfg, problem, pst).solution == solve_iterative(proc.cfg, problem)


def test_backward_problem_projection():
    """Liveness (backward) through a transparent region."""
    cfg = sequence_of_diamonds(3)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    proc.blocks["j2"].append(Assign("y", ("x",), "x"))
    problem = LiveVariables(proc)
    result = solve_qpg(cfg, problem)
    assert result.solution == solve_iterative(cfg, problem)
    # x is live through the middle (transparent) diamond
    assert "x" in result.solution.before["c1"]
