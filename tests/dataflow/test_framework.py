"""Tests for the dataflow framework plumbing."""

import pytest

from repro.dataflow.framework import DataflowProblem, GenKillProblem, Solution


class ToyGenKill(GenKillProblem):
    def __init__(self, gen_map, kill_map, universe, union=True):
        self._g, self._k, self._u = gen_map, kill_map, universe
        self.meet_is_union = union

    def universe(self):
        return self._u

    def gen(self, node):
        return self._g.get(node, frozenset())

    def kill(self, node):
        return self._k.get(node, frozenset())


def test_transfer_is_gen_union_minus_kill():
    problem = ToyGenKill({"n": frozenset({1})}, {"n": frozenset({2})}, frozenset({1, 2, 3}))
    assert problem.transfer("n", frozenset({2, 3})) == frozenset({1, 3})


def test_identity_detection():
    problem = ToyGenKill({"n": frozenset({1})}, {}, frozenset({1}))
    assert not problem.is_identity("n")
    assert problem.is_identity("other")


def test_union_meet_and_top():
    problem = ToyGenKill({}, {}, frozenset({1, 2}))
    assert problem.top() == frozenset()
    assert problem.meet(frozenset({1}), frozenset({2})) == frozenset({1, 2})


def test_intersection_meet_and_top():
    problem = ToyGenKill({}, {}, frozenset({1, 2}), union=False)
    assert problem.top() == frozenset({1, 2})
    assert problem.meet(frozenset({1}), frozenset({1, 2})) == frozenset({1})


def test_boundary_is_empty_set():
    problem = ToyGenKill({}, {}, frozenset({1}))
    assert problem.boundary() == frozenset()


def test_solution_equality():
    a = Solution({"n": frozenset()}, {"n": frozenset({1})})
    b = Solution({"n": frozenset()}, {"n": frozenset({1})})
    c = Solution({"n": frozenset({9})}, {"n": frozenset({1})})
    assert a == b
    assert a != c
    assert a != "not a solution"


def test_abstract_problem_raises():
    problem = DataflowProblem()
    with pytest.raises(NotImplementedError):
        problem.boundary()
    with pytest.raises(NotImplementedError):
        problem.top()
    with pytest.raises(NotImplementedError):
        problem.meet(None, None)
    with pytest.raises(NotImplementedError):
        problem.transfer("n", None)
    assert problem.is_identity("n") is False
