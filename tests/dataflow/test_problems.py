"""Tests for the concrete dataflow problems' gen/kill construction."""

from repro.cfg.builder import cfg_from_edges
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
)
from repro.ir import Assign, Branch, LoweredProcedure


def straightline_proc():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["a"].append(Assign("y", ("x",), "x"))
    proc.blocks["b"].append(Assign("x", ("y",), "y"))
    return proc


def test_reaching_defs_gen_kill():
    proc = straightline_proc()
    problem = ReachingDefinitions(proc)
    assert problem.gen("a") == {("x", "a", 0), ("y", "a", 1)}
    assert problem.kill("a") == {("x", "b", 0)}
    assert problem.gen("b") == {("x", "b", 0)}
    assert problem.kill("b") == {("x", "a", 0)}
    assert problem.is_identity("start")
    assert not problem.is_identity("a")


def test_reaching_defs_last_def_wins_within_block():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["a"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    assert problem.gen("a") == {("x", "a", 1)}
    assert ("x", "a", 0) in problem.kill("a")


def test_live_variables_gen_kill():
    proc = straightline_proc()
    problem = LiveVariables(proc)
    # in block a: x is defined before its use -> not upward exposed
    assert problem.gen("a") == frozenset()
    assert problem.kill("a") == {"x", "y"}
    assert problem.gen("b") == {"y"}
    assert problem.kill("b") == {"x"}


def test_live_variables_branch_uses_are_exposed():
    cfg = cfg_from_edges([("start", "a"), ("a", "end", "T"), ("a", "end", "F")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Branch(("c",), "c"))
    problem = LiveVariables(proc)
    assert problem.gen("a") == {"c"}


def test_available_expressions_gen_and_kill():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("t", ("b", "c"), "(b + c)"))
    proc.blocks["a"].append(Assign("b", (), "1"))
    problem = AvailableExpressions(proc)
    # (b + c) is computed but then b is redefined -> killed, not generated
    assert "(b + c)" not in problem.gen("a")
    assert "(b + c)" in problem.kill("a")
    assert problem.meet_is_union is False
    assert problem.top() == problem.universe()


def test_available_expression_self_kill():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", ("x",), "(x + 1)"))
    problem = AvailableExpressions(proc)
    assert "(x + 1)" not in problem.gen("a")


def test_variable_reaching_defs_identity_blocks():
    proc = straightline_proc()
    problem = VariableReachingDefs(proc, "y")
    assert problem.is_identity("b")  # b touches x, not y
    assert not problem.is_identity("a")
    assert problem.gen("a") == {"a"}
    assert problem.kill("a") == frozenset()  # only one def block of y


def test_variable_reaching_defs_kill_other_sites():
    proc = straightline_proc()
    problem = VariableReachingDefs(proc, "x")
    assert problem.gen("a") == {"a"}
    assert problem.kill("a") == {"b"}
    assert problem.universe() == {"a", "b"}
