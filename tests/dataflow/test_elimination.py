"""PST elimination solver vs the iterative baseline."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import cfg_from_edges
from repro.core.pst import build_pst
from repro.dataflow.elimination import solve_elimination
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
)
from repro.ir import Assign, LoweredProcedure
from repro.synth.patterns import irreducible_kernel, nested_loops, repeat_until_nest
from repro.synth.structured import random_lowered_procedure


def test_simple_diamond():
    cfg = cfg_from_edges(
        [("start", "c"), ("c", "t", "T"), ("c", "f", "F"), ("t", "j"), ("f", "j"), ("j", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("x", (), "1"))
    proc.blocks["f"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    assert solve_elimination(cfg, problem) == solve_iterative(cfg, problem)


def test_loop_summary_fixpoint():
    cfg = nested_loops(3)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["body"].append(Assign("i", ("i",), "i+1"))
    problem = ReachingDefinitions(proc)
    assert solve_elimination(cfg, problem) == solve_iterative(cfg, problem)


def test_repeat_until_nest():
    cfg = repeat_until_nest(6)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b3"].append(Assign("x", (), "1"))
    proc.blocks["c2"].append(Assign("x", ("x",), "x+1"))
    problem = ReachingDefinitions(proc)
    assert solve_elimination(cfg, problem) == solve_iterative(cfg, problem)


def test_irreducible_region_falls_back_to_iteration():
    cfg = irreducible_kernel()
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["b"].append(Assign("x", (), "2"))
    problem = ReachingDefinitions(proc)
    assert solve_elimination(cfg, problem) == solve_iterative(cfg, problem)


def test_backward_problem():
    cfg = nested_loops(2)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["body"].append(Assign("s", ("s",), "s+1"))
    problem = LiveVariables(proc)
    assert solve_elimination(cfg, problem) == solve_iterative(cfg, problem)


def test_must_problem():
    cfg = cfg_from_edges(
        [("start", "c"), ("c", "t", "T"), ("c", "f", "F"), ("t", "j"), ("f", "j"), ("j", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("u", ("a", "b"), "(a + b)"))
    proc.blocks["f"].append(Assign("v", ("a", "b"), "(a + b)"))
    proc.blocks["j"].append(Assign("w", ("a", "c"), "(a + c)"))
    problem = AvailableExpressions(proc)
    solution = solve_elimination(cfg, problem)
    assert solution == solve_iterative(cfg, problem)
    # (a + b) is computed on both arms -> available at j's entry
    assert "(a + b)" in solution.before["j"]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 5000), st.sampled_from([15, 45]), st.sampled_from([0.0, 0.25]))
def test_matches_iterative_on_random_programs(seed, size, goto_rate):
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    pst = build_pst(proc.cfg)
    for problem in (
        ReachingDefinitions(proc),
        LiveVariables(proc),
        AvailableExpressions(proc),
    ):
        assert solve_elimination(proc.cfg, problem, pst) == solve_iterative(proc.cfg, problem)
    for var in proc.variables()[:2]:
        problem = VariableReachingDefs(proc, var)
        assert solve_elimination(proc.cfg, problem, pst) == solve_iterative(proc.cfg, problem)
