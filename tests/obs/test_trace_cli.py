"""`repro trace`: record, validate (--check), and render traces."""

import io
import json

import pytest

from repro.cli import main

SOURCE = """
proc f(n) {
    s = 0;
    while (s < n) {
        if (n > 10) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(SOURCE)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_record_synth_to_file_then_check(tmp_path):
    trace_path = str(tmp_path / "trace.jsonl")
    code, _ = run(["trace", "--synth-seed", "7", "--synth-size", "60",
                   "--out", trace_path])
    assert code == 0
    records = [json.loads(line) for line in open(trace_path)]
    assert records[0]["type"] == "trace"
    assert any(r["type"] == "span" and r["name"] == "run_analysis" for r in records)

    code, text = run(["trace", "--check", trace_path])
    assert code == 0
    assert "valid" in text


def test_record_source_file_to_stdout(source_file):
    code, text = run(["trace", source_file])
    assert code == 0
    records = [json.loads(line) for line in text.splitlines()]
    assert {r["type"] for r in records} >= {"trace", "span", "metrics"}


def test_render_shows_the_span_tree(source_file):
    code, text = run(["trace", source_file, "--render"])
    assert code == 0
    assert "run_analysis" in text
    assert "stage:pst" in text
    assert "counter dispatch{" in text


def test_profile_attaches_phase_timers(tmp_path):
    trace_path = str(tmp_path / "trace.jsonl")
    code, _ = run(["trace", "--synth-seed", "3", "--synth-size", "80",
                   "--profile", "--out", trace_path])
    assert code == 0
    records = [json.loads(line) for line in open(trace_path)]
    profiles = [
        r["attrs"]["profile"] for r in records
        if r["type"] == "span" and r["name"].startswith("attempt:")
    ]
    assert profiles and all(p for p in profiles)
    phases = {entry["phase"] for profile in profiles for entry in profile}
    assert "dfs" in phases


def test_check_flags_schema_violations(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text(
        json.dumps({"type": "trace", "trace": "t", "spans": 1}) + "\n"
        + json.dumps({"type": "span", "trace": "t", "span": 1}) + "\n"
    )
    code, text = run(["trace", "--check", str(bad)])
    assert code == 1
    assert "schema violation" in text


def test_check_unreadable_file_is_usage_error(tmp_path):
    code, _ = run(["trace", "--check", str(tmp_path / "missing.jsonl")])
    assert code == 2


def test_source_and_synth_seed_are_mutually_exclusive(source_file):
    code, _ = run(["trace", source_file, "--synth-seed", "1"])
    assert code == 2
    code, _ = run(["trace"])
    assert code == 2
