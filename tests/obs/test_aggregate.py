"""Trace analytics: aggregation, critical paths, the linearity watchdog."""

import io
import json

import pytest

from repro.cli import main
from repro.obs.aggregate import (
    MAX_EXPONENT,
    aggregate_spans,
    critical_paths,
    fit_linearity,
    linearity_violations,
    render_linearity,
)


def span(span_id, parent, name, start, end, status="ok", **attrs):
    return {
        "type": "span",
        "trace": "t",
        "span": span_id,
        "parent": parent,
        "name": name,
        "start": start,
        "end": end,
        "elapsed": round(end - start, 9),
        "status": status,
        "error": None if status == "ok" else "boom",
        "attrs": attrs,
    }


def trace(*spans):
    return [{"type": "trace", "trace": "t", "spans": len(spans)}, *spans]


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------

def test_aggregate_counts_and_percentiles_per_name():
    records = trace(
        span(1, None, "root", 0.0, 10.0),
        span(2, 1, "work", 1.0, 3.0),
        span(3, 1, "work", 4.0, 8.0),
    )
    by_name = {a["name"]: a for a in aggregate_spans([records])}
    work = by_name["work"]
    assert work["count"] == 2
    assert work["total_s"] == pytest.approx(6.0)
    assert work["mean_s"] == pytest.approx(3.0)
    assert work["p50_s"] == pytest.approx(3.0)
    assert work["max_s"] == pytest.approx(4.0)


def test_aggregate_splits_self_time_from_child_time():
    records = trace(
        span(1, None, "root", 0.0, 10.0),
        span(2, 1, "work", 1.0, 7.0),
    )
    by_name = {a["name"]: a for a in aggregate_spans([records])}
    assert by_name["root"]["self_s"] == pytest.approx(4.0)
    assert by_name["root"]["child_s"] == pytest.approx(6.0)
    assert by_name["work"]["self_s"] == pytest.approx(6.0)
    assert by_name["work"]["child_s"] == pytest.approx(0.0)


def test_aggregate_counts_errors_and_spans_multiple_traces():
    one = trace(span(1, None, "work", 0.0, 1.0))
    two = trace(span(1, None, "work", 0.0, 2.0, status="error"))
    (work,) = aggregate_spans([one, two])
    assert work["count"] == 2
    assert work["errors"] == 1


def test_aggregate_sorted_by_total_time_descending():
    records = trace(
        span(1, None, "root", 0.0, 10.0),
        span(2, 1, "small", 0.0, 1.0),
    )
    names = [a["name"] for a in aggregate_spans([records])]
    assert names == ["root", "small"]


def test_critical_path_descends_into_heaviest_child():
    records = trace(
        span(1, None, "root", 0.0, 10.0),
        span(2, 1, "light", 0.0, 2.0),
        span(3, 1, "heavy", 2.0, 9.0),
        span(4, 3, "leaf", 3.0, 8.0),
    )
    (path,) = critical_paths([records])
    assert path["trace"] == "t"
    assert [s["name"] for s in path["steps"]] == ["root", "heavy", "leaf"]
    assert path["elapsed_s"] == pytest.approx(10.0)


# ----------------------------------------------------------------------
# the empirical-linearity watchdog
# ----------------------------------------------------------------------

def sized_trace(name, size, elapsed):
    # Half the size as nodes, half as edges: _size_of sums them back.
    return trace(
        span(
            1, None, name, 0.0, elapsed,
            n_nodes=size // 2, n_edges=size - size // 2,
        )
    )


def linear_corpus(name="linear_phase"):
    return [sized_trace(name, n, n * 1e-6) for n in (100, 400, 1600, 6400)]


def quadratic_corpus(name="quadratic_phase"):
    # The injected superlinear fixture: duration ~ size^2.
    return [sized_trace(name, n, (n ** 2) * 1e-9) for n in (100, 400, 1600, 6400)]


def test_linear_phase_fits_exponent_near_one():
    (fit,) = fit_linearity(linear_corpus())
    assert fit["sizes"] == 4
    assert fit["exponent"] == pytest.approx(1.0, abs=0.01)
    assert linearity_violations([fit]) == []


def test_quadratic_phase_fits_exponent_near_two_and_violates():
    (fit,) = fit_linearity(quadratic_corpus())
    assert fit["exponent"] == pytest.approx(2.0, abs=0.01)
    assert linearity_violations([fit], MAX_EXPONENT) == [fit]
    assert "SUPERLINEAR" in render_linearity([fit])


def test_too_few_sizes_or_spread_yields_no_exponent():
    narrow = [sized_trace("p", n, n * 1e-6) for n in (100, 110, 120)]
    (fit,) = fit_linearity(narrow)
    assert fit["exponent"] is None  # spread 1.2x < MIN_SPREAD
    two_sizes = [sized_trace("p", n, n * 1e-6) for n in (100, 1000)]
    (fit,) = fit_linearity(two_sizes)
    assert fit["exponent"] is None
    assert linearity_violations([fit]) == []


def test_minimum_duration_per_size_sheds_noise():
    noisy = linear_corpus() + [sized_trace("linear_phase", 400, 1.0)]  # one outlier
    (fit,) = fit_linearity(noisy)
    assert fit["exponent"] == pytest.approx(1.0, abs=0.01)
    assert fit["points"] == 5


def test_spans_without_size_attrs_are_ignored():
    records = trace(span(1, None, "unsized", 0.0, 1.0))
    assert fit_linearity([records]) == []


# ----------------------------------------------------------------------
# the CLI surface: trace --aggregate / --check-linearity
# ----------------------------------------------------------------------

def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def write_traces(tmp_path, record_lists):
    paths = []
    for i, records in enumerate(record_lists):
        path = tmp_path / f"trace{i}.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        paths.append(str(path))
    return paths


def test_cli_aggregate_emits_schema_valid_jsonl(tmp_path):
    from repro.obs.schema import validate_trace
    from repro.obs.trace import read_jsonl

    paths = write_traces(
        tmp_path,
        [trace(span(1, None, "root", 0.0, 2.0), span(2, 1, "work", 0.0, 1.0))],
    )
    code, text = run(["trace", "--aggregate", *paths])
    assert code == 0
    records = read_jsonl(text.splitlines())
    assert {r["type"] for r in records} == {"aggregate", "critical_path"}
    assert validate_trace(records) == []


def test_cli_aggregate_render_prints_table(tmp_path):
    paths = write_traces(
        tmp_path, [trace(span(1, None, "root", 0.0, 2.0))]
    )
    code, text = run(["trace", "--aggregate", *paths, "--render"])
    assert code == 0
    assert "span" in text and "p99 ms" in text and "critical path" in text


def test_cli_check_linearity_passes_linear_corpus(tmp_path):
    paths = write_traces(tmp_path, linear_corpus())
    code, text = run(["trace", "--check-linearity", *paths])
    assert code == 0
    records = [json.loads(line) for line in text.splitlines()]
    assert all(r["type"] == "linearity" for r in records)


def test_cli_check_linearity_exits_3_on_quadratic_fixture(tmp_path):
    paths = write_traces(tmp_path, quadratic_corpus())
    code, _ = run(["trace", "--check-linearity", *paths])
    assert code == 3


def test_cli_max_exponent_loosens_the_budget(tmp_path):
    paths = write_traces(tmp_path, quadratic_corpus())
    code, _ = run(["trace", "--check-linearity", *paths, "--max-exponent", "2.5"])
    assert code == 0


def test_cli_linearity_unreadable_file_is_usage_error(tmp_path):
    code, _ = run(["trace", "--check-linearity", str(tmp_path / "missing.jsonl")])
    assert code == 2
