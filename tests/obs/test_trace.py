"""TraceRecorder/Span: nesting, error handling, and the JSONL wire format."""

import io

import pytest

from repro.obs.observer import NOOP_SPAN, Observer, install, observe
from repro.obs.schema import validate_trace
from repro.obs.trace import TraceRecorder, read_jsonl, render_trace


def span_records(recorder):
    return [r for r in recorder.records if r["type"] == "span"]


def test_spans_nest_through_the_stack():
    recorder = TraceRecorder(trace_id="t")
    outer = recorder.start("outer")
    inner = recorder.start("inner")
    inner.finish()
    outer.finish()
    inner_rec, outer_rec = span_records(recorder)
    assert inner_rec["name"] == "inner"
    assert inner_rec["parent"] == outer_rec["span"]
    assert outer_rec["parent"] is None


def test_finish_order_is_children_before_parents():
    recorder = TraceRecorder(trace_id="t")
    with recorder.start("a"):
        with recorder.start("b"):
            pass
    assert [r["name"] for r in span_records(recorder)] == ["b", "a"]


def test_context_manager_marks_error_and_reraises():
    recorder = TraceRecorder(trace_id="t")
    with pytest.raises(RuntimeError):
        with recorder.start("work"):
            raise RuntimeError("boom")
    (record,) = span_records(recorder)
    assert record["status"] == "error"
    assert "boom" in record["error"]


def test_explicit_fail_survives_finish():
    recorder = TraceRecorder(trace_id="t")
    recorder.start("work").fail("postcondition").finish()
    (record,) = span_records(recorder)
    assert record["status"] == "error"
    assert record["error"] == "postcondition"


def test_finish_is_idempotent():
    recorder = TraceRecorder(trace_id="t")
    span = recorder.start("once")
    span.finish()
    span.finish(error="late")
    (record,) = span_records(recorder)
    assert record["status"] == "ok"


def test_out_of_order_finish_closes_orphans():
    recorder = TraceRecorder(trace_id="t")
    outer = recorder.start("outer")
    recorder.start("leaked")
    outer.finish()  # finishes the leaked child too, stack never wedges
    assert recorder.open_spans() == 0
    names = [r["name"] for r in span_records(recorder)]
    assert names == ["leaked", "outer"]


def test_jsonl_round_trip_and_schema():
    recorder = TraceRecorder(trace_id="t")
    with recorder.start("outer", nodes=3):
        with recorder.start("inner"):
            pass
    lines = list(recorder.jsonl_lines({"counters": {}, "gauges": {}, "histograms": {}}))
    records = read_jsonl(lines)
    assert [r["type"] for r in records] == ["trace", "span", "span", "metrics"]
    assert records[0]["spans"] == 2
    assert validate_trace(records) == []


def test_write_jsonl_counts_lines():
    recorder = TraceRecorder(trace_id="t")
    recorder.start("only").finish()
    buffer = io.StringIO()
    assert recorder.write_jsonl(buffer) == 2  # header + one span
    assert len(buffer.getvalue().splitlines()) == 2


def test_read_jsonl_rejects_garbage():
    with pytest.raises(ValueError):
        read_jsonl(["not json"])
    with pytest.raises(ValueError):
        read_jsonl(['["a", "list"]'])


def test_render_trace_shows_tree_attrs_and_errors():
    recorder = TraceRecorder(trace_id="t")
    outer = recorder.start("outer", impl="kernel")
    recorder.start("inner").fail("bad").finish()
    outer.finish()
    text = render_trace(read_jsonl(recorder.jsonl_lines()))
    lines = text.splitlines()
    assert lines[0] == "trace t"
    assert "- outer" in lines[1] and "[impl=kernel]" in lines[1]
    assert lines[2].startswith("    - inner") and "!! bad" in lines[2]


def test_observer_trace_off_hands_out_noop_span():
    observer = Observer(trace=False)
    assert observer.span("anything", k=1) is NOOP_SPAN
    with pytest.raises(ValueError):
        observer.write_jsonl(io.StringIO())


def test_observe_none_keeps_outer_observer():
    outer = Observer()
    previous = install(outer)
    try:
        with observe(None) as seen:
            assert seen is outer
    finally:
        install(previous)
