"""Seeded faults surface as deterministic retry/fallback/fired counters.

The fault plans are seeded and the engine ladder is deterministic, so the
exact counter values -- not just their presence -- are pinned here.  If an
engine change legitimately alters the ladder, these numbers should be
updated alongside the `Diagnostic` expectations in
``tests/resilience/test_engine.py``.
"""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.config import AnalysisConfig
from repro.resilience import faults
from repro.resilience.engine import run_analysis
from repro.resilience.faults import FaultPlan

from repro.obs.observer import Observer


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.uninstall()


def demo_cfg():
    return cfg_from_edges(
        [
            ("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("e", "a"), ("e", "end"), ("start", "end"),
        ]
    )


def run_faulted(max_fires=None):
    observer = Observer(trace=False)
    plan = FaultPlan(
        sites=["lengauer-tarjan/semi-skew"], seed=7, max_fires=max_fires
    )
    config = AnalysisConfig(
        analyses=("dominators",), observer=observer, faults=plan
    )
    result = run_analysis(demo_cfg(), config=config)
    assert result.ok
    return observer, result, plan


def test_persistent_fault_counts_are_exact():
    observer, result, plan = run_faulted(max_fires=None)
    assert result.diagnostic.paths["dominators"] == "slow"
    metrics = observer.metrics
    assert metrics.counts_matching("engine.attempts") == {
        "engine.attempts{outcome=postcondition,path=fast,stage=dominators}": 1.0,
        "engine.attempts{outcome=postcondition,path=fast-retry,stage=dominators}": 1.0,
        "engine.attempts{outcome=ok,path=slow,stage=dominators}": 1.0,
    }
    assert metrics.count_of("engine.retries", stage="dominators") == 1.0
    assert metrics.count_of("engine.fallbacks", stage="dominators") == 1.0
    # The counter agrees with the plan's own fire ledger: the site fires
    # once per eligible vertex per kernel run, and the kernel ran twice
    # (fast + retry) on this graph -> 6 firings, split across the attempts.
    fired = metrics.count_of("faults.fired", site="lengauer-tarjan/semi-skew")
    assert fired == plan.fires["lengauer-tarjan/semi-skew"] == 6
    # Two LT kernel runs; the iterative (CHK) solver ran three times -- as
    # the postcondition checker of each failed fast attempt, then as the
    # slow fallback itself.  It dispatches to its own array kernel; the
    # fault plan only corrupts the Lengauer-Tarjan sites, so the checker
    # stays trustworthy either way.
    assert metrics.counts_matching("dispatch") == {
        "dispatch{component=lengauer_tarjan,impl=kernel}": 2.0,
        "dispatch{component=immediate_dominators,impl=kernel}": 3.0,
    }


def test_transient_fault_recovers_on_retry_with_exact_counts():
    observer, result, _plan = run_faulted(max_fires=1)
    assert result.diagnostic.paths["dominators"] == "fast-retry"
    metrics = observer.metrics
    assert metrics.counts_matching("engine.attempts") == {
        "engine.attempts{outcome=postcondition,path=fast,stage=dominators}": 1.0,
        "engine.attempts{outcome=ok,path=fast-retry,stage=dominators}": 1.0,
    }
    assert metrics.count_of("engine.retries", stage="dominators") == 1.0
    assert metrics.count_of("engine.fallbacks", stage="dominators") == 0.0
    assert metrics.count_of("faults.fired", site="lengauer-tarjan/semi-skew") == 1.0


def test_clean_run_has_zero_fault_counters():
    observer = Observer(trace=False)
    result = run_analysis(
        demo_cfg(),
        config=AnalysisConfig(analyses=("dominators",), observer=observer),
    )
    assert result.ok and not result.diagnostic.degraded
    assert observer.metrics.counts_matching("faults.fired") == {}
    assert observer.metrics.counts_matching("engine.retries") == {}
    assert observer.metrics.counts_matching("engine.fallbacks") == {}
