"""MetricsRegistry: counters, gauges, histograms, and their rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    BUCKET_BOUNDS,
    RESERVOIR_SIZE,
    Histogram,
    MetricsRegistry,
    percentile_of,
)


def test_counter_increments_and_reads_back():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(2.0)
    assert registry.count_of("hits") == 3.0
    assert registry.count_of("never-touched") == 0.0


def test_counter_labels_are_order_insensitive():
    registry = MetricsRegistry()
    registry.counter("dispatch", impl="kernel", component="pst").inc()
    registry.counter("dispatch", component="pst", impl="kernel").inc()
    assert registry.count_of("dispatch", component="pst", impl="kernel") == 2.0


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("hits").inc(-1.0)


def test_counts_matching_renders_sorted_labels():
    registry = MetricsRegistry()
    registry.counter("dispatch", impl="kernel", component="pst").inc()
    registry.counter("dispatch", impl="reference", component="pst").inc(2)
    assert registry.counts_matching("dispatch") == {
        "dispatch{component=pst,impl=kernel}": 1.0,
        "dispatch{component=pst,impl=reference}": 2.0,
    }


def test_gauge_sets_and_adds():
    registry = MetricsRegistry()
    gauge = registry.gauge("live", pool="frozen")
    gauge.set(5)
    gauge.add(-2)
    assert registry.gauge("live", pool="frozen").value == 3.0


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["sum"] == 10.0
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["mean"] == 2.5
    assert 1.0 <= summary["p50"] <= 3.0


def test_histogram_reservoir_is_bounded():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for i in range(RESERVOIR_SIZE + 500):
        histogram.observe(float(i))
    assert histogram.count == RESERVOIR_SIZE + 500
    assert len(histogram._samples) == RESERVOIR_SIZE
    assert histogram.max == float(RESERVOIR_SIZE + 499)


def test_snapshot_is_json_shaped():
    import json

    registry = MetricsRegistry()
    registry.counter("hits", kind="a").inc()
    registry.gauge("live").set(7)
    registry.histogram("latency").observe(0.5)
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert snap["counters"] == {"hits{kind=a}": 1.0}
    assert snap["gauges"] == {"live": 7.0}
    assert snap["histograms"]["latency"]["count"] == 1


def test_render_mentions_every_instrument():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.gauge("live").set(2)
    registry.histogram("latency").observe(1.5)
    text = registry.render()
    assert "counter hits = 1" in text
    assert "gauge live = 2" in text
    assert "histogram latency:" in text


# ----------------------------------------------------------------------
# percentiles: boundary behavior and a sorted-list reference
# ----------------------------------------------------------------------

def test_percentile_boundaries_pin_min_and_max():
    histogram = Histogram()
    for value in (5.0, 1.0, 3.0, 2.0, 4.0):
        histogram.observe(value)
    assert histogram.percentile(0.0) == 1.0
    assert histogram.percentile(100.0) == 5.0
    # Out-of-range quantiles clamp instead of indexing off the ends.
    assert histogram.percentile(-10.0) == 1.0
    assert histogram.percentile(250.0) == 5.0


def test_percentile_single_sample_answers_every_quantile():
    histogram = Histogram()
    histogram.observe(7.5)
    for q in (0.0, 1.0, 50.0, 99.0, 100.0):
        assert histogram.percentile(q) == 7.5


def test_percentile_empty_histogram_is_zero():
    assert Histogram().percentile(50.0) == 0.0


def test_percentile_interpolates_between_ranks():
    histogram = Histogram()
    histogram.observe(10.0)
    histogram.observe(20.0)
    assert histogram.percentile(50.0) == 15.0
    assert histogram.percentile(25.0) == 12.5


def test_summary_reports_p50_p95_p99():
    histogram = Histogram()
    for i in range(1, 101):
        histogram.observe(float(i))
    summary = histogram.summary()
    assert summary["p50"] == pytest.approx(50.5)
    assert summary["p95"] == pytest.approx(95.05)
    assert summary["p99"] == pytest.approx(99.01)
    assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=60,
    ),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_matches_sorted_list_reference(values, q):
    # Independent reference: linear interpolation over the sorted sample
    # at rank q/100 * (n-1), computed from scratch.
    ordered = sorted(values)
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    expected = ordered[lower] + (rank - lower) * (ordered[upper] - ordered[lower])
    assert percentile_of(ordered, q) == pytest.approx(expected, abs=1e-9)
    # Monotone and clamped to the observed range.
    assert ordered[0] <= percentile_of(ordered, q) <= ordered[-1]


# ----------------------------------------------------------------------
# dump / merge: the cross-process shard protocol's metric half
# ----------------------------------------------------------------------

def shard(counter_n: int, values) -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.attempts", outcome="ok").inc(counter_n)
    registry.gauge("live").set(float(counter_n))
    for value in values:
        registry.histogram("latency", stage="pst").observe(value)
    return registry


def test_dump_is_json_serializable():
    import json

    dump = shard(2, [0.001, 0.2]).dump()
    assert json.loads(json.dumps(dump)) == dump


def test_merge_sums_counters_and_keeps_last_gauge():
    parent = shard(1, [])
    parent.merge(shard(2, []).dump())
    parent.merge(shard(4, []).dump())
    assert parent.count_of("engine.attempts", outcome="ok") == 7.0
    assert parent.gauge("live").value == 4.0


def test_merge_combines_histograms_exactly():
    parent = shard(0, [0.001, 0.004])
    parent.merge(shard(0, [0.3, 2.0, 0.002]).dump())
    merged = parent.histogram("latency", stage="pst")
    reference = Histogram()
    for value in (0.001, 0.004, 0.3, 2.0, 0.002):
        reference.observe(value)
    assert merged.count == reference.count == 5
    assert merged.total == pytest.approx(reference.total)
    assert merged.min == reference.min and merged.max == reference.max
    # Fixed bucket bounds make cross-shard bucket sums exact.
    assert merged.cumulative_buckets() == reference.cumulative_buckets()


def test_merge_into_empty_registry_recreates_the_shard():
    parent = MetricsRegistry()
    parent.merge(shard(3, [0.1]).dump())
    assert parent.count_of("engine.attempts", outcome="ok") == 3.0
    assert parent.histogram("latency", stage="pst").count == 1


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def test_prometheus_counter_rendering():
    registry = MetricsRegistry()
    registry.counter("engine.attempts", outcome="ok", stage="pst").inc(3)
    text = registry.render_prometheus()
    assert "# TYPE repro_engine_attempts_total counter" in text
    assert 'repro_engine_attempts_total{outcome="ok",stage="pst"} 3' in text
    assert text.endswith("\n")


def test_prometheus_histogram_has_cumulative_buckets_and_inf():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    histogram.observe(0.0007)  # second bucket (le=0.001)
    histogram.observe(50.0)    # beyond the last bound: only +Inf
    text = registry.render_prometheus()
    assert "# TYPE repro_latency histogram" in text
    assert 'repro_latency_bucket{le="0.001"} 1' in text
    assert f'repro_latency_bucket{{le="{format(BUCKET_BOUNDS[-1], "g")}"}} 1' in text
    assert 'repro_latency_bucket{le="+Inf"} 2' in text
    assert "repro_latency_count 2" in text


def test_prometheus_sanitizes_names_and_escapes_label_values():
    registry = MetricsRegistry()
    registry.counter("batch.items", status='o"k\\x', kind="a\nb").inc()
    text = registry.render_prometheus()
    assert "repro_batch_items_total" in text
    assert '\\"' in text and "\\n" in text and "\\\\" in text
