"""MetricsRegistry: counters, gauges, histograms, and their rendering."""

import pytest

from repro.obs.metrics import RESERVOIR_SIZE, MetricsRegistry


def test_counter_increments_and_reads_back():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(2.0)
    assert registry.count_of("hits") == 3.0
    assert registry.count_of("never-touched") == 0.0


def test_counter_labels_are_order_insensitive():
    registry = MetricsRegistry()
    registry.counter("dispatch", impl="kernel", component="pst").inc()
    registry.counter("dispatch", component="pst", impl="kernel").inc()
    assert registry.count_of("dispatch", component="pst", impl="kernel") == 2.0


def test_counter_rejects_negative_increment():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("hits").inc(-1.0)


def test_counts_matching_renders_sorted_labels():
    registry = MetricsRegistry()
    registry.counter("dispatch", impl="kernel", component="pst").inc()
    registry.counter("dispatch", impl="reference", component="pst").inc(2)
    assert registry.counts_matching("dispatch") == {
        "dispatch{component=pst,impl=kernel}": 1.0,
        "dispatch{component=pst,impl=reference}": 2.0,
    }


def test_gauge_sets_and_adds():
    registry = MetricsRegistry()
    gauge = registry.gauge("live", pool="frozen")
    gauge.set(5)
    gauge.add(-2)
    assert registry.gauge("live", pool="frozen").value == 3.0


def test_histogram_summary_statistics():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["sum"] == 10.0
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["mean"] == 2.5
    assert 1.0 <= summary["p50"] <= 3.0


def test_histogram_reservoir_is_bounded():
    registry = MetricsRegistry()
    histogram = registry.histogram("latency")
    for i in range(RESERVOIR_SIZE + 500):
        histogram.observe(float(i))
    assert histogram.count == RESERVOIR_SIZE + 500
    assert len(histogram._samples) == RESERVOIR_SIZE
    assert histogram.max == float(RESERVOIR_SIZE + 499)


def test_snapshot_is_json_shaped():
    import json

    registry = MetricsRegistry()
    registry.counter("hits", kind="a").inc()
    registry.gauge("live").set(7)
    registry.histogram("latency").observe(0.5)
    snap = registry.snapshot()
    assert json.loads(json.dumps(snap)) == snap
    assert snap["counters"] == {"hits{kind=a}": 1.0}
    assert snap["gauges"] == {"live": 7.0}
    assert snap["histograms"]["latency"]["count"] == 1


def test_render_mentions_every_instrument():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.gauge("live").set(2)
    registry.histogram("latency").observe(1.5)
    text = registry.render()
    assert "counter hits = 1" in text
    assert "gauge live = 2" in text
    assert "histogram latency:" in text
