"""One observer over run_analysis: a single trace covering every path.

The acceptance shape for the observability layer: with tracing enabled,
one ``run_analysis`` call over a fault-injected CFG yields one trace whose
spans nest correctly (fast attempt -> retry -> slow fallback) and whose
cache/retry counters match the returned ``Diagnostic``.
"""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.config import AnalysisConfig
from repro.obs.observer import Observer
from repro.obs.schema import validate_trace
from repro.obs.trace import read_jsonl
from repro.resilience import faults
from repro.resilience.engine import run_analysis
from repro.resilience.faults import FaultPlan


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.uninstall()


def demo_cfg():
    return cfg_from_edges(
        [
            ("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("e", "a"), ("e", "end"), ("start", "end"),
        ]
    )


def spans_of(observer):
    records = read_jsonl(observer.recorder.jsonl_lines(observer.metrics_snapshot()))
    assert validate_trace(records) == []
    return records, [r for r in records if r["type"] == "span"]


def by_name(spans, name):
    return [s for s in spans if s["name"] == name]


def test_clean_run_emits_one_nested_trace_with_kernel_dispatch():
    observer = Observer()
    result = run_analysis(demo_cfg(), config=AnalysisConfig(observer=observer))
    assert result.ok and not result.diagnostic.degraded

    records, spans = spans_of(observer)
    assert len({s["trace"] for s in spans}) == 1

    (root,) = by_name(spans, "run_analysis")
    assert root["parent"] is None and root["status"] == "ok"
    stage_names = {s["name"] for s in spans if s["parent"] == root["span"]}
    assert stage_names == {
        "validate", "stage:pst", "stage:dominators", "stage:control-regions",
    }
    # Every stage succeeded on the first fast attempt.
    attempts = by_name(spans, "attempt:fast")
    assert len(attempts) == 3
    assert all(s["status"] == "ok" for s in attempts)
    assert not by_name(spans, "attempt:slow")

    counters = observer.metrics.counts_matching("dispatch")
    for component in ("cycle_equiv", "build_pst", "lengauer_tarjan", "control_regions"):
        assert counters[f"dispatch{{component={component},impl=kernel}}"] >= 1


def test_faulted_run_traces_fast_retry_slow_ladder():
    observer = Observer()
    config = AnalysisConfig(
        analyses=("dominators",),
        observer=observer,
        faults=FaultPlan(sites=["lengauer-tarjan/semi-skew"], seed=7),
    )
    result = run_analysis(demo_cfg(), config=config)
    assert result.ok and result.diagnostic.degraded
    assert result.diagnostic.paths["dominators"] == "slow"

    records, spans = spans_of(observer)
    (root,) = by_name(spans, "run_analysis")
    (stage,) = by_name(spans, "stage:dominators")
    assert stage["parent"] == root["span"]

    ladder = [
        s for s in spans
        if s["name"].startswith("attempt:") and s["parent"] == stage["span"]
    ]
    ladder.sort(key=lambda s: s["start"])
    assert [s["name"] for s in ladder] == [
        "attempt:fast", "attempt:fast-retry", "attempt:slow",
    ]
    assert [s["status"] for s in ladder] == ["error", "error", "ok"]
    # The span error text is the diagnostic's attempt detail, verbatim.
    failed = [a for a in result.diagnostic.attempts if a.outcome == "postcondition"]
    assert [s["error"] for s in ladder[:2]] == [a.detail for a in failed]

    # The kernel ran under both failed attempts; the slow attempt used the
    # iterative reference instead.
    kernel = [
        s for s in by_name(spans, "lengauer_tarjan")
        if s["attrs"]["impl"] == "kernel"
    ]
    assert len(kernel) == 2
    assert {s["parent"] for s in kernel} == {ladder[0]["span"], ladder[1]["span"]}
    slow_children = [
        s["name"] for s in spans if s["parent"] == ladder[2]["span"]
    ]
    assert "immediate_dominators" in slow_children


def test_counters_match_the_diagnostic_by_construction():
    observer = Observer(trace=False)
    config = AnalysisConfig(
        observer=observer,
        faults=FaultPlan(sites=["lengauer-tarjan/semi-skew"], seed=7),
    )
    result = run_analysis(demo_cfg(), config=config)
    assert result.ok

    expected = {}
    for attempt in result.diagnostic.attempts:
        key = (
            "engine.attempts{"
            f"outcome={attempt.outcome},path={attempt.path},stage={attempt.stage}"
            "}"
        )
        expected[key] = expected.get(key, 0.0) + 1.0
    assert observer.metrics.counts_matching("engine.attempts") == expected

    retries = sum(1 for a in result.diagnostic.attempts if a.path == "fast-retry")
    fallbacks = sum(1 for a in result.diagnostic.attempts if a.path == "slow")
    assert observer.metrics.count_of("engine.retries", stage="dominators") == retries
    assert observer.metrics.count_of("engine.fallbacks", stage="dominators") == fallbacks


def test_session_and_frozen_cache_counters_fire():
    from repro.kernel.session import session_for

    observer = Observer(trace=False)
    session = session_for(demo_cfg(), config=AnalysisConfig(observer=observer))
    session.pst()
    session.pst()  # memoized: second call is a cache hit
    hits = observer.metrics.count_of("session.cache", artifact="pst", result="hit")
    misses = observer.metrics.count_of("session.cache", artifact="pst", result="miss")
    assert misses == 1.0
    assert hits >= 1.0
