"""Prometheus exposition: the format lint and the stdlib HTTP exporter."""

import io
import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.obs.export import (
    dumps_from_trace_records,
    lint_exposition,
    make_metrics_server,
    registry_from_dumps,
)
from repro.obs.metrics import MetricsRegistry


def full_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("engine.attempts", outcome="ok", stage="pst").inc(3)
    registry.gauge("cache.live").set(7)
    registry.histogram("batch.item_seconds").observe(0.002)
    registry.histogram("batch.item_seconds").observe(4.0)
    return registry


# ----------------------------------------------------------------------
# the lint
# ----------------------------------------------------------------------

def test_rendered_exposition_lints_clean():
    assert lint_exposition(full_registry().render_prometheus()) == []


def test_empty_exposition_lints_clean():
    assert lint_exposition("") == []
    assert lint_exposition(MetricsRegistry().render_prometheus()) == []


def test_lint_catches_missing_trailing_newline():
    problems = lint_exposition("# TYPE x counter\nx_total 1")
    assert any("newline" in p for p in problems)


def test_lint_catches_undeclared_sample():
    problems = lint_exposition("mystery_metric 1\n")
    assert any("no # TYPE" in p for p in problems)


def test_lint_catches_bad_type_and_malformed_comment():
    problems = lint_exposition("# TYPE x flavor\n# NOPE x\n")
    assert any("bad TYPE" in p for p in problems)
    assert any("malformed comment" in p for p in problems)


def test_lint_catches_unparsable_sample_line():
    problems = lint_exposition("# TYPE x counter\nx_total one\n")
    assert any("unparsable" in p for p in problems)


def test_lint_requires_inf_bucket_for_histograms():
    text = (
        "# TYPE h histogram\n"
        'h_bucket{le="1"} 1\n'
        "h_sum 0.5\n"
        "h_count 1\n"
    )
    problems = lint_exposition(text)
    assert any("+Inf" in p for p in problems)


def test_lint_requires_le_label_on_buckets():
    text = '# TYPE h histogram\nh_bucket{x="1"} 1\nh_bucket{le="+Inf"} 1\n'
    problems = lint_exposition(text)
    assert any("without le" in p for p in problems)


def test_lint_allows_escaped_quotes_and_commas_in_label_values():
    text = '# TYPE c counter\nc_total{a="x,y",b="q\\"z"} 1\n'
    assert lint_exposition(text) == []


# ----------------------------------------------------------------------
# registry rebuild from trace records
# ----------------------------------------------------------------------

def test_registry_rebuilds_and_merges_from_trace_dumps():
    records = [
        {"type": "trace", "trace": "t", "spans": 0},
        {"type": "metrics_dump", "trace": "t", "metrics": full_registry().dump()},
        {"type": "metrics_dump", "trace": "t", "metrics": full_registry().dump()},
        {"type": "metrics", "trace": "t", "metrics": {}},  # summary footer: ignored
    ]
    dumps = dumps_from_trace_records(records)
    assert len(dumps) == 2
    registry = registry_from_dumps(dumps)
    assert registry.count_of("engine.attempts", outcome="ok", stage="pst") == 6.0
    assert registry.histogram("batch.item_seconds").count == 4


# ----------------------------------------------------------------------
# the HTTP exporter
# ----------------------------------------------------------------------

@pytest.fixture
def live_server():
    registry = full_registry()
    server = make_metrics_server(registry.render_prometheus, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.server_address[1]}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_metrics_endpoint_serves_lintable_exposition(live_server):
    with urllib.request.urlopen(live_server + "/metrics") as response:
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain; version=0.0.4")
        body = response.read().decode("utf-8")
    assert lint_exposition(body) == []
    assert "repro_engine_attempts_total" in body


def test_healthz_and_unknown_paths(live_server):
    with urllib.request.urlopen(live_server + "/healthz") as response:
        assert response.status == 200
        assert response.read() == b"ok\n"
    with pytest.raises(urllib.error.HTTPError) as info:
        urllib.request.urlopen(live_server + "/nope")
    assert info.value.code == 404


# ----------------------------------------------------------------------
# the CLI surface: repro metrics render / lint
# ----------------------------------------------------------------------

def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_metrics_render_then_lint_roundtrip(tmp_path):
    trace_path = tmp_path / "run.jsonl"
    trace_path.write_text(
        json.dumps({"type": "trace", "trace": "t", "spans": 0}) + "\n"
        + json.dumps(
            {"type": "metrics_dump", "trace": "t", "metrics": full_registry().dump()}
        )
        + "\n"
    )
    code, exposition = run(["metrics", "render", str(trace_path)])
    assert code == 0
    assert "repro_engine_attempts_total" in exposition

    lint_path = tmp_path / "expo.txt"
    lint_path.write_text(exposition)
    code, text = run(["metrics", "lint", str(lint_path)])
    assert code == 0
    assert "valid exposition" in text


def test_cli_metrics_lint_flags_problems(tmp_path):
    bad = tmp_path / "bad.txt"
    bad.write_text("mystery 1\n")
    code, text = run(["metrics", "lint", str(bad)])
    assert code == 1
    assert "exposition lint" in text


def test_cli_metrics_render_without_dumps_is_diagnostic(tmp_path):
    trace_path = tmp_path / "empty.jsonl"
    trace_path.write_text(json.dumps({"type": "trace", "trace": "t", "spans": 0}) + "\n")
    code, _ = run(["metrics", "render", str(trace_path)])
    assert code == 1


def test_cli_trace_recording_embeds_a_renderable_dump(tmp_path):
    trace_path = str(tmp_path / "synth.jsonl")
    code, _ = run(["trace", "--synth-seed", "5", "--synth-size", "40",
                   "--out", trace_path])
    assert code == 0
    code, exposition = run(["metrics", "render", trace_path])
    assert code == 0
    assert lint_exposition(exposition) == []
    assert "repro_dispatch_total" in exposition
