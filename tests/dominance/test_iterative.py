"""Tests for the Cooper-Harvey-Kennedy iterative dominator algorithm."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.dominance.iterative import dominates, immediate_dominators
from repro.synth.patterns import diamond, irreducible_kernel, loop_while
from tests.conftest import valid_cfgs


def test_linear():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")])
    idom = immediate_dominators(cfg)
    assert idom == {"start": "start", "a": "start", "b": "a", "end": "b"}


def test_diamond():
    idom = immediate_dominators(diamond())
    assert idom["t"] == "c"
    assert idom["f"] == "c"
    assert idom["j"] == "c"
    assert idom["end"] == "j"


def test_loop():
    idom = immediate_dominators(loop_while(2))
    assert idom["b0"] == "h"
    assert idom["b1"] == "b0"
    assert idom["x"] == "h"


def test_irreducible():
    idom = immediate_dominators(irreducible_kernel())
    # both a and b are reachable around each other; idom is the branch c
    assert idom["a"] == "c"
    assert idom["b"] == "c"


def test_unreachable_nodes_omitted():
    cfg = cfg_from_edges([("start", "end")], validate=False)
    cfg.add_node("island")
    idom = immediate_dominators(cfg)
    assert "island" not in idom


def test_dominates_helper():
    cfg = diamond()
    idom = immediate_dominators(cfg)
    assert dominates(idom, "start", "end")
    assert dominates(idom, "c", "t")
    assert not dominates(idom, "t", "j")
    assert dominates(idom, "j", "j")


def test_multigraph_parallel_edges():
    cfg = cfg_from_edges([("start", "a"), ("a", "end"), ("a", "end")])
    idom = immediate_dominators(cfg)
    assert idom["end"] == "a"


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_idom_strictly_dominates(cfg):
    """The idom of n dominates every predecessor-path: sanity via walking."""
    idom = immediate_dominators(cfg)
    for node in cfg.nodes:
        assert node in idom  # valid CFGs: everything reachable
        if node != cfg.start:
            assert idom[node] != node
            assert dominates(idom, idom[node], node)
