"""Dominance frontiers and iterated frontiers against the definition."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.dominance.frontier import (
    dominance_frontiers,
    iterated_dominance_frontier,
    postdominance_frontiers,
)
from repro.dominance.tree import dominator_tree, postdominator_tree
from repro.synth.patterns import diamond, loop_while, repeat_until_nest
from tests.conftest import valid_cfgs


def df_of(cfg):
    return dominance_frontiers(cfg, dominator_tree(cfg))


def test_diamond_frontiers():
    df = df_of(diamond())
    assert df["t"] == {"j"}
    assert df["f"] == {"j"}
    assert df["c"] == set()
    assert df["j"] == set()


def test_loop_frontier_contains_header():
    df = df_of(loop_while(1))
    assert "h" in df["b0"]
    assert "h" in df["h"]  # the header is in its own frontier


def test_self_loop_in_own_frontier():
    cfg = cfg_from_edges([("start", "a"), ("a", "a"), ("a", "end")])
    df = df_of(cfg)
    assert df["a"] == {"a"}


def test_repeat_until_nest_quadratic_frontiers():
    """§6.1: total frontier size of the repeat-until nest grows as Θ(N²)."""
    depth = 12
    cfg = repeat_until_nest(depth)
    df = df_of(cfg)
    total = sum(len(s) for s in df.values())
    assert total >= depth * (depth - 1) / 2


def test_iterated_frontier_worklist():
    cfg = diamond()
    df = df_of(cfg)
    assert iterated_dominance_frontier(df, ["t"]) == {"j"}
    assert iterated_dominance_frontier(df, ["c"]) == set()
    assert iterated_dominance_frontier(df, []) == set()


def test_iterated_frontier_transitive():
    cfg = cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "m1"),
            ("c", "m1"),
            ("m1", "d", "T"),
            ("m1", "e", "F"),
            ("d", "m2"),
            ("e", "m2"),
            ("m2", "end"),
        ]
    )
    df = df_of(cfg)
    # a def in b reaches m1; m1's phi is itself a def reaching... m2 only
    # via the second diamond's frontier
    assert iterated_dominance_frontier(df, ["b"]) == {"m1"}
    assert iterated_dominance_frontier(df, ["d"]) == {"m2"}


def test_postdominance_frontiers_are_reverse_df():
    cfg = diamond()
    pdf = postdominance_frontiers(cfg, postdominator_tree(cfg))
    assert pdf["t"] == {"c"}
    assert pdf["f"] == {"c"}


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_frontier_definition(cfg):
    """m in DF(n) iff n dominates a predecessor of m but not strictly m."""
    dtree = dominator_tree(cfg)
    df = dominance_frontiers(cfg, dtree)
    for n in cfg.nodes:
        expected = set()
        for m in cfg.nodes:
            dominates_a_pred = any(
                p in dtree and dtree.dominates(n, p) for p in cfg.predecessors(m)
            )
            if dominates_a_pred and not dtree.strictly_dominates(n, m):
                expected.add(m)
        assert df[n] == expected
