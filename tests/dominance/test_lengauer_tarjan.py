"""Lengauer-Tarjan vs the iterative algorithm: full agreement required."""

from hypothesis import given, settings

from repro.cfg.builder import cfg_from_edges
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    nested_loops,
    repeat_until_nest,
)
from repro.synth.unstructured import random_cfg
from tests.conftest import valid_cfgs


def test_diamond():
    assert lengauer_tarjan(diamond()) == immediate_dominators(diamond())


def test_irreducible():
    cfg = irreducible_kernel()
    assert lengauer_tarjan(cfg) == immediate_dominators(cfg)


def test_deep_loop_nest():
    cfg = nested_loops(6)
    assert lengauer_tarjan(cfg) == immediate_dominators(cfg)


def test_repeat_until_nest():
    cfg = repeat_until_nest(8)
    assert lengauer_tarjan(cfg) == immediate_dominators(cfg)


def test_root_maps_to_itself():
    cfg = diamond()
    assert lengauer_tarjan(cfg)["start"] == "start"


def test_large_random_graphs():
    for seed in range(12):
        cfg = random_cfg(seed, num_nodes=120, extra_edges=80)
        assert lengauer_tarjan(cfg) == immediate_dominators(cfg), seed


def test_deep_chain_no_recursion_error():
    edges = [("start", "n0")] + [(f"n{i}", f"n{i+1}") for i in range(3000)]
    edges.append(("n3000", "end"))
    cfg = cfg_from_edges(edges)
    idom = lengauer_tarjan(cfg)
    assert idom["n3000"] == "n2999"


@settings(max_examples=150, deadline=None)
@given(valid_cfgs())
def test_matches_iterative(cfg):
    assert lengauer_tarjan(cfg) == immediate_dominators(cfg)
