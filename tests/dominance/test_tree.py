"""Tests for the DominatorTree structure and O(1) queries."""

from hypothesis import given, settings

from repro.dominance.iterative import dominates as walk_dominates
from repro.dominance.iterative import immediate_dominators
from repro.dominance.tree import dominator_tree, postdominator_tree
from repro.synth.patterns import diamond, loop_while, paper_like_example
from tests.conftest import valid_cfgs


def test_basic_queries():
    tree = dominator_tree(diamond())
    assert tree.root == "start"
    assert tree.parent("c") == "start"
    assert tree.parent("start") is None
    assert set(tree.children("c")) == {"t", "f", "j"}
    assert tree.dominates("start", "end")
    assert tree.dominates("c", "j")
    assert not tree.dominates("t", "j")
    assert tree.dominates("t", "t")
    assert not tree.strictly_dominates("t", "t")


def test_depths():
    tree = dominator_tree(diamond())
    assert tree.depth("start") == 0
    assert tree.depth("c") == 1
    assert tree.depth("t") == 2


def test_preorder_parents_first():
    tree = dominator_tree(paper_like_example())
    seen = set()
    for node in tree.preorder():
        parent = tree.parent(node)
        assert parent is None or parent in seen
        seen.add(node)
    assert len(seen) == len(tree)


def test_postdominator_tree_is_reverse():
    cfg = loop_while(1)
    pdtree = postdominator_tree(cfg)
    assert pdtree.root == "end"
    assert pdtree.dominates("x", "h")  # x postdominates the header
    assert pdtree.dominates("h", "b0")


def test_lt_variant_matches():
    cfg = paper_like_example()
    a = dominator_tree(cfg, algorithm="iterative")
    b = dominator_tree(cfg, algorithm="lt")
    assert a.idom == b.idom


def test_unknown_algorithm_rejected():
    import pytest

    with pytest.raises(ValueError):
        dominator_tree(diamond(), algorithm="magic")


def test_contains_protocol():
    tree = dominator_tree(diamond())
    assert "c" in tree
    assert "ghost" not in tree


@settings(max_examples=100, deadline=None)
@given(valid_cfgs())
def test_interval_queries_match_walking(cfg):
    idom = immediate_dominators(cfg)
    tree = dominator_tree(cfg)
    nodes = cfg.nodes
    for a in nodes[:6]:
        for b in nodes[:6]:
            assert tree.dominates(a, b) == walk_dominates(idom, a, b)
