"""The §6.3 divide-and-conquer dominator computation vs whole-graph ones."""

from hypothesis import given, settings

from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.dominance.pst_dominators import pst_immediate_dominators
from repro.core.pst import build_pst
from repro.synth.patterns import (
    diamond,
    irreducible_kernel,
    nested_loops,
    paper_like_example,
    repeat_until_nest,
    sequence_of_diamonds,
)
from repro.synth.structured import random_lowered_procedure
from tests.conftest import valid_cfgs


def test_diamond():
    cfg = diamond()
    assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)


def test_paper_example():
    cfg = paper_like_example()
    assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)


def test_irreducible():
    cfg = irreducible_kernel()
    assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)


def test_loop_nests():
    for depth in (2, 5, 9):
        cfg = nested_loops(depth)
        assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)
        cfg = repeat_until_nest(depth)
        assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)


def test_sequence():
    cfg = sequence_of_diamonds(5)
    assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)


def test_accepts_prebuilt_pst():
    cfg = diamond()
    pst = build_pst(cfg)
    assert pst_immediate_dominators(cfg, pst) == immediate_dominators(cfg)


def test_lowered_procedures():
    for seed in range(6):
        proc = random_lowered_procedure(seed, target_statements=50, goto_rate=0.2)
        got = pst_immediate_dominators(proc.cfg)
        assert got == lengauer_tarjan(proc.cfg), seed


@settings(max_examples=120, deadline=None)
@given(valid_cfgs())
def test_matches_global_algorithms(cfg):
    assert pst_immediate_dominators(cfg) == immediate_dominators(cfg)
