"""Tests for the statement IR."""

from repro.cfg.builder import cfg_from_edges
from repro.ir import Assign, Branch, LoweredProcedure, Phi, Ret


def test_assign_fields():
    stmt = Assign("x", ("a", "b"), "(a + b)")
    assert stmt.target == "x"
    assert stmt.uses == ("a", "b")
    assert "x = (a + b)" in repr(stmt)


def test_assign_default_text():
    stmt = Assign("x", ("a",))
    assert "f(a)" in repr(stmt)


def test_branch_and_ret_have_no_target():
    assert Branch(("c",)).target is None
    assert Ret(("x",)).target is None
    assert Branch(("c",)).uses == ("c",)


def test_phi_args_and_target():
    cfg = cfg_from_edges([("start", "j"), ("j", "end")])
    edge = cfg.edge("start", "j")
    phi = Phi("x", {edge: "x#1"})
    assert phi.target == "x"
    assert phi.uses == ("x#1",)
    phi.set_target("x#9")
    assert phi.target == "x#9"
    assert "phi" in repr(phi)


def test_procedure_queries():
    cfg = cfg_from_edges([("start", "a"), ("a", "b"), ("b", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", (), "1"))
    proc.blocks["a"].append(Assign("y", ("x",), "x"))
    proc.blocks["b"].append(Assign("x", ("y",), "y"))
    proc.blocks["b"].append(Ret(("x",)))

    assert proc.variables() == ["x", "y"]
    assert proc.defs_of("x") == ["a", "b"]
    assert proc.uses_of("y") == ["b"]
    assert proc.num_statements() == 4
    pairs = list(proc.statements())
    assert pairs[0][0] == "start" or pairs[0][0] in cfg.nodes


def test_procedure_initializes_empty_blocks():
    cfg = cfg_from_edges([("start", "end")])
    proc = LoweredProcedure("p", cfg)
    assert proc.blocks["start"] == []
    assert proc.blocks["end"] == []
