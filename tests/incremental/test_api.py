"""The incremental layer's public surface and deprecation shims."""

import warnings

import pytest

import repro


def test_top_level_lazy_exports_resolve_to_the_incremental_layer():
    from repro.incremental.delta import DeltaValidationError
    from repro.incremental.session import EditSession, apply_delta

    assert repro.EditSession is EditSession
    assert repro.apply_delta is apply_delta
    assert repro.DeltaValidationError is DeltaValidationError
    for name in ("EditSession", "apply_delta", "DeltaValidationError"):
        assert name in repro.__all__


def test_incremental_package_all_is_importable():
    import repro.incremental as inc

    for name in inc.__all__:
        assert getattr(inc, name) is not None
    assert "IncrementalDataflow" in inc.__all__


def test_dataflow_incremental_import_warns_and_aliases():
    import repro.dataflow as dataflow
    from repro.incremental import IncrementalDataflow

    with pytest.warns(
        DeprecationWarning,
        match="from repro.incremental import IncrementalDataflow",
    ):
        shimmed = dataflow.IncrementalDataflow
    assert shimmed is IncrementalDataflow


def test_undeprecated_dataflow_names_stay_silent():
    import repro.dataflow as dataflow

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        dataflow.solve_iterative
        dataflow.ReachingDefinitions


def test_quickstart_from_the_top_level():
    cfg = repro.build_cfg(
        [("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "end")],
        "start",
        "end",
    )
    session = repro.EditSession(cfg)
    repro.apply_delta(session, {"op": "add_edge", "source": "b", "target": "c"})
    assert session.applied_deltas == 1
    with pytest.raises(repro.DeltaValidationError):
        repro.apply_delta(session, {"op": "remove_node", "node": "start"})
