"""Pinned-seed edit-stream campaign (the fuzz_smoke tier-1 slice).

The full 200-case campaign runs in CI as
``repro fuzz --oracle incremental/edit-stream --count 200 --seed 3``;
this keeps a fast deterministic slice in the plain pytest run.
"""

import pytest

from repro.fuzz.oracles import ALL_ORACLES
from repro.fuzz.runner import run_fuzz

EDIT_STREAM = [o for o in ALL_ORACLES if o.name == "incremental/edit-stream"]


@pytest.mark.fuzz_smoke
def test_edit_stream_oracle_is_registered():
    assert len(EDIT_STREAM) == 1


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("seed,count,size", [(3, 30, 8), (1_733, 20, 14)])
def test_edit_stream_smoke_campaign(seed, count, size):
    report = run_fuzz(
        seed=seed, count=count, size=size, oracles=EDIT_STREAM, time_budget=20.0
    )
    assert report.ok, "\n" + report.render()
    assert report.cases_run >= min(count, 10)
