"""EditSession: splice vs fallback accounting, verification, config surface."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.config import AnalysisConfig
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.core.pst import build_pst
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.incremental import DeltaValidationError, EditSession
from repro.incremental.compare import diff_artifacts
from repro.resilience.faults import FaultPlan, inject

DIAMOND = [
    ("start", "a"),
    ("a", "b"),
    ("b", "t"),
    ("b", "f"),
    ("t", "j"),
    ("f", "j"),
    ("j", "c"),
    ("c", "end"),
]


def diamond():
    return cfg_from_edges(DIAMOND, "start", "end")


def butterfly(arms=35):
    """One canonical region holding ``arms`` interior nodes (no nesting)."""
    edges = (
        [("start", "b")]
        + [("b", f"x{i}") for i in range(arms)]
        + [(f"x{i}", "c") for i in range(arms)]
        + [("c", "end")]
    )
    return cfg_from_edges(edges, "start", "end")


def assert_matches_scratch(session):
    scratch_equiv = cycle_equivalence_of_cfg(session.cfg, validate=False)
    scratch_pst = build_pst(session.cfg, scratch_equiv)
    detail = diff_artifacts(
        session.equiv.class_of, session.pst, scratch_equiv.class_of, scratch_pst
    )
    assert detail is None, detail


# ----------------------------------------------------------------------
# the maintenance ladder, rung by rung
# ----------------------------------------------------------------------

def test_interior_edit_splices_and_matches_scratch():
    session = EditSession(diamond())
    session.add_edge("t", "t")  # a self-loop, interior to t's region
    assert session.stats.splices == 1
    assert session.stats.full_recomputes == 0
    assert_matches_scratch(session)
    session.undo()
    assert session.stats.splices == 2
    assert session.stats.undos == 1
    assert_matches_scratch(session)


def test_region_escaping_edit_falls_back_to_full_recompute():
    session = EditSession(diamond())
    # a and c live in different top-level regions: the NCA is the root.
    session.add_edge("a", "c")
    assert session.stats.region_escapes == 1
    assert session.stats.full_recomputes == 1
    assert session.stats.splices == 0
    assert_matches_scratch(session)


def test_oversize_region_degrades_to_full_recompute_on_purpose():
    cfg = butterfly(35)  # region size 35 > max(32, 39 // 4)
    session = EditSession(cfg)
    session.add_edge("x1", "x2")
    assert session.stats.oversize_regions == 1
    assert session.stats.full_recomputes == 1
    assert session.stats.splices == 0
    assert_matches_scratch(session)


def test_injected_splice_fault_exercises_the_fallback_ladder():
    session = EditSession(diamond())
    with inject(FaultPlan(sites=["incremental/skip-splice"])) as plan:
        session.add_edge("t", "t")
        assert plan.fires["incremental/skip-splice"] == 1
    assert session.stats.splice_fallbacks == 1
    assert session.stats.full_recomputes == 1
    assert session.stats.splices == 0
    assert_matches_scratch(session)


def test_invalid_delta_is_rejected_with_exact_rollback():
    cfg = diamond()
    session = EditSession(cfg)
    eids_before = [e.eid for e in cfg.edges]
    with pytest.raises(DeltaValidationError, match="cannot reach end"):
        session.remove_edge("t", "j")  # severs t's only way out
    assert session.stats.rejected == 1
    assert session.stats.deltas_applied == 0
    assert session.applied_deltas == 0
    assert [e.eid for e in cfg.edges] == eids_before
    assert_matches_scratch(session)
    # the maintained artifacts were restamped: the next read is a hit
    hits_before = session.session.cache_info()["hits"]
    session.sese_regions()
    assert session.session.pst() is session.pst
    assert session.session.cache_info()["hits"] > hits_before


def test_undo_on_empty_log_raises():
    session = EditSession(diamond())
    with pytest.raises(DeltaValidationError, match="nothing to undo"):
        session.undo()


# ----------------------------------------------------------------------
# derived analyses stay correct across edits
# ----------------------------------------------------------------------

def test_dominators_follow_the_edited_graph():
    cfg = diamond()
    session = EditSession(cfg)
    assert session.dominators() == lengauer_tarjan(cfg)
    session.add_edge("t", "t")
    assert session.dominators() == lengauer_tarjan(cfg)
    session.add_edge("a", "c")  # full-recompute path
    assert session.dominators() == lengauer_tarjan(cfg)
    session.undo()
    session.undo()
    assert session.dominators() == lengauer_tarjan(cfg)
    assert session.postdominators() is not None
    assert session.control_regions() is not None


# ----------------------------------------------------------------------
# verification sampling
# ----------------------------------------------------------------------

def test_verify_rate_one_checks_every_splice_and_finds_no_mismatch():
    config = AnalysisConfig(incremental=True, verify_incremental_rate=1.0)
    session = EditSession(diamond(), config)
    session.add_edge("t", "t")
    session.undo()
    assert session.stats.splices == 2
    assert session.stats.verify_checks == 2
    assert session.stats.verify_mismatches == 0
    assert session.last_verify_detail is None


# ----------------------------------------------------------------------
# config surface
# ----------------------------------------------------------------------

def test_incremental_defaults_on_without_a_config():
    session = EditSession(diamond())
    assert session.config.incremental is True


def test_non_incremental_config_recomputes_every_delta():
    config = AnalysisConfig(incremental=False)
    session = EditSession(diamond(), config)
    session.add_edge("t", "t")
    session.undo()
    assert session.stats.splices == 0
    assert session.stats.full_recomputes == 2
    assert_matches_scratch(session)


def test_legacy_keywords_warn_but_work():
    with pytest.warns(DeprecationWarning, match="incremental"):
        session = EditSession(diamond(), incremental=False)
    assert session.config.incremental is False
    with pytest.warns(DeprecationWarning, match="verify_incremental_rate"):
        session = EditSession(diamond(), verify_incremental_rate=1.0)
    assert session.config.verify_incremental_rate == 1.0


def test_verify_rate_is_validated():
    with pytest.raises(ValueError, match="verify_incremental_rate"):
        AnalysisConfig(verify_incremental_rate=1.5)
