"""Attached dataflow engines follow structural edits (splice and fallback)."""

from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import ReachingDefinitions
from repro.incremental import EditSession
from repro.synth.structured import random_lowered_procedure


def test_attached_engine_tracks_splices_and_full_recomputes():
    proc = random_lowered_procedure(31, target_statements=80)
    cfg = proc.cfg
    session = EditSession(cfg)
    problem = ReachingDefinitions(proc)
    engine = session.attach_dataflow(problem)
    assert engine.solution() == solve_iterative(cfg, problem)

    # a local edit (parallel edge over an interior edge) and its undo:
    # adding an edge changes no transfer function, only the graph shape
    interior = [
        e for e in cfg.edges if e.source != cfg.start and e.target != cfg.end
    ]
    applied = 0
    for edge in interior:
        session.add_edge(edge.source, edge.target)
        assert engine.solution() == solve_iterative(cfg, problem)
        session.undo()
        assert engine.solution() == solve_iterative(cfg, problem)
        applied += 1
        if applied == 5:
            break
    assert session.stats.deltas_applied == applied


def test_structural_update_is_localized_on_a_splice():
    proc = random_lowered_procedure(31, target_statements=200)
    cfg = proc.cfg
    session = EditSession(cfg)
    engine = session.attach_dataflow(ReachingDefinitions(proc))
    total_regions = len(session.sese_regions())

    # find an edit the splice path absorbs, then check the engine only
    # re-summarized a neighborhood, not the whole tree
    for edge in cfg.edges:
        if edge.source == cfg.start or edge.target == cfg.end:
            continue
        before = session.stats.splices
        session.add_edge(edge.source, edge.target)
        if session.stats.splices > before:
            assert 0 < engine.last_summaries_recomputed < total_regions
            break
        session.undo()  # full-recompute path: try the next edge
    else:  # pragma: no cover - corpus always has a spliceable edge
        raise AssertionError("no spliceable edit found")
