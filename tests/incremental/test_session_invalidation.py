"""Per-key version stamps in AnalysisSession: stale, selective, seeded."""

from repro.cfg.builder import cfg_from_edges
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.incremental import EditSession
from repro.kernel.session import AnalysisSession

DIAMOND = [
    ("start", "a"),
    ("a", "b"),
    ("b", "t"),
    ("b", "f"),
    ("t", "j"),
    ("f", "j"),
    ("j", "c"),
    ("c", "end"),
]


def diamond():
    return cfg_from_edges(DIAMOND, "start", "end")


def test_stale_stamp_is_counted_and_recomputed():
    cfg = diamond()
    session = AnalysisSession(cfg)
    old_dom = session.dominators()
    assert session.cache_info()["stale"] == 0
    cfg.add_edge("b", "j")  # mutation bumps the version
    new_dom = session.dominators()
    info = session.cache_info()
    assert info["stale"] == 1
    assert info["misses"] == 2  # stale lookups count as misses too
    assert new_dom is not old_dom
    assert new_dom["j"] == "b"  # and the recompute saw the new edge


def test_selective_invalidate_drops_only_the_named_keys():
    cfg = diamond()
    session = AnalysisSession(cfg)
    session.dominators()
    session.pst()
    assert session.cache_info()["size"] == 3  # dom, pst, equiv
    session.invalidate(keys=["dom", "not-a-key"])
    assert session.cache_info()["size"] == 2
    hits = session.cache_info()["hits"]
    session.pst()  # still warm
    assert session.cache_info()["hits"] == hits + 1


def test_put_artifact_stamps_the_current_version():
    cfg = diamond()
    session = AnalysisSession(cfg)
    equiv = cycle_equivalence_of_cfg(cfg, validate=False)
    session.put_artifact("equiv", equiv)
    assert session.cycle_equivalence() is equiv  # fresh stamp: a hit
    assert session.cache_info() == {"hits": 1, "misses": 0, "size": 1, "stale": 0}
    cfg.add_edge("b", "j")
    assert session.cycle_equivalence() is not equiv  # stale now
    assert session.cache_info()["stale"] == 1


def test_edit_session_keeps_maintained_artifacts_warm_across_splices():
    session = EditSession(diamond())
    inner = session.session
    session.dominators()
    baseline = inner.cache_info()
    session.add_edge("t", "t")  # splice: equiv/pst re-seeded, dom dropped
    assert session.stats.splices == 1
    # maintained artifacts answer from the cache without recomputation
    assert inner.pst() is session.pst
    assert inner.cycle_equivalence() is session.equiv
    info = inner.cache_info()
    assert info["hits"] == baseline["hits"] + 2
    assert info["stale"] == baseline["stale"]  # dropped, not left to go stale
    # the derived dominator map was invalidated and recomputes on demand
    misses = info["misses"]
    session.dominators()
    assert inner.cache_info()["misses"] == misses + 1
