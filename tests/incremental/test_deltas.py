"""The delta layer: wire format, static validation, exact undo."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.incremental.delta import (
    AddEdge,
    AddNode,
    DeltaValidationError,
    RemoveEdge,
    RemoveNode,
    apply_delta_to_cfg,
    delta_from_json,
    undo_applied,
)

DIAMOND = [
    ("start", "a"),
    ("a", "b"),
    ("b", "t"),
    ("b", "f"),
    ("t", "j"),
    ("f", "j"),
    ("j", "c"),
    ("c", "end"),
]


def diamond():
    return cfg_from_edges(DIAMOND, "start", "end")


def snapshot(cfg):
    """Graph identity down to edge ids, adjacency order, and edge order."""
    return (
        sorted(map(repr, cfg.nodes)),
        [(e.eid, e.source, e.target, e.label) for e in cfg.edges],
        {n: [e.eid for e in cfg.iter_out_edges(n)] for n in cfg.nodes},
        {n: [e.eid for e in cfg.iter_in_edges(n)] for n in cfg.nodes},
    )


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "delta",
    [
        AddEdge("a", "b"),
        AddEdge("a", "b", label="true"),
        RemoveEdge("a", "b"),
        RemoveEdge("a", "b", eid=7),
        AddNode("x", preds=("a",), succs=("b", "c")),
        RemoveNode("x"),
    ],
)
def test_json_roundtrip(delta):
    assert delta_from_json(delta.to_json()) == delta


def test_from_json_rejects_unknown_op():
    with pytest.raises(DeltaValidationError, match="unknown delta op"):
        delta_from_json({"op": "teleport_node", "node": "x"})


def test_from_json_rejects_non_object_and_missing_keys():
    with pytest.raises(DeltaValidationError, match="must be an object"):
        delta_from_json(["add_edge", "a", "b"])
    with pytest.raises(DeltaValidationError, match="missing key"):
        delta_from_json({"op": "add_edge", "source": "a"})
    with pytest.raises(DeltaValidationError, match="eid must be an integer"):
        delta_from_json({"op": "remove_edge", "source": "a", "target": "b", "eid": "7"})


# ----------------------------------------------------------------------
# static validation (graph untouched on rejection)
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "delta, message",
    [
        (AddEdge("a", "nope"), "not a node"),
        (AddEdge("end", "a"), "end must have no successors"),
        (AddEdge("a", "start"), "start must have no predecessors"),
        (RemoveEdge("a", "c"), "no edge"),
        (AddNode("a", preds=("b",), succs=("c",)), "already exists"),
        (AddNode("x", preds=(), succs=("c",)), "at least one predecessor"),
        (AddNode("x", preds=("end",), succs=("c",)), "end must have no successors"),
        (RemoveNode("start"), "cannot remove the start or end node"),
        (RemoveNode("ghost"), "not a node"),
    ],
)
def test_static_rejections_leave_the_graph_untouched(delta, message):
    cfg = diamond()
    before = snapshot(cfg)
    with pytest.raises(DeltaValidationError, match=message):
        apply_delta_to_cfg(cfg, delta)
    assert snapshot(cfg) == before


def test_remove_edge_requires_eid_for_parallel_edges():
    cfg = diamond()
    dup = cfg.add_edge("t", "j")
    with pytest.raises(DeltaValidationError, match="pass eid to disambiguate"):
        apply_delta_to_cfg(cfg, RemoveEdge("t", "j"))
    applied = apply_delta_to_cfg(cfg, RemoveEdge("t", "j", eid=dup.eid))
    assert applied.removed_edges == (dup,)


# ----------------------------------------------------------------------
# exact undo
# ----------------------------------------------------------------------

def test_undo_restores_the_exact_graph_for_every_delta_type():
    cfg = diamond()
    deltas = [
        AddEdge("b", "j", label="skip"),
        RemoveEdge("f", "j"),
        AddNode("x", preds=("t",), succs=("j", "c")),
        RemoveNode("f"),
    ]
    history = []
    snapshots = [snapshot(cfg)]
    for delta in deltas:
        history.append(apply_delta_to_cfg(cfg, delta))
        snapshots.append(snapshot(cfg))
    for applied in reversed(history):
        snapshots.pop()
        undo_applied(cfg, applied)
        assert snapshot(cfg) == snapshots[-1]


def test_undo_preserves_edge_object_identity():
    cfg = diamond()
    original = next(e for e in cfg.edges if (e.source, e.target) == ("t", "j"))
    applied = apply_delta_to_cfg(cfg, RemoveEdge("t", "j"))
    undo_applied(cfg, applied)
    restored = [e for e in cfg.edges if (e.source, e.target) == ("t", "j")]
    assert restored == [original]
    assert restored[0] is original


def test_remove_node_takes_all_incident_edges_and_undo_restores_order():
    cfg = diamond()
    before = snapshot(cfg)
    applied = apply_delta_to_cfg(cfg, RemoveNode("b"))
    assert sorted((e.source, e.target) for e in applied.removed_edges) == [
        ("a", "b"),
        ("b", "f"),
        ("b", "t"),
    ]
    assert not cfg.has_node("b")
    undo_applied(cfg, applied)
    assert snapshot(cfg) == before


def test_apply_bumps_the_cfg_version_and_so_does_undo():
    cfg = diamond()
    v0 = cfg.version
    applied = apply_delta_to_cfg(cfg, AddEdge("b", "j"))
    assert cfg.version > v0
    v1 = cfg.version
    undo_applied(cfg, applied)
    assert cfg.version > v1
