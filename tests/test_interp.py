"""Semantic validation: AST vs CFG execution, SSA preservation, constprop soundness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataflow.constprop import ConstantPropagation, state_dict
from repro.dataflow.iterative import solve_iterative
from repro.interp import FuelExhausted, Trace, builtin_call, run_ast, run_cfg
from repro.lang import lower_program, parse_program
from repro.lang.lower import lower_procedure
from repro.ssa.rename import construct_ssa
from repro.synth.structured import random_procedure_ast


def both(source, args):
    program = parse_program(source)
    [proc_ast] = program.procedures
    proc_cfg = lower_procedure(proc_ast)
    return run_ast(proc_ast, args), run_cfg(proc_cfg, args)


def test_straightline():
    a, c = both("proc f(x) { y = x * 2 + 1; return y; }", [10])
    assert a.returned == c.returned == 21


def test_if_else():
    for arg, expected in ((5, 1), (-5, 2)):
        a, c = both("proc f(x) { if (x > 0) { r = 1; } else { r = 2; } return r; }", [arg])
        assert a.returned == c.returned == expected


def test_while_loop():
    a, c = both("proc f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }", [5])
    assert a.returned == c.returned == 10


def test_repeat_until():
    a, c = both("proc f() { x = 0; repeat { x = x + 3; } until (x > 7); return x; }", [])
    assert a.returned == c.returned == 9


def test_for_loop():
    a, c = both("proc f(n) { s = 0; for (i = 1 to n) { s = s + i; } return s; }", [4])
    assert a.returned == c.returned == 10


def test_switch_dispatch():
    source = """
    proc f(x) {
        switch (x) {
            case 1: { r = 10; }
            case 2: { r = 20; }
            default: { r = 99; }
        }
        return r;
    }
    """
    for arg, expected in ((1, 10), (2, 20), (7, 99)):
        a, c = both(source, [arg])
        assert a.returned == c.returned == expected


def test_break_continue():
    source = """
    proc f(n) {
        s = 0;
        for (i = 0 to n) {
            if (i == 3) { continue; }
            if (i == 6) { break; }
            s = s + i;
        }
        return s;
    }
    """
    a, c = both(source, [10])
    assert a.returned == c.returned == 0 + 1 + 2 + 4 + 5


def test_goto_forward_and_backward():
    source = """
    proc f(n) {
        x = 0;
        top:
        x = x + 1;
        if (x < n) { goto top; }
        if (n > 100) { goto skip; }
        x = x * 10;
        skip:
        return x;
    }
    """
    a, c = both(source, [3])
    assert a.returned == c.returned == 30
    a, c = both(source, [200])
    assert a.returned == c.returned == 200


def test_goto_into_loop():
    source = """
    proc f(n) {
        if (n > 0) { goto inside; }
        while (n < 16) {
            inside:
            n = n + n + 1;
        }
        return n;
    }
    """
    a, c = both(source, [5])
    assert a.returned == c.returned


def test_division_semantics():
    a, c = both("proc f(x) { r = 7 / x + 7 % x; return r; }", [0])
    assert a.returned == c.returned == 0
    a, c = both("proc f(x) { r = 7 / x; return r; }", [2])
    assert a.returned == c.returned == 3


def test_uninitialized_reads_are_zero():
    a, c = both("proc f() { return ghost + 1; }", [])
    assert a.returned == c.returned == 1


def test_call_builtin_deterministic():
    a, c = both("proc f(x) { return g(x, 2); }", [7])
    assert a.returned == c.returned == builtin_call("g", [7, 2])


def test_fuel_exhaustion():
    source = "proc f() { x = 0; L: x = x + 1; if (x > 0) { goto L; } return x; }"
    program = parse_program(source)
    with pytest.raises(FuelExhausted):
        run_ast(program.procedures[0], [], fuel=200)
    with pytest.raises(FuelExhausted):
        run_cfg(lower_procedure(program.procedures[0]), [], fuel=200)


ARGS = st.lists(st.integers(-20, 20), min_size=3, max_size=3)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 8000), st.sampled_from([15, 40]), st.sampled_from([0.0, 0.3]), ARGS)
def test_lowering_preserves_semantics(seed, size, goto_rate, args):
    """AST execution == CFG execution (return value and assignment traces)."""
    procedure = random_procedure_ast(seed, target_statements=size, goto_rate=goto_rate)
    try:
        lowered = lower_procedure(procedure)
    except Exception:
        return  # e.g. infinite-loop rejection; nothing to compare
    try:
        expected = run_ast(procedure, args, fuel=30_000)
    except FuelExhausted:
        return
    actual = run_cfg(lowered, args, fuel=60_000)
    assert actual.returned == expected.returned
    assert actual.assignments == expected.assignments


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 8000), st.sampled_from([15, 40]), ARGS)
def test_ssa_preserves_semantics(seed, size, args):
    """SSA form executes identically (φ semantics included)."""
    procedure = random_procedure_ast(seed, target_statements=size)
    lowered = lower_procedure(procedure)
    ssa = construct_ssa(lowered)
    try:
        expected = run_cfg(lowered, args, fuel=30_000)
    except FuelExhausted:
        return
    actual = run_cfg(ssa, args, fuel=90_000)
    assert actual.returned == expected.returned
    assert actual.assignments == expected.assignments


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 8000), st.sampled_from([15, 40]), ARGS)
def test_constant_propagation_is_sound(seed, size, args):
    """Every constant the analysis claims holds on every actual execution.

    Checked at every block entry of the run, for variables present in the
    environment (a variable never assigned on the executed path contributed
    UNDEF to the meet, so claims about it do not bind the 0-default).
    """
    procedure = random_procedure_ast(seed, target_statements=size)
    lowered = lower_procedure(procedure)
    solution = solve_iterative(lowered.cfg, ConstantPropagation(lowered))
    claims = {node: state_dict(solution.before[node]) for node in lowered.cfg.nodes}
    violations = []

    def check(node, env):
        for var, value in claims[node].items():
            if isinstance(value, int) and var in env and env[var] != value:
                violations.append((node, var, value, env[var]))

    try:
        run_cfg(lowered, args, fuel=30_000, on_block=check)
    except FuelExhausted:
        return
    assert not violations, violations[:5]
