"""run_analysis: verified results on every path, and it never raises."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG
from repro.controldep.regions_fast import control_regions
from repro.core.pst import build_pst
from repro.dominance.iterative import immediate_dominators
from repro.fuzz.generator import generate_case
from repro.resilience import faults
from repro.resilience.engine import run_analysis
from repro.resilience.faults import ALL_SITES, FaultPlan
from tests.resilience.conftest import chain_cfg

# run_analysis works on an immutable snapshot, so the edit-layer sites never
# execute under it; they get their own coverage in tests/incremental/.
ENGINE_SITES = [s for s in ALL_SITES if not s.name.startswith("incremental/")]


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.uninstall()


def demo_cfg():
    return cfg_from_edges(
        [
            ("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("e", "a"), ("e", "end"), ("start", "end"),
        ]
    )


def pst_shape(pst):
    return sorted((r.entry.eid, r.exit.eid) for r in pst.canonical_regions())


# ----------------------------------------------------------------------
# clean inputs
# ----------------------------------------------------------------------

def test_clean_run_uses_fast_paths_and_matches_direct_calls():
    cfg = demo_cfg()
    result = run_analysis(cfg)
    assert result.ok and not result.degraded and result.error is None
    assert result.diagnostic.paths == {
        "pst": "fast", "dominators": "fast", "control-regions": "fast",
    }
    assert pst_shape(result.pst) == pst_shape(build_pst(cfg))
    assert result.idom == immediate_dominators(cfg)
    assert result.control_regions == control_regions(cfg)
    assert result.diagnostic.elapsed >= 0


def test_analyses_subset_only_computes_whats_asked():
    result = run_analysis(demo_cfg(), analyses=("dominators",))
    assert result.ok
    assert result.idom is not None
    assert result.pst is None and result.control_regions is None
    assert [a.stage for a in result.diagnostic.attempts] == ["dominators"]


def test_unknown_analysis_reported_not_raised():
    result = run_analysis(demo_cfg(), analyses=("pst", "nonsense"))
    assert not result.ok
    assert "nonsense" in result.error


# ----------------------------------------------------------------------
# the acceptance criterion: every fault site, detected or masked,
# never a raise, never a wrong answer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("site", [s.name for s in ENGINE_SITES])
def test_persistent_fault_recovers_with_correct_results(site):
    cfg = demo_cfg()
    clean = run_analysis(cfg)
    assert clean.ok
    with faults.inject(FaultPlan(sites=[site])) as plan:
        result = run_analysis(cfg)
    assert plan.total_fires() > 0, "the fault site never executed"
    assert result.ok, result.diagnostic.render()
    assert pst_shape(result.pst) == pst_shape(clean.pst)
    assert result.idom == clean.idom
    assert result.control_regions == clean.control_regions


def test_persistent_semi_skew_degrades_dominators_to_slow():
    with faults.inject(FaultPlan(sites=["lengauer-tarjan/semi-skew"])):
        result = run_analysis(demo_cfg())
    assert result.ok and result.degraded
    assert result.diagnostic.paths["dominators"] == "slow"
    outcomes = [
        (a.path, a.outcome)
        for a in result.diagnostic.attempts
        if a.stage == "dominators"
    ]
    assert outcomes == [
        ("fast", "postcondition"),
        ("fast-retry", "postcondition"),
        ("slow", "ok"),
    ]


def test_persistent_push_bottom_degrades_pst_to_slow():
    with faults.inject(FaultPlan(sites=["bracketlist/push-bottom"])):
        result = run_analysis(demo_cfg())
    assert result.ok and result.degraded
    assert result.diagnostic.paths["pst"] == "slow"


def test_transient_fault_recovers_on_fast_retry():
    with faults.inject(
        FaultPlan(sites=["lengauer-tarjan/semi-skew"], max_fires=1)
    ):
        result = run_analysis(demo_cfg())
    assert result.ok and result.degraded
    assert result.diagnostic.paths["dominators"] == "fast-retry"


def test_fault_sweep_over_fuzz_corpus():
    clean_by_seed = {}
    for seed in range(12):
        cfg = generate_case(seed, size=8).cfg
        clean = run_analysis(cfg)
        assert clean.ok, (seed, clean.diagnostic.render())
        clean_by_seed[seed] = (cfg, clean)
    for site in ENGINE_SITES:
        for seed, (cfg, clean) in clean_by_seed.items():
            with faults.inject(FaultPlan(sites=[site.name], seed=seed)):
                result = run_analysis(cfg)
            assert result.ok, (site.name, seed, result.diagnostic.render())
            assert result.idom == clean.idom, (site.name, seed)
            assert result.control_regions == clean.control_regions, (site.name, seed)
            assert pst_shape(result.pst) == pst_shape(clean.pst), (site.name, seed)


# ----------------------------------------------------------------------
# guards through the engine
# ----------------------------------------------------------------------

def test_expired_deadline_reported_not_raised():
    result = run_analysis(demo_cfg(), deadline=0.0)
    assert not result.ok
    assert "deadline" in result.error
    # Later stages are marked skipped rather than silently absent.
    stages = [a.stage for a in result.diagnostic.attempts]
    assert "dominators" in stages and "control-regions" in stages


def test_tiny_step_budget_reported_not_raised():
    result = run_analysis(chain_cfg(40), step_budget=3)
    assert not result.ok
    assert "pst" in result.error
    budget_attempts = [
        a for a in result.diagnostic.attempts if a.outcome == "budget"
    ]
    assert budget_attempts, result.diagnostic.render()


def test_generous_guards_leave_fast_path_untouched():
    result = run_analysis(demo_cfg(), deadline=3600.0, step_budget=10_000_000)
    assert result.ok and not result.degraded


# ----------------------------------------------------------------------
# bad inputs: rejected, never raised
# ----------------------------------------------------------------------

def test_invalid_cfg_rejected_with_diagnostic():
    cfg = CFG(start="start", end="end")
    cfg.add_edge("start", "end")
    cfg.add_node("orphan")  # violates Definition 1
    result = run_analysis(cfg)
    assert not result.ok
    assert "invalid CFG" in result.error
    assert result.diagnostic.attempts[0].outcome == "invalid"


def test_garbage_input_contained():
    result = run_analysis(None)  # type: ignore[arg-type]
    assert not result.ok
    assert result.error


def test_diagnostic_render_is_printable():
    with faults.inject(FaultPlan(sites=["lengauer-tarjan/semi-skew"])):
        result = run_analysis(demo_cfg())
    text = result.diagnostic.render()
    assert "dominators" in text and "slow" in text and "total elapsed" in text
