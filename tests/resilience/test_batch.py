"""Batch runs: isolation, retries/backoff, JSONL checkpoint/resume."""

import json

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.resilience import faults
from repro.resilience.batch import (
    BatchItemResult,
    load_checkpoint,
    run_batch,
)
from repro.resilience.faults import FaultPlan
from tests.resilience.conftest import RecordingSleep


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.uninstall()


def good_cfg():
    return cfg_from_edges(
        [("start", "a"), ("a", "b", "T"), ("a", "end", "F"), ("b", "a"), ("b", "end")]
    )


def bad_cfg():
    cfg = cfg_from_edges([("start", "end")])
    cfg.add_node("orphan")  # invalid: violates Definition 1
    return cfg


def crasher():
    raise RuntimeError("corpus item could not be loaded")


def items(*pairs):
    return list(pairs)


def test_all_good_items_succeed():
    report = run_batch(
        items(("a", good_cfg), ("b", good_cfg)), sleep=RecordingSleep()
    )
    assert report.ok
    assert [r.status for r in report.results] == ["ok", "ok"]
    assert all(r.tries == 1 for r in report.results)
    assert "2 ok" in report.render()


def test_item_crash_is_isolated_and_retried_with_backoff():
    sleep = RecordingSleep()
    report = run_batch(
        items(("boom", crasher), ("fine", good_cfg)),
        retries=2,
        backoff=0.1,
        backoff_factor=2.0,
        sleep=sleep,
    )
    assert not report.ok
    boom, fine = report.results
    assert boom.status == "error" and boom.tries == 3
    assert "corpus item could not be loaded" in boom.error
    assert fine.status == "ok"  # the batch continued past the crash
    assert sleep.calls == [0.1, 0.2]  # exponential backoff


def test_invalid_cfg_marks_item_failed_not_error():
    report = run_batch(items(("bad", bad_cfg)), retries=0, sleep=RecordingSleep())
    (result,) = report.results
    assert result.status == "failed"
    assert "invalid CFG" in result.error


def test_degraded_item_counted_as_success_with_paths():
    with faults.inject(FaultPlan(sites=["lengauer-tarjan/semi-skew"])):
        report = run_batch(items(("x", good_cfg)), sleep=RecordingSleep())
    assert report.ok
    (result,) = report.results
    assert result.status == "degraded"
    assert result.paths["dominators"] == "slow"
    assert "degraded x" in report.render()


def test_serial_fallback_warning_names_every_reason():
    from repro.config import AnalysisConfig
    from repro.resilience.batch import BatchSerialFallback, serial_fallback_reasons

    def engine(cfg, deadline=None, step_budget=None):
        from repro.resilience.engine import run_analysis

        return run_analysis(cfg)

    config = AnalysisConfig(
        workers=2, engine=engine, faults=FaultPlan(sites=[])
    )
    sleep = RecordingSleep()
    assert serial_fallback_reasons(config, sleep=sleep) == [
        "custom engine callable",
        "fault injection plan",
        "custom sleep callable",
    ]
    with pytest.warns(BatchSerialFallback) as caught:
        run_batch(items(("x", good_cfg)), config=config, sleep=sleep)
    (warning,) = [
        w.message for w in caught if isinstance(w.message, BatchSerialFallback)
    ]
    assert warning.reasons == (
        "custom engine callable",
        "fault injection plan",
        "custom sleep callable",
    )
    assert "workers=2" in str(warning)


def test_serial_run_never_warns_about_fallback():
    import warnings

    from repro.resilience.batch import BatchSerialFallback

    with warnings.catch_warnings():
        warnings.simplefilter("error", BatchSerialFallback)
        report = run_batch(items(("x", good_cfg)), sleep=RecordingSleep())
    assert report.ok


def test_retry_succeeds_after_transient_environment_failure():
    attempts = []

    def flaky():
        attempts.append(1)
        if len(attempts) == 1:
            raise OSError("transient filesystem hiccup")
        return good_cfg()

    report = run_batch(items(("flaky", flaky)), retries=1, sleep=RecordingSleep())
    assert report.ok
    (result,) = report.results
    assert result.status == "ok" and result.tries == 2


# ----------------------------------------------------------------------
# checkpoint / resume
# ----------------------------------------------------------------------

def test_checkpoint_written_one_json_line_per_item(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    run_batch(
        items(("a", good_cfg), ("b", bad_cfg)),
        checkpoint_path=path,
        retries=0,
        sleep=RecordingSleep(),
    )
    lines = [json.loads(line) for line in open(path)]
    assert lines[0] == {"type": "checkpoint", "version": 1}
    items_written = lines[1:]
    assert [entry["key"] for entry in items_written] == ["a", "b"]
    assert items_written[0]["status"] == "ok"
    assert items_written[1]["status"] == "failed"


def test_resume_skips_completed_items(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    computed = []

    def tracking(key):
        def thunk():
            computed.append(key)
            return good_cfg()
        return thunk

    run_batch(
        items(("a", tracking("a"))), checkpoint_path=path, sleep=RecordingSleep()
    )
    assert computed == ["a"]
    report = run_batch(
        items(("a", tracking("a")), ("b", tracking("b"))),
        checkpoint_path=path,
        sleep=RecordingSleep(),
    )
    assert computed == ["a", "b"]  # "a" was not recomputed
    a, b = report.results
    assert a.resumed and not b.resumed
    assert "1 resumed from checkpoint" in report.render()
    # the new item was appended to the same checkpoint (after the header)
    keys = [
        entry["key"]
        for entry in map(json.loads, open(path))
        if entry.get("type") != "checkpoint"
    ]
    assert keys == ["a", "b"]


def test_no_resume_truncates_and_recomputes(tmp_path):
    path = str(tmp_path / "ck.jsonl")
    run_batch(items(("a", good_cfg)), checkpoint_path=path, sleep=RecordingSleep())
    report = run_batch(
        items(("a", good_cfg)),
        checkpoint_path=path,
        resume=False,
        sleep=RecordingSleep(),
    )
    (result,) = report.results
    assert not result.resumed
    # truncated file holds the version header plus the one recomputed item
    assert len(open(path).readlines()) == 2


def test_torn_checkpoint_lines_are_skipped(tmp_path):
    path = tmp_path / "ck.jsonl"
    good = BatchItemResult(key="a", status="ok").to_json()
    path.write_text(good + "\n" + '{"key": "b", "status"' + "\n")
    done = load_checkpoint(str(path))
    assert set(done) == {"a"}
    assert done["a"].resumed


def test_missing_checkpoint_is_empty():
    assert load_checkpoint("/nonexistent/ck.jsonl") == {}


def test_on_item_observer_sees_fresh_results_and_cannot_break_the_batch():
    seen = []

    def observer(result):
        seen.append(result.key)
        raise RuntimeError("observer bug")

    report = run_batch(
        items(("a", good_cfg), ("b", good_cfg)),
        on_item=observer,
        sleep=RecordingSleep(),
    )
    assert report.ok
    assert seen == ["a", "b"]


def test_item_result_json_roundtrip():
    original = BatchItemResult(
        key="f.mini::main",
        status="degraded",
        elapsed=0.25,
        tries=2,
        paths={"pst": "slow"},
        error=None,
    )
    restored = BatchItemResult.from_json(original.to_json())
    assert restored.key == original.key
    assert restored.status == original.status
    assert restored.paths == original.paths
    assert restored.tries == original.tries
    assert restored.resumed
