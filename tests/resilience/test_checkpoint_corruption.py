"""Checkpoint corruption: torn lines, duplicate keys, future versions.

The contract: a checkpoint produced by an interrupted, retried, or older
run must *resume* (skipping bad lines, later duplicates win); a checkpoint
from a *newer* format must refuse loudly with a structured
:class:`~repro.errors.CheckpointError` (exit 2) -- silently resuming could
double-run or skip items.
"""

import io
import json

import pytest

import repro.cli as cli
from repro.cfg.builder import cfg_from_edges
from repro.errors import EXIT_USAGE_IO, CheckpointError
from repro.resilience.batch import (
    CHECKPOINT_VERSION,
    BatchItemResult,
    checkpoint_header,
    load_checkpoint,
    run_batch,
)
from tests.resilience.conftest import RecordingSleep

SOURCE = "proc f(n) { return n; }\nproc g(n) { return n; }\n"


def good_cfg():
    return cfg_from_edges([("start", "a"), ("a", "end")])


def tracking(key, computed):
    def thunk():
        computed.append(key)
        return good_cfg()
    return thunk


def item_line(key, status="ok"):
    return BatchItemResult(key=key, status=status).to_json()


# ----------------------------------------------------------------------
# torn final line
# ----------------------------------------------------------------------

def test_truncated_final_line_resumes_whole_items_only(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(
        checkpoint_header() + "\n"
        + item_line("a") + "\n"
        + '{"key": "b", "sta'  # process died mid-write
    )
    done = load_checkpoint(str(path))
    assert set(done) == {"a"}

    computed = []
    report = run_batch(
        [("a", tracking("a", computed)), ("b", tracking("b", computed))],
        checkpoint_path=str(path),
        sleep=RecordingSleep(),
    )
    assert report.ok
    assert computed == ["b"]  # "a" resumed, the torn "b" recomputed once
    a, b = report.results
    assert a.resumed and not b.resumed


def test_truncated_header_falls_back_to_legacy_parsing(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text('{"type": "checkp' + "\n" + item_line("a") + "\n")
    assert set(load_checkpoint(str(path))) == {"a"}


# ----------------------------------------------------------------------
# duplicate keys (a retried run appended a second line for the same item)
# ----------------------------------------------------------------------

def test_duplicate_keys_later_line_wins(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(
        checkpoint_header() + "\n"
        + item_line("a", status="error") + "\n"
        + item_line("a", status="ok") + "\n"
    )
    done = load_checkpoint(str(path))
    assert set(done) == {"a"}
    assert done["a"].status == "ok"
    assert done["a"].resumed


def test_duplicate_keys_do_not_double_run_on_resume(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(
        checkpoint_header() + "\n"
        + item_line("a") + "\n"
        + item_line("a") + "\n"
    )
    computed = []
    report = run_batch(
        [("a", tracking("a", computed))],
        checkpoint_path=str(path),
        sleep=RecordingSleep(),
    )
    assert report.ok and computed == []
    (result,) = report.results
    assert result.resumed


# ----------------------------------------------------------------------
# version mismatch
# ----------------------------------------------------------------------

def future_header():
    return json.dumps({"type": "checkpoint", "version": CHECKPOINT_VERSION + 1})


def test_newer_checkpoint_version_refuses_to_resume(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(future_header() + "\n" + item_line("a") + "\n")
    with pytest.raises(CheckpointError) as exc:
        load_checkpoint(str(path))
    assert exc.value.version == CHECKPOINT_VERSION + 1
    assert "refusing to resume" in str(exc.value)


def test_unreadable_version_is_a_structured_error(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text('{"type": "checkpoint", "version": "vNext"}\n')
    with pytest.raises(CheckpointError):
        load_checkpoint(str(path))


def test_run_batch_surfaces_the_version_error_not_a_crash(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(future_header() + "\n")
    with pytest.raises(CheckpointError):
        run_batch(
            [("a", good_cfg)], checkpoint_path=str(path), sleep=RecordingSleep()
        )


def test_cli_batch_exits_2_on_future_checkpoint(tmp_path, capsys):
    src = tmp_path / "prog.mini"
    src.write_text(SOURCE)
    ck = tmp_path / "ck.jsonl"
    ck.write_text(future_header() + "\n")
    out = io.StringIO()
    code = cli.main(
        ["batch", str(src), "--checkpoint", str(ck)], out=out
    )
    assert code == EXIT_USAGE_IO
    err = capsys.readouterr().err
    assert "CheckpointError" in err and "version 2" in err
    assert "Traceback" not in err


def test_legacy_headerless_checkpoint_still_resumes(tmp_path):
    path = tmp_path / "ck.jsonl"
    path.write_text(item_line("a") + "\n")  # pre-versioning format
    assert set(load_checkpoint(str(path))) == {"a"}


def test_fresh_checkpoint_gets_one_header_and_appends_never_duplicate_it(
    tmp_path,
):
    path = tmp_path / "ck.jsonl"
    run_batch([("a", good_cfg)], checkpoint_path=str(path), sleep=RecordingSleep())
    run_batch(
        [("a", good_cfg), ("b", good_cfg)],
        checkpoint_path=str(path),
        sleep=RecordingSleep(),
    )
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    headers = [l for l in lines if l.get("type") == "checkpoint"]
    assert headers == [{"type": "checkpoint", "version": CHECKPOINT_VERSION}]
