"""CLI robustness: exit codes, structured diagnostics, batch, fail-fast."""

import io
import json

import pytest

import repro.cli as cli
import repro.core.pst as core_pst
from repro.cfg.graph import InvalidCFGError
from repro.errors import AnalysisError, BudgetExceeded
from repro.fuzz.oracles import ORACLES_BY_NAME, Oracle
from repro.fuzz.runner import run_fuzz

SOURCE = """
proc f(n) {
    s = 0;
    while (s < n) {
        if (n > 10) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}
proc g(n) {
    return n;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(SOURCE)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = cli.main(argv, out=out)
    return code, out.getvalue()


# ----------------------------------------------------------------------
# per-procedure error handling and exit codes
# ----------------------------------------------------------------------

def _boom(error):
    def fake_build_pst(cfg, *args, **kwargs):
        raise error

    return fake_build_pst


def test_invalid_cfg_exits_3_with_structured_line(source_file, monkeypatch, capsys):
    # The CLI builds its PST through an AnalysisSession, which resolves
    # build_pst from repro.core.pst at call time -- patch it there.
    monkeypatch.setattr(core_pst, "build_pst", _boom(InvalidCFGError("no end node")))
    code, _ = run([source_file])
    assert code == 3
    err = capsys.readouterr().err
    assert "error[invalid-cfg]: proc f: no end node" in err
    assert "Traceback" not in err


def test_analysis_error_exits_4(source_file, monkeypatch, capsys):
    monkeypatch.setattr(core_pst, "build_pst", _boom(AnalysisError("divergence")))
    code, _ = run([source_file])
    assert code == 4
    assert "error[analysis]: proc f: divergence" in capsys.readouterr().err


def test_resource_exhausted_exits_4(source_file, monkeypatch, capsys):
    monkeypatch.setattr(core_pst, "build_pst", _boom(BudgetExceeded("budget")))
    code, _ = run([source_file])
    assert code == 4
    assert "error[resource]" in capsys.readouterr().err


def test_internal_crash_exits_4_without_traceback(source_file, monkeypatch, capsys):
    monkeypatch.setattr(core_pst, "build_pst", _boom(AssertionError("stack discipline")))
    code, _ = run([source_file])
    assert code == 4
    err = capsys.readouterr().err
    assert "error[internal]: proc f: AssertionError: stack discipline" in err
    assert "Traceback" not in err


def test_failing_procedure_does_not_block_the_next_one(
    source_file, monkeypatch, capsys
):
    real_build_pst = core_pst.build_pst
    calls = []

    def flaky(cfg, *args, **kwargs):
        calls.append(cfg)
        if len(calls) == 1:
            raise InvalidCFGError("first proc is broken")
        return real_build_pst(cfg, *args, **kwargs)

    monkeypatch.setattr(core_pst, "build_pst", flaky)
    code, text = run([source_file])
    assert code == 3  # worst code wins, but...
    assert "proc g:" in text  # ...proc g was still analyzed and reported
    assert "error[invalid-cfg]: proc f" in capsys.readouterr().err


def test_preexisting_exit_codes_unchanged(tmp_path, source_file):
    bad = tmp_path / "bad.mini"
    bad.write_text("proc broken( {")
    assert run([str(bad)])[0] == 1  # parse diagnostics
    assert run([str(tmp_path / "missing.mini")])[0] == 2  # I/O
    assert run([source_file, "--proc", "nope"])[0] == 1  # no such proc
    assert run([source_file])[0] == 0


# ----------------------------------------------------------------------
# the batch subcommand
# ----------------------------------------------------------------------

def test_batch_happy_path(source_file):
    code, text = run(["batch", source_file])
    assert code == 0
    assert "2 ok" in text


def test_batch_isolates_a_broken_file_and_exits_4(tmp_path, source_file):
    bad = tmp_path / "bad.mini"
    bad.write_text("proc broken( {")
    code, text = run(["batch", source_file, str(bad)])
    assert code == 4
    assert "2 ok" in text  # the good file's procedures still ran
    assert "ERROR" in text and "bad.mini" in text


def test_batch_checkpoint_resume(tmp_path, source_file):
    ck = str(tmp_path / "ck.jsonl")
    code, _ = run(["batch", source_file, "--checkpoint", ck])
    assert code == 0
    entries = [json.loads(line) for line in open(ck)]
    assert entries[0] == {"type": "checkpoint", "version": 1}
    assert {e["key"].split("::")[1] for e in entries[1:]} == {"f", "g"}
    code, text = run(["batch", source_file, "--checkpoint", ck])
    assert code == 0
    assert "2 resumed from checkpoint" in text
    # header + 2 items; nothing recomputed or re-appended
    assert len(open(ck).readlines()) == 3


def test_batch_trace_records_merged_parallel_trace(tmp_path, source_file):
    trace_path = str(tmp_path / "batch.jsonl")
    code, _ = run(
        ["batch", source_file, "--workers", "2", "--trace", trace_path]
    )
    assert code == 0
    code, text = run(["trace", "--check", trace_path])
    assert code == 0 and "valid" in text
    records = [json.loads(line) for line in open(trace_path)]
    spans = [r for r in records if r["type"] == "span"]
    assert any(s["name"] == "run_batch" for s in spans)
    # The per-item engine spans recorded in the workers are stitched in.
    assert sum(1 for s in spans if s["name"] == "run_analysis") == 2
    assert any(r["type"] == "metrics_dump" for r in records)


def test_batch_rejects_negative_retries(source_file, capsys):
    assert run(["batch", source_file, "--retries", "-1"])[0] == 2
    assert "--retries" in capsys.readouterr().err


def test_batch_unwritable_checkpoint_exits_2(source_file, capsys):
    code, _ = run(["batch", source_file, "--checkpoint", "/nonexistent/dir/ck.jsonl"])
    assert code == 2


# ----------------------------------------------------------------------
# fuzz --fail-fast
# ----------------------------------------------------------------------

def test_run_fuzz_fail_fast_stops_at_first_divergence(monkeypatch):
    always_bad = Oracle("test/always-bad", lambda case: "synthetic divergence")
    monkeypatch.setitem(ORACLES_BY_NAME, always_bad.name, always_bad)
    report = run_fuzz(seed=0, count=10, size=6, oracles=[always_bad], fail_fast=True)
    assert report.cases_run == 1
    assert len(report.divergences) == 1
    full = run_fuzz(seed=0, count=5, size=6, oracles=[always_bad], fail_fast=False)
    assert full.cases_run == 5


def test_fuzz_cli_accepts_fail_fast_flag():
    code, text = run(["fuzz", "--seed", "0", "--count", "3", "--fail-fast"])
    assert code == 0  # no divergences expected on a healthy tree
    assert "divergences: none" in text
