"""Fault-injection plumbing: determinism, scoping, and real corruption."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.controldep.regions_cfs import control_regions_cfs
from repro.controldep.regions_fast import control_regions
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.resilience import faults
from repro.resilience.faults import ALL_SITES, FaultPlan, SITES_BY_NAME


@pytest.fixture(autouse=True)
def _no_leftover_plan():
    yield
    faults.uninstall()
    assert faults.active_plan() is None


def demo_cfg():
    """Loops + branches: every fault site has eligible executions here."""
    return cfg_from_edges(
        [
            ("start", "a"), ("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"),
            ("d", "e"), ("e", "a"), ("e", "end"), ("start", "end"),
        ]
    )


# ----------------------------------------------------------------------
# plan semantics
# ----------------------------------------------------------------------

def test_all_sites_have_unique_names_and_modules():
    names = [site.name for site in ALL_SITES]
    assert len(names) == len(set(names))
    assert set(SITES_BY_NAME) == set(names)
    for site in ALL_SITES:
        assert site.description


def test_unknown_site_rejected():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultPlan(sites=["no/such-site"])


def test_rate_out_of_range_rejected():
    with pytest.raises(ValueError):
        FaultPlan(rate=1.5)


def test_default_plan_fires_every_eligible_execution():
    plan = FaultPlan(sites=["cycle-equiv/skip-cap"])
    assert all(plan.should_fire("cycle-equiv/skip-cap") for _ in range(10))
    assert plan.fires["cycle-equiv/skip-cap"] == 10
    assert not plan.should_fire("bracketlist/push-bottom")  # not armed


def test_max_fires_bounds_firings():
    plan = FaultPlan(max_fires=2)
    results = [plan.should_fire("bracketlist/push-bottom") for _ in range(5)]
    assert results == [True, True, False, False, False]
    assert plan.total_fires() == 2


def test_skip_first_delays_firing():
    plan = FaultPlan(skip_first=3)
    results = [plan.should_fire("cycle-equiv/skip-cap") for _ in range(5)]
    assert results == [False, False, False, True, True]


def test_probabilistic_firing_is_deterministic_in_the_seed():
    def pattern(seed):
        plan = FaultPlan(sites=["lengauer-tarjan/semi-skew"], seed=seed, rate=0.5)
        return [plan.should_fire("lengauer-tarjan/semi-skew") for _ in range(64)]

    assert pattern(7) == pattern(7)
    assert pattern(7) != pattern(8)  # astronomically unlikely to collide
    assert any(pattern(7)) and not all(pattern(7))


def test_site_streams_are_independent():
    # Calls to one site must not perturb another site's random stream.
    plain = FaultPlan(seed=3, rate=0.5)
    a = [plain.should_fire("bracketlist/push-bottom") for _ in range(64)]
    interleaved = FaultPlan(seed=3, rate=0.5)
    for _ in range(64):
        interleaved.should_fire("cycle-equiv/skip-cap")
    b = [interleaved.should_fire("bracketlist/push-bottom") for _ in range(64)]
    assert a == b


# ----------------------------------------------------------------------
# install / uninstall / inject scoping
# ----------------------------------------------------------------------

def test_install_and_uninstall_roundtrip():
    plan = FaultPlan()
    faults.install(plan)
    assert faults.active_plan() is plan
    faults.uninstall()
    assert faults.active_plan() is None


def test_inject_restores_previous_plan():
    outer = FaultPlan(seed=1)
    inner = FaultPlan(seed=2)
    with faults.inject(outer):
        with faults.inject(inner):
            assert faults.active_plan() is inner
        assert faults.active_plan() is outer
    assert faults.active_plan() is None


def test_inject_uninstalls_on_exception():
    with pytest.raises(RuntimeError):
        with faults.inject(FaultPlan()):
            raise RuntimeError("boom")
    assert faults.active_plan() is None


def test_no_plan_means_clean_behaviour():
    cfg = demo_cfg()
    baseline = cycle_equivalence_of_cfg(cfg).class_of
    with faults.inject(FaultPlan(sites=["cycle-equiv/skip-cap"])):
        pass  # installed and removed without running anything
    assert cycle_equivalence_of_cfg(cfg).class_of == baseline


# ----------------------------------------------------------------------
# each site corrupts its algorithm observably
# ----------------------------------------------------------------------

def test_push_bottom_corrupts_cycle_equivalence():
    cfg = demo_cfg()
    clean = cycle_equivalence_of_cfg(cfg)
    with faults.inject(FaultPlan(sites=["bracketlist/push-bottom"])) as plan:
        try:
            faulty = cycle_equivalence_of_cfg(cfg)
            corrupted = faulty.class_of != clean.class_of
        except Exception:
            corrupted = True  # a crash counts as observable corruption
    assert plan.total_fires() > 0
    assert corrupted


def test_skip_cap_corrupts_control_regions():
    cfg = demo_cfg()
    reference = control_regions_cfs(cfg)
    assert control_regions(cfg) == reference
    with faults.inject(FaultPlan(sites=["cycle-equiv/skip-cap"])) as plan:
        try:
            faulty = control_regions(cfg)
            corrupted = faulty != reference
        except Exception:
            corrupted = True
    assert plan.total_fires() > 0
    assert corrupted


def test_semi_skew_corrupts_dominators():
    cfg = demo_cfg()
    reference = immediate_dominators(cfg)
    assert lengauer_tarjan(cfg) == reference
    with faults.inject(FaultPlan(sites=["lengauer-tarjan/semi-skew"])) as plan:
        faulty = lengauer_tarjan(cfg)
    assert plan.total_fires() > 0
    assert faulty != reference


def test_transient_fault_only_hits_the_first_run():
    cfg = demo_cfg()
    reference = immediate_dominators(cfg)
    with faults.inject(
        FaultPlan(sites=["lengauer-tarjan/semi-skew"], max_fires=1)
    ) as plan:
        first = lengauer_tarjan(cfg)
        second = lengauer_tarjan(cfg)
    assert plan.total_fires() == 1
    assert first != reference
    assert second == reference
