"""Shared pathological graphs and fakes for the resilience tests."""

from __future__ import annotations

from typing import List

from repro.cfg.graph import CFG


def chain_cfg(length: int) -> CFG:
    """start -> c0 -> c1 -> ... -> end: maximal sequential depth."""
    cfg = CFG(start="start", end="end")
    previous = "start"
    for i in range(length):
        cfg.add_edge(previous, f"c{i}")
        previous = f"c{i}"
    cfg.add_edge(previous, "end")
    return cfg


def ladder_cfg(rungs: int) -> CFG:
    """Two rails with cross edges plus backedges: bracket-heavy.

    Every rung adds a cross edge and a backedge to the entry, so the DFS
    carries many brackets -- the shape that stresses cycle equivalence and
    the semidominator computation.
    """
    cfg = CFG(start="start", end="end")
    cfg.add_edge("start", "a0")
    cfg.add_edge("start", "b0")
    for i in range(rungs):
        cfg.add_edge(f"a{i}", f"a{i + 1}")
        cfg.add_edge(f"b{i}", f"b{i + 1}")
        cfg.add_edge(f"a{i}", f"b{i}")
        cfg.add_edge(f"b{i + 1}", f"a{i}")
    cfg.add_edge(f"a{rungs}", "end")
    cfg.add_edge(f"b{rungs}", "end")
    return cfg


class FakeClock:
    """A clock advancing a fixed amount per read; deadline tests stay fast."""

    def __init__(self, step: float = 0.0):
        self.now = 0.0
        self.step = step
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        value = self.now
        self.now += self.step
        return value

    def advance(self, amount: float) -> None:
        self.now += amount


class RecordingSleep:
    """Stands in for time.sleep; records requested pauses."""

    def __init__(self):
        self.calls: List[float] = []

    def __call__(self, seconds: float) -> None:
        self.calls.append(seconds)
