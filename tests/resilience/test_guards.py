"""Ticker semantics, and guard wiring in each of the four algorithms."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import ReachingDefinitions
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    ReproError,
    ResourceExhausted,
)
from repro.ir import Assign, LoweredProcedure
from repro.resilience.guards import Ticker
from tests.resilience.conftest import FakeClock, chain_cfg, ladder_cfg


# ----------------------------------------------------------------------
# Ticker unit semantics
# ----------------------------------------------------------------------

def test_budget_is_exact_regardless_of_check_every():
    ticker = Ticker(step_budget=5, check_every=100)
    for _ in range(5):
        ticker.tick()
    with pytest.raises(BudgetExceeded) as info:
        ticker.tick()
    assert info.value.steps == 6
    assert info.value.limit == 5


def test_budget_zero_rejects_first_tick():
    ticker = Ticker(step_budget=0, check_every=7)
    with pytest.raises(BudgetExceeded):
        ticker.tick()


def test_bulk_ticks_count_fully():
    ticker = Ticker(step_budget=10)
    ticker.tick(10)
    with pytest.raises(BudgetExceeded):
        ticker.tick(1)


def test_deadline_detected_at_the_next_checkpoint():
    clock = FakeClock(step=0.0)
    ticker = Ticker(deadline=1.0, check_every=4, clock=clock)
    ticker.tick(3)  # below check_every: clock untouched
    assert clock.reads == 1  # only the constructor read it
    clock.advance(2.0)  # deadline now past
    with pytest.raises(DeadlineExceeded) as info:
        ticker.tick(1)  # 4th tick reaches the checkpoint and sees the overrun
    assert info.value.elapsed > 1.0
    assert info.value.limit == 1.0


def test_check_forces_immediate_deadline_detection():
    clock = FakeClock()
    ticker = Ticker(deadline=1.0, check_every=1_000_000, clock=clock)
    ticker.tick(10)
    clock.advance(5.0)
    with pytest.raises(DeadlineExceeded):
        ticker.check()


def test_unbounded_ticker_never_raises():
    ticker = Ticker()
    ticker.tick(10_000)
    ticker.check()
    assert ticker.remaining_budget() == float("inf")
    assert ticker.remaining_deadline() == float("inf")


def test_remaining_budget_counts_down():
    ticker = Ticker(step_budget=10, check_every=3)
    ticker.tick(4)
    assert ticker.remaining_budget() == 6


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        Ticker(check_every=0)
    with pytest.raises(ValueError):
        Ticker(step_budget=-1)


def test_exception_taxonomy():
    assert issubclass(BudgetExceeded, ResourceExhausted)
    assert issubclass(DeadlineExceeded, ResourceExhausted)
    assert issubclass(ResourceExhausted, ReproError)
    assert issubclass(ReproError, Exception)


# ----------------------------------------------------------------------
# wiring: each guarded algorithm stops on pathological inputs
# ----------------------------------------------------------------------

def _dataflow_proc(cfg):
    proc = LoweredProcedure("p", cfg)
    for node in cfg.nodes:
        if node not in ("start", "end"):
            proc.blocks[node].append(Assign("x", ("x",), "x+1"))
    return proc


CHAIN = chain_cfg(60)
LADDER = ladder_cfg(25)


@pytest.mark.parametrize("cfg", [CHAIN, LADDER], ids=["chain", "ladder"])
@pytest.mark.parametrize(
    "run",
    [
        lambda cfg, ticker: cycle_equivalence_of_cfg(cfg, ticker=ticker),
        lambda cfg, ticker: lengauer_tarjan(cfg, ticker=ticker),
        lambda cfg, ticker: immediate_dominators(cfg, ticker=ticker),
        lambda cfg, ticker: solve_iterative(
            cfg, ReachingDefinitions(_dataflow_proc(cfg)), ticker=ticker
        ),
    ],
    ids=["cycle-equiv", "lengauer-tarjan", "iterative-dominators", "dataflow"],
)
class TestGuardWiring:
    def test_tiny_budget_trips(self, run, cfg):
        with pytest.raises(BudgetExceeded):
            run(cfg, Ticker(step_budget=3, check_every=1))

    def test_expired_deadline_trips(self, run, cfg):
        clock = FakeClock(step=1.0)  # every read advances a full second
        with pytest.raises(DeadlineExceeded):
            run(cfg, Ticker(deadline=0.5, check_every=1, clock=clock))

    def test_generous_guard_matches_unguarded(self, run, cfg):
        guarded = run(cfg, Ticker(step_budget=10_000_000, deadline=3600.0))
        unguarded = run(cfg, None)
        if hasattr(guarded, "class_of"):
            assert guarded.class_of == unguarded.class_of
        elif hasattr(guarded, "before"):
            assert guarded.before == unguarded.before
            assert guarded.after == unguarded.after
        else:
            assert guarded == unguarded

    def test_budget_scales_with_input(self, run, cfg):
        # A budget generous for the small prefix trips on the full graph:
        # the guard actually tracks work done, not just a constant.
        steps_needed = _steps_to_finish(run, cfg)
        with pytest.raises(BudgetExceeded):
            run(cfg, Ticker(step_budget=max(1, steps_needed // 4), check_every=1))


def _steps_to_finish(run, cfg) -> int:
    ticker = Ticker()
    run(cfg, ticker)
    return ticker.steps


def test_small_graph_guarded_end_to_end():
    cfg = cfg_from_edges(
        [("start", "a"), ("a", "b", "T"), ("a", "end", "F"), ("b", "a"), ("b", "end")]
    )
    equiv = cycle_equivalence_of_cfg(cfg, ticker=Ticker(step_budget=10_000))
    assert equiv.class_of == cycle_equivalence_of_cfg(cfg).class_of
