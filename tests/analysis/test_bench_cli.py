"""`repro bench --check`: exit codes, including 3 on a ratio regression."""

import io
import json

from repro.analysis.bench import bench_main
from repro.errors import EXIT_BUDGET_EXCEEDED


def run(argv):
    out = io.StringIO()
    code = bench_main(argv, out)
    return code, out.getvalue()


def write_baseline(tmp_path, ratio):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({
        "components": {
            name: [{"statements": 40, "ratio": ratio}]
            for name in ("cycle_equiv", "lengauer_tarjan",
                         "build_pst", "control_regions")
        }
    }))
    return str(path)


def test_check_within_tolerance_exits_zero(tmp_path):
    baseline = write_baseline(tmp_path, ratio=1000.0)
    code, text = run(["--sizes", "40", "--repeats", "1",
                      "--out", str(tmp_path), "--check", baseline])
    assert code == 0
    assert "all ratios within tolerance" in text


def test_check_regression_exits_budget_exceeded(tmp_path):
    baseline = write_baseline(tmp_path, ratio=1e-6)
    code, text = run(["--sizes", "40", "--repeats", "1",
                      "--out", str(tmp_path), "--check", baseline])
    assert code == EXIT_BUDGET_EXCEEDED == 3
    assert "perf regression" in text
    assert "REGRESSED" in text


def test_unreadable_baseline_is_usage_error(tmp_path):
    code, _ = run(["--sizes", "40", "--repeats", "1",
                   "--out", str(tmp_path),
                   "--check", str(tmp_path / "missing.json")])
    assert code == 2
