"""Tests for the empirical-analysis statistics."""

import pytest

from repro.core.pst import build_pst
from repro.analysis.pst_stats import (
    corpus_stats,
    depth_distribution,
    kind_distribution,
    phi_sparsity,
    procedure_profile,
    qpg_sizes,
)
from repro.core.region_kinds import RegionKind
from repro.synth.corpus import all_procedures, standard_corpus
from repro.synth.patterns import diamond, sequence_of_diamonds
from repro.synth.structured import random_lowered_procedure


@pytest.fixture(scope="module")
def procs():
    return all_procedures(standard_corpus(scale=0.1))


def test_depth_distribution_diamond():
    dist = depth_distribution([build_pst(diamond())])
    assert dist.counts == {1: 1, 2: 2}
    assert dist.total == 3
    assert dist.maximum == 2
    assert dist.average == pytest.approx((1 + 2 + 2) / 3)
    assert dist.cumulative_fraction(1) == pytest.approx(1 / 3)
    assert dist.cumulative_fraction(2) == 1.0


def test_depth_distribution_empty():
    dist = depth_distribution([])
    assert dist.total == 0
    assert dist.average == 0.0
    assert dist.cumulative_fraction(3) == 0.0


def test_kind_distribution_counts_weights():
    kinds = kind_distribution([build_pst(diamond())])
    assert kinds[RegionKind.CASE] >= 2  # the outer region weighs 2
    assert sum(kinds.values()) >= 3


def test_procedure_profile_shapes(procs):
    profile = procedure_profile(procs[:10])
    assert len(profile) == 10
    for size, regions, avg_depth, max_region in profile:
        assert size >= 2
        assert regions >= 0
        assert avg_depth >= 0
        assert max_region <= size


def test_corpus_stats_aggregates(procs):
    stats = corpus_stats(procs[:20])
    assert stats.procedures == 20
    assert stats.regions == stats.depth.total
    assert 0 <= stats.completely_structured <= 20
    assert len(stats.profile) == 20
    assert sum(stats.kind_weights.values()) > 0


def test_phi_sparsity_fractions(procs):
    fractions = phi_sparsity(procs[:8])
    assert fractions
    assert all(0 < f <= 1 for f in fractions)


def test_phi_sparsity_mostly_sparse():
    """For a large procedure, most variables examine a minority of regions."""
    proc = random_lowered_procedure(21, target_statements=250)
    fractions = phi_sparsity([proc])
    sparse = sum(1 for f in fractions if f < 0.5)
    assert sparse > len(fractions) / 2


def test_qpg_sizes_shape(procs):
    rows = qpg_sizes(procs[:5], max_vars_per_proc=3)
    assert rows
    for blocks, statements, qpg_nodes in rows:
        assert qpg_nodes <= blocks
        assert statements >= 0


def test_qpg_sizes_small_on_transparent_chain():
    from repro.ir import Assign, LoweredProcedure

    cfg = sequence_of_diamonds(6)
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t0"].append(Assign("x", (), "1"))
    [(blocks, _, qpg_nodes)] = qpg_sizes([proc])
    assert qpg_nodes < blocks / 2
