"""Tests for the one-call report generator."""

from repro.analysis.report import generate_report, main
from repro.synth.corpus import standard_corpus


def test_report_contains_all_sections():
    report = generate_report(corpus=standard_corpus(scale=0.08))
    for marker in ("== T1:", "== F5:", "== F6(a):", "== F7:", "== F9:", "== F10:", "== P4:"):
        assert marker in report


def test_report_numbers_present():
    report = generate_report(corpus=standard_corpus(scale=0.08))
    assert "regions:" in report
    assert "completely structured procedures:" in report
    assert "%" in report


def test_main_prints(capsys):
    assert main(["0.05"]) == 0
    out = capsys.readouterr().out
    assert "== T1:" in out
