"""Tests for the text table/histogram/scatter renderers."""

from repro.analysis.tables import format_histogram, format_scatter, format_table


def test_format_table_alignment():
    text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert "22" in lines[3]
    # numeric column right-aligned: 1 and 22 end at the same column
    assert lines[2].rstrip().endswith("1")
    assert lines[3].rstrip().endswith("22")


def test_format_histogram_bars_and_cumulative():
    text = format_histogram({1: 5, 2: 10, 3: 5}, label="depth")
    lines = text.splitlines()
    assert len(lines) == 3
    assert "depth   1" in lines[0]
    assert "(100.0% cum)" in lines[2]
    assert lines[1].count("#") > lines[0].count("#")


def test_format_histogram_empty():
    assert format_histogram({}) == "(empty)"


def test_format_scatter_buckets():
    points = [(i, float(i % 3)) for i in range(100)]
    text = format_scatter(points, "size", "depth", buckets=4)
    lines = text.splitlines()
    assert "size" in lines[0]
    assert len(lines) == 5  # header + 4 buckets


def test_format_scatter_empty():
    assert format_scatter([], "x", "y") == "(empty)"


def test_format_scatter_single_point():
    text = format_scatter([(5.0, 2.0)], "x", "y", buckets=3)
    assert "2.00" in text
