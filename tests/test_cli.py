"""CLI tests (direct main() invocation; no subprocess needed)."""

import io

import pytest

from repro.cli import main

SOURCE = """
proc f(n) {
    s = 0;
    while (s < n) {
        if (n > 10) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mini"
    path.write_text(SOURCE)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_summary(source_file):
    code, text = run([source_file])
    assert code == 0
    assert "proc f:" in text
    assert "SESE regions" in text


def test_regions_listing(source_file):
    code, text = run([source_file, "--regions"])
    assert code == 0
    assert "kind=" in text
    assert "depth=" in text


def test_pst_tree(source_file):
    code, text = run([source_file, "--pst"])
    assert code == 0
    assert "- root" in text


def test_control_regions(source_file):
    code, text = run([source_file, "--control-regions"])
    assert code == 0
    assert "control region:" in text


def test_ssa_output(source_file):
    code, text = run([source_file, "--ssa"])
    assert code == 0
    assert "phi(" in text
    assert "s#" in text


def test_dot_output(source_file):
    code, text = run([source_file, "--dot"])
    assert code == 0
    assert "digraph" in text


def test_proc_filter(tmp_path):
    path = tmp_path / "two.mini"
    path.write_text("proc a() { return 1; } proc b() { return 2; }")
    code, text = run([str(path), "--proc", "b"])
    assert code == 0
    assert "proc b:" in text
    assert "proc a:" not in text


def test_proc_filter_missing(source_file):
    code, _ = run([source_file, "--proc", "ghost"])
    assert code == 1


def test_missing_file():
    code, _ = run(["/nonexistent/path.mini"])
    assert code == 2


def test_parse_error(tmp_path):
    path = tmp_path / "bad.mini"
    path.write_text("proc f() { x = ; }")
    code, _ = run([str(path)])
    assert code == 1
