"""AnalysisConfig: the one frozen config, plus the legacy-kwarg coalescer."""

import dataclasses

import pytest

from repro.config import (
    ALL_ANALYSES,
    DEFAULT_CONFIG,
    _UNSET,
    AnalysisConfig,
    coalesce_config,
)


def test_config_is_frozen():
    config = AnalysisConfig()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.deadline = 1.0


def test_replace_derives_without_mutating():
    base = AnalysisConfig(deadline=1.0)
    derived = base.replace(step_budget=100)
    assert base.step_budget is None
    assert derived.deadline == 1.0 and derived.step_budget == 100


def test_analyses_iterables_normalize_to_tuples():
    config = AnalysisConfig(analyses=["pst", "dominators"])
    assert config.analyses == ("pst", "dominators")
    assert hash(config.replace(observer=None))  # stays hashable


@pytest.mark.parametrize(
    "kwargs",
    [
        {"fast_retries": -1},
        {"retries": -1},
        {"workers": 0},
        {"check_every": 0},
        {"full_check_limit": -1},
        {"backoff": -0.1},
        {"backoff_factor": -1.0},
        {"step_budget": -5},
    ],
)
def test_invalid_fields_raise_value_error(kwargs):
    with pytest.raises(ValueError):
        AnalysisConfig(**kwargs)


def test_coalesce_without_legacy_returns_base_unchanged():
    base = AnalysisConfig(deadline=2.0)
    assert coalesce_config(base, "f", {"deadline": _UNSET}) is base
    assert coalesce_config(None, "f", {"deadline": _UNSET}) is DEFAULT_CONFIG


def test_coalesce_warns_and_legacy_overrides_config():
    base = AnalysisConfig(deadline=2.0, step_budget=10)
    with pytest.warns(DeprecationWarning, match="f: keyword\\(s\\) deadline"):
        merged = coalesce_config(
            base, "f", {"deadline": 9.0, "step_budget": _UNSET}
        )
    assert merged.deadline == 9.0
    assert merged.step_budget == 10  # untouched fields come from the config


def test_engine_legacy_kwargs_warn_and_apply():
    from repro.cfg.builder import cfg_from_edges
    from repro.resilience.engine import run_analysis

    cfg = cfg_from_edges([("start", "a"), ("a", "end")], "start", "end")
    with pytest.warns(DeprecationWarning, match="run_analysis: keyword"):
        result = run_analysis(cfg, deadline=3600.0, step_budget=10**9)
    assert result.ok


def test_batch_legacy_kwargs_warn_and_apply():
    from repro.cfg.builder import cfg_from_edges
    from repro.resilience.batch import run_batch

    cfg = cfg_from_edges([("start", "a"), ("a", "end")], "start", "end")
    with pytest.warns(DeprecationWarning, match="run_batch: keyword"):
        report = run_batch([("k", lambda: cfg)], retries=0)
    assert report.results[0].status == "ok"


def test_engine_config_analyses_select_stages():
    from repro.cfg.builder import cfg_from_edges
    from repro.resilience.engine import run_analysis

    cfg = cfg_from_edges([("start", "a"), ("a", "end")], "start", "end")
    result = run_analysis(cfg, config=AnalysisConfig(analyses=("dominators",)))
    assert result.ok
    assert result.idom is not None
    assert result.pst is None
    assert set(result.diagnostic.paths) == {"dominators"}
    assert ALL_ANALYSES == ("pst", "dominators", "control-regions")
