"""Shrinker behavior: minimality, validity preservation, emitted tests."""

from repro.cfg.validate import is_valid_cfg
from repro.fuzz.generator import FuzzCase, cfg_from_edges, edges_of, generate_case
from repro.fuzz.oracles import ORACLES_BY_NAME
from repro.fuzz.shrink import regression_test_source, shrink_cfg


def _has_self_loop(cfg):
    return any(edge.is_self_loop for edge in cfg.edges)


def test_shrinks_to_minimal_self_loop_witness():
    cfg = generate_case(2, size=12, strategy="multigraph_storm").cfg
    if not _has_self_loop(cfg):
        cfg.add_edge("n0", "n0")
    shrunk = shrink_cfg(cfg, _has_self_loop)
    assert is_valid_cfg(shrunk)
    assert _has_self_loop(shrunk)
    # minimal witness: spine to the looping node and out again, nothing more
    assert shrunk.num_nodes <= 3
    assert shrunk.num_edges <= 3


def test_shrink_preserves_divergence_under_injected_bug():
    """Shrinking against a wrong 'algorithm' keeps its distinguishing core."""

    def fake_divergence(cfg):
        # Stand-in for a real oracle check: 'diverges' iff the graph has a
        # node with two or more self-loops (a shape a buggy multigraph
        # implementation might collapse).
        counts = {}
        for edge in cfg.edges:
            if edge.is_self_loop:
                counts[edge.source] = counts.get(edge.source, 0) + 1
        return any(n >= 2 for n in counts.values())

    cfg = cfg_from_edges("start", "end", [
        ("start", "a"), ("a", "b"), ("b", "c"), ("c", "end"),
        ("b", "b"), ("b", "b"), ("a", "c"), ("c", "a"),
    ])
    assert fake_divergence(cfg)
    shrunk = shrink_cfg(cfg, fake_divergence)
    assert fake_divergence(shrunk)
    assert is_valid_cfg(shrunk)
    assert shrunk.num_edges <= 4  # spine through b plus the two self-loops


def test_no_shrink_when_property_absent():
    cfg = generate_case(0, size=5).cfg
    before = edges_of(cfg)
    result = shrink_cfg(cfg, lambda c: False)
    assert edges_of(result) == before


def test_emitted_regression_source_is_executable():
    """The emitted pytest code runs as-is and passes for a healthy oracle."""
    shrunk = cfg_from_edges("start", "end", [("start", "a"), ("a", "a"), ("a", "end")])
    source = regression_test_source(
        shrunk, "pst/structure", seed=99, strategy="degenerate", detail="demo"
    )
    namespace = {
        "cfg_from_edges": cfg_from_edges,
        "FuzzCase": FuzzCase,
        "ORACLES_BY_NAME": ORACLES_BY_NAME,
    }
    exec(source, namespace)
    namespace["test_pst_structure_seed99"]()


def test_emitted_source_contains_recipe_provenance():
    shrunk = cfg_from_edges("start", "end", [("start", "end")])
    source = regression_test_source(
        shrunk, "dominators/matrix", seed=7, strategy="irreducible"
    )
    assert "seed=7" in source and "irreducible" in source
    assert "('start', 'end')" in source
