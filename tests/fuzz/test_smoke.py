"""The ``fuzz_smoke`` tier-1 entry point: fixed seeds, bounded time.

These campaigns run on every PR (they are part of the plain pytest run and
carry the ``fuzz_smoke`` marker for selective runs via
``pytest -m fuzz_smoke``).  Seeds are pinned so failures reproduce exactly
with ``repro fuzz --seed <seed> --count <count> --size <size>``; the
per-campaign time budget keeps the whole module comfortably under the 30 s
CI allowance even on slow machines.
"""

import pytest

from repro.fuzz.runner import run_fuzz

# (seed, count, size): three windows over the seed space at two size scales.
SMOKE_CAMPAIGNS = [
    (0, 120, 8),
    (1_000, 60, 16),
    (1_994, 36, 24),
]


@pytest.mark.fuzz_smoke
@pytest.mark.parametrize("seed,count,size", SMOKE_CAMPAIGNS)
def test_smoke_campaign(seed, count, size):
    report = run_fuzz(seed=seed, count=count, size=size, time_budget=10.0)
    assert report.ok, "\n" + report.render()
    # The budget must not have silently eaten the campaign: a throughput
    # collapse is a harness regression we want to see, not mask.
    assert report.cases_run >= min(count, 20)


@pytest.mark.fuzz_smoke
def test_smoke_covers_every_strategy():
    report = run_fuzz(seed=0, count=12, size=6)
    assert report.ok, "\n" + report.render()
    from repro.fuzz.generator import STRATEGIES

    assert set(report.per_strategy) == set(STRATEGIES)
