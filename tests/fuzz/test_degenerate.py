"""Degenerate-CFG handling: one exception type across every entry point.

The differential harness surfaced a mix of raw ``KeyError`` crashes and
:class:`InvalidCFGError` on the same degenerate inputs; these tests pin the
unified contract documented in :mod:`repro.cfg.validate`:

* Definition-1 consumers (SESE regions, PST, control regions, control
  dependence, PST-based dominators) raise ``InvalidCFGError`` on any
  invariant violation;
* rooted-graph algorithms (the two whole-graph dominator computations)
  accept degenerate-but-rooted graphs and raise ``InvalidCFGError`` only
  when the root itself is missing or unset.
"""

import pytest

from repro.cfg.graph import CFG, InvalidCFGError
from repro.controldep import (
    control_dependence,
    control_regions,
    control_regions_by_definition,
    control_regions_cfs,
)
from repro.core.pst import build_pst
from repro.core.sese import canonical_sese_regions
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.dominance.pst_dominators import pst_immediate_dominators


def single_node():
    return CFG(start="a", end="a")


def start_equals_end_loop():
    cfg = CFG(start="a", end="a")
    cfg.add_edge("a", "a")
    return cfg


def dead_end_node():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "e")
    cfg.add_edge("s", "x")  # x cannot reach end
    return cfg


def unreachable_node():
    cfg = CFG(start="s", end="e")
    cfg.add_edge("s", "e")
    cfg.add_node("orphan")
    cfg.add_edge("orphan", "e")
    return cfg


def no_start_set():
    cfg = CFG()
    cfg.add_edge("a", "b")
    return cfg


DEFINITION1_CONSUMERS = [
    canonical_sese_regions,
    build_pst,
    pst_immediate_dominators,
    control_regions,
    control_regions_by_definition,
    control_regions_cfs,
    control_dependence,
]

DEGENERATE_GRAPHS = [
    single_node,
    start_equals_end_loop,
    dead_end_node,
    unreachable_node,
]


@pytest.mark.parametrize("consumer", DEFINITION1_CONSUMERS, ids=lambda f: f.__name__)
@pytest.mark.parametrize("make_graph", DEGENERATE_GRAPHS, ids=lambda f: f.__name__)
def test_definition1_consumers_raise_invalid_cfg(consumer, make_graph):
    with pytest.raises(InvalidCFGError):
        consumer(make_graph())


@pytest.mark.parametrize(
    "dominators", [immediate_dominators, lengauer_tarjan], ids=lambda f: f.__name__
)
def test_dominators_accept_degenerate_but_rooted(dominators):
    assert dominators(single_node()) == {"a": "a"}
    assert dominators(start_equals_end_loop()) == {"a": "a"}
    idom = dominators(dead_end_node())
    assert idom["x"] == "s" and idom["e"] == "s"


@pytest.mark.parametrize(
    "dominators", [immediate_dominators, lengauer_tarjan], ids=lambda f: f.__name__
)
def test_dominators_missing_root_raises_invalid_cfg(dominators):
    with pytest.raises(InvalidCFGError):
        dominators(no_start_set())
    with pytest.raises(InvalidCFGError):
        dominators(single_node(), root="ghost")


def test_invalid_cfg_error_is_a_value_error():
    """Callers that catch ValueError keep working across the unification."""
    assert issubclass(InvalidCFGError, ValueError)
