"""Shrunk regression cases pinned from the differential fuzzing harness.

Each test below is in the exact shape ``repro fuzz`` emits for a shrunk
divergence (see :func:`repro.fuzz.shrink.regression_test_source`): the
minimal graph is rebuilt edge-by-edge and the named oracle must report
agreement.  The shapes were produced by running the shrinker against
mutation-injected bugs (so each pins the smallest CFG that *distinguishes*
the correct implementation from a plausible wrong one) or against
feature-preserving predicates for the multigraph shapes the corpus
under-samples.
"""

from repro.fuzz.generator import FuzzCase, cfg_from_edges
from repro.fuzz.oracles import ALL_ORACLES, ORACLES_BY_NAME


def test_sese_slow_partition_capping_rule():
    """Shrunk from `repro fuzz` seed=23 strategy=degenerate.

    Minimal CFG distinguishing the implemented capping-backedge rule
    (``hi2 < hi0 and hi2 < dfsnum(n)``) from the paper's literal
    ``hi2 < hi0``: shrinking under the literal rule converges to this
    4-edge loop, where the degenerate self-cap corrupts the SESE pairing
    (see the implementation notes in ``core/cycle_equiv.py``).
    """
    cfg = cfg_from_edges('start', 'end', [
        ('start', 'a'),
        ('a', 'b'),
        ('b', 'a'),
        ('a', 'end'),
    ])
    case = FuzzCase(seed=23, strategy='degenerate', cfg=cfg)
    divergence = ORACLES_BY_NAME['sese/slow-partition'].run(case)
    assert divergence is None, divergence.detail


def test_dominators_matrix_lt_semi_tiebreak():
    """Shrunk from `repro fuzz` seed=0 strategy=spine_random.

    Minimal CFG on which Lengauer-Tarjan's bucket processing must take the
    ``semi[u] < semi[v]`` branch (a sabotaged implementation that always
    assigns the parent diverges here): two converging paths of different
    DFS depth into ``end``.
    """
    cfg = cfg_from_edges('start', 'end', [
        ('start', 'n0'),
        ('n3', 'n4'),
        ('start', 'n4'),
        ('n3', 'end'),
        ('n0', 'n3'),
        ('n4', 'end'),
    ])
    case = FuzzCase(seed=0, strategy='spine_random', cfg=cfg)
    divergence = ORACLES_BY_NAME['dominators/matrix'].run(case)
    assert divergence is None, divergence.detail


def test_multigraph_parallel_and_self_loop():
    """Shrunk from `repro fuzz` seed=4 strategy=structured_skeleton.

    Minimal valid CFG combining parallel ``(b0, b1)`` edges, a ``b7``
    self-loop, and a cycle through both -- the multigraph cocktail the
    identity-hashing notes in ``cfg/graph.py`` warn about.  The whole
    oracle matrix must agree on it.
    """
    cfg = cfg_from_edges('start', 'end', [
        ('start', 'b0'),
        ('b0', 'b1'),
        ('b1', 'sw'),
        ('b7', 'b7'),
        ('b0', 'b1'),
        ('sw', 'b7'),
        ('b7', 'b1'),
        ('sw', 'end'),
    ])
    case = FuzzCase(seed=4, strategy='structured_skeleton', cfg=cfg)
    for oracle in ALL_ORACLES:
        divergence = oracle.run(case)
        assert divergence is None, divergence.detail


def test_irreducible_two_entry_loop():
    """Hand-seeded: the canonical irreducible triangle.

    The loop ``a <-> b`` is entered at both ``a`` and ``b``, so no
    interval/structural decomposition applies; every pair in the matrix
    must still agree (the PST of this graph has no canonical regions
    nested in the loop).
    """
    cfg = cfg_from_edges('start', 'end', [
        ('start', 'a'),
        ('start', 'b'),
        ('a', 'b'),
        ('b', 'a'),
        ('a', 'end'),
    ])
    case = FuzzCase(seed=0, strategy='irreducible', cfg=cfg)
    for oracle in ALL_ORACLES:
        divergence = oracle.run(case)
        assert divergence is None, divergence.detail


def test_parallel_start_end_edges():
    """Hand-seeded: parallel ``start -> end`` edges plus a self-loop node.

    The smallest multigraph where the augmented graph's return edge is
    parallel to real edges; exercises bracket naming when several
    backedges share endpoints.
    """
    cfg = cfg_from_edges('start', 'end', [
        ('start', 'end'),
        ('start', 'end'),
        ('start', 'a'),
        ('a', 'a'),
        ('a', 'end'),
        ('a', 'end'),
    ])
    case = FuzzCase(seed=0, strategy='degenerate', cfg=cfg)
    for oracle in ALL_ORACLES:
        divergence = oracle.run(case)
        assert divergence is None, divergence.detail
