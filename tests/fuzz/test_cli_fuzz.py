"""The ``repro fuzz`` subcommand (direct main() invocation, no subprocess)."""

import io

from repro.cli import main
from repro.fuzz.oracles import ALL_ORACLES


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_fuzz_campaign_clean_exit():
    code, text = run(["fuzz", "--seed", "0", "--count", "30", "--size", "6"])
    assert code == 0
    assert "divergences: none" in text
    assert "CFGs/s" in text


def test_fuzz_list_oracles():
    code, text = run(["fuzz", "--list-oracles"])
    assert code == 0
    for oracle in ALL_ORACLES:
        assert oracle.name in text


def test_fuzz_single_oracle_restriction():
    code, text = run(["fuzz", "--count", "10", "--oracle", "dominators/matrix"])
    assert code == 0
    assert "divergences: none" in text


def test_fuzz_unknown_oracle_rejected():
    code, _ = run(["fuzz", "--count", "1", "--oracle", "no/such-oracle"])
    assert code == 2


def test_fuzz_time_budget_short_circuits():
    code, text = run(["fuzz", "--count", "100000", "--budget", "0.5", "--size", "4"])
    assert code == 0
    assert "divergences: none" in text


def test_analyze_mode_still_default(tmp_path):
    """The original file-analysis interface is untouched by the subcommand."""
    path = tmp_path / "p.mini"
    path.write_text("proc f() { return 1; }")
    code, text = run([str(path)])
    assert code == 0
    assert "proc f:" in text
