"""Generator guarantees: validity, determinism, adversarial coverage."""

import random

import pytest

from repro.cfg.validate import is_valid_cfg
from repro.fuzz.generator import (
    STRATEGIES,
    attach_statements,
    cfg_from_edges,
    edges_of,
    generate_case,
)


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_every_strategy_yields_valid_cfgs(strategy):
    for seed in range(40):
        case = generate_case(seed, size=9, strategy=strategy)
        assert case.strategy == strategy
        assert is_valid_cfg(case.cfg), f"{strategy} seed {seed}"


def test_round_robin_covers_all_strategies():
    seen = {generate_case(seed).strategy for seed in range(len(STRATEGIES))}
    assert seen == set(STRATEGIES)


def test_determinism_same_seed_same_graph():
    for seed in (0, 7, 123):
        a, b = generate_case(seed, size=11), generate_case(seed, size=11)
        assert edges_of(a.cfg) == edges_of(b.cfg)
        assert a.cfg.start == b.cfg.start and a.cfg.end == b.cfg.end


def test_proc_attachment_is_deterministic():
    a, b = generate_case(5, size=8), generate_case(5, size=8)
    stmts_a = [(node, repr(s)) for node, s in a.proc.statements()]
    stmts_b = [(node, repr(s)) for node, s in b.proc.statements()]
    assert stmts_a == stmts_b


def test_adversarial_features_actually_occur():
    """The campaign must exercise the shapes it claims to over-sample."""
    self_loops = parallel = irreducible_retreat = 0
    for seed in range(200):
        case = generate_case(seed, size=10)
        pairs = [e.pair for e in case.cfg.edges]
        self_loops += any(u == v for u, v in pairs)
        parallel += any(
            pairs.count(p) > 1 for p in set(pairs) if p[0] != p[1]
        )
        if case.strategy == "irreducible":
            irreducible_retreat += 1
    assert self_loops > 20
    assert parallel > 20
    assert irreducible_retreat > 20


def test_cfg_from_edges_round_trip():
    case = generate_case(42, size=8)
    rebuilt = cfg_from_edges(case.cfg.start, case.cfg.end, edges_of(case.cfg))
    assert edges_of(rebuilt) == edges_of(case.cfg)
    assert sorted(map(repr, rebuilt.nodes)) == sorted(map(repr, case.cfg.nodes))


def test_attach_statements_supplies_dataflow_material():
    case = generate_case(10, size=12)
    proc = attach_statements(case.cfg, random.Random(0))
    assert proc.cfg is case.cfg
    assert proc.variables(), "procedures must mention at least one variable"
    # every block list exists, even if empty
    assert set(proc.blocks) == set(case.cfg.nodes)
