"""Out-of-SSA translation: structure and semantic round trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import cfg_from_edges
from repro.cfg.validate import is_valid_cfg
from repro.interp import FuelExhausted, run_cfg
from repro.ir import Assign, Copy, LoweredProcedure, Phi, Ret
from repro.lang.lower import lower_procedure
from repro.ssa.destruct import destruct_ssa
from repro.ssa.rename import construct_ssa
from repro.synth.structured import random_procedure_ast


def test_no_phis_remain():
    proc = lower_procedure(
        random_procedure_ast(3, target_statements=30)
    )
    ssa = construct_ssa(proc)
    nossa = destruct_ssa(ssa)
    assert not any(isinstance(s, Phi) for _, s in nossa.statements())
    assert any(isinstance(s, Copy) for _, s in nossa.statements())
    assert is_valid_cfg(nossa.cfg)


def test_critical_edges_split():
    # branch block feeding a join directly: the T edge is critical
    cfg = cfg_from_edges(
        [
            ("start", "c"),
            ("c", "j", "T"),
            ("c", "t", "F"),
            ("t", "j"),
            ("j", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    from repro.ir import Branch

    proc.blocks["c"].append(Branch(("p0",), "p0"))
    proc.blocks["t"].append(Assign("x", (), "1"))
    proc.blocks["j"].append(Ret(("x",)))
    ssa = construct_ssa(proc)
    nossa = destruct_ssa(ssa)
    assert is_valid_cfg(nossa.cfg)
    # a split block was inserted on the critical c->j edge
    assert any(str(node).startswith("$split") for node in nossa.cfg.nodes)


def test_swap_problem():
    """Two φs at a loop header whose arguments swap each iteration."""
    cfg = cfg_from_edges(
        [
            ("start", "h"),
            ("h", "b", "T"),
            ("b", "h"),
            ("h", "x", "F"),
            ("x", "end"),
        ]
    )
    proc = LoweredProcedure("swap", cfg)
    from repro.ir import Branch

    # a = 1; b = 2; while (n-- > 0) { a, b = b, a; } return a*10 + b
    from repro.lang import astnodes as ast

    proc.blocks["start"] = []
    proc.blocks["h"].append(Branch(("n",), "n > 0", expr=ast.BinOp(">", ast.Var("n"), ast.Num(0))))
    # we encode the swap via two assignments through SSA φs: in non-SSA
    # form the swap needs a temp, so write it with one explicitly:
    first = proc.cfg.successors("start")
    init = "start"
    proc.blocks[init].append(Assign("n", (), "3", expr=ast.Num(3)))
    proc.blocks[init].append(Assign("a", (), "1", expr=ast.Num(1)))
    proc.blocks[init].append(Assign("b", (), "2", expr=ast.Num(2)))
    proc.blocks["b"].append(Assign("t", ("a",), "a", expr=ast.Var("a")))
    proc.blocks["b"].append(Assign("a", ("b",), "b", expr=ast.Var("b")))
    proc.blocks["b"].append(Assign("b", ("t",), "t", expr=ast.Var("t")))
    proc.blocks["b"].append(
        Assign("n", ("n",), "n - 1", expr=ast.BinOp("-", ast.Var("n"), ast.Num(1)))
    )
    proc.blocks["x"].append(
        Ret(("a", "b"), expr=ast.BinOp("+", ast.BinOp("*", ast.Var("a"), ast.Num(10)), ast.Var("b")))
    )
    baseline = run_cfg(proc, [])
    ssa = construct_ssa(proc)
    assert run_cfg(ssa, []).returned == baseline.returned
    nossa = destruct_ssa(ssa)
    assert run_cfg(nossa, []).returned == baseline.returned
    # 3 swaps: (1,2) -> (2,1) -> (1,2) -> (2,1) => 21
    assert baseline.returned == 21


ARGS = st.lists(st.integers(-20, 20), min_size=3, max_size=3)


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 8000), st.sampled_from([15, 40]), st.sampled_from([0.0, 0.3]), ARGS)
def test_round_trip_semantics(seed, size, goto_rate, args):
    """original == SSA == destructed SSA, on real executions."""
    try:
        proc = lower_procedure(random_procedure_ast(seed, target_statements=size, goto_rate=goto_rate))
    except Exception:
        return
    ssa = construct_ssa(proc)
    nossa = destruct_ssa(ssa)
    try:
        baseline = run_cfg(proc, args, fuel=30_000)
    except FuelExhausted:
        return
    ssa_run = run_cfg(ssa, args, fuel=90_000)
    nossa_run = run_cfg(nossa, args, fuel=90_000)
    assert ssa_run.returned == baseline.returned
    assert nossa_run.returned == baseline.returned
    assert nossa_run.assignments == baseline.assignments
