"""Theorem 9 tests: PST φ-placement equals Cytron, and it is sparse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pst import build_pst
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import place_phis_pst
from repro.synth.patterns import repeat_until_nest
from repro.synth.structured import random_lowered_procedure
from repro.ir import Assign, LoweredProcedure


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([10, 30, 60]), st.sampled_from([0.0, 0.2]))
def test_matches_cytron_on_random_procedures(seed, size, goto_rate):
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    classic = phi_blocks_cytron(proc)
    result = place_phis_pst(proc)
    assert result.phi_blocks == classic


def test_sparsity_statistics_bounds():
    proc = random_lowered_procedure(5, target_statements=120)
    result = place_phis_pst(proc)
    assert result.total_regions == len(build_pst(proc.cfg).canonical_regions()) + 1
    for var in proc.variables():
        fraction = result.examined_fraction(var)
        assert 0 < fraction <= 1.0
        assert result.regions_examined[var] >= 1  # root always marked


def test_local_variable_examines_few_regions():
    """A variable defined in one tiny region should not examine most of
    the PST."""
    proc = random_lowered_procedure(9, target_statements=200)
    pst = build_pst(proc.cfg)
    # pick a variable with a single defining block, deep in the tree
    best_var, best_depth = None, -1
    for var in proc.variables():
        defs = proc.defs_of(var)
        if len(defs) == 1:
            depth = pst.region_of(defs[0]).depth
            if depth > best_depth:
                best_var, best_depth = var, depth
    if best_var is None:
        pytest.skip("generator produced no single-def variable")
    result = place_phis_pst(proc, pst, [best_var])
    assert result.regions_examined[best_var] <= best_depth + 1


def test_repeat_until_nest_avoids_global_frontiers():
    """Theorem 9 on the Θ(N²) pattern: per-region work stays linear.

    Each marked region of the repeat-until nest has O(1) collapsed size, so
    regions_examined * O(1) is the whole cost for one variable.
    """
    depth = 10
    cfg = repeat_until_nest(depth)
    proc = LoweredProcedure("nest", cfg)
    proc.blocks["b0"].append(Assign("x", (), "1"))
    result = place_phis_pst(proc)
    classic = phi_blocks_cytron(proc)
    assert result.phi_blocks["x"] == classic["x"]
    pst = build_pst(cfg)
    for region in pst.regions():
        sub, _ = pst.collapsed_cfg(region)
        assert sub.num_nodes <= 8  # every collapsed region stays tiny


@settings(max_examples=40, deadline=None)
@given(st.integers(0, 10_000), st.sampled_from([10, 30, 60]), st.sampled_from([0.0, 0.25]))
def test_specialized_kinds_match_cytron(seed, size, goto_rate):
    """§6.1 algorithm specialization: closed-form case/loop φ rules agree."""
    proc = random_lowered_procedure(seed, target_statements=size, goto_rate=goto_rate)
    classic = phi_blocks_cytron(proc)
    result = place_phis_pst(proc, specialize_kinds=True)
    assert result.phi_blocks == classic


def test_specialization_actually_fires():
    proc = random_lowered_procedure(4, target_statements=120)
    result = place_phis_pst(proc, specialize_kinds=True)
    assert result.specialized_placements > 0
    baseline = place_phis_pst(proc, specialize_kinds=False)
    assert baseline.specialized_placements == 0
    assert baseline.phi_blocks == result.phi_blocks


def test_specialized_loop_rule_no_spurious_phi():
    """A def above a loop that flows through unchanged must not get a φ."""
    from repro.cfg.builder import cfg_from_edges
    from repro.ir import Assign, LoweredProcedure

    cfg = cfg_from_edges(
        [
            ("start", "p"),
            ("p", "h"),
            ("h", "b", "T"),
            ("b", "h"),
            ("h", "x", "F"),
            ("x", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["p"].append(Assign("v", (), "1"))
    proc.blocks["b"].append(Assign("other", (), "2"))
    result = place_phis_pst(proc, specialize_kinds=True)
    assert result.phi_blocks["v"] == phi_blocks_cytron(proc)["v"] == set()
    assert result.phi_blocks["other"] == phi_blocks_cytron(proc)["other"]


def test_accepts_prebuilt_pst_and_variable_subset():
    proc = random_lowered_procedure(3, target_statements=40)
    pst = build_pst(proc.cfg)
    variables = proc.variables()[:2]
    result = place_phis_pst(proc, pst, variables)
    assert set(result.phi_blocks) == set(variables)
