"""Tests that the SSA verifier actually catches violations."""

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.ir import Assign, LoweredProcedure, Phi
from repro.ssa.verify import SSAViolation, check_ssa, verify_ssa


def simple_cfg():
    return cfg_from_edges(
        [("start", "c"), ("c", "t", "T"), ("c", "f", "F"), ("t", "j"), ("f", "j"), ("j", "end")]
    )


def test_clean_procedure_passes():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["start"].append(Assign("x#0", (), "undef"))
    proc.blocks["j"].append(Assign("y#1", ("x#0",), "x"))
    assert verify_ssa(proc) == []
    check_ssa(proc)  # no raise


def test_double_definition_caught():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    proc.blocks["f"].append(Assign("x#1", (), "2"))
    problems = verify_ssa(proc)
    assert any("more than once" in p for p in problems)


def test_undefined_use_caught():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["j"].append(Assign("y#1", ("ghost#7",), "ghost"))
    assert any("undefined" in p for p in verify_ssa(proc))


def test_non_dominating_def_caught():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    proc.blocks["f"].append(Assign("y#1", ("x#1",), "x"))  # t does not dominate f
    assert any("does not dominate" in p for p in verify_ssa(proc))


def test_same_block_use_after_def_ok():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    proc.blocks["t"].append(Assign("y#1", ("x#1",), "x"))
    assert verify_ssa(proc) == []


def test_same_block_use_before_def_caught():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["t"].append(Assign("y#1", ("x#1",), "x"))
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    assert any("does not dominate" in p for p in verify_ssa(proc))


def test_phi_with_missing_edge_caught():
    cfg = simple_cfg()
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    phi = Phi("x#2", {cfg.edge("t", "j"): "x#1"})  # f edge missing
    proc.blocks["j"].append(phi)
    assert any("incoming edges" in p for p in verify_ssa(proc))


def test_phi_after_ordinary_statement_caught():
    cfg = simple_cfg()
    proc = LoweredProcedure("p", cfg)
    proc.blocks["start"].append(Assign("x#0", (), "undef"))
    proc.blocks["j"].append(Assign("y#1", (), "0"))
    phi = Phi("x#2", {cfg.edge("t", "j"): "x#0", cfg.edge("f", "j"): "x#0"})
    proc.blocks["j"].append(phi)
    assert any("after ordinary" in p for p in verify_ssa(proc))


def test_phi_arg_not_dominating_pred_caught():
    cfg = simple_cfg()
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("x#1", (), "1"))
    # arg x#1 flows along the f edge, but its def (t) does not dominate f
    phi = Phi("x#2", {cfg.edge("t", "j"): "x#1", cfg.edge("f", "j"): "x#1"})
    proc.blocks["j"].append(phi)
    assert any("predecessor" in p for p in verify_ssa(proc))


def test_check_ssa_raises():
    proc = LoweredProcedure("p", simple_cfg())
    proc.blocks["j"].append(Assign("y#1", ("ghost#7",), "ghost"))
    with pytest.raises(SSAViolation):
        check_ssa(proc)
