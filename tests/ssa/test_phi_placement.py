"""Tests for classic Cytron φ-placement."""

from repro.cfg.builder import cfg_from_edges
from repro.ir import Assign, LoweredProcedure
from repro.ssa.phi_placement import phi_blocks_cytron, place_phis_cytron


def proc_with(defs):
    """A diamond procedure with the given {block: [vars]} definitions."""
    cfg = cfg_from_edges(
        [
            ("start", "c"),
            ("c", "t", "T"),
            ("c", "f", "F"),
            ("t", "j"),
            ("f", "j"),
            ("j", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    for block, variables in defs.items():
        for var in variables:
            proc.blocks[block].append(Assign(var, (), "1"))
    return proc


def test_two_arm_defs_need_phi_at_join():
    proc = proc_with({"t": ["x"], "f": ["x"]})
    assert phi_blocks_cytron(proc)["x"] == {"j"}


def test_single_arm_def_still_needs_phi():
    # the implicit entry definition flows around the other arm
    proc = proc_with({"t": ["x"]})
    assert phi_blocks_cytron(proc)["x"] == {"j"}


def test_def_above_branch_needs_no_phi():
    proc = proc_with({"c": ["x"]})
    assert phi_blocks_cytron(proc)["x"] == set()


def test_loop_variable_gets_phi_at_header():
    cfg = cfg_from_edges(
        [
            ("start", "h"),
            ("h", "b", "T"),
            ("b", "h"),
            ("h", "x", "F"),
            ("x", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b"].append(Assign("i", ("i",), "i + 1"))
    assert phi_blocks_cytron(proc)["i"] == {"h"}


def test_variable_filter():
    proc = proc_with({"t": ["x", "y"]})
    only_x = phi_blocks_cytron(proc, ["x"])
    assert set(only_x) == {"x"}


def test_place_phis_by_block():
    proc = proc_with({"t": ["x", "y"], "f": ["x"]})
    by_block = place_phis_cytron(proc)
    assert by_block == {"j": ["x", "y"]}


def test_iterated_placement_cascades():
    cfg = cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),
            ("a", "c", "F"),
            ("b", "m1"),
            ("c", "m1", "T"),
            ("c", "m2", "F"),
            ("m1", "m2"),
            ("m2", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b"].append(Assign("x", (), "1"))
    # φ at m1 is itself a definition; m1 does not dominate m2 (c bypasses
    # it), so the φ cascades to m2.
    assert phi_blocks_cytron(proc)["x"] == {"m1", "m2"}
