"""Tests for SSA renaming."""

from repro.cfg.builder import cfg_from_edges
from repro.ir import Assign, LoweredProcedure, Phi
from repro.lang import lower_program, parse_program
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import phi_blocks_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.verify import verify_ssa
from repro.synth.structured import random_lowered_procedure


def diamond_proc():
    cfg = cfg_from_edges(
        [
            ("start", "c"),
            ("c", "t", "T"),
            ("c", "f", "F"),
            ("t", "j"),
            ("f", "j"),
            ("j", "end"),
        ]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["t"].append(Assign("x", (), "1"))
    proc.blocks["f"].append(Assign("x", (), "2"))
    proc.blocks["j"].append(Assign("y", ("x",), "x"))
    return proc


def test_phi_inserted_and_renamed():
    ssa = construct_ssa(diamond_proc())
    phis = [s for s in ssa.blocks["j"] if isinstance(s, Phi)]
    assert len(phis) == 1
    phi = phis[0]
    assert phi.target.startswith("x#")
    args = sorted(phi.args.values())
    assert args == ["x#1", "x#2"]
    # the use of x in j sees the phi
    use = [s for s in ssa.blocks["j"] if isinstance(s, Assign) and s.text == "x"][0]
    assert use.uses == (phi.target,)


def test_versions_are_unique():
    ssa = construct_ssa(diamond_proc())
    targets = [s.target for _, s in ssa.statements() if s.target is not None]
    assert len(targets) == len(set(targets))


def test_entry_versions_materialized():
    ssa = construct_ssa(diamond_proc())
    start_defs = {s.target for s in ssa.blocks["start"]}
    assert "x#0" in start_defs and "y#0" in start_defs


def test_ssa_verifies():
    assert verify_ssa(construct_ssa(diamond_proc())) == []


def test_loop_carried_value():
    cfg = cfg_from_edges(
        [("start", "h"), ("h", "b", "T"), ("b", "h"), ("h", "x", "F"), ("x", "end")]
    )
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b"].append(Assign("i", ("i",), "i + 1"))
    ssa = construct_ssa(proc)
    phis = [s for s in ssa.blocks["h"] if isinstance(s, Phi)]
    assert len(phis) == 1
    phi = phis[0]
    incoming = {e.source: v for e, v in phi.args.items()}
    assert incoming["start"] == "i#0"
    assert incoming["b"] != "i#0"  # loop-carried version
    assert verify_ssa(ssa) == []


def test_pst_placement_renames_identically():
    proc = random_lowered_procedure(17, target_statements=50)
    a = construct_ssa(proc, placement=phi_blocks_cytron(proc))
    b = construct_ssa(proc, placement=phi_blocks_pst(proc))
    for block in proc.cfg.nodes:
        assert [repr(s) for s in a.blocks[block]] == [repr(s) for s in b.blocks[block]]


def test_random_procedures_verify():
    for seed in range(8):
        proc = random_lowered_procedure(seed, target_statements=60, goto_rate=0.2)
        assert verify_ssa(construct_ssa(proc)) == [], seed


def test_minilang_end_to_end():
    source = """
    proc f(n) {
        s = 0;
        i = 0;
        while (i < n) {
            if (i % 2 == 0) { s = s + i; }
            i = i + 1;
        }
        return s;
    }
    """
    [proc] = lower_program(parse_program(source))
    ssa = construct_ssa(proc)
    assert verify_ssa(ssa) == []
    # s and i each need a φ at the loop header
    header_phis = {
        s.target.split("#")[0]
        for _, s in ssa.statements()
        if isinstance(s, Phi)
    }
    assert {"s", "i"} <= header_phis
