"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from typing import List, Tuple

import pytest
from hypothesis import strategies as st

from repro.cfg.graph import CFG
from repro.cfg.validate import is_valid_cfg


def spine_cfg(interior: int) -> CFG:
    """start -> n0 -> ... -> n{interior-1} -> end."""
    cfg = CFG(start="start", end="end")
    previous = "start"
    for i in range(interior):
        cfg.add_edge(previous, f"n{i}")
        previous = f"n{i}"
    cfg.add_edge(previous, "end")
    return cfg


@st.composite
def valid_cfgs(draw, max_interior: int = 12, max_extra: int = 14) -> CFG:
    """Arbitrary valid CFGs: a spine plus random extra edges.

    The spine guarantees Definition 1 (every node on a start-end path); the
    extra edges -- forward, backward, self-loops, parallel duplicates --
    provide arbitrary (including irreducible) shapes.  Shrinking reduces
    both the node count and the extra edges.
    """
    interior = draw(st.integers(min_value=1, max_value=max_interior))
    cfg = spine_cfg(interior)
    sources = ["start"] + [f"n{i}" for i in range(interior)]
    targets = [f"n{i}" for i in range(interior)] + ["end"]
    extras = draw(
        st.lists(
            st.tuples(
                st.integers(0, len(sources) - 1),
                st.integers(0, len(targets) - 1),
                st.sampled_from(["plain", "self", "parallel"]),
            ),
            max_size=max_extra,
        )
    )
    for si, ti, kind in extras:
        if kind == "self":
            node = targets[min(ti, interior - 1)] if interior else sources[si]
            if node not in ("start", "end"):
                cfg.add_edge(node, node)
        elif kind == "parallel":
            cfg.add_edge(sources[si], targets[ti])
            cfg.add_edge(sources[si], targets[ti])
        else:
            cfg.add_edge(sources[si], targets[ti])
    assert is_valid_cfg(cfg)
    return cfg


@st.composite
def small_valid_cfgs(draw) -> CFG:
    """Small graphs suitable for exponential brute-force oracles."""
    return draw(valid_cfgs(max_interior=6, max_extra=6))


@pytest.fixture
def diamond_cfg() -> CFG:
    from repro.synth.patterns import diamond

    return diamond()


@pytest.fixture
def paper_cfg() -> CFG:
    from repro.synth.patterns import paper_like_example

    return paper_like_example()
