"""SizedLRU / ShardedSessionCache semantics and the bounded kernel caches."""

import gc
import threading

import pytest

from repro.cfg.builder import cfg_from_edges
from repro.kernel import registry
from repro.kernel.session import AnalysisSession, session_for
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.service.cache import (
    BYTES_PER_ENTRY,
    ShardedSessionCache,
    SizedLRU,
    cfg_cost_bytes,
    frozen_cost_bytes,
)
from repro.synth.unstructured import random_cfg


def diamond():
    return cfg_from_edges(
        [("start", "a"), ("a", "b", "T"), ("a", "c", "F"), ("b", "end"), ("c", "end")]
    )


@pytest.fixture(autouse=True)
def _unbounded_registry():
    """Every test starts and ends with the historical unbounded registry."""
    registry.configure(None)
    yield
    registry.configure(None)


# ----------------------------------------------------------------------
# SizedLRU
# ----------------------------------------------------------------------

def test_lru_orders_eviction_by_recency():
    lru = SizedLRU(30)
    lru.put("a", 1, 10)
    lru.put("b", 2, 10)
    lru.put("c", 3, 10)
    assert lru.get("a") == 1  # refresh "a" so "b" is now the LRU tail
    lru.put("d", 4, 10)
    assert "b" not in lru and "a" in lru
    assert lru.total_bytes == 30 and len(lru) == 3
    assert lru.evictions == 1


def test_lru_replacing_a_key_recharges_its_cost():
    lru = SizedLRU(100)
    lru.put("a", "small", 10)
    lru.put("a", "big", 70)
    assert lru.total_bytes == 70
    assert lru.get("a") == "big"


def test_single_over_budget_entry_is_kept_but_evicted_next():
    lru = SizedLRU(50)
    lru.put("huge", "x", 400)
    assert "huge" in lru  # admitted alone; bound overshoot is visible
    assert lru.total_bytes == 400
    lru.put("small", "y", 10)
    assert "huge" not in lru and "small" in lru
    assert lru.total_bytes == 10


def test_zero_budget_disables_caching_entirely():
    lru = SizedLRU(0)
    lru.put("a", 1, 10)
    assert "a" not in lru and len(lru) == 0
    assert lru.evictions == 1


def test_unbounded_lru_never_evicts():
    lru = SizedLRU(None)
    for i in range(100):
        lru.put(i, i, 10**6)
    assert len(lru) == 100 and lru.evictions == 0


def test_lru_pop_and_clear_release_bytes():
    lru = SizedLRU(None)
    lru.put("a", 1, 10)
    lru.put("b", 2, 20)
    assert lru.pop("a") == 1
    assert lru.pop("missing", "default") == "default"
    assert lru.total_bytes == 20
    lru.clear()
    assert lru.total_bytes == 0 and len(lru) == 0


def test_lru_stats_track_hits_misses_evictions():
    lru = SizedLRU(20)
    lru.put("a", 1, 10)
    lru.get("a")
    lru.get("nope")
    lru.put("b", 2, 10)
    lru.put("c", 3, 10)
    assert lru.stats() == {
        "entries": 2, "bytes": 20, "hits": 1, "misses": 1, "evictions": 1,
    }


def test_lru_rejects_negative_budget_and_cost():
    with pytest.raises(ValueError):
        SizedLRU(-1)
    lru = SizedLRU(10)
    with pytest.raises(ValueError):
        lru.put("a", 1, -5)


def test_resize_shrink_evicts_immediately_and_grow_does_not():
    lru = SizedLRU(40)
    for key in "abcd":
        lru.put(key, key, 10)
    lru.resize(20)
    assert sorted(lru.keys()) == ["c", "d"]
    lru.resize(None)
    lru.put("e", "e", 100)
    assert len(lru) == 3  # unbounded again


def test_on_evict_runs_outside_the_lock_and_swallows_errors():
    evicted = []

    def hook(key, value):
        evicted.append(key)
        raise RuntimeError("hook bug must not break the cache")

    lru = SizedLRU(20, on_evict=hook)
    lru.put("a", 1, 10)
    lru.put("b", 2, 10)
    lru.put("c", 3, 10)  # evicts "a"; hook raises, cache survives
    assert evicted == ["a"]
    assert sorted(lru.keys()) == ["b", "c"]


def test_eviction_and_lookup_metrics_reach_the_ambient_observer():
    obs = Observer(trace=False, metrics=True)
    with _obs.observe(obs):
        lru = SizedLRU(10, name="test.lru")
        lru.put("a", 1, 10)
        lru.get("a")
        lru.get("missing")
        lru.put("b", 2, 10)  # evicts "a"
    m = obs.metrics
    assert m.count_of("cache.evict", cache="test.lru", reason="size") == 1
    assert m.count_of("cache.lookup", cache="test.lru", result="hit") == 1
    assert m.count_of("cache.lookup", cache="test.lru", result="miss") == 1


def test_lru_is_thread_safe_under_concurrent_churn():
    lru = SizedLRU(1000)
    errors = []

    def churn(base):
        try:
            for i in range(200):
                lru.put((base, i % 20), i, 17)
                lru.get((base, (i + 7) % 20))
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [threading.Thread(target=churn, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    if lru.max_bytes is not None:
        assert lru.total_bytes <= max(lru.max_bytes, 17)


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------

def test_cost_estimates_are_monotone_in_graph_size():
    small = random_cfg(0, num_nodes=10, extra_edges=5)
    large = random_cfg(0, num_nodes=100, extra_edges=50)
    assert cfg_cost_bytes(small) < cfg_cost_bytes(large)
    assert frozen_cost_bytes(registry.shared_frozen(small)) < frozen_cost_bytes(
        registry.shared_frozen(large)
    )


def test_frozen_and_cfg_cost_agree_up_to_self_loops():
    cfg = random_cfg(3, num_nodes=30, extra_edges=15)
    frozen = registry.shared_frozen(cfg)
    delta = frozen_cost_bytes(frozen) - cfg_cost_bytes(cfg)
    assert delta == BYTES_PER_ENTRY * len(frozen.self_loops)


# ----------------------------------------------------------------------
# ShardedSessionCache
# ----------------------------------------------------------------------

def test_shards_split_the_budget_equally():
    cache = ShardedSessionCache(1000, max_clients=4)
    assert cache.per_client_bytes == 250
    shard = cache.shard("alice")
    assert shard.max_bytes == 250
    assert cache.shard("alice") is shard  # stable per client


def test_one_chatty_client_cannot_evict_another():
    cache = ShardedSessionCache(200, max_clients=2)
    cache.shard("quiet").put("g", "artifact", 50)
    chatty = cache.shard("chatty")
    for i in range(50):
        chatty.put(f"g{i}", i, 60)
    assert cache.shard("quiet").get("g") == "artifact"
    assert chatty.total_bytes <= 100 + 60  # bounded by its own slice


def test_excess_clients_evict_the_least_recent_shard():
    cache = ShardedSessionCache(300, max_clients=2)
    a = cache.shard("a")
    a.put("x", 1, 10)
    cache.shard("b")
    cache.shard("a")  # refresh "a" so "b" is the LRU client
    cache.shard("c")  # pushes "b" out
    stats = cache.stats()
    assert set(stats["shards"]) == {"a", "c"}
    assert cache.shard("a").get("x") == 1  # survivor kept its entries


def test_sharded_stats_aggregate_bytes_and_evictions():
    cache = ShardedSessionCache(400, max_clients=4)
    cache.shard("a").put("x", 1, 30)
    cache.shard("b").put("y", 2, 40)
    stats = cache.stats()
    assert stats["clients"] == 2
    assert stats["bytes"] == 70 == cache.total_bytes


def test_max_clients_must_be_positive():
    with pytest.raises(ValueError):
        ShardedSessionCache(100, max_clients=0)


# ----------------------------------------------------------------------
# bounded kernel registry
# ----------------------------------------------------------------------

def test_registry_bound_evicts_lru_snapshots_and_refreezes_on_demand():
    cfgs = [random_cfg(seed, num_nodes=40, extra_edges=20) for seed in range(4)]
    one_cost = frozen_cost_bytes(registry.shared_frozen(cfgs[0]))
    registry.configure(2 * one_cost + one_cost // 2)  # room for ~2 snapshots
    for cfg in cfgs:
        registry.shared_frozen(cfg)
    stats = registry.registry_stats()
    assert stats["bounded"]
    assert stats["entries"] <= 2
    assert stats["evictions"] >= 2
    # An evicted snapshot is simply re-frozen on next demand.
    frozen = registry.shared_frozen(cfgs[0])
    assert frozen.num_nodes == cfgs[0].num_nodes


def test_registry_configure_is_idempotent_and_disarmable():
    registry.configure(10**6)
    registry.configure(10**6)  # no-op
    assert registry.max_cache_bytes() == 10**6
    registry.configure(None)
    assert registry.max_cache_bytes() is None
    assert registry.registry_stats()["bounded"] is False


def test_registry_accounting_never_keeps_dead_graphs():
    registry.configure(10**9)
    cfg = random_cfg(9, num_nodes=30, extra_edges=10)
    registry.shared_frozen(cfg)
    before = registry.registry_stats()["entries"]
    del cfg
    gc.collect()
    assert registry.registry_stats()["entries"] <= before - 1


def test_tracking_ref_death_callback_is_lock_free():
    """A CFG dying while the LRU lock is held must not deadlock.

    The weakref death callback fires during garbage collection, which can
    trigger inside an allocation made *while this thread already holds the
    LRU lock* (e.g. mid-``SizedLRU.put``).  A callback that called
    ``lru.pop`` would self-deadlock there -- seen as a whole-suite hang in
    the service tests.  The callback must therefore only enqueue the dead
    ref; the next registry operation drains it under normal context.
    """
    registry.configure(10**9)
    cfg = random_cfg(17, num_nodes=20, extra_edges=8)
    registry.shared_frozen(cfg)
    before = registry.registry_stats()["entries"]
    lru = registry._LRU
    assert lru is not None
    acquired = lru._lock.acquire(timeout=5)
    assert acquired
    try:
        del cfg
        gc.collect()  # runs the death callback on this thread, lock held
    finally:
        lru._lock.release()
    assert registry._DEAD_REFS  # retired lazily, not during GC
    assert registry.registry_stats()["entries"] == before - 1  # drained here


# ----------------------------------------------------------------------
# bounded AnalysisSession memoization
# ----------------------------------------------------------------------

def test_bounded_session_evicts_artifacts_and_reports_bytes():
    cfg = diamond()
    session = AnalysisSession(cfg, max_cache_bytes=cfg_cost_bytes(cfg))
    session.pst()  # computes "equiv" then "pst": only one slot fits
    info = session.cache_info()
    assert info["size"] == 1
    assert info["evictions"] >= 1
    assert info["bytes"] <= cfg_cost_bytes(cfg)


def test_unbounded_session_reports_no_byte_fields():
    session = AnalysisSession(diamond())
    session.pst()
    info = session.cache_info()
    assert "bytes" not in info and "evictions" not in info
    assert info["size"] >= 2


def test_set_max_cache_bytes_arms_resizes_and_disarms_in_place():
    cfg = diamond()
    session = AnalysisSession(cfg)
    pst = session.pst()
    session.set_max_cache_bytes(10 * cfg_cost_bytes(cfg))  # arm: migrates
    assert session.pst() is pst  # artifact survived the migration
    session.set_max_cache_bytes(None)  # disarm: migrates back
    assert session.pst() is pst
    assert "bytes" not in session.cache_info()


def test_session_for_forwards_the_config_bound():
    from repro.config import AnalysisConfig

    cfg = diamond()
    session = session_for(cfg, AnalysisConfig(max_cache_bytes=123456))
    assert session.max_cache_bytes == 123456
    # A later config with a different bound resizes the same session.
    again = session_for(cfg, AnalysisConfig(max_cache_bytes=654321))
    assert again is session and session.max_cache_bytes == 654321


def test_engine_config_bound_arms_the_registry():
    from repro.config import AnalysisConfig
    from repro.resilience.engine import run_analysis

    cfg = diamond()
    result = run_analysis(cfg, config=AnalysisConfig(max_cache_bytes=10**7))
    assert result.ok
    assert registry.registry_stats()["bounded"]
