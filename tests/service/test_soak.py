"""A short chaos soak must pass end to end, and its report must gate CI."""

import io
import json

import pytest

from repro.service.soak import (
    SoakConfig,
    SoakReport,
    run_soak,
    update_bench_perf,
)

#: One shared short soak per module -- real threads and HTTP make this the
#: most expensive fixture in the suite; every assertion reads one run.
@pytest.fixture(scope="module")
def report(tmp_path_factory):
    trace = tmp_path_factory.mktemp("soak") / "trace.jsonl"
    config = SoakConfig(
        duration=2.0,
        clients=4,
        seed=0,
        graphs_per_band=2,
        bands=(("small", 10, 2.0), ("medium", 40, 4.0)),
        fault_rate=0.05,
        rate=2000.0,
        burst=500,
        max_inflight=8,
        trace_path=str(trace),
    )
    out = io.StringIO()
    result = run_soak(config, out=out)
    result._trace_path = str(trace)
    result._rendered = out.getvalue()
    return result


def test_soak_passes_with_zero_server_errors(report):
    assert report.passed, report.failures
    assert report.requests > 0 and report.ok > 0
    assert report.server_errors == 0
    assert report.transport_errors == 0


def test_soak_faults_fired_and_the_ladder_recovered(report):
    # Chaos actually happened -- and nothing leaked to clients as a 500.
    assert report.fault_fires > 0
    assert report.ok + report.analysis_failed + report.shed > 0


def test_soak_probes_all_held(report):
    assert report.probes == {
        "shed_rate": True, "shed_depth": True, "drain": True,
    }


def test_soak_sessions_produced_cache_hits(report):
    assert report.cache_hits > 0


def test_soak_slo_rows_cover_every_band(report):
    assert [row["band"] for row in report.slo] == ["small", "medium"]
    for row in report.slo:
        assert row["ok"] and row["n"] > 0
        assert row["p50_s"] <= row["p99_s"] <= row["budget_s"]


def test_soak_memory_stayed_bounded(report):
    assert report.rss_start_bytes is not None
    growth = report.rss_end_bytes - report.rss_start_bytes
    assert growth <= report.rss_bound_bytes


def test_soak_report_is_json_serializable_and_renders(report):
    data = json.loads(json.dumps(report.to_json()))
    assert data["passed"] is True
    assert data["config"]["seed"] == 0
    assert "soak:" in report._rendered and "slo small" in report._rendered


def test_soak_trace_is_flushed_on_drain(report):
    import repro.cli as cli

    out = io.StringIO()
    assert cli.main(["trace", "--check", report._trace_path], out=out) == 0


def test_update_bench_perf_preserves_existing_keys(report, tmp_path):
    path = tmp_path / "BENCH_perf.json"
    path.write_text(json.dumps({"bench": "perf_smoke", "trajectory": [1, 2]}))
    update_bench_perf(report, str(path))
    data = json.loads(path.read_text())
    assert data["bench"] == "perf_smoke" and data["trajectory"] == [1, 2]
    slo = data["service_slo"]
    assert slo["requests"] == report.requests
    assert slo["seed"] == 0
    assert [row["band"] for row in slo["rows"]] == ["small", "medium"]


def test_bench_slo_gate_accepts_the_report_and_rejects_a_blown_budget(
    report, tmp_path
):
    from repro.analysis.bench import check_slo_rows

    good = report.to_json()
    out = io.StringIO()
    assert check_slo_rows(good, out) == []

    bad = json.loads(json.dumps(good))
    bad["slo"][0]["p99_s"] = bad["slo"][0]["budget_s"] + 1.0
    failures = check_slo_rows(bad, io.StringIO())
    assert len(failures) == 1 and "small" in failures[0]


def test_failed_report_reports_not_passed():
    report = SoakReport()
    report.failures.append("synthetic")
    assert not report.passed
    assert report.to_json()["passed"] is False
