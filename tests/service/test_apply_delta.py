"""POST /apply_delta: live per-client edit sessions over real HTTP."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.service.server import AnalysisServer, ServiceConfig


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        port=0,
        max_inflight=8,
        soft_inflight=4,
        rate=10_000.0,
        burst=1_000,
        trace_path=str(tmp_path / "trace.jsonl"),
    )
    srv = AnalysisServer(config)
    httpd = srv.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(timeout=10)


def post(server, path, body):
    host, port = server.address
    request = urllib.request.Request(
        f"http://{host}:{port}" + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_apply_delta_by_graph_spelling_creates_a_live_session(server):
    status, body = post(
        server,
        "/apply_delta",
        {
            "client": "me",
            "synth": {"seed": 1, "size": 40},
            "deltas": [{"op": "add_edge", "source": "n1", "target": "n2"}],
        },
    )
    assert status == 200
    assert body["ok"] is True
    assert body["applied"] == 1
    assert body["edit_stats"]["deltas_applied"] == 1
    assert body["pst"]["regions"] > 0
    assert body["key"].startswith("synth:1:40")


def test_edits_by_key_mutate_the_cached_graph_and_drop_stale_responses(server):
    status, first = post(
        server, "/run_analysis", {"client": "me", "synth": {"seed": 1, "size": 40}}
    )
    assert status == 200
    key = first["key"]
    edges_before = first["graph"]["edges"]

    status, edited = post(
        server,
        "/apply_delta",
        {
            "client": "me",
            "key": key,
            "deltas": [{"op": "add_edge", "source": "n1", "target": "n2"}],
        },
    )
    assert status == 200
    assert edited["graph"]["edges"] == edges_before + 1

    # the memoized response was dropped: re-analysis sees the edited graph
    status, second = post(
        server, "/run_analysis", {"client": "me", "synth": {"seed": 1, "size": 40}}
    )
    assert status == 200
    assert second["cached"] is False
    assert second["graph"]["edges"] == edges_before + 1


def test_invalid_delta_stops_the_batch_with_422(server):
    status, body = post(
        server,
        "/apply_delta",
        {
            "client": "me",
            "synth": {"seed": 1, "size": 40},
            "deltas": [
                {"op": "add_edge", "source": "n1", "target": "n2"},
                {"op": "add_edge", "source": "end", "target": "n2"},
                {"op": "add_edge", "source": "n2", "target": "n3"},
            ],
        },
    )
    assert status == 422
    assert body["ok"] is False
    assert body["error"] == "invalid_delta"
    assert body["index"] == 1
    assert body["applied"] == 1
    assert "no successors" in body["message"]
    assert body["edit_stats"]["rejected"] == 1


def test_unknown_key_is_a_400(server):
    status, body = post(
        server,
        "/apply_delta",
        {
            "client": "me",
            "key": "synth:9:9:9",
            "deltas": [{"op": "add_edge", "source": "n1", "target": "n2"}],
        },
    )
    assert status == 400
    assert body["error"] == "unknown_key"


def test_key_and_spelling_together_is_a_400(server):
    status, body = post(
        server,
        "/apply_delta",
        {
            "client": "me",
            "key": "synth:1:40:20",
            "synth": {"seed": 1, "size": 40},
            "deltas": [{"op": "add_edge", "source": "n1", "target": "n2"}],
        },
    )
    assert status == 400
    assert "not both" in body["message"]


def test_empty_deltas_is_a_400(server):
    status, body = post(
        server,
        "/apply_delta",
        {"client": "me", "synth": {"seed": 1, "size": 40}, "deltas": []},
    )
    assert status == 400


def test_concurrent_edits_and_analyses_stay_coherent(server):
    """Hammer one key from edit and analyze threads; every response must be
    internally consistent (the server serializes on the entry lock)."""
    status, first = post(
        server, "/run_analysis", {"client": "me", "synth": {"seed": 2, "size": 30}}
    )
    assert status == 200
    key = first["key"]
    errors = []

    def edit_loop():
        for _ in range(10):
            status, body = post(
                server,
                "/apply_delta",
                {
                    "client": "me",
                    "key": key,
                    "deltas": [{"op": "add_edge", "source": "n1", "target": "n2"}],
                },
            )
            if status != 200:
                errors.append(("edit", status, body))

    def analyze_loop():
        for _ in range(10):
            status, body = post(
                server,
                "/run_analysis",
                {"client": "me", "synth": {"seed": 2, "size": 30}},
            )
            if status != 200 or not body["ok"]:
                errors.append(("analyze", status, body))

    threads = [threading.Thread(target=edit_loop), threading.Thread(target=analyze_loop)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors

    status, final = post(
        server, "/run_analysis", {"client": "me", "synth": {"seed": 2, "size": 30}}
    )
    assert status == 200
    assert final["graph"]["edges"] == first["graph"]["edges"] + 10
