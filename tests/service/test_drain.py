"""DrainController lifecycle, signal handling, and the shared serve loop."""

import io
import signal
import threading
import time
import urllib.request

import pytest

from repro.errors import EXIT_DRAINING, ServiceDraining, exit_code_for
from repro.obs import observer as _obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.service.drain import (
    DrainController,
    install_signal_handlers,
    serve_until_shutdown,
)


# ----------------------------------------------------------------------
# DrainController
# ----------------------------------------------------------------------

def test_track_counts_inflight_and_releases_on_error():
    drain = DrainController()
    with drain.track():
        assert drain.inflight == 1
    assert drain.inflight == 0
    with pytest.raises(RuntimeError):
        with drain.track():
            raise RuntimeError("handler blew up")
    assert drain.inflight == 0


def test_draining_refuses_new_work_but_lets_inflight_finish():
    drain = DrainController()
    scope = drain.track()
    scope.__enter__()  # a request already in flight
    drain.request_drain(reason="test")
    assert drain.draining and drain.reason == "test"
    with pytest.raises(ServiceDraining) as exc:
        drain.enter()
    assert exit_code_for(exc.value) == EXIT_DRAINING
    # ...but the in-flight request is still tracked and may complete.
    assert drain.inflight == 1
    scope.__exit__(None, None, None)
    assert drain.wait_idle(timeout=1.0)


def test_wait_idle_blocks_until_the_last_request_exits():
    drain = DrainController()
    release = threading.Event()

    def worker():
        with drain.track():
            release.wait(timeout=5.0)

    thread = threading.Thread(target=worker)
    thread.start()
    while drain.inflight == 0:
        time.sleep(0.005)
    assert not drain.wait_idle(timeout=0.05)  # still busy
    release.set()
    assert drain.wait_idle(timeout=5.0)
    thread.join()


def test_flush_hooks_run_exactly_once_and_swallow_errors():
    drain = DrainController()
    calls = []
    drain.add_flush_hook(lambda: calls.append("first"))

    def broken():
        calls.append("broken")
        raise RuntimeError("flush bug")

    drain.add_flush_hook(broken)
    drain.add_flush_hook(lambda: calls.append("last"))
    drain.flush()
    drain.flush()  # once-only
    assert calls == ["first", "broken", "last"]


def test_request_drain_is_idempotent_and_counted():
    obs = Observer(trace=False, metrics=True)
    with _obs.observe(obs):
        drain = DrainController()
        drain.request_drain(reason="SIGTERM")
        drain.request_drain(reason="later")  # first reason wins
    assert drain.reason == "SIGTERM"
    assert obs.metrics.count_of("service.drain", reason="SIGTERM") == 1


# ----------------------------------------------------------------------
# signal handling
# ----------------------------------------------------------------------

def test_sigterm_flips_the_drain_flag_and_restore_undoes_it():
    drain = DrainController()
    before = signal.getsignal(signal.SIGTERM)
    restore = install_signal_handlers(drain)
    try:
        signal.raise_signal(signal.SIGTERM)
        assert drain.draining and drain.reason == "SIGTERM"
    finally:
        restore()
    assert signal.getsignal(signal.SIGTERM) is before


def test_install_off_main_thread_is_a_safe_noop():
    drain = DrainController()
    result = {}

    def worker():
        result["restore"] = install_signal_handlers(drain)

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    result["restore"]()  # must not raise
    assert not drain.draining


# ----------------------------------------------------------------------
# the shared serve loop (satellite: `repro metrics serve` shutdown)
# ----------------------------------------------------------------------

def test_serve_metrics_drains_cleanly_on_request_drain():
    from repro.obs.export import serve_metrics

    registry = MetricsRegistry()
    registry.counter("demo.requests").inc()
    drain = DrainController()
    out = io.StringIO()
    done = threading.Event()

    def run_server():
        serve_metrics(registry, host="127.0.0.1", port=0, announce=out, drain=drain)
        done.set()

    thread = threading.Thread(target=run_server, daemon=True)
    thread.start()
    # Wait for the announce line to learn the bound port.
    deadline = time.monotonic() + 5.0
    while "http://" not in out.getvalue() and time.monotonic() < deadline:
        time.sleep(0.01)
    url = out.getvalue().split("on ", 1)[1].strip()
    body = urllib.request.urlopen(url, timeout=5).read().decode()
    assert "demo_requests" in body
    drain.request_drain(reason="test-shutdown")
    assert done.wait(timeout=10.0), "serve_metrics did not return after drain"
    assert "draining (test-shutdown)" in out.getvalue()
    # The listening socket is closed: a new scrape must fail.
    with pytest.raises(Exception):
        urllib.request.urlopen(url, timeout=1)


def test_serve_until_shutdown_waits_for_inflight_then_flushes():
    from repro.obs.export import make_metrics_server

    registry = MetricsRegistry()
    server = make_metrics_server(registry.render_prometheus, "127.0.0.1", 0)
    drain = DrainController()
    flushed = []
    drain.add_flush_hook(lambda: flushed.append(drain.inflight))
    scope = drain.track()
    scope.__enter__()

    def finish_later():
        time.sleep(0.3)
        scope.__exit__(None, None, None)

    finisher = threading.Thread(target=finish_later, daemon=True)
    finisher.start()
    drain.request_drain(reason="test")
    returned = serve_until_shutdown(server, drain, drain_timeout=5.0)
    finisher.join()
    assert returned is drain
    # The flush hook observed an idle server (in-flight work had finished).
    assert flushed == [0]
