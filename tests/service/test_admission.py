"""TokenBucket and AdmissionController: deterministic clock, no sleeps."""

import pytest

from repro.errors import EXIT_SHED, ServiceShed, exit_code_for
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.service.admission import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


# ----------------------------------------------------------------------
# TokenBucket
# ----------------------------------------------------------------------

def test_bucket_burst_then_refill_at_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, capacity=3, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]
    clock.advance(0.5)  # one token refilled at 2/s
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_capacity():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, capacity=2, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == 2.0


def test_bucket_retry_after_is_the_token_deficit_over_rate():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, capacity=1, clock=clock)
    assert bucket.retry_after() == 0.0
    bucket.try_acquire()
    assert bucket.retry_after() == pytest.approx(0.25)


def test_disabled_bucket_always_admits():
    bucket = TokenBucket(rate=None)
    assert all(bucket.try_acquire() for _ in range(1000))
    assert bucket.retry_after() == 0.0


def test_probe_helpers_drain_and_fill_deterministically():
    clock = FakeClock()
    bucket = TokenBucket(rate=5.0, capacity=4, clock=clock)
    bucket.drain_tokens()
    assert not bucket.try_acquire()
    bucket.fill_tokens()
    assert bucket.tokens == 4.0


def test_bucket_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, capacity=0)


# ----------------------------------------------------------------------
# AdmissionController
# ----------------------------------------------------------------------

def controller(**kwargs):
    kwargs.setdefault("clock", FakeClock())
    return AdmissionController(**kwargs)


def test_full_until_soft_threshold_then_degraded():
    ctl = controller(max_inflight=4, soft_inflight=2)
    modes = [ctl.acquire().mode for _ in range(4)]
    assert modes == ["full", "full", "degraded", "degraded"]
    assert ctl.stats() == {
        "inflight": 4, "admitted": 2, "degraded": 2,
        "shed_rate": 0, "shed_depth": 0,
    }


def test_depth_shed_at_the_hard_cap_is_a_503():
    ctl = controller(max_inflight=2)
    ctl.acquire()
    ctl.acquire()
    with pytest.raises(ServiceShed) as exc:
        ctl.acquire()
    error = exc.value
    assert error.reason == "depth"
    assert error.http_status == 503
    assert error.retry_after == 1.0
    assert exit_code_for(error) == EXIT_SHED


def test_rate_shed_is_a_429_with_a_retry_hint():
    clock = FakeClock()
    ctl = controller(rate=2.0, burst=1, max_inflight=8, clock=clock)
    ctl.acquire()
    ctl.release()
    with pytest.raises(ServiceShed) as exc:
        ctl.acquire()
    error = exc.value
    assert error.reason == "rate"
    assert error.http_status == 429
    assert error.retry_after == pytest.approx(0.5)


def test_depth_is_checked_before_rate():
    # Saturated pool AND empty bucket: the refusal must name "depth" (a
    # token must not be burned on a request that is refused anyway).
    ctl = controller(rate=1.0, burst=1, max_inflight=1)
    ctl.acquire()
    ctl.bucket.drain_tokens()
    with pytest.raises(ServiceShed) as exc:
        ctl.acquire()
    assert exc.value.reason == "depth"


def test_release_reopens_the_window():
    ctl = controller(max_inflight=1)
    ctl.acquire()
    with pytest.raises(ServiceShed):
        ctl.acquire()
    ctl.release()
    assert ctl.acquire().mode == "full"
    assert ctl.inflight == 1


def test_admit_context_manager_releases_even_on_error():
    ctl = controller(max_inflight=2)
    with pytest.raises(RuntimeError):
        with ctl.admit() as decision:
            assert decision.mode == "full"
            assert ctl.inflight == 1
            raise RuntimeError("work blew up")
    assert ctl.inflight == 0


def test_decisions_are_counted_into_the_ambient_observer():
    obs = Observer(trace=False, metrics=True)
    with _obs.observe(obs):
        ctl = controller(max_inflight=2, soft_inflight=1)
        ctl.acquire()           # full
        ctl.acquire()           # degraded
        with pytest.raises(ServiceShed):
            ctl.acquire()       # shed depth
    m = obs.metrics
    assert m.count_of("service.admit", decision="full") == 1
    assert m.count_of("service.admit", decision="degraded") == 1
    assert m.count_of("service.admit", decision="shed", reason="depth") == 1


def test_soft_threshold_validation():
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=2, soft_inflight=3)
    with pytest.raises(ValueError):
        AdmissionController(max_inflight=0)
