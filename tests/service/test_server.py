"""AnalysisServer over real HTTP: pipeline, shedding, draining, tracing."""

import io
import json
import threading
import urllib.error
import urllib.request

import pytest

import repro.cli as cli
from repro.errors import EXIT_DRAINING, EXIT_SHED
from repro.obs.export import lint_exposition
from repro.service.server import AnalysisServer, ServiceConfig

SOURCE = """
proc f(n) {
    s = 0;
    while (s < n) {
        if (n > 10) { s = s + 2; } else { s = s + 1; }
    }
    return s;
}
"""


@pytest.fixture
def server(tmp_path):
    config = ServiceConfig(
        port=0,
        max_inflight=8,
        soft_inflight=4,
        rate=10_000.0,
        burst=1_000,
        trace_path=str(tmp_path / "trace.jsonl"),
    )
    srv = AnalysisServer(config)
    httpd = srv.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        thread.join(timeout=10)


def base(server):
    host, port = server.address
    return f"http://{host}:{port}"


def post(server, path, body):
    """(status, parsed body, headers); HTTP errors become data."""
    request = urllib.request.Request(
        base(server) + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read()), response.headers
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error.headers


def get(server, path):
    try:
        with urllib.request.urlopen(base(server) + path, timeout=30) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode()


# ----------------------------------------------------------------------
# the happy pipeline
# ----------------------------------------------------------------------

def test_synth_request_returns_summaries_and_caches_the_repeat(server):
    body = {"client": "t", "synth": {"seed": 1, "size": 20}}
    status, first, _ = post(server, "/run_analysis", body)
    assert status == 200 and first["ok"]
    assert first["mode"] == "full" and not first["cached"]
    assert first["analyses"]["pst"]["regions"] > 0
    assert first["analyses"]["dominators"]["entries"] > 0
    assert first["graph"]["nodes"] >= 20
    status, second, _ = post(server, "/run_analysis", body)
    assert status == 200 and second["cached"]
    assert second["key"] == first["key"] == "synth:1:20:10"
    assert second["analyses"] == first["analyses"]


def test_source_and_cfg_spellings_work(server):
    status, body, _ = post(server, "/run_analysis", {"source": SOURCE})
    assert status == 200 and body["ok"] and body["key"].startswith("source:")
    status, body, _ = post(
        server,
        "/run_analysis",
        {"cfg": {"edges": [["start", "a"], ["a", "end"]]}},
    )
    assert status == 200 and body["ok"] and body["key"].startswith("cfg:")


def test_analyses_subset_only_summarizes_what_was_asked(server):
    status, body, _ = post(
        server,
        "/run_analysis",
        {"synth": {"seed": 2, "size": 10}, "analyses": ["dominators"]},
    )
    assert status == 200
    assert list(body["analyses"]) == ["dominators"]


def test_batch_runs_items_and_inherits_the_client(server):
    status, body, _ = post(
        server,
        "/run_batch",
        {
            "client": "batcher",
            "items": [
                {"synth": {"seed": 1, "size": 10}},
                {"synth": {"seed": 2, "size": 10}},
                {"bogus": True},
            ],
        },
    )
    assert status == 200
    assert body["count"] == 3 and not body["ok"]
    assert [item["status"] for item in body["items"]] == [200, 200, 400]
    assert body["items"][0]["body"]["client"] == "batcher"


# ----------------------------------------------------------------------
# client errors
# ----------------------------------------------------------------------

def test_bad_requests_get_structured_400s(server):
    cases = [
        {},  # no graph spelling
        {"synth": {"seed": 0}, "source": SOURCE},  # two spellings
        {"synth": {"seed": "x", "size": "y"}},
        {"synth": {"seed": 0, "size": -1}},
        {"synth": {"seed": 0, "size": 5}, "analyses": ["nope"]},
        {"synth": {"seed": 0, "size": 5}, "deadline": -2},
        {"cfg": {"edges": "not-a-list"}},
    ]
    for case in cases:
        status, body, _ = post(server, "/run_analysis", case)
        assert status == 400, case
        assert body["error"] == "bad_request" and body["message"]


def test_oversized_batch_is_refused(server):
    items = [{"synth": {"seed": i, "size": 5}} for i in range(65)]
    status, body, _ = post(server, "/run_batch", {"items": items})
    assert status == 400
    assert "max_batch_items" in body["message"]


def test_unknown_route_is_a_json_404(server):
    status, body, _ = post(server, "/no_such_route", {})
    assert status == 404 and body["error"] == "not_found"


# ----------------------------------------------------------------------
# admission: degradation and shedding
# ----------------------------------------------------------------------

def test_requests_past_the_soft_threshold_run_degraded(server):
    # Occupy slots up to the soft threshold, then call the handler
    # directly -- the next admit lands above soft_inflight.
    for _ in range(server.config.soft_inflight):
        server.admission.acquire()
    try:
        status, body = server.handle_run_analysis(
            {"synth": {"seed": 7, "size": 12}}
        )
    finally:
        for _ in range(server.config.soft_inflight):
            server.admission.release()
    assert status == 200 and body["ok"]
    assert body["mode"] == "degraded"


def test_rate_shed_is_a_structured_429_with_retry_after_header(server):
    bucket = server.admission.bucket
    saved_rate = bucket.rate
    bucket.rate = 1e-9
    bucket.drain_tokens()
    try:
        status, body, headers = post(
            server, "/run_analysis", {"synth": {"seed": 0, "size": 5}}
        )
    finally:
        bucket.rate = saved_rate
        bucket.fill_tokens()
    assert status == 429
    assert body["error"] == "shed" and body["reason"] == "rate"
    assert body["exit_code"] == EXIT_SHED
    assert body["retry_after"] > 0
    assert int(headers["Retry-After"]) >= 1


def test_depth_shed_is_a_structured_503(server):
    held = server.config.max_inflight
    for _ in range(held):
        server.admission.acquire()
    try:
        status, body, _ = post(
            server, "/run_analysis", {"synth": {"seed": 0, "size": 5}}
        )
    finally:
        for _ in range(held):
            server.admission.release()
    assert status == 503
    assert body["error"] == "shed" and body["reason"] == "depth"
    assert body["exit_code"] == EXIT_SHED


def test_draining_server_refuses_new_work_with_exit_code_6(server):
    server.drain.request_drain(reason="test")
    status, text = get(server, "/healthz")
    assert status == 503 and "draining" in text
    status, body, _ = post(
        server, "/run_analysis", {"synth": {"seed": 0, "size": 5}}
    )
    assert status == 503
    assert body["error"] == "draining"
    assert body["exit_code"] == EXIT_DRAINING


# ----------------------------------------------------------------------
# observability endpoints
# ----------------------------------------------------------------------

def test_metrics_endpoint_is_lint_clean_prometheus(server):
    post(server, "/run_analysis", {"synth": {"seed": 3, "size": 15}})
    status, text = get(server, "/metrics")
    assert status == 200
    assert lint_exposition(text) == []
    assert "service_request_seconds" in text
    assert "service_admit" in text


def test_statusz_reports_admission_cache_and_registry_state(server):
    post(server, "/run_analysis", {"client": "s", "synth": {"seed": 4, "size": 15}})
    status, text = get(server, "/statusz")
    assert status == 200
    data = json.loads(text)
    assert data["ok"] and not data["draining"]
    assert data["requests"] >= 1
    assert data["admission"]["admitted"] >= 1
    assert data["sessions"]["clients"] >= 1
    assert data["registry"]["bounded"]


def test_healthz_is_ok_while_serving(server):
    assert get(server, "/healthz") == (200, "ok\n")


def test_drain_flushes_a_schema_valid_trace(tmp_path):
    trace_path = str(tmp_path / "svc.jsonl")
    srv = AnalysisServer(ServiceConfig(port=0, trace_path=trace_path))
    httpd = srv.start()
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        for seed in range(3):
            status, body, _ = post(
                srv, "/run_analysis", {"synth": {"seed": seed, "size": 10}}
            )
            assert status == 200, body
    finally:
        srv.shutdown()
        thread.join(timeout=10)
    out = io.StringIO()
    assert cli.main(["trace", "--check", trace_path], out=out) == 0
    assert "valid" in out.getvalue()
    records = [json.loads(line) for line in open(trace_path)]
    spans = [r for r in records if r["type"] == "span"]
    assert sum(1 for s in spans if s["name"] == "service.request") == 3
    assert any(r["type"] == "metrics_dump" for r in records)
