"""Smoke tests: every shipped example must run to completion."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

EXAMPLES = [
    "quickstart",
    "compiler_pipeline",
    "sparse_dataflow",
    "control_regions_scheduling",
    "incremental_analysis",
    "region_toolkit",
]


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, f"{name}.py")
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert out.strip(), f"example {name} printed nothing"
