"""Interpreter edge cases and error paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cfg.builder import cfg_from_edges
from repro.interp import (
    MiniLangRuntimeError,
    Trace,
    apply_op,
    builtin_call,
    run_ast,
    run_cfg,
    wrap,
)
from repro.ir import Assign, Branch, LoweredProcedure, Phi, statement_level
from repro.lang import astnodes as ast
from repro.lang.lower import lower_procedure
from repro.synth.structured import random_procedure_ast


def test_wrap_is_64_bit_twos_complement():
    assert wrap(2**63) == -(2**63)
    assert wrap(-(2**63) - 1) == 2**63 - 1
    assert wrap(5) == 5
    assert wrap(0) == 0


def test_apply_op_wraps_products():
    huge = 2**62
    assert -(2**63) <= apply_op("*", huge, 3) < 2**63


def test_unknown_operator_rejected():
    with pytest.raises(MiniLangRuntimeError):
        apply_op("**", 2, 3)


def test_branch_without_expr_rejected():
    cfg = cfg_from_edges([("start", "b"), ("b", "end", "T"), ("b", "end", "F")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["b"].append(Branch(("x",), "x"))  # no expr payload
    with pytest.raises(MiniLangRuntimeError, match="branch without expression"):
        run_cfg(proc, [])


def test_multiway_block_without_branch_rejected():
    cfg = cfg_from_edges([("start", "b"), ("b", "end", "T"), ("b", "end", "F")])
    proc = LoweredProcedure("p", cfg)
    with pytest.raises(MiniLangRuntimeError, match="without a branch"):
        run_cfg(proc, [])


def test_phi_without_edge_arg_rejected():
    cfg = cfg_from_edges([("start", "j"), ("j", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["j"].append(Phi("x#1", {}))
    with pytest.raises(MiniLangRuntimeError, match="no argument"):
        run_cfg(proc, [])


def test_missing_args_default_to_zero():
    src_proc = random_procedure_ast(1, target_statements=5)
    trace = run_ast(src_proc, [])  # fewer args than params
    assert isinstance(trace, Trace)


def test_opaque_assign_is_deterministic():
    cfg = cfg_from_edges([("start", "a"), ("a", "end")])
    proc = LoweredProcedure("p", cfg)
    proc.blocks["a"].append(Assign("x", ("y",), "mystery(y)"))
    r1 = run_cfg(proc, [])
    r2 = run_cfg(proc, [])
    assert r1.env["x"] == r2.env["x"] == builtin_call("mystery(y)", [0])


def test_trace_records_base_variable_names():
    trace = Trace(returned=None, env={})
    trace.record("x#7", 5)
    trace.record("x", 6)
    assert trace.assignments == {"x": [5, 6]}


ARGS = st.lists(st.integers(-10, 10), min_size=3, max_size=3)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 5000), st.sampled_from([15, 40]), ARGS)
def test_statement_level_execution_equivalent(seed, size, args):
    """Exploding blocks into statement chains must not change behaviour."""
    from repro.interp import FuelExhausted

    proc = lower_procedure(random_procedure_ast(seed, target_statements=size))
    exploded = statement_level(proc)
    try:
        expected = run_cfg(proc, args, fuel=30_000)
    except FuelExhausted:
        return
    actual = run_cfg(exploded, args, fuel=120_000)
    assert actual.returned == expected.returned
    assert actual.assignments == expected.assignments
