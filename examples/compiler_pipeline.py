"""A full front-to-back compiler pipeline on MiniLang source.

Parses a procedure with nested control flow (and one unstructured goto),
lowers it to a block-level CFG, builds the PST, places φ-functions with
both the classic Cytron algorithm and the paper's PST-based algorithm
(asserting they agree), and prints the renamed SSA form.

Run:  python examples/compiler_pipeline.py
"""

from repro import build_pst
from repro.lang import lower_program, parse_program
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import place_phis_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.verify import verify_ssa

SOURCE = """
proc interp(n, mode) {
    total = 0;
    i = 0;
    while (i < n) {
        if (mode == 1) {
            total = total + i;
        } else {
            switch (mode) {
                case 2: { total = total + 2 * i; }
                case 3: { total = total - i; }
                default: { goto overflow; }
            }
        }
        i = i + 1;
    }
    repeat {
        total = total - n;
    } until (total < 1000);
    overflow:
    result = total;
    return result;
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    [proc] = lower_program(program)
    print(f"lowered {proc.name!r}: {proc.cfg.num_nodes} blocks, "
          f"{proc.cfg.num_edges} edges, {proc.num_statements()} statements")

    pst = build_pst(proc.cfg)
    print(f"PST: {len(pst.canonical_regions())} regions, max depth {pst.max_depth()}")

    classic = phi_blocks_cytron(proc)
    pst_result = place_phis_pst(proc, pst)
    for var in classic:
        assert classic[var] == pst_result.phi_blocks[var], var
    print("\nφ-placement (classic == PST-based, asserted):")
    for var in sorted(classic):
        blocks = sorted(classic[var], key=str)
        fraction = pst_result.examined_fraction(var)
        print(f"  {var:>8}: φ at {blocks or '[]'}  "
              f"(examined {100 * fraction:.0f}% of regions)")

    ssa = construct_ssa(proc, placement=pst_result.phi_blocks)
    problems = verify_ssa(ssa)
    assert not problems, problems
    print("\nSSA form (verified):")
    for block in ssa.cfg.nodes:
        statements = ssa.blocks.get(block, [])
        if statements:
            print(f"  {block}:")
            for stmt in statements:
                print(f"      {stmt!r}")


if __name__ == "__main__":
    main()
