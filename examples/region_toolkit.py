"""The region toolkit around the PST: intervals, loops, factored CD.

A tour of the companion structures the paper situates the PST among:

1. Allen-Cocke intervals and the derived sequence (the classic elimination
   decomposition; also a reducibility test),
2. natural loops and the loop-nesting forest,
3. the factored control-dependence representation over control regions
   (footnote 7),
4. the PST itself, tying them together on one procedure.

Run:  python examples/region_toolkit.py
"""

from repro import build_pst
from repro.cfg.intervals import derived_sequence, interval_partition
from repro.cfg.loops import loop_nest_forest, natural_loops
from repro.cfg.reducibility import is_reducible
from repro.controldep.cdg import ControlDependenceGraph
from repro.core.region_kinds import classify_pst
from repro.lang import lower_program, parse_program

SOURCE = """
proc kernel(n, m) {
    total = 0;
    for (i = 0 to n) {
        row = i * m;
        for (j = 0 to m) {
            if ((i + j) % 2 == 0) {
                total = total + row + j;
            } else {
                total = total - j;
            }
        }
        while (total > 1000) { total = total / 2; }
    }
    return total;
}
"""


def main() -> None:
    [proc] = lower_program(parse_program(SOURCE))
    cfg = proc.cfg
    print(f"{proc.name}: {cfg.num_nodes} blocks, {cfg.num_edges} edges, "
          f"reducible: {is_reducible(cfg)}\n")

    # 1. intervals
    intervals = interval_partition(cfg)
    sequence = derived_sequence(cfg)
    print(f"interval partition: {len(intervals)} intervals "
          f"(headers: {sorted(str(i.header) for i in intervals)})")
    print(f"derived sequence: {' -> '.join(str(g.num_nodes) for g in sequence)} nodes "
          f"(limit 1 <=> reducible)\n")

    # 2. loops (walk the forest so parent links and depths are populated)
    roots = loop_nest_forest(cfg)
    loops = []
    stack = list(roots)
    while stack:
        loop = stack.pop()
        loops.append(loop)
        stack.extend(loop.children)
    print(f"natural loops: {len(loops)}; top-level: {len(roots)}")
    for loop in sorted(loops, key=lambda l: l.depth):
        print(f"  depth {loop.depth}: header {loop.header}, {len(loop.body)} blocks")
    print()

    # 3. factored control dependence
    cdg = ControlDependenceGraph(cfg)
    print(f"control regions: {len(cdg.regions)} "
          f"(factored storage: {cdg.stored_pairs()} pairs vs "
          f"{cdg.unfactored_pairs()} unfactored)")
    widest = max(cdg.regions, key=len)
    print(f"largest scheduling scope: {widest}\n")

    # 4. the PST over the same procedure
    pst = build_pst(cfg)
    kinds = classify_pst(pst)
    by_kind = {}
    for region, kind in kinds.items():
        by_kind[kind.value] = by_kind.get(kind.value, 0) + 1
    print(f"PST: {len(pst.canonical_regions())} regions, max depth {pst.max_depth()}, "
          f"kinds: {by_kind}")
    # every natural loop sits inside some loop-kind region
    from repro.core.region_kinds import RegionKind

    loop_regions = [r for r, k in kinds.items() if k is RegionKind.LOOP and not r.is_root]
    for loop in loops:
        containing = [r for r in loop_regions if loop.body <= set(r.nodes())]
        assert containing, loop
    print("every natural loop is contained in a LOOP-kind PST region (asserted)")


if __name__ == "__main__":
    main()
