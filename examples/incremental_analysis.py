"""Incremental dataflow analysis via the PST (§6.3's closing suggestion).

The paper points out that the PST "can be used to isolate regions of the
graph where information must be recomputed" after an edit.  This example
builds a large procedure, solves liveness once, then repeatedly edits
single statements and re-solves incrementally, reporting how little of the
PST each update actually touched -- while asserting the result always
equals a from-scratch solve.

Run:  python examples/incremental_analysis.py
"""

import time

from repro import build_pst
from repro.dataflow import LiveVariables, solve_iterative
from repro.incremental import IncrementalDataflow
from repro.ir import Assign
from repro.synth.structured import random_lowered_procedure


def main() -> None:
    proc = random_lowered_procedure(seed=23, target_statements=400, name="editbuf")
    pst = build_pst(proc.cfg)
    total_regions = len(pst.canonical_regions()) + 1
    print(
        f"procedure {proc.name!r}: {proc.cfg.num_nodes} blocks, "
        f"{proc.num_statements()} statements, {total_regions} PST regions\n"
    )

    engine = IncrementalDataflow(proc.cfg, LiveVariables(proc), pst)
    assert engine.solution() == solve_iterative(proc.cfg, LiveVariables(proc))

    # Edit a handful of blocks, one at a time.
    editable = [
        block
        for block in proc.cfg.nodes
        if any(isinstance(s, Assign) for s in proc.blocks.get(block, []))
    ][:8]

    print(f"{'edited block':>14}  {'summaries':>9}  {'regions':>8}  "
          f"{'changed blocks':>14}  {'incremental':>11}  {'full':>8}")
    for block in editable:
        statements = proc.blocks[block]
        index = next(i for i, s in enumerate(statements) if isinstance(s, Assign))
        old = statements[index]
        # rewrite the statement to use no variables (kills its uses)
        statements[index] = Assign(old.target, (), "0")

        fresh_problem = LiveVariables(proc)
        started = time.perf_counter()
        changed = engine.update([block], fresh_problem)
        incremental_ms = (time.perf_counter() - started) * 1000

        started = time.perf_counter()
        full = solve_iterative(proc.cfg, fresh_problem)
        full_ms = (time.perf_counter() - started) * 1000
        assert engine.solution() == full

        print(
            f"{str(block):>14}  {engine.last_summaries_recomputed:>9}  "
            f"{engine.last_regions_resolved:>8}  {len(changed):>14}  "
            f"{incremental_ms:>9.2f}ms  {full_ms:>6.2f}ms"
        )

    print(
        f"\nevery update touched a handful of the {total_regions} regions and "
        "matched the from-scratch solution (asserted)."
    )


if __name__ == "__main__":
    main()
