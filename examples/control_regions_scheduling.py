"""Control regions in linear time (§5), with a scheduling flavour.

Control regions -- maximal sets of nodes with identical control
dependences -- are what a global instruction scheduler moves code within
([GS87]'s region scheduling, which the paper cites as the motivating
client).  This example:

1. computes control regions with the paper's O(E) algorithm (node
   expansion + cycle equivalence, Theorems 7 & 8),
2. cross-checks against the Ferrante-Ottenstein-Warren definition and the
   Cytron-Ferrante-Sarkar O(EN) refinement baseline,
3. times all three on a larger graph to show the asymptotic gap.

Run:  python examples/control_regions_scheduling.py
"""

import time

from repro.controldep import (
    control_dependence,
    control_regions,
    control_regions_by_definition,
    control_regions_cfs,
)
from repro.synth.patterns import paper_like_example
from repro.synth.structured import random_lowered_procedure


def main() -> None:
    cfg = paper_like_example()
    fast = control_regions(cfg)
    by_definition = control_regions_by_definition(cfg)
    refinement = control_regions_cfs(cfg)
    assert fast == by_definition == refinement
    print(f"CFG {cfg.name!r}: {len(fast)} control regions (all three algorithms agree)")
    cd = control_dependence(cfg)
    for group in fast:
        deps = sorted(
            f"{c}--{e.label or ''}-->{e.target}"
            for c, e in cd[group[0]]
            if not isinstance(e, str)  # skip the end->start augmentation edge
        )
        print(f"  region {group}  control deps: {deps or ['(always executed)']}")

    # A scheduler can hoist/sink code freely among blocks of one region:
    print("\nblocks a scheduler may treat as one scheduling scope:")
    for group in fast:
        if len(group) > 1:
            print(f"  {group}")

    # --- scaling ---------------------------------------------------------
    proc = random_lowered_procedure(seed=3, target_statements=2000, name="big")
    print(f"\nscaling on {proc.cfg.num_nodes} blocks / {proc.cfg.num_edges} edges:")
    for label, fn in [
        ("O(E)  cycle equivalence (paper)", control_regions),
        ("O(EN) CFS90 refinement", control_regions_cfs),
        ("FOW87 definition (hash CD sets)", control_regions_by_definition),
    ]:
        started = time.perf_counter()
        result = fn(proc.cfg)
        elapsed = time.perf_counter() - started
        print(f"  {label:<36} {elapsed * 1000:8.1f} ms   ({len(result)} regions)")


if __name__ == "__main__":
    main()
