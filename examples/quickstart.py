"""Quickstart: SESE regions and the Program Structure Tree in five minutes.

Builds the control flow graph in the spirit of the paper's Figure 1 -- a
conditional with a loop in one arm and a nested conditional in the other,
followed by a sequentially composed loop -- then:

1. computes edge cycle-equivalence classes (the paper's core algorithm),
2. derives the canonical SESE regions,
3. builds and prints the PST,
4. emits Graphviz DOT for both the CFG and the PST.

Run:  python examples/quickstart.py
"""

from repro import build_pst, cycle_equivalence_of_cfg
from repro.cfg.dot import cfg_to_dot, pst_to_dot
from repro.core.region_kinds import classify_pst
from repro.synth.patterns import paper_like_example


def main() -> None:
    cfg = paper_like_example()
    print(f"CFG {cfg.name!r}: {cfg.num_nodes} nodes, {cfg.num_edges} edges\n")

    # --- 1. cycle equivalence -----------------------------------------
    equivalence = cycle_equivalence_of_cfg(cfg)
    print("cycle-equivalence classes (same class <=> same cycles):")
    for class_id, edges in sorted(equivalence.classes().items()):
        pairs = ", ".join(f"{e.source}->{e.target}" for e in edges)
        print(f"  class {class_id}: {pairs}")

    # --- 2 & 3. canonical SESE regions organized into the PST ----------
    pst = build_pst(cfg, equivalence)
    kinds = classify_pst(pst)
    print(f"\nPST: {len(pst.canonical_regions())} canonical regions, "
          f"max depth {pst.max_depth()}")

    def show(region, indent: int = 0) -> None:
        kind = kinds[region].value
        print("  " * indent + f"- {region.describe()}  [{kind}]  nodes={sorted(region.own_nodes, key=str)}")
        for child in region.children:
            show(child, indent + 1)

    show(pst.root)

    # --- 4. DOT export --------------------------------------------------
    print("\nGraphviz (render with `dot -Tpng`):")
    print(cfg_to_dot(cfg))
    print(pst_to_dot(pst))


if __name__ == "__main__":
    main()
