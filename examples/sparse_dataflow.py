"""Sparse dataflow with quick propagation graphs (§6.2).

Generates a mid-sized procedure, then for each variable solves the
"reaching definitions of v" instance three ways -- plain iterative over the
whole CFG, PST elimination, and QPG-sparse -- checks all three agree, and
reports how much smaller the QPG is than the CFG (the paper reports QPGs
averaging under 10% of the statement-level CFG).

Run:  python examples/sparse_dataflow.py
"""

from repro import build_pst
from repro.dataflow import (
    ReachingDefinitions,
    VariableReachingDefs,
    solve_elimination,
    solve_iterative,
    solve_qpg,
)
from repro.synth.structured import random_lowered_procedure


def main() -> None:
    proc = random_lowered_procedure(seed=7, target_statements=120, name="demo")
    pst = build_pst(proc.cfg)
    print(f"procedure {proc.name!r}: {proc.cfg.num_nodes} blocks, "
          f"{proc.num_statements()} statements, "
          f"{len(pst.canonical_regions())} SESE regions\n")

    print(f"{'variable':>10}  {'defs':>4}  {'QPG nodes':>9}  {'CFG nodes':>9}  ratio")
    ratios = []
    for var in proc.variables():
        problem = VariableReachingDefs(proc, var)
        baseline = solve_iterative(proc.cfg, problem)
        sparse = solve_qpg(proc.cfg, problem, pst)
        assert sparse.solution == baseline, f"QPG solution mismatch for {var}"
        ratio = sparse.size_ratio(proc.cfg)
        ratios.append(ratio)
        print(f"{var:>10}  {len(proc.defs_of(var)):>4}  {sparse.qpg_nodes:>9}  "
              f"{proc.cfg.num_nodes:>9}  {100 * ratio:5.1f}%")
    print(f"\naverage QPG size: {100 * sum(ratios) / len(ratios):.1f}% of the block-level CFG")

    # The all-variables bit-vector problem, solved by PST elimination.
    problem = ReachingDefinitions(proc)
    elim = solve_elimination(proc.cfg, problem, pst)
    assert elim == solve_iterative(proc.cfg, problem)
    reaching_end = sorted(elim.before[proc.cfg.end], key=str)
    print(f"\nfull reaching-definitions via PST elimination: "
          f"{len(reaching_end)} definitions reach `end` (matches iterative)")


if __name__ == "__main__":
    main()
