"""Elimination-style dataflow using the PST as the decomposition (§6.2).

Classic elimination methods ([AC76], [GW76], surveys in [RP86]/[Ken81])
work in two phases over a hierarchical decomposition of the program; the
paper proposes the PST as that decomposition.  This solver implements the
scheme for gen/kill (distributive bit-vector) problems:

* **Phase 1 (bottom-up)**: each region is summarized by its transfer
  function.  For gen/kill problems a whole region's function has the closed
  form ``F(x) = F(∅) ∪ (x ∩ F(U))``, so two small solves of the region's
  *collapsed* CFG (entry seeded with ∅ and with the universe U) determine
  it exactly; nested regions participate as single summary nodes carrying
  their phase-1 functions.
* **Phase 2 (top-down)**: the entry value of the root is the boundary
  value; solving each region's collapsed CFG with its now-known entry value
  yields the values at its own blocks and at its children's entries, and
  recursion pushes values into ever smaller regions.

Irreducible or otherwise unstructured regions need no special casing: the
per-region solves are a worklist iteration over the (small) collapsed
graph, which is exactly the hybrid-algorithm fallback the paper mentions.

The result equals :func:`repro.dataflow.iterative.solve_iterative` (the
test suite asserts this on random programs for all three problem shapes).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.core.pst import REGION_ENTRY, REGION_EXIT, ProgramStructureTree, build_pst
from repro.dataflow.framework import BACKWARD, GenKillProblem, Solution
from repro.dataflow.iterative import solve_iterative

_Summary = Tuple[FrozenSet, FrozenSet]  # (F(∅), F(U)) of a region


class _CollapsedProblem(GenKillProblem):
    """A gen/kill problem over a region's collapsed CFG.

    Real blocks delegate to the base problem; summary nodes apply their
    region's phase-1 function ``F(x) = F(∅) ∪ (x ∩ F(U))``, which in
    gen/kill clothing is ``gen = F(∅)`` and ``kill = U - F(U)``; the
    synthetic entry/exit nodes are identities.  The entry value is
    injected via ``boundary``.
    """

    def __init__(self, base: GenKillProblem, summaries: Dict[NodeId, _Summary], entry_value: FrozenSet):
        self.base = base
        self.direction = base.direction
        self.meet_is_union = base.meet_is_union
        self.summaries = summaries
        self.entry_value = entry_value

    def universe(self) -> FrozenSet:
        return self.base.universe()

    def boundary(self) -> FrozenSet:
        return self.entry_value

    def gen(self, node: NodeId) -> FrozenSet:
        summary = self.summaries.get(node)
        if summary is not None:
            return summary[0]
        if node in (REGION_ENTRY, REGION_EXIT):
            return frozenset()
        return self.base.gen(node)

    def kill(self, node: NodeId) -> FrozenSet:
        summary = self.summaries.get(node)
        if summary is not None:
            return self.base.universe() - summary[1]
        if node in (REGION_ENTRY, REGION_EXIT):
            return frozenset()
        return self.base.kill(node)


def solve_elimination(
    cfg: CFG, problem: GenKillProblem, pst: Optional[ProgramStructureTree] = None
) -> Solution:
    """Two-phase PST elimination solve of a gen/kill problem."""
    if pst is None:
        pst = build_pst(cfg)
    backward = problem.direction == BACKWARD
    universe = problem.universe()

    # ---- phase 1: bottom-up region summaries --------------------------
    summaries: Dict[int, _Summary] = {}  # region_id -> (F(∅), F(U))
    regions = pst.regions()
    for region in sorted(regions, key=lambda r: -r.depth):
        if region.is_root:
            continue
        sub, _ = pst.collapsed_cfg(region)
        child_summaries = {
            pst.child_summary_id(child): summaries[child.region_id]
            for child in region.children
        }
        f_bottom = _probe(sub, problem, child_summaries, frozenset(), backward)
        f_top = _probe(sub, problem, child_summaries, universe, backward)
        summaries[region.region_id] = (f_bottom, f_top)

    # ---- phase 2: top-down propagation ---------------------------------
    before: Dict[NodeId, FrozenSet] = {}
    after: Dict[NodeId, FrozenSet] = {}
    stack = [(pst.root, problem.boundary())]
    while stack:
        region, entry_value = stack.pop()
        sub, _ = pst.collapsed_cfg(region)
        child_summaries = {
            pst.child_summary_id(child): summaries[child.region_id]
            for child in region.children
        }
        local = _CollapsedProblem(problem, child_summaries, entry_value)
        solution = solve_iterative(sub, local)
        own = set(region.own_nodes)
        for node in sub.nodes:
            if node in own:
                before[node] = solution.before[node]
                after[node] = solution.after[node]
        for child in region.children:
            summary = pst.child_summary_id(child)
            child_entry = (
                solution.before[summary] if not backward else solution.after[summary]
            )
            stack.append((child, child_entry))
    return Solution(before, after)


def _probe(
    sub: CFG,
    problem: GenKillProblem,
    child_summaries: Dict[NodeId, _Summary],
    entry_value: FrozenSet,
    backward: bool,
) -> FrozenSet:
    """Value reaching the region exit when the entry carries ``entry_value``."""
    local = _CollapsedProblem(problem, child_summaries, entry_value)
    solution = solve_iterative(sub, local)
    # The synthetic exit (entry, for backward problems) is an identity node,
    # so its `before` value is exactly what crosses the region boundary.
    probe_node = sub.start if backward else sub.end
    return solution.before[probe_node]