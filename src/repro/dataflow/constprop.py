"""Constant propagation: a non-bit-vector client of the framework.

The lattice per variable is the classic three-level one: ``UNDEF`` (top,
represented by absence from the state mapping), a concrete integer, or
``NAC`` ("not a constant", bottom).  A dataflow state is an immutable
mapping ``variable -> int | NAC``.

Transfer functions *interpret* block statements: assignments whose
right-hand side carries a structured expression (:class:`repro.ir.Assign`
``expr``, produced by the MiniLang lowering) are evaluated over the current
state with full constant folding; assignments without one (parameters,
``undef``, opaque calls) produce ``NAC``, except that a plain integer
``text`` is treated as that literal, which keeps hand-built test procedures
convenient.

Because the problem is not gen/kill, only the iterative and QPG solvers
apply (blocks containing no assignment are identity nodes, so the sparse
machinery of §6.2 works unchanged); the elimination solver's two-probe
summaries do not, and :func:`repro.dataflow.elimination.solve_elimination`
rejects non-gen/kill problems by construction (it requires the
``GenKillProblem`` interface).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple, Union

from repro.cfg.graph import NodeId
from repro.dataflow.framework import DataflowProblem, FORWARD
from repro.ir import Assign, LoweredProcedure


class _NotAConstant:
    """The lattice bottom; a singleton with a readable repr."""

    _instance: Optional["_NotAConstant"] = None

    def __new__(cls) -> "_NotAConstant":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NAC"


NAC = _NotAConstant()

Value = Union[int, _NotAConstant]
State = Tuple[Tuple[str, Value], ...]  # canonical, hashable form


def make_state(mapping: Mapping[str, Value]) -> State:
    """Canonicalize a variable->value mapping (sorted tuple of items)."""
    return tuple(sorted(mapping.items()))


def state_dict(state: State) -> Dict[str, Value]:
    return dict(state)


def constant_value(state: State, var: str) -> Optional[int]:
    """The constant ``var`` holds in ``state``, or None (UNDEF/NAC)."""
    for name, value in state:
        if name == var and isinstance(value, int):
            return value
    return None


class ConstantPropagation(DataflowProblem):
    """Forward constant propagation over a :class:`LoweredProcedure`."""

    direction = FORWARD

    def __init__(self, proc: LoweredProcedure):
        self.proc = proc

    # -- lattice ----------------------------------------------------------
    def boundary(self) -> State:
        return ()  # everything UNDEF at entry

    def top(self) -> State:
        return ()

    def meet(self, a: State, b: State) -> State:
        if a == b:
            return a
        left, right = dict(a), dict(b)
        merged: Dict[str, Value] = {}
        for var in set(left) | set(right):
            # A variable missing on one side is UNDEF there; UNDEF is the
            # identity of meet.
            if var not in left:
                merged[var] = right[var]
            elif var not in right:
                merged[var] = left[var]
            elif left[var] == right[var]:
                merged[var] = left[var]
            else:
                merged[var] = NAC
        return make_state(merged)

    # -- transfer -----------------------------------------------------------
    def transfer(self, node: NodeId, value: State) -> State:
        statements = self.proc.blocks.get(node, [])
        if not any(isinstance(stmt, Assign) for stmt in statements):
            return value
        state = dict(value)
        for stmt in statements:
            if isinstance(stmt, Assign):
                state[stmt.target] = self._evaluate(stmt, state)
        return make_state(state)

    def is_identity(self, node: NodeId) -> bool:
        return not any(
            isinstance(stmt, Assign) for stmt in self.proc.blocks.get(node, [])
        )

    # -- expression evaluation ---------------------------------------------
    def _evaluate(self, stmt: Assign, state: Dict[str, Value]) -> Value:
        if stmt.expr is not None:
            return evaluate_expression(stmt.expr, state)
        if not stmt.uses:
            try:
                return int(stmt.text)
            except (TypeError, ValueError):
                return NAC
        return NAC


def evaluate_expression(expr, state: Mapping[str, Value]) -> Value:
    """Fold a MiniLang expression over a constant-propagation state.

    UNDEF operands stay optimistic (UNDEF op x = UNDEF would require a
    four-level treatment; we conservatively treat UNDEF reads as NAC, which
    is sound and standard for non-SSA constant propagation); NAC is
    absorbing.  Arithmetic follows the language's reference semantics
    (:func:`repro.interp.apply_op`: 64-bit wraparound, ``x/0 == 0``).
    """
    from repro.lang import astnodes as ast

    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Var):
        value = state.get(expr.name)
        return value if isinstance(value, int) else NAC
    if isinstance(expr, ast.BinOp):
        left = evaluate_expression(expr.left, state)
        right = evaluate_expression(expr.right, state)
        if not isinstance(left, int) or not isinstance(right, int):
            return NAC
        # One definition of arithmetic semantics, shared with the reference
        # interpreters (64-bit wraparound, x/0 == 0): folding must agree
        # with execution or the soundness property tests would fail.
        from repro.interp import apply_op

        return apply_op(expr.op, left, right)
    if isinstance(expr, ast.Call):
        return NAC  # opaque
    return NAC
