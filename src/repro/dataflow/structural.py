"""Structure-based region processing (§6.2's "local structure" point).

    "most regions are simple constructs such as blocks, if-then or loop
    constructs; these regions may be processed quickly using
    structure-based methods [Ken81]"

This solver refines :mod:`repro.dataflow.elimination`: regions classified
as BLOCK or CASE by the Figure 7 classifier are summarized and solved with
*closed-form* transfer-function algebra -- composition along chains and
pointwise meet across arms -- with no fixpoint iteration at all.  Loops,
dags and cyclic regions fall back to the generic per-region worklist (the
paper's "hybrid" fallback for unstructured regions).

Transfer functions of gen/kill problems are closed under both operations:

* composition:  (g2,p2) ∘ (g1,p1) = (g2 ∪ (g1 ∩ p2), p1 ∩ p2)
* meet (∪):     (g1,p1) ∧ (g2,p2) = (g1 ∪ g2, p1 ∪ p2)
* meet (∩):     (g1,p1) ∧ (g2,p2) = (g1 ∩ g2, (g1 ∪ p1) ∩ (g2 ∪ p2))

where a function is written ``f(x) = g ∪ (x ∩ p)`` (``p = U - kill``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.core.pst import ProgramStructureTree, build_pst
from repro.core.region_kinds import RegionKind, classify_region
from repro.core.sese import SESERegion
from repro.dataflow.elimination import _CollapsedProblem, _probe
from repro.dataflow.framework import BACKWARD, GenKillProblem, Solution
from repro.dataflow.iterative import solve_iterative

_GenPass = Tuple[FrozenSet, FrozenSet]  # f(x) = gen ∪ (x ∩ pass)


def compose(outer: _GenPass, inner: _GenPass) -> _GenPass:
    """``outer ∘ inner`` (inner runs first)."""
    g1, p1 = inner
    g2, p2 = outer
    return (g2 | (g1 & p2), p1 & p2)


def meet_functions(functions: List[_GenPass], union_meet: bool, universe: FrozenSet) -> _GenPass:
    """Pointwise meet of parallel transfer functions."""
    if not functions:
        # no path: the meet identity (top as a constant function)
        return (frozenset(), frozenset()) if union_meet else (universe, frozenset())
    gens = [g for g, _ in functions]
    passes = [p for _, p in functions]
    if union_meet:
        gen = frozenset().union(*gens)
        pas = frozenset().union(*passes)
        return (gen, pas)
    gen = gens[0]
    avail = gens[0] | passes[0]
    for g, p in functions[1:]:
        gen = gen & g
        avail = avail & (g | p)
    # F(x) = (∩ g_i) ∪ (x ∩ ∩(g_i ∪ p_i)); overlap between gen and pass is
    # harmless in the (gen, pass) representation.
    return (gen, avail)


def identity_function(universe: FrozenSet) -> _GenPass:
    return (frozenset(), universe)


def apply_function(fn: _GenPass, value: FrozenSet) -> FrozenSet:
    gen, pas = fn
    return gen | (value & pas)


class StructuralSolver:
    """PST elimination with closed-form handling of structured regions."""

    def __init__(
        self,
        cfg: CFG,
        problem: GenKillProblem,
        pst: Optional[ProgramStructureTree] = None,
    ):
        self.cfg = cfg
        self.problem = problem
        self.pst = build_pst(cfg) if pst is None else pst
        self.backward = problem.direction == BACKWARD
        self.universe = problem.universe()
        self.union_meet = problem.meet_is_union
        self.kinds: Dict[int, RegionKind] = {}
        self.summaries: Dict[int, Tuple[FrozenSet, FrozenSet]] = {}  # (F∅, FU)
        # statistics: how many regions took the closed-form path
        self.closed_form_regions = 0
        self.iterative_regions = 0

    # ------------------------------------------------------------------
    def solve(self) -> Solution:
        for region in sorted(self.pst.regions(), key=lambda r: -r.depth):
            if region.is_root:
                continue
            self.summaries[region.region_id] = self._summarize(region)

        before: Dict[NodeId, FrozenSet] = {}
        after: Dict[NodeId, FrozenSet] = {}
        stack: List[Tuple[SESERegion, FrozenSet]] = [(self.pst.root, self.problem.boundary())]
        while stack:
            region, entry = stack.pop()
            solution = self._solve_region(region, entry)
            for node in region.own_nodes:
                before[node] = solution.before[node]
                after[node] = solution.after[node]
            for child in region.children:
                summary_node = self.pst.child_summary_id(child)
                child_entry = (
                    solution.before[summary_node]
                    if not self.backward
                    else solution.after[summary_node]
                )
                stack.append((child, child_entry))
        return Solution(before, after)

    # ------------------------------------------------------------------
    def _node_function(self, region: SESERegion, node: NodeId) -> _GenPass:
        """Transfer function of one collapsed-graph node as (gen, pass)."""
        from repro.core.pst import REGION_ENTRY, REGION_EXIT

        if isinstance(node, tuple) and len(node) == 2 and node[0] == "region":
            f_bottom, f_top = self.summaries[node[1]]
            # F(x) = F(∅) ∪ (x ∩ F(U)): gen = F(∅), pass = F(U).
            return (f_bottom, f_top)
        if node in (REGION_ENTRY, REGION_EXIT):
            return identity_function(self.universe)
        return (self.problem.gen(node), self.universe - self.problem.kill(node))

    def _kind(self, region: SESERegion) -> RegionKind:
        kind = self.kinds.get(region.region_id)
        if kind is None:
            kind = classify_region(self.pst, region)
            self.kinds[region.region_id] = kind
        return kind

    def _summarize(self, region: SESERegion) -> Tuple[FrozenSet, FrozenSet]:
        fn = self._region_function(region)
        if fn is not None:
            self.closed_form_regions += 1
            return (apply_function(fn, frozenset()), apply_function(fn, self.universe))
        self.iterative_regions += 1
        sub, _ = self.pst.collapsed_cfg(region)
        child_summaries = {
            self.pst.child_summary_id(child): self.summaries[child.region_id]
            for child in region.children
        }
        return (
            _probe(sub, self.problem, child_summaries, frozenset(), self.backward),
            _probe(sub, self.problem, child_summaries, self.universe, self.backward),
        )

    def _region_function(self, region: SESERegion) -> Optional[_GenPass]:
        """Closed-form (gen, pass) of a BLOCK or CASE region, else None."""
        kind = self._kind(region)
        sub, _ = self.pst.collapsed_cfg(region)
        if kind is RegionKind.BLOCK:
            return self._chain_function(region, sub, sub.start, sub.end)
        if kind is RegionKind.CASE:
            return self._case_function(region, sub)
        return None

    def _chain_function(
        self, region: SESERegion, sub: CFG, start: NodeId, stop: NodeId
    ) -> _GenPass:
        """Composition along the unique path start -> ... -> stop."""
        order: List[NodeId] = []
        node = start
        while node != stop:
            if node != start:
                order.append(node)
            (edge,) = sub.out_edges(node)
            node = edge.target
        if self.backward:
            order.reverse()
        fn = identity_function(self.universe)
        for item in order:
            fn = compose(self._node_function(region, item), fn)
        return fn

    def _case_function(self, region: SESERegion, sub: CFG) -> _GenPass:
        branch = sub.successors(sub.start)[0]
        merge = sub.predecessors(sub.end)[0]
        arms: List[_GenPass] = []
        for edge in sub.out_edges(branch):
            fn = identity_function(self.universe)
            node = edge.target
            chain: List[NodeId] = []
            while node != merge:
                chain.append(node)
                node = sub.successors(node)[0]
            if self.backward:
                chain.reverse()
            for item in chain:
                fn = compose(self._node_function(region, item), fn)
            arms.append(fn)
        arm_fn = meet_functions(arms, self.union_meet, self.universe)
        branch_fn = self._node_function(region, branch)
        merge_fn = self._node_function(region, merge)
        if self.backward:
            return compose(branch_fn, compose(arm_fn, merge_fn))
        return compose(merge_fn, compose(arm_fn, branch_fn))

    # ------------------------------------------------------------------
    def _solve_region(self, region: SESERegion, entry: FrozenSet) -> Solution:
        """Per-node values inside one region, closed-form where possible."""
        sub, _ = self.pst.collapsed_cfg(region)
        kind = self._kind(region) if not region.is_root else None
        if kind is RegionKind.BLOCK:
            return self._solve_chain(region, sub, entry)
        if kind is RegionKind.CASE:
            return self._solve_case(region, sub, entry)
        child_summaries = {
            self.pst.child_summary_id(child): self.summaries[child.region_id]
            for child in region.children
        }
        local = _CollapsedProblem(self.problem, child_summaries, entry)
        return solve_iterative(sub, local)

    def _walk_values(
        self, region: SESERegion, nodes: List[NodeId], entry: FrozenSet,
        before: Dict[NodeId, FrozenSet], after: Dict[NodeId, FrozenSet],
    ) -> FrozenSet:
        """Propagate through a straight-line node sequence; returns exit value."""
        value = entry
        sequence = list(reversed(nodes)) if self.backward else nodes
        for node in sequence:
            out = apply_function(self._node_function(region, node), value)
            if self.backward:
                before[node] = out
                after[node] = value
            else:
                before[node] = value
                after[node] = out
            value = out
        return value

    def _solve_chain(self, region: SESERegion, sub: CFG, entry: FrozenSet) -> Solution:
        before: Dict[NodeId, FrozenSet] = {}
        after: Dict[NodeId, FrozenSet] = {}
        order: List[NodeId] = []
        node = sub.start
        while node != sub.end:
            order.append(node)
            (edge,) = sub.out_edges(node)
            node = edge.target
        order.append(sub.end)
        self._walk_values(region, order, entry, before, after)
        return Solution(before, after)

    def _solve_case(self, region: SESERegion, sub: CFG, entry: FrozenSet) -> Solution:
        before: Dict[NodeId, FrozenSet] = {}
        after: Dict[NodeId, FrozenSet] = {}
        branch = sub.successors(sub.start)[0]
        merge = sub.predecessors(sub.end)[0]
        if not self.backward:
            head = self._walk_values(region, [sub.start, branch], entry, before, after)
            arm_outs: List[FrozenSet] = []
            for edge in sub.out_edges(branch):
                chain: List[NodeId] = []
                node = edge.target
                while node != merge:
                    chain.append(node)
                    node = sub.successors(node)[0]
                arm_outs.append(self._walk_values(region, chain, head, before, after))
            merged = arm_outs[0]
            for value in arm_outs[1:]:
                merged = self.problem.meet(merged, value)
            self._walk_values(region, [merge, sub.end], merged, before, after)
        else:
            tail = self._walk_values(region, [merge, sub.end], entry, before, after)
            arm_outs = []
            for edge in sub.out_edges(branch):
                chain = []
                node = edge.target
                while node != merge:
                    chain.append(node)
                    node = sub.successors(node)[0]
                arm_outs.append(self._walk_values(region, chain, tail, before, after))
            merged = arm_outs[0]
            for value in arm_outs[1:]:
                merged = self.problem.meet(merged, value)
            self._walk_values(region, [sub.start, branch], merged, before, after)
        return Solution(before, after)


def solve_structural(
    cfg: CFG, problem: GenKillProblem, pst: Optional[ProgramStructureTree] = None
) -> Solution:
    """Convenience wrapper: structural elimination solve."""
    return StructuralSolver(cfg, problem, pst).solve()
