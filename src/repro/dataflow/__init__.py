"""Monotone dataflow analysis: iterative, PST-elimination, and QPG-sparse.

* :mod:`repro.dataflow.framework` -- problem interface (direction, meet,
  transfer, identity test) and the gen/kill specialization.
* :mod:`repro.dataflow.problems` -- reaching definitions, live variables,
  available expressions, and the per-variable sparse instances the paper's
  QPG experiments use.
* :mod:`repro.dataflow.iterative` -- the baseline worklist solver.
* :mod:`repro.dataflow.qpg` -- quick propagation graphs (§6.2): bypass SESE
  regions with only identity transfer functions, solve on the small graph,
  project the solution back.
* :mod:`repro.dataflow.elimination` -- elimination-style structural solver
  using the PST as the hierarchical decomposition (§6.2): bottom-up region
  summaries, top-down propagation.
"""

from repro.dataflow.framework import DataflowProblem, GenKillProblem, Solution
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
    VariableReachingDefs,
)
from repro.dataflow.qpg import QPGResult, build_qpg, solve_qpg
from repro.dataflow.elimination import solve_elimination
from repro.dataflow.constprop import NAC, ConstantPropagation
from repro.dataflow.structural import StructuralSolver, solve_structural
from repro.dataflow.interval_solver import solve_interval


def __getattr__(name):
    # ``IncrementalDataflow``'s canonical home moved to ``repro.incremental``
    # (the layer that keeps it current across *structural* CFG edits); this
    # package-attribute spelling still works but is deprecated.  The lazy
    # re-export is also what keeps ``import repro.dataflow`` free of the
    # incremental layer.
    if name == "IncrementalDataflow":
        import warnings

        warnings.warn(
            "importing IncrementalDataflow from repro.dataflow is deprecated; "
            "use `from repro.incremental import IncrementalDataflow` instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.dataflow.incremental import IncrementalDataflow

        return IncrementalDataflow
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "StructuralSolver",
    "solve_structural",
    "solve_interval",
    "NAC",
    "ConstantPropagation",
    "IncrementalDataflow",
    "DataflowProblem",
    "GenKillProblem",
    "Solution",
    "solve_iterative",
    "ReachingDefinitions",
    "LiveVariables",
    "AvailableExpressions",
    "VariableReachingDefs",
    "QPGResult",
    "build_qpg",
    "solve_qpg",
    "solve_elimination",
]
