"""Concrete dataflow problems over :class:`~repro.ir.LoweredProcedure`.

All four classics are gen/kill problems, so every solver in the package
(iterative, QPG-sparse, PST-elimination) applies to each of them:

* :class:`ReachingDefinitions` -- forward, may (union meet);
* :class:`LiveVariables` -- backward, may;
* :class:`AvailableExpressions` -- forward, must (intersection meet);
* :class:`VariableReachingDefs` -- the *single-instance* sparse problem
  ("which definitions of ``x`` reach here?") whose transfer function is the
  identity on every block not touching ``x`` -- the workload the paper's
  quick-propagation-graph experiments are about.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.cfg.graph import NodeId
from repro.dataflow.framework import BACKWARD, FORWARD, GenKillProblem
from repro.ir import LoweredProcedure

DefSite = Tuple[str, NodeId, int]  # (variable, block, statement index)


class ReachingDefinitions(GenKillProblem):
    """Which definition sites may reach each point (forward, union)."""

    direction = FORWARD
    meet_is_union = True

    def __init__(self, proc: LoweredProcedure):
        self.proc = proc
        self._universe: FrozenSet[DefSite] = frozenset(
            (stmt.target, block, index)
            for block in proc.cfg.nodes
            for index, stmt in enumerate(proc.blocks.get(block, []))
            if stmt.target is not None
        )
        self._gen: Dict[NodeId, FrozenSet[DefSite]] = {}
        self._kill: Dict[NodeId, FrozenSet[DefSite]] = {}
        defs_of_var: Dict[str, set] = {}
        for site in self._universe:
            defs_of_var.setdefault(site[0], set()).add(site)
        for block in proc.cfg.nodes:
            last_def: Dict[str, DefSite] = {}
            for index, stmt in enumerate(proc.blocks.get(block, [])):
                if stmt.target is not None:
                    last_def[stmt.target] = (stmt.target, block, index)
            gen = frozenset(last_def.values())
            kill = frozenset(
                site for var in last_def for site in defs_of_var[var]
            ) - gen
            self._gen[block] = gen
            self._kill[block] = kill

    def universe(self) -> FrozenSet:
        return self._universe

    def gen(self, node: NodeId) -> FrozenSet:
        return self._gen.get(node, frozenset())

    def kill(self, node: NodeId) -> FrozenSet:
        return self._kill.get(node, frozenset())


class LiveVariables(GenKillProblem):
    """Which variables may be used before redefinition (backward, union)."""

    direction = BACKWARD
    meet_is_union = True

    def __init__(self, proc: LoweredProcedure):
        self.proc = proc
        self._universe = frozenset(proc.variables())
        self._gen: Dict[NodeId, FrozenSet[str]] = {}
        self._kill: Dict[NodeId, FrozenSet[str]] = {}
        for block in proc.cfg.nodes:
            upward_exposed = set()
            defined = set()
            for stmt in proc.blocks.get(block, []):
                for use in stmt.uses:
                    if use not in defined:
                        upward_exposed.add(use)
                if stmt.target is not None:
                    defined.add(stmt.target)
            self._gen[block] = frozenset(upward_exposed)
            self._kill[block] = frozenset(defined)

    def universe(self) -> FrozenSet:
        return self._universe

    def gen(self, node: NodeId) -> FrozenSet:
        return self._gen.get(node, frozenset())

    def kill(self, node: NodeId) -> FrozenSet:
        return self._kill.get(node, frozenset())


class AvailableExpressions(GenKillProblem):
    """Which right-hand sides must already be computed (forward, ∩).

    Expressions are identified by their display text; an expression is
    killed when any of its operands is redefined.
    """

    direction = FORWARD
    meet_is_union = False

    def __init__(self, proc: LoweredProcedure):
        self.proc = proc
        operands: Dict[str, FrozenSet[str]] = {}
        for _, stmt in proc.statements():
            if stmt.target is not None and stmt.uses:
                operands.setdefault(self._expr_key(stmt), frozenset(stmt.uses))
        self._operands = operands
        self._universe = frozenset(operands)
        self._gen: Dict[NodeId, FrozenSet[str]] = {}
        self._kill: Dict[NodeId, FrozenSet[str]] = {}
        for block in proc.cfg.nodes:
            available = set()
            killed = set()
            for stmt in proc.blocks.get(block, []):
                if stmt.target is None:
                    continue
                key = self._expr_key(stmt)
                if stmt.uses and stmt.target not in operands.get(key, ()):
                    available.add(key)
                # A definition kills every expression reading the target.
                for expr, used in operands.items():
                    if stmt.target in used:
                        killed.add(expr)
                        available.discard(expr)
            self._gen[block] = frozenset(available)
            self._kill[block] = frozenset(killed) - self._gen[block]

    @staticmethod
    def _expr_key(stmt) -> str:
        return getattr(stmt, "text", repr(stmt))

    def universe(self) -> FrozenSet:
        return self._universe

    def gen(self, node: NodeId) -> FrozenSet:
        return self._gen.get(node, frozenset())

    def kill(self, node: NodeId) -> FrozenSet:
        return self._kill.get(node, frozenset())


class VariableReachingDefs(GenKillProblem):
    """Reaching definitions of one variable: the sparse QPG workload.

    Every block that neither defines ``var`` is an identity block, so on
    typical programs the quick propagation graph for this instance is a
    small fraction of the CFG (§6.2; Figure 10's sibling statistic).
    """

    direction = FORWARD
    meet_is_union = True

    def __init__(self, proc: LoweredProcedure, var: str):
        self.proc = proc
        self.var = var
        self._def_blocks = frozenset(proc.defs_of(var))
        self._universe = frozenset(self._def_blocks)

    def universe(self) -> FrozenSet:
        return self._universe

    def gen(self, node: NodeId) -> FrozenSet:
        return frozenset({node}) if node in self._def_blocks else frozenset()

    def kill(self, node: NodeId) -> FrozenSet:
        return (self._universe - {node}) if node in self._def_blocks else frozenset()
