"""Incremental dataflow re-analysis over the PST (§6.3's suggestion).

The paper closes §6.3 observing that the PST "might lead to fast
incremental algorithms for analysis problems since the PST can be used to
isolate regions of the graph where information must be recomputed."  This
module realizes that idea for gen/kill problems on a *fixed CFG*: when the
transfer functions of a few blocks change (statements edited in place), the
engine

1. **bottom-up** re-summarizes only the regions on the PST path from each
   edited block to the root, stopping early as soon as a region's summary
   comes out unchanged (edits that do not alter a region's external
   behaviour never disturb its ancestors), and
2. **top-down** re-solves only the maximal dirty regions with their cached
   entry values, descending into a child only when the child is dirty or
   its entry value changed.

Both phases reuse the machinery of :mod:`repro.dataflow.elimination`.
The engine reports which blocks' values changed and keeps counters
(`last_summaries_recomputed`, `last_regions_resolved`) that the tests use
to confirm recomputation really is localized.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.core.pst import ProgramStructureTree, build_pst
from repro.core.sese import SESERegion
from repro.dataflow.elimination import _CollapsedProblem, _probe
from repro.dataflow.framework import BACKWARD, GenKillProblem, Solution
from repro.dataflow.iterative import solve_iterative

_Summary = Tuple[FrozenSet, FrozenSet]


class IncrementalDataflow:
    """Incrementally maintained gen/kill solution over a fixed CFG."""

    def __init__(self, cfg: CFG, problem: GenKillProblem, pst: Optional[ProgramStructureTree] = None):
        self.cfg = cfg
        self.problem = problem
        self.pst = build_pst(cfg) if pst is None else pst
        self._backward = problem.direction == BACKWARD
        self._summaries: Dict[int, _Summary] = {}
        self._entries: Dict[int, FrozenSet] = {}
        self.before: Dict[NodeId, FrozenSet] = {}
        self.after: Dict[NodeId, FrozenSet] = {}
        self.last_summaries_recomputed = 0
        self.last_regions_resolved = 0
        self._full_solve()

    # ------------------------------------------------------------------
    def solution(self) -> Solution:
        return Solution(dict(self.before), dict(self.after))

    def update(
        self,
        changed_blocks: Iterable[NodeId],
        problem: Optional[GenKillProblem] = None,
    ) -> Set[NodeId]:
        """Re-solve after the transfer functions of ``changed_blocks`` changed.

        ``problem`` may supply a rebuilt problem object (same universe!)
        when the old one caches gen/kill sets.  Returns the set of blocks
        whose ``before`` or ``after`` value changed.
        """
        if problem is not None:
            if problem.universe() != self.problem.universe():
                raise ValueError(
                    "incremental update requires an unchanged fact universe; "
                    "rebuild the IncrementalDataflow engine instead"
                )
            self.problem = problem
        self.last_summaries_recomputed = 0
        self.last_regions_resolved = 0

        dirty: Set[int] = set()
        dirty_regions: Dict[int, SESERegion] = {}
        for block in changed_blocks:
            region = self.pst.region_of(block)
            dirty.add(region.region_id)
            dirty_regions[region.region_id] = region

        # ---- phase 1: bottom-up resummarization with early stopping ----
        worklist: List[SESERegion] = sorted(
            dirty_regions.values(), key=lambda r: -r.depth
        )
        seen: Set[int] = {r.region_id for r in worklist}
        while worklist:
            region = worklist.pop(0)
            if region.is_root:
                continue
            new_summary = self._summarize(region)
            self.last_summaries_recomputed += 1
            if new_summary == self._summaries[region.region_id]:
                continue  # externally invisible edit: ancestors untouched
            self._summaries[region.region_id] = new_summary
            parent = region.parent
            assert parent is not None
            dirty.add(parent.region_id)
            dirty_regions[parent.region_id] = parent
            if parent.region_id not in seen:
                seen.add(parent.region_id)
                # keep the list depth-sorted (parents are shallower)
                worklist.append(parent)
                worklist.sort(key=lambda r: -r.depth)

        # ---- phase 2: top-down re-solve of maximal dirty regions --------
        changed: Set[NodeId] = set()
        maximal = [
            region
            for region in dirty_regions.values()
            if not self._has_dirty_ancestor(region, dirty)
        ]
        for region in maximal:
            entry = (
                self.problem.boundary()
                if region.is_root
                else self._entries[region.region_id]
            )
            self._resolve(region, entry, dirty, changed)
        return changed

    def structural_update(
        self,
        new_regions: Iterable[SESERegion],
        removed_region_ids: Iterable[int],
        parent: SESERegion,
        removed_nodes: Iterable[NodeId] = (),
        problem: Optional[GenKillProblem] = None,
    ) -> Set[NodeId]:
        """Re-solve after a PST splice replaced one region's subtree.

        ``new_regions`` (any order), ``removed_region_ids``, and ``parent``
        come from a :class:`~repro.incremental.splice.SpliceOutcome`; the
        engine's ``pst`` must be the already-spliced tree (the maintainer
        mutates it in place, so object identity holds).  ``problem`` may
        supply a rebuilt problem object -- required when the edit added or
        removed statements -- under the same unchanged-universe contract as
        :meth:`update`.  Returns the blocks whose values changed.
        """
        if problem is not None:
            if problem.universe() != self.problem.universe():
                raise ValueError(
                    "incremental update requires an unchanged fact universe; "
                    "rebuild the IncrementalDataflow engine instead"
                )
            self.problem = problem
        self.last_summaries_recomputed = 0
        self.last_regions_resolved = 0

        for region_id in removed_region_ids:
            self._summaries.pop(region_id, None)
            self._entries.pop(region_id, None)
        for node in removed_nodes:
            self.before.pop(node, None)
            self.after.pop(node, None)

        fresh = list(new_regions)
        for region in sorted(fresh, key=lambda r: -r.depth):
            self._summaries[region.region_id] = self._summarize(region)
            self.last_summaries_recomputed += 1

        # The splice parent must re-resolve regardless of its own summary
        # (its interior changed); ancestors only while summaries keep
        # changing -- the same early stop as :meth:`update`'s phase 1.
        dirty: Set[int] = {region.region_id for region in fresh}
        top = parent
        while True:
            dirty.add(top.region_id)
            if top.is_root:
                break
            new_summary = self._summarize(top)
            self.last_summaries_recomputed += 1
            if new_summary == self._summaries.get(top.region_id):
                break
            self._summaries[top.region_id] = new_summary
            assert top.parent is not None
            top = top.parent

        # The dirty set is a chain of ancestors plus the spliced subtree,
        # so ``top`` is the unique maximal dirty region.
        entry = (
            self.problem.boundary()
            if top.is_root
            else self._entries[top.region_id]
        )
        changed: Set[NodeId] = set()
        self._resolve(top, entry, dirty, changed)
        return changed

    def rebuild(
        self,
        pst: Optional[ProgramStructureTree] = None,
        problem: Optional[GenKillProblem] = None,
    ) -> None:
        """Re-initialize in place (object identity preserved) from scratch.

        The escape hatch for structural edits the splice path could not
        absorb: a new PST (built from ``self.cfg`` when not supplied) and
        optionally a new problem replace all cached state.
        """
        if problem is not None:
            self.problem = problem
        self.pst = build_pst(self.cfg) if pst is None else pst
        self._backward = self.problem.direction == BACKWARD
        self._summaries.clear()
        self._entries.clear()
        self.before.clear()
        self.after.clear()
        self.last_summaries_recomputed = 0
        self.last_regions_resolved = 0
        self._full_solve()

    # ------------------------------------------------------------------
    def _full_solve(self) -> None:
        for region in sorted(self.pst.regions(), key=lambda r: -r.depth):
            if not region.is_root:
                self._summaries[region.region_id] = self._summarize(region)
        self._entries[self.pst.root.region_id] = self.problem.boundary()
        self._resolve(self.pst.root, self.problem.boundary(), dirty=None, changed=set())

    def _summarize(self, region: SESERegion) -> _Summary:
        sub, _ = self.pst.collapsed_cfg(region)
        child_summaries = {
            self.pst.child_summary_id(child): self._summaries[child.region_id]
            for child in region.children
        }
        universe = self.problem.universe()
        return (
            _probe(sub, self.problem, child_summaries, frozenset(), self._backward),
            _probe(sub, self.problem, child_summaries, universe, self._backward),
        )

    def _has_dirty_ancestor(self, region: SESERegion, dirty: Set[int]) -> bool:
        parent = region.parent
        while parent is not None:
            if parent.region_id in dirty:
                return True
            parent = parent.parent
        return False

    def _resolve(
        self,
        region: SESERegion,
        entry: FrozenSet,
        dirty: Optional[Set[int]],
        changed: Set[NodeId],
    ) -> None:
        """Solve one region; recurse where necessary.

        ``dirty=None`` means the initial full solve (descend everywhere).
        """
        self.last_regions_resolved += 1
        self._entries[region.region_id] = entry
        sub, _ = self.pst.collapsed_cfg(region)
        child_summaries = {
            self.pst.child_summary_id(child): self._summaries[child.region_id]
            for child in region.children
        }
        local = _CollapsedProblem(self.problem, child_summaries, entry)
        solution = solve_iterative(sub, local)
        for node in region.own_nodes:
            new_before = solution.before[node]
            new_after = solution.after[node]
            if self.before.get(node) != new_before or self.after.get(node) != new_after:
                changed.add(node)
            self.before[node] = new_before
            self.after[node] = new_after
        for child in region.children:
            summary_node = self.pst.child_summary_id(child)
            child_entry = (
                solution.before[summary_node]
                if not self._backward
                else solution.after[summary_node]
            )
            must_descend = (
                dirty is None
                or child.region_id in dirty
                or child_entry != self._entries.get(child.region_id)
            )
            if must_descend:
                self._resolve(child, child_entry, dirty, changed)
            else:
                self._entries[child.region_id] = child_entry
