"""Quick propagation graphs: PST-driven sparse dataflow (§6.2).

Given a dataflow problem instance, most SESE regions usually carry only
identity transfer functions ("transparent" regions).  The QPG bypasses
every maximal transparent region with a single edge, producing a graph that
is typically a small fraction of the CFG; the problem is solved on the QPG
and the solution is projected back (transparent regions take the value
flowing across their bypass edge unchanged).

Construction follows the paper:

1. Mark regions containing a non-identity transfer function, starting at
   the leaf blocks and walking up the PST -- time proportional to the
   number of marked regions.
2. Traverse the CFG level by level, bypassing unmarked regions: a QPG edge
   is a pair ``(e1, e2)`` of CFG edges where either both are the same edge
   or ``(e1, e2)`` encloses a chain of transparent SESE regions.
3. Solve on the QPG with any method; transfer back.

``benchmarks/bench_qpg_size.py`` reproduces the "QPG averages < 10% of the
CFG" measurement for per-variable reaching-definition instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.cfg.graph import CFG, Edge
from repro.core.pst import ProgramStructureTree
from repro.kernel.session import session_for
from repro.core.sese import SESERegion
from repro.dataflow.framework import BACKWARD, DataflowProblem, Solution
from repro.dataflow.iterative import solve_iterative


@dataclass
class QPGResult:
    """The projected solution plus the size statistics of the QPG."""

    solution: Solution
    qpg: CFG
    bypassed_regions: int

    @property
    def qpg_nodes(self) -> int:
        return self.qpg.num_nodes

    @property
    def qpg_edges(self) -> int:
        return self.qpg.num_edges

    def size_ratio(self, cfg: CFG) -> float:
        """QPG nodes as a fraction of CFG nodes."""
        return self.qpg.num_nodes / max(1, cfg.num_nodes)


def build_qpg(
    cfg: CFG, problem: DataflowProblem, pst: Optional[ProgramStructureTree] = None
) -> Tuple[CFG, Dict[Edge, Tuple[Edge, Edge]], Set[SESERegion]]:
    """Construct the quick propagation graph for one problem instance.

    Returns ``(qpg, chains, marked)`` where ``qpg`` shares node ids with
    ``cfg`` (restricted to nodes of marked regions), ``chains`` maps each
    QPG edge to its ``(first, last)`` pair of original CFG edges, and
    ``marked`` is the set of non-transparent regions.
    """
    if pst is None:
        pst = session_for(cfg).pst()

    # Step 1: mark regions with non-identity transfer functions (leaf-up).
    marked: Set[SESERegion] = {pst.root}  # keep start/end even if all-identity
    for node in cfg.nodes:
        if problem.is_identity(node):
            continue
        region: Optional[SESERegion] = pst.region_of(node)
        while region is not None and region not in marked:
            marked.add(region)
            region = region.parent

    # Step 2: nodes of marked regions; edges with transparent chains bypassed.
    qpg = CFG(start=cfg.start, end=cfg.end, name=f"{cfg.name}.qpg")
    for region in marked:
        for node in region.own_nodes:
            qpg.add_node(node)

    chains: Dict[Edge, Tuple[Edge, Edge]] = {}
    bypassed: Set[SESERegion] = set()
    for edge in cfg.edges:
        if pst.edge_level(edge) not in marked:
            continue  # strictly inside a transparent region
        exit_of = pst.exit_region.get(edge)
        if exit_of is not None and exit_of not in marked:
            continue  # tail of a bypass chain; handled from its head
        last = edge
        while True:
            into = pst.entry_region.get(last)
            if into is None or into in marked:
                break
            bypassed.add(into)
            assert into.exit is not None
            last = into.exit
        qpg_edge = qpg.add_edge(edge.source, last.target, edge.label)
        chains[qpg_edge] = (edge, last)
    return qpg, chains, bypassed


def solve_qpg(
    cfg: CFG,
    problem: DataflowProblem,
    pst: Optional[ProgramStructureTree] = None,
) -> QPGResult:
    """Solve ``problem`` sparsely and project the solution onto all of ``cfg``."""
    if pst is None:
        pst = session_for(cfg).pst()
    qpg, chains, bypassed = build_qpg(cfg, problem, pst)
    solution = solve_iterative(qpg, problem)

    before = dict(solution.before)
    after = dict(solution.after)
    backward = problem.direction == BACKWARD
    for qpg_edge, (first, last) in chains.items():
        if first is last:
            continue
        # Every node inside the bypassed chain sees the value on the chain
        # unchanged (identity transfers only).
        value = after[first.source] if not backward else before[last.target]
        region = pst.entry_region[first]
        while True:
            for node in region.nodes():
                before[node] = value
                after[node] = value
            if region.exit is last:
                break
            region = pst.entry_region[region.exit]
    return QPGResult(Solution(before, after), qpg, len(bypassed))
