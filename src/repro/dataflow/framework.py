"""The monotone dataflow framework interface.

A :class:`DataflowProblem` packages direction, lattice meet, boundary value
and per-node transfer functions.  Values must be immutable (frozensets are
used throughout); solvers compare with ``==`` to detect the fixpoint.

:class:`GenKillProblem` specializes to the classic bit-vector form
``f(x) = gen ∪ (x - kill)``.  For these (distributive) problems a whole
region's transfer function is again of the closed form
``F(x) = F(∅) ∪ (x ∩ F(U))``, which is what makes the PST elimination
solver's two-probe region summaries exact (see
:mod:`repro.dataflow.elimination`).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generic, TypeVar

from repro.cfg.graph import CFG, NodeId

V = TypeVar("V")

FORWARD = "forward"
BACKWARD = "backward"


class DataflowProblem(Generic[V]):
    """A monotone dataflow problem over the blocks of a CFG."""

    direction: str = FORWARD

    def boundary(self) -> V:
        """Value at the program entry (forward) or exit (backward)."""
        raise NotImplementedError

    def top(self) -> V:
        """The optimistic initial value (identity of ``meet``)."""
        raise NotImplementedError

    def meet(self, a: V, b: V) -> V:
        raise NotImplementedError

    def transfer(self, node: NodeId, value: V) -> V:
        raise NotImplementedError

    def is_identity(self, node: NodeId) -> bool:
        """True when the node's transfer function is the identity.

        Drives QPG bypassing; a conservative ``False`` is always safe.
        """
        return False


class Solution(Generic[V]):
    """Per-node dataflow values in *program order*.

    ``before[n]`` is the value at the node's entry and ``after[n]`` at its
    exit, for both forward and backward problems (backward solvers fill
    ``before`` with the transferred value, matching the usual in/out
    convention).
    """

    def __init__(self, before: Dict[NodeId, V], after: Dict[NodeId, V]):
        self.before = before
        self.after = after

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Solution)
            and self.before == other.before
            and self.after == other.after
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Solution({len(self.before)} nodes)"


class GenKillProblem(DataflowProblem[FrozenSet]):
    """Bit-vector problems: ``f(x) = gen(n) ∪ (x - kill(n))``.

    Subclasses provide ``gen``/``kill`` per node, the fact ``universe``,
    the ``direction`` and whether ``meet`` is union (may) or intersection
    (must, via ``meet_is_union = False``).
    """

    meet_is_union: bool = True

    def universe(self) -> FrozenSet:
        raise NotImplementedError

    def gen(self, node: NodeId) -> FrozenSet:
        raise NotImplementedError

    def kill(self, node: NodeId) -> FrozenSet:
        raise NotImplementedError

    # -- framework implementation ----------------------------------------
    def boundary(self) -> FrozenSet:
        return frozenset()

    def top(self) -> FrozenSet:
        return frozenset() if self.meet_is_union else self.universe()

    def meet(self, a: FrozenSet, b: FrozenSet) -> FrozenSet:
        return a | b if self.meet_is_union else a & b

    def transfer(self, node: NodeId, value: FrozenSet) -> FrozenSet:
        return self.gen(node) | (value - self.kill(node))

    def is_identity(self, node: NodeId) -> bool:
        return not self.gen(node) and not self.kill(node)
