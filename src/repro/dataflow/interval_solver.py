"""Allen-Cocke interval elimination for dataflow ([AC76], [Ken81] §3).

The classic elimination method the paper contrasts the PST against
(§6.2): summarize each interval by transfer functions from its header,
collapse to the derived graph, repeat until the limit graph, then
propagate entry values back down.  Gen/kill transfer functions are closed
under composition and (union) meet, and a loop's closure is simply
``f*(x) = x ∪ gen(cycle)`` for union-meet frameworks, so every step is
closed-form; if the limit graph has more than one node (irreducible graph)
it is solved by a small worklist iteration -- the "hybrid" fallback the
paper mentions.

Scope: forward or backward *union-meet* gen/kill problems (reaching
definitions, liveness).  Must-problems (available expressions) would need
a different closure treatment and are rejected -- use
:func:`repro.dataflow.elimination.solve_elimination` or the iterative
solver for those.  Backward problems run on the reverse graph, which may
be irreducible even when the forward graph is not; the hybrid fallback
covers that transparently.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.intervals import Interval, interval_partition
from repro.dataflow.framework import BACKWARD, GenKillProblem, Solution
from repro.dataflow.structural import _GenPass, apply_function, compose, identity_function, meet_functions


def solve_interval(cfg: CFG, problem: GenKillProblem) -> Solution:
    """Interval-elimination solve of a union-meet gen/kill problem."""
    if not problem.meet_is_union:
        raise ValueError(
            "interval elimination here supports union-meet problems only; "
            "use solve_elimination/solve_iterative for must-problems"
        )
    backward = problem.direction == BACKWARD
    graph = cfg.reversed() if backward else cfg
    universe = problem.universe()

    # Level 0: each edge (u, v) carries u's transfer function.
    edge_fn: Dict[Edge, _GenPass] = {
        edge: (problem.gen(edge.source), universe - problem.kill(edge.source))
        for edge in graph.edges
    }

    # ---- phase 1: build the derived sequence with summaries -------------
    levels: List[Tuple[CFG, List[Interval], Dict[NodeId, _GenPass]]] = []
    current = graph
    while True:
        intervals = interval_partition(current)
        paths = _interval_paths(current, intervals, edge_fn, universe)
        levels.append((current, intervals, paths))
        if all(len(interval.nodes) == 1 for interval in intervals):
            break  # limit graph reached (no interval absorbed anything)
        current, edge_fn = _next_level(current, intervals, paths, edge_fn, universe)

    # ---- phase 2a: solve the limit graph (worklist over edge functions) --
    limit_graph = current
    entries: Dict[NodeId, FrozenSet] = {node: problem.top() for node in limit_graph.nodes}
    entries[limit_graph.start] = problem.boundary()
    worklist = [n for n in limit_graph.nodes if n != limit_graph.start]
    changed = True
    while changed:
        changed = False
        for node in limit_graph.nodes:
            if node == limit_graph.start:
                continue
            value: Optional[FrozenSet] = None
            for edge in limit_graph.in_edges(node):
                contribution = apply_function(edge_fn[edge], entries[edge.source])
                value = contribution if value is None else problem.meet(value, contribution)
            if value is not None and value != entries[node]:
                entries[node] = value
                changed = True

    # ---- phase 2b: push entries down the derived sequence ----------------
    for level_graph, intervals, paths in reversed(levels):
        finer: Dict[NodeId, FrozenSet] = {}
        for interval in intervals:
            header_entry = entries.get(interval.header, problem.top())
            for node in interval.nodes:
                finer[node] = apply_function(paths[node], header_entry)
        entries = finer

    before = {node: entries.get(node, problem.top()) for node in graph.nodes}
    after = {node: problem.transfer(node, before[node]) for node in graph.nodes}
    if backward:
        return Solution(before=after, after=before)
    return Solution(before=before, after=after)


def _interval_paths(
    graph: CFG,
    intervals: List[Interval],
    edge_fn: Dict[Edge, _GenPass],
    universe: FrozenSet,
) -> Dict[NodeId, _GenPass]:
    """Per node: the function from its interval header's entry to its entry.

    Computed in interval order (all predecessors of a non-header member lie
    in the interval and precede it), then composed with the header's loop
    closure ``x ∪ gen(cycle)``.
    """
    paths: Dict[NodeId, _GenPass] = {}
    for interval in intervals:
        members = set(interval.nodes)
        raw: Dict[NodeId, _GenPass] = {interval.header: identity_function(universe)}
        for node in interval.nodes[1:]:
            incoming = [
                compose(edge_fn[edge], raw[edge.source])
                for edge in graph.in_edges(node)
                if edge.source in members and edge.source != node
            ]
            raw[node] = meet_functions(incoming, union_meet=True, universe=universe)
            # Self-loop closure: in*(x) = in(x) ∪ gen(f_self) for union meet.
            self_gen: FrozenSet = frozenset()
            has_self = False
            for edge in graph.in_edges(node):
                if edge.source == node:
                    has_self = True
                    self_gen = self_gen | edge_fn[edge][0]
            if has_self:
                raw[node] = compose((self_gen, universe), raw[node])
        # loop closure: contributions of back edges into the header
        cycle_gen: FrozenSet = frozenset()
        for edge in graph.in_edges(interval.header):
            if edge.source in members:
                fn = compose(edge_fn[edge], raw[edge.source])
                cycle_gen = cycle_gen | fn[0]
        closure: _GenPass = (cycle_gen, universe)
        for node in interval.nodes:
            paths[node] = compose(raw[node], closure)
    return paths


def _next_level(
    graph: CFG,
    intervals: List[Interval],
    paths: Dict[NodeId, _GenPass],
    edge_fn: Dict[Edge, _GenPass],
    universe: FrozenSet,
) -> Tuple[CFG, Dict[Edge, _GenPass]]:
    """The derived graph plus its edge functions (meet of crossing edges)."""
    interval_of: Dict[NodeId, Interval] = {}
    for interval in intervals:
        for node in interval.nodes:
            interval_of[node] = interval

    accumulated: Dict[Tuple[NodeId, NodeId], List[_GenPass]] = {}
    for edge in graph.edges:
        src = interval_of.get(edge.source)
        dst = interval_of.get(edge.target)
        if src is None or dst is None or src is dst:
            continue
        fn = compose(edge_fn[edge], paths[edge.source])
        accumulated.setdefault((src.header, dst.header), []).append(fn)

    out = CFG(name=f"{graph.name}+")
    out.start = interval_of[graph.start].header
    for interval in intervals:
        out.add_node(interval.header)
    next_fn: Dict[Edge, _GenPass] = {}
    for (src_header, dst_header), functions in accumulated.items():
        edge = out.add_edge(src_header, dst_header)
        next_fn[edge] = meet_functions(functions, union_meet=True, universe=universe)
    return out, next_fn
