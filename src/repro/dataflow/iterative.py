"""The baseline iterative worklist solver.

Works on any CFG and any :class:`~repro.dataflow.framework.DataflowProblem`.
Nodes are seeded in reverse postorder (postorder for backward problems) so
typical programs converge in a couple of sweeps.  Returns a
:class:`~repro.dataflow.framework.Solution` with values in program order
(``before``/``after`` per node) regardless of direction.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.cfg.graph import CFG, NodeId
from repro.cfg.traversal import reverse_postorder
from repro.dataflow.framework import BACKWARD, DataflowProblem, Solution
from repro.obs import observer as _obs
from repro.resilience.guards import TICK_CHUNK, Ticker


def solve_iterative(
    cfg: CFG, problem: DataflowProblem, ticker: Optional[Ticker] = None
) -> Solution:
    """Solve ``problem`` over ``cfg`` to its maximal fixpoint.

    ``ticker`` is charged one step per worklist pop (billed in batches of
    :data:`~repro.resilience.guards.TICK_CHUNK`), so a deadline or step
    budget bounds slowly-converging (e.g. deep-chain) instances.

    Runs the array kernel
    (:func:`repro.kernel.dataflow.kernel_solve_iterative`) over the shared
    frozen snapshot -- backward problems solve directly on the predecessor
    CSR rows, with no reversed-graph copy.  On the vectorized backend tier,
    stock gen/kill problems take the packed bit-vector solver
    (:func:`repro.kernel.vectorized.vectorized_solve_genkill`) instead --
    same fixpoint, same billing, machine-word transfer functions.
    :func:`solve_iterative_reference` is the retained object-graph
    implementation the fuzz oracles compare against.
    """
    if (cfg.end if problem.direction == BACKWARD else cfg.start) is not None:
        from repro.kernel.backend import vectorized_enabled
        from repro.kernel.dataflow import kernel_solve_iterative
        from repro.kernel.registry import shared_frozen

        solver = kernel_solve_iterative
        impl = "kernel"
        if vectorized_enabled():
            from repro.kernel.vectorized import (
                genkill_solver_compatible,
                vectorized_solve_genkill,
            )

            if genkill_solver_compatible(problem):
                solver = vectorized_solve_genkill
                impl = "vectorized"
        o = _obs._CURRENT
        if o is None:
            return solver(shared_frozen(cfg), problem, ticker)
        o.count("dispatch", component="solve_iterative", impl=impl)
        with o.span(
            "solve_iterative",
            impl=impl,
            n_nodes=cfg.num_nodes,
            n_edges=cfg.num_edges,
        ):
            return solver(shared_frozen(cfg), problem, ticker)
    return solve_iterative_reference(cfg, problem, ticker)


def solve_iterative_reference(
    cfg: CFG, problem: DataflowProblem, ticker: Optional[Ticker] = None
) -> Solution:
    """Object-graph reference for :func:`solve_iterative` (same contract)."""
    o = _obs._CURRENT
    if o is None:
        return _solve_iterative_reference(cfg, problem, ticker)
    o.count("dispatch", component="solve_iterative", impl="reference")
    with o.span(
        "solve_iterative", impl="reference", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _solve_iterative_reference(cfg, problem, ticker)


def _solve_iterative_reference(
    cfg: CFG, problem: DataflowProblem, ticker: Optional[Ticker]
) -> Solution:
    backward = problem.direction == BACKWARD
    if backward:
        graph = cfg.reversed()
    else:
        graph = cfg
    root = graph.start

    order = reverse_postorder(graph, root)
    position = {node: i for i, node in enumerate(order)}
    # Nodes unreachable in the solving direction keep top (e.g. a node that
    # cannot reach `end` never arises in a valid CFG, but subgraphs used by
    # the elimination solver may have them transiently).
    entry: Dict[NodeId, object] = {node: problem.top() for node in graph.nodes}
    exit_: Dict[NodeId, object] = {}
    entry[root] = problem.boundary()
    # Reachable nodes are seeded with top, the meet identity, NOT with
    # transfer(top): a transfer that is non-monotone at top (constant
    # propagation maps an UNDEF read to NAC) would otherwise leak a
    # pessimistic seed into a successor's first meet before the node is
    # ever evaluated on its real entry, and the leak depends on how many
    # transparent nodes buffer it -- so the QPG (which collapses those
    # buffers) would disagree with the full-CFG solve.  Unreachable nodes
    # are never popped; they keep the transferred value as before.
    reachable = set(order)
    for node in graph.nodes:
        if node in reachable:
            exit_[node] = problem.top()
        else:
            exit_[node] = problem.transfer(node, entry[node])

    tick = None if ticker is None else ticker.tick
    pending: Set[NodeId] = set(order)
    queue = deque(order)
    unbilled = 0
    while queue:
        if tick is not None:
            unbilled += 1
            if unbilled == TICK_CHUNK:
                tick(TICK_CHUNK)
                unbilled = 0
        node = queue.popleft()
        pending.discard(node)
        if node != root:
            preds = graph.predecessors(node)
            value = None
            for pred in preds:
                value = exit_[pred] if value is None else problem.meet(value, exit_[pred])
            if value is None:
                value = problem.top()
            entry[node] = value
        new_exit = problem.transfer(node, entry[node])
        if new_exit != exit_[node]:
            exit_[node] = new_exit
            for succ in graph.successors(node):
                if succ not in pending:
                    pending.add(succ)
                    queue.append(succ)
    if tick is not None and unbilled:
        tick(unbilled)

    if backward:
        # program order: `before` is the transferred (in) value.
        return Solution(before=exit_, after=entry)
    return Solution(before=entry, after=exit_)
