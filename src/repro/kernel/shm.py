"""Zero-copy CSR snapshot sharing over ``multiprocessing.shared_memory``.

``run_batch --workers N`` historically pickled every CFG per item: the
whole object graph crossed the process boundary, and the worker rebuilt
and re-froze it before any analysis ran -- a serialization tax that grows
with graph size.  The frozen CSR layout was designed to be shared
read-only across processes, and this module cashes that in:

* the parent :func:`export_frozen`\\ s a snapshot into one shared-memory
  segment (the eight int64 CSR arrays plus self-loops back-to-back,
  followed by a small pickled blob holding the only object data a worker
  needs: graph name, node ids, edge labels);
* the submitted payload is just :class:`SegmentMeta` -- segment name and
  layout counts, a few dozen bytes regardless of graph size;
* the worker :func:`attach_frozen`\\ s the segment: the CSR arrays become
  ``memoryview.cast("q")`` windows into the *same* pages (no copy, no
  re-freeze), wrapped in a :class:`SharedCFG` shell plus a
  :class:`~repro.kernel.csr.FrozenCFG` seeded into the snapshot registry
  via :func:`~repro.kernel.registry.adopt_frozen` -- so every kernel
  dispatch finds it exactly as if ``freeze`` had run.

:class:`SharedCFG` materializes its object adjacency lazily: array-only
runs (validation + dominators, for instance) never build a single
:class:`~repro.cfg.graph.Edge`; anything that genuinely needs the object
graph (PST postconditions, ``edge_split``, mutation) hydrates it on first
touch from the shared arrays, *without* bumping the mutation version --
the adopted snapshot stays valid.

Lifecycle is parent-owned: every created segment registers in a
process-wide table and is unlinked when its last consuming item completes
(a batch exports one segment per *distinct* snapshot, so a sweep corpus
re-analyzing one graph under many keys ships one copy), when the batch
exits (crashed workers included -- the executor's future still resolves),
at :func:`cleanup_all` (wired into service drain), and at interpreter exit
as a last resort.  Workers merely close their attachment; on Python >= 3.8
the per-process resource tracker is told to forget worker-side
attachments so it does not double-unlink segments the parent owns.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from array import array
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.kernel.csr import FrozenCFG

try:  # pragma: no cover - exercised via availability checks
    from multiprocessing import shared_memory as _shared_memory
except Exception:  # pragma: no cover - platforms without _posixshmem
    _shared_memory = None

#: The array fields of a snapshot, in segment layout order.
_ARRAYS = (
    "edge_src",
    "edge_dst",
    "succ_off",
    "succ_edge",
    "succ_dst",
    "pred_off",
    "pred_edge",
    "pred_src",
    "self_loops",
)

_ITEM = 8  # bytes per int64 slot


def shared_memory_available() -> bool:
    """True when the platform offers ``multiprocessing.shared_memory``.

    ``REPRO_NO_SHM`` (any non-empty value) forces False so tests and CI
    can exercise the pickled fallback on capable hosts.
    """
    if os.environ.get("REPRO_NO_SHM"):
        return False
    return _shared_memory is not None


# ---------------------------------------------------------------------------
# Parent-owned segment lifecycle
# ---------------------------------------------------------------------------

_LIVE_LOCK = threading.Lock()
_LIVE_SEGMENTS: Dict[str, object] = {}


def _track(segment) -> None:
    with _LIVE_LOCK:
        _LIVE_SEGMENTS[segment.name] = segment


def release_segment(name: str) -> None:
    """Close and unlink one parent-owned segment (idempotent)."""
    with _LIVE_LOCK:
        segment = _LIVE_SEGMENTS.pop(name, None)
    if segment is None:
        return
    try:
        segment.close()
    except Exception:
        pass
    try:
        segment.unlink()
    except Exception:
        pass


def live_segment_names() -> List[str]:
    """Names of parent-owned segments not yet released (for tests/drain)."""
    with _LIVE_LOCK:
        return list(_LIVE_SEGMENTS)


def cleanup_all() -> int:
    """Release every parent-owned segment; returns how many were dropped.

    Registered with ``atexit`` and as a service drain flush hook, so
    worker crashes, SIGTERM drains, and interpreter shutdown all converge
    on the same no-leaked-``/dev/shm``-entries guarantee.
    """
    dropped = 0
    for name in live_segment_names():
        release_segment(name)
        dropped += 1
    return dropped


atexit.register(cleanup_all)


# ---------------------------------------------------------------------------
# Export (parent side)
# ---------------------------------------------------------------------------

#: (segment_name, n, m, k, start, end, blob_off, blob_len) -- everything a
#: worker needs to attach; sizes in int64 slots for the arrays, bytes for
#: the blob.
SegmentMeta = Tuple[str, int, int, int, int, int, int, int]


def export_frozen(frozen: FrozenCFG) -> SegmentMeta:
    """Copy ``frozen`` into a new parent-owned shared-memory segment.

    One copy, at the parent, ever: workers attach the same pages.  The
    segment is registered for :func:`cleanup_all`; callers release it via
    :func:`release_segment` once the consuming item is done.
    """
    assert _shared_memory is not None, "shared memory unavailable"
    n = frozen.num_nodes
    m = frozen.num_edges
    k = len(frozen.self_loops)
    cfg = frozen.cfg
    blob = pickle.dumps(
        (
            cfg.name,
            tuple(frozen.node_ids),
            tuple(e.label for e in cfg.edges),
        ),
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    ints = 6 * m + 2 * (n + 1) + k
    blob_off = _ITEM * ints
    segment = _shared_memory.SharedMemory(
        create=True, size=max(blob_off + len(blob), 1)
    )
    _track(segment)
    buf = segment.buf
    off = 0
    for field in _ARRAYS:
        data = array("q", getattr(frozen, field)).tobytes()
        buf[off:off + len(data)] = data
        off += len(data)
    assert off == blob_off, "segment layout drifted from its meta"
    buf[blob_off:blob_off + len(blob)] = blob
    return (
        segment.name,
        n,
        m,
        k,
        frozen.start,
        frozen.end,
        blob_off,
        len(blob),
    )


# ---------------------------------------------------------------------------
# Attach (worker side)
# ---------------------------------------------------------------------------


class SharedCFG(CFG):
    """A CFG shell over an attached shared snapshot, hydrated on demand.

    Constructed only by :func:`attach_frozen`.  Nodes exist eagerly (the
    node dicts are how ``has_node``/containment/iteration answer), but the
    object adjacency starts empty; degree and edge-count queries answer
    straight from the CSR arrays.  The first call that needs
    :class:`~repro.cfg.graph.Edge` objects -- including any mutation --
    hydrates them from the shared arrays with the mutation version held
    fixed, so the adopted frozen snapshot remains valid and positional
    edge indexing matches the parent's exactly.
    """

    def __init__(
        self,
        name: str,
        node_ids: List[NodeId],
        start: Optional[NodeId],
        end: Optional[NodeId],
        labels: Tuple[Optional[str], ...],
    ):
        super().__init__(name=name)
        self.start = start
        self.end = end
        for node in node_ids:
            self._succs[node] = []
            self._preds[node] = []
        self._version = 0
        self._labels = labels
        self._hydrated = False
        self._frozen: Optional[FrozenCFG] = None

    # -- hydration ------------------------------------------------------
    def _hydrate(self) -> None:
        if self._hydrated:
            return
        self._hydrated = True
        frozen = self._frozen
        assert frozen is not None, "SharedCFG detached from its snapshot"
        version = self._version
        node_ids = frozen.node_ids
        labels = self._labels
        esrc = frozen.edge_src
        edst = frozen.edge_dst
        for e in range(frozen.num_edges):
            self.add_edge(node_ids[esrc[e]], node_ids[edst[e]], labels[e])
        # Hydration is not a mutation: the graph's structure is unchanged,
        # so the adopted snapshot must stay version-valid.
        self._version = version

    # -- CSR-answered queries (no hydration) ----------------------------
    @property
    def num_edges(self) -> int:
        if not self._hydrated:
            return self._frozen.num_edges
        return len(self._edges)

    def out_degree(self, node: NodeId) -> int:
        if not self._hydrated:
            frozen = self._frozen
            i = frozen.index_of[node]
            return frozen.succ_off[i + 1] - frozen.succ_off[i]
        return len(self._succs[node])

    def in_degree(self, node: NodeId) -> int:
        if not self._hydrated:
            frozen = self._frozen
            i = frozen.index_of[node]
            return frozen.pred_off[i + 1] - frozen.pred_off[i]
        return len(self._preds[node])

    # -- everything touching Edge objects hydrates first ----------------
    @property
    def edges(self):
        self._hydrate()
        return list(self._edges)

    def out_edges(self, node):
        self._hydrate()
        return super().out_edges(node)

    def in_edges(self, node):
        self._hydrate()
        return super().in_edges(node)

    def iter_out_edges(self, node):
        self._hydrate()
        return super().iter_out_edges(node)

    def iter_in_edges(self, node):
        self._hydrate()
        return super().iter_in_edges(node)

    def successors(self, node):
        self._hydrate()
        return super().successors(node)

    def predecessors(self, node):
        self._hydrate()
        return super().predecessors(node)

    def find_edges(self, source, target):
        self._hydrate()
        return super().find_edges(source, target)

    def copy(self, name=None):
        self._hydrate()
        return super().copy(name)

    def reversed(self, name=None):
        self._hydrate()
        return super().reversed(name)

    def edge_split(self, name=None):
        self._hydrate()
        return super().edge_split(name)

    def with_return_edge(self, *args, **kwargs):
        self._hydrate()
        return super().with_return_edge(*args, **kwargs)

    # Mutations hydrate too: afterwards the version moves and the shared
    # snapshot is simply stale, which the registry handles by re-freezing
    # from the (now complete) object graph.
    def add_node(self, node):
        if node not in self._succs:
            self._hydrate()
        return super().add_node(node)

    def add_edge(self, source, target, label=None):
        self._hydrate()
        return super().add_edge(source, target, label)

    def remove_edge(self, edge):
        self._hydrate()
        return super().remove_edge(edge)

    def remove_node(self, node):
        self._hydrate()
        return super().remove_node(node)


def close_attachment(segment) -> None:
    """Best-effort close of a worker-side attachment.

    The snapshot's memoryviews pin the mapping until the CFG/FrozenCFG
    pair is collected; callers drop their references first, and a cycle
    collection is attempted before giving up.  Failure is harmless -- the
    mapping dies with the worker process and the *parent* owns the unlink
    -- so this never raises.
    """
    try:
        segment.close()
        return
    except BufferError:
        pass
    import gc

    gc.collect()
    try:
        segment.close()
    except BufferError:
        pass


def attach_frozen(meta: SegmentMeta) -> Tuple[SharedCFG, object]:
    """Attach a parent-exported segment; returns ``(cfg, segment)``.

    The returned CFG carries an adopted, registry-seeded
    :class:`~repro.kernel.csr.FrozenCFG` whose arrays are zero-copy views
    into the segment.  The caller must keep ``segment`` alive while the
    CFG is in use and ``close()`` it afterwards (the *parent* unlinks).
    """
    assert _shared_memory is not None, "shared memory unavailable"
    (seg_name, n, m, k, start, end, blob_off, blob_len) = meta
    # The resource tracker auto-registers attachments and would unlink the
    # segment when this process exits -- but ownership is the parent's,
    # whose create-side registration already covers crash cleanup.
    # Suppress registration for the attach (3.11 has no track=False yet);
    # un-registering after the fact instead races the parent's unlink and
    # spams the shared tracker with KeyErrors under a forked pool.
    segment = None
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        _register = resource_tracker.register
        resource_tracker.register = lambda name, rtype: None
        try:
            segment = _shared_memory.SharedMemory(name=seg_name)
        finally:
            resource_tracker.register = _register
    except Exception:
        if segment is None:
            segment = _shared_memory.SharedMemory(name=seg_name)
    view = memoryview(segment.buf)
    lengths = (m, m, n + 1, m, m, n + 1, m, m, k)
    arrays = []
    off = 0
    for length in lengths:
        arrays.append(view[off:off + _ITEM * length].cast("q"))
        off += _ITEM * length
    name, node_ids, labels = pickle.loads(view[blob_off:blob_off + blob_len])
    node_list = list(node_ids)
    cfg = SharedCFG(
        name,
        node_list,
        node_list[start] if start >= 0 else None,
        node_list[end] if end >= 0 else None,
        labels,
    )
    frozen = FrozenCFG(
        cfg,
        cfg.version,
        node_list,
        {node: i for i, node in enumerate(node_list)},
        start,
        end,
        *arrays,
    )
    cfg._frozen = frozen
    from repro.kernel.registry import adopt_frozen

    adopt_frozen(cfg, frozen)
    return cfg, segment


# ---------------------------------------------------------------------------
# Worker-side attachment reuse
# ---------------------------------------------------------------------------

_ATTACH_LOCK = threading.Lock()
_ATTACH_CACHE: "OrderedDict[str, Tuple[SharedCFG, object]]" = OrderedDict()

#: Attachments kept alive per process.  Small on purpose: a batch worker
#: sees at most a handful of distinct segments at a time, and each entry
#: pins one mapping plus one CFG shell.
ATTACH_CACHE_MAX = 8


def attach_frozen_cached(meta: SegmentMeta) -> SharedCFG:
    """Attach with per-process reuse: same segment, same CFG, same caches.

    A sweep batch (many items over one graph) hands each worker the same
    segment name repeatedly; re-attaching per item would rebuild the CFG
    shell, re-unpickle the blob, and -- worse -- discard every structural
    cache hanging off the adopted snapshot (DFS skeletons, expansions).
    This keeps the most recent :data:`ATTACH_CACHE_MAX` attachments alive
    for the life of the process, so repeat items pay nothing but the
    analysis itself.  Only *evicted* entries are closed; the parent still
    owns the unlink, and an already-unlinked segment remains validly
    mapped until the last attachment closes (POSIX semantics).
    """
    seg_name = meta[0]
    with _ATTACH_LOCK:
        entry = _ATTACH_CACHE.get(seg_name)
        if entry is not None:
            _ATTACH_CACHE.move_to_end(seg_name)
            return entry[0]
    cfg, segment = attach_frozen(meta)
    with _ATTACH_LOCK:
        _ATTACH_CACHE[seg_name] = (cfg, segment)
        while len(_ATTACH_CACHE) > ATTACH_CACHE_MAX:
            _, (old_cfg, old_segment) = _ATTACH_CACHE.popitem(last=False)
            del old_cfg  # drop the shell first so the views can die
            close_attachment(old_segment)
    return cfg
