"""The frozen CSR analysis kernel.

The object multigraph (:class:`~repro.cfg.graph.CFG`) is the construction
and mutation API; its ``Edge`` objects, dict-of-list adjacency, and
defensive copies carry constant factors that dominate the paper's linear
time bounds in Python.  This package provides the compact counterpart:

* :class:`~repro.kernel.csr.FrozenCFG` -- an immutable int-indexed snapshot
  of a CFG in CSR (compressed sparse row) form: flat successor/predecessor
  offset arrays, flat edge endpoint arrays, positional edge indices.
* array-based kernel variants of the three hottest algorithms
  (:func:`~repro.kernel.cycle_equiv.kernel_cycle_equivalence`,
  :func:`~repro.kernel.dominance.kernel_lengauer_tarjan`,
  :func:`~repro.kernel.dataflow.kernel_solve_iterative`), which the public
  entry points in :mod:`repro.core.cycle_equiv`,
  :mod:`repro.dominance.lengauer_tarjan`, and
  :mod:`repro.dataflow.iterative` run by default (the object-graph
  implementations are retained as reference oracles).
* :class:`~repro.kernel.session.AnalysisSession` -- a per-graph memo of
  derived artifacts (frozen snapshot, cycle equivalence, SESE regions, PST,
  dominators/postdominators, control regions) keyed on the snapshot's
  version, so pipelines compute each artifact exactly once per graph.

See ``docs/PERFORMANCE.md`` for layout details and measured speedups.
"""

from repro.kernel.csr import FrozenCFG, freeze
from repro.kernel.registry import shared_frozen

# The session module imports the high-level analyses (PST, SESE, control
# regions), which themselves import this package for the kernels -- so its
# re-exports must be lazy (PEP 562) to avoid a circular import.
_LAZY = {
    "AnalysisSession": "repro.kernel.session",
    "session_for": "repro.kernel.session",
}

# Both names are promoted to the canonical top-level surface; this
# package-attribute spelling still works but is deprecated.
_DEPRECATED = ("AnalysisSession", "session_for")


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name in _DEPRECATED:
        import warnings

        warnings.warn(
            f"importing {name} from repro.kernel is deprecated; "
            f"use `from repro import {name}` instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "AnalysisSession",
    "FrozenCFG",
    "freeze",
    "session_for",
    "shared_frozen",
]
