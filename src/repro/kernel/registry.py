"""Process-wide sharing of frozen snapshots.

Freezing is O(V + E) -- cheap, but not free when every public entry point
(`cycle_equivalence_of_cfg`, `lengauer_tarjan`, `control_regions`,
`solve_iterative`) needs the same snapshot of the same graph.  This module
keys one :class:`~repro.kernel.csr.FrozenCFG` per live CFG in a weak-key
map, re-freezing only when the CFG's mutation ``version`` moves.

Only *structural* state is shared here.  Analysis results are never cached
globally -- public functions must recompute on every call so that fault
injection and the resilience engine's retry ladder observe fresh runs;
result memoization is the explicit opt-in job of
:class:`~repro.kernel.session.AnalysisSession`.
"""

from __future__ import annotations

import weakref

from repro.cfg.graph import CFG
from repro.kernel.csr import FrozenCFG, freeze
from repro.obs import observer as _obs

_FROZEN: "weakref.WeakKeyDictionary[CFG, FrozenCFG]" = weakref.WeakKeyDictionary()


def shared_frozen(cfg: CFG) -> FrozenCFG:
    """The current snapshot of ``cfg``, freezing (or re-freezing) on demand.

    Returns a cached :class:`~repro.kernel.csr.FrozenCFG` when one exists
    for the CFG's current ``version``; otherwise freezes anew and caches.
    The cache holds the CFG weakly, so snapshots die with their graphs.
    """
    frozen = _FROZEN.get(cfg)
    o = _obs._CURRENT
    if frozen is None or frozen.version != cfg.version:
        if o is not None:
            o.count("frozen.cache", result="miss")
            with o.span("freeze", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges):
                frozen = freeze(cfg)
        else:
            frozen = freeze(cfg)
        _FROZEN[cfg] = frozen
    elif o is not None:
        o.count("frozen.cache", result="hit")
    return frozen
