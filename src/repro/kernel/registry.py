"""Process-wide sharing of frozen snapshots, with an optional byte bound.

Freezing is O(V + E) -- cheap, but not free when every public entry point
(`cycle_equivalence_of_cfg`, `lengauer_tarjan`, `control_regions`,
`solve_iterative`) needs the same snapshot of the same graph.  This module
keys one :class:`~repro.kernel.csr.FrozenCFG` per live CFG in a weak-key
map, re-freezing only when the CFG's mutation ``version`` moves.

Weak keys alone are not a memory bound: a long-lived server holds strong
references to every client graph, so the registry additionally tracks
recency and size through a :class:`~repro.service.cache.SizedLRU` (cost =
CSR array bytes).  The bound is off by default (``None`` -- the historical
behaviour for library use); :func:`configure` arms it process-wide, and
:func:`repro.resilience.engine.run_analysis` arms it per call when
``AnalysisConfig.max_cache_bytes`` is set.  Evicted snapshots are simply
re-frozen on next demand, so the bound is purely a memory/speed trade.

Only *structural* state is shared here.  Analysis results are never cached
globally -- public functions must recompute on every call so that fault
injection and the resilience engine's retry ladder observe fresh runs;
result memoization is the explicit opt-in job of
:class:`~repro.kernel.session.AnalysisSession`.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Optional

from repro.cfg.graph import CFG
from repro.kernel.csr import FrozenCFG, freeze
from repro.obs import observer as _obs

_FROZEN: "weakref.WeakKeyDictionary[CFG, FrozenCFG]" = weakref.WeakKeyDictionary()

#: Recency/size accounting over the same snapshots, keyed by CFG weakref.
#: ``None`` until :func:`configure` arms a bound -- the accounting itself
#: is lazily constructed so unbounded library use pays nothing.
_LRU = None


def configure(max_bytes: Optional[int]) -> None:
    """Arm (or change, or with ``None`` disarm) the registry byte bound.

    Safe to call repeatedly -- the service calls it at startup and
    ``run_analysis`` re-applies a config's ``max_cache_bytes`` per call
    (idempotent when the bound is unchanged).  Shrinking evicts
    immediately; disarming keeps existing snapshots but stops accounting.
    """
    global _LRU
    if max_bytes is None:
        _LRU = None
        return
    from repro.service.cache import SizedLRU, frozen_cost_bytes

    _drain_dead_refs()
    if _LRU is None:
        lru = SizedLRU(max_bytes, name="kernel.registry", on_evict=_drop_snapshot)
        _LRU = lru
        # Seed the accounting with whatever the weak map already holds so
        # arming a bound mid-process still bounds pre-existing snapshots.
        for cfg, frozen in list(_FROZEN.items()):
            lru.put(_tracking_ref(cfg), None, frozen_cost_bytes(frozen))
    elif _LRU.max_bytes != max_bytes:
        _LRU.resize(max_bytes)


def max_cache_bytes() -> Optional[int]:
    """The currently armed registry bound (``None`` = unbounded)."""
    return _LRU.max_bytes if _LRU is not None else None


def _drop_snapshot(ref: "weakref.ref", _value) -> None:
    """LRU eviction callback: forget the snapshot (re-frozen on demand)."""
    cfg = ref()
    if cfg is not None:
        _FROZEN.pop(cfg, None)


#: Keys whose CFG died, awaiting removal from the LRU accounting.  The
#: weakref death callback runs *during garbage collection*, which can fire
#: inside any allocation -- including one made while the LRU's own lock is
#: held (``SizedLRU.put`` on this very thread).  Taking the lock from the
#: callback therefore self-deadlocks; instead the callback only appends to
#: this deque (``deque.append`` is atomic, no lock) and the next registry
#: operation drains it under normal, non-GC context.
_DEAD_REFS: "deque[weakref.ref]" = deque()


def _drain_dead_refs() -> None:
    """Retire accounting entries for CFGs that died since the last call."""
    lru = _LRU
    while _DEAD_REFS:
        ref = _DEAD_REFS.popleft()
        if lru is not None:
            lru.pop(ref)


def _tracking_ref(cfg: CFG) -> "weakref.ref":
    """A weakref LRU key whose death callback retires its accounting entry.

    The value stored against it is ``None`` -- the LRU must never hold the
    CFG strongly, or snapshots would stop dying with their graphs.  Refs to
    the same live CFG compare equal, so repeat calls address one entry.
    The callback must stay lock-free (see :data:`_DEAD_REFS`).
    """
    return weakref.ref(cfg, _DEAD_REFS.append)


def registry_stats() -> dict:
    """Entries/bytes/evictions of the accounting layer (zeros if unarmed)."""
    if _LRU is None:
        return {"entries": len(_FROZEN), "bytes": 0, "evictions": 0, "bounded": False}
    _drain_dead_refs()
    stats = _LRU.stats()
    stats["bounded"] = True
    return stats


def adopt_frozen(cfg: CFG, frozen: FrozenCFG) -> FrozenCFG:
    """Seed the registry with an externally built snapshot of ``cfg``.

    Used by the shared-memory batch path
    (:func:`repro.kernel.shm.attach_frozen`): the worker's snapshot arrays
    are zero-copy views into a parent-owned segment, so freezing again
    would defeat the point.  The snapshot must describe the CFG's current
    ``version``; from here on :func:`shared_frozen` treats it exactly like
    one it froze itself (including LRU accounting when a bound is armed).
    """
    if frozen.version != cfg.version:
        raise ValueError(
            "adopt_frozen: snapshot version "
            f"{frozen.version} != CFG version {cfg.version}"
        )
    _FROZEN[cfg] = frozen
    if _LRU is not None:
        from repro.service.cache import frozen_cost_bytes

        _drain_dead_refs()
        _LRU.put(_tracking_ref(cfg), None, frozen_cost_bytes(frozen))
    return frozen


def shared_frozen(cfg: CFG) -> FrozenCFG:
    """The current snapshot of ``cfg``, freezing (or re-freezing) on demand.

    Returns a cached :class:`~repro.kernel.csr.FrozenCFG` when one exists
    for the CFG's current ``version``; otherwise freezes anew and caches.
    The cache holds the CFG weakly, so snapshots die with their graphs --
    and, when a bound is armed via :func:`configure`, least-recently-used
    snapshots are dropped once the estimated CSR bytes exceed it.
    """
    frozen = _FROZEN.get(cfg)
    o = _obs._CURRENT
    lru = _LRU
    if frozen is None or frozen.version != cfg.version:
        if o is not None:
            o.count("frozen.cache", result="miss")
            with o.span("freeze", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges):
                frozen = freeze(cfg)
        else:
            frozen = freeze(cfg)
        _FROZEN[cfg] = frozen
        if lru is not None:
            from repro.service.cache import frozen_cost_bytes

            _drain_dead_refs()
            lru.put(_tracking_ref(cfg), None, frozen_cost_bytes(frozen))
    else:
        if o is not None:
            o.count("frozen.cache", result="hit")
        if lru is not None:
            _drain_dead_refs()
            lru.get(weakref.ref(cfg))  # refresh recency
    return frozen
