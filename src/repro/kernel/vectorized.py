"""Vectorized-tier implementations: bulk-array ports of the flattest loops.

This is the third kernel generation (see :mod:`repro.kernel.backend`).  The
members attack the interpreted constant factor in two ways:

* **NumPy bulk builds** for the structural prep work of cycle equivalence:
  the undirected-multigraph CSR (:func:`vectorized_undirected_csr`), the
  Theorem 8 node expansion (:func:`vectorized_expansion`), and the final
  class-naming scatter (:func:`vectorized_name_classes`).  A stable argsort
  of the interleaved edge endpoints reproduces the kernel tier's fill-loop
  slot order exactly, so the DFS -- and therefore every class id -- is
  bit-identical to the kernel tier.
* **Packed bit-vector rows** for gen/kill dataflow
  (:func:`vectorized_solve_genkill`): facts become bit positions in Python
  big ints, so transfer is ``gen | (x & ~kill)`` -- three machine-word-wide
  C loop operations -- and meet over predecessors is a chain of ``|``/``&``.
  This member deliberately does *not* use NumPy for the worklist itself:
  per-pop array-call overhead swamps the win at typical row widths, and
  full-matrix Jacobi sweeps lose the worklist's O(depth) convergence.
  NumPy still gates the tier (one switch, one contract), and the packed
  solver is exact -- the packing is a bijection, so the fixpoint decodes to
  precisely the frozensets the kernel tier computes.

Everything here returns plain Python lists/objects, because the consumers
are still interpreted loops where ``np.int64`` scalar unboxing costs more
than it saves.  All entry points require NumPy except the gen/kill solver;
callers dispatch via :func:`repro.kernel.backend.vectorized_enabled` so the
import is safe by construction (and each function degrades gracefully
anyway, returning a sentinel the caller falls back on).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dataflow.framework import BACKWARD, GenKillProblem, Solution
from repro.kernel.backend import numpy_or_none
from repro.kernel.csr import FrozenCFG
from repro.resilience.guards import TICK_CHUNK, Ticker


def _as_i64(seq, np):
    """``seq`` as an int64 ndarray (zero-copy when it already is one)."""
    if isinstance(seq, np.ndarray):
        return seq.astype(np.int64, copy=False)
    return np.fromiter(seq, dtype=np.int64, count=len(seq))


def vectorized_undirected_csr(
    n: int,
    esrc: Sequence[int],
    edst: Sequence[int],
    virtual_edges: Sequence[Tuple[int, int]],
) -> Tuple[List[int], List[int], int, int, List[int], List[int], List[int]]:
    """NumPy build of the undirected CSR; same tuple as ``_undirected_csr``.

    Slot-order equivalence with the kernel tier's fill loop is what makes
    the tiers produce identical class ids, and it falls out of one
    observation: the fill loop visits endpoint slots in the order
    ``(ue, u-role), (ue, v-role)`` for ``ue = 0, 1, ...`` -- which is
    exactly increasing position in the interleaved endpoint array
    ``[u0, v0, u1, v1, ...]``.  A *stable* argsort of that array therefore
    lists, for each node, its adjacency slots in precisely fill order.
    """
    np = numpy_or_none()
    assert np is not None, "vectorized_undirected_csr requires NumPy"
    m = len(esrc)
    src = _as_i64(esrc, np)
    dst = _as_i64(edst, np)
    loop_mask = src == dst
    if loop_mask.any():
        self_loops = np.flatnonzero(loop_mask).tolist()
        keep = ~loop_mask
        real = np.flatnonzero(keep)
        uu = src[keep]
        vv = dst[keep]
        ue_edge: List[int] = real.tolist()
    else:
        self_loops = []
        uu = src
        vv = dst
        ue_edge = list(range(m))
    n_real = len(ue_edge)
    virt = [(u, v) for u, v in virtual_edges if u != v]
    if virt:
        uu = np.concatenate([uu, np.array([u for u, _ in virt], dtype=np.int64)])
        vv = np.concatenate([vv, np.array([v for _, v in virt], dtype=np.int64)])
        ue_edge.extend([-1] * len(virt))
    n_ue = len(ue_edge)

    # Interleaved endpoints and far-endpoints: position 2*ue is the u-role
    # slot, 2*ue + 1 the v-role slot.
    pts = np.empty(2 * n_ue, dtype=np.int64)
    pts[0::2] = uu
    pts[1::2] = vv
    others = np.empty(2 * n_ue, dtype=np.int64)
    others[0::2] = vv
    others[1::2] = uu
    order = np.argsort(pts, kind="stable")
    adj = (order >> 1).tolist()
    adj_other = others[order].tolist()
    counts = np.bincount(pts, minlength=n)
    adj_off = [0]
    adj_off.extend(np.cumsum(counts).tolist())
    return self_loops, ue_edge, n_real, n_ue, adj_off, adj, adj_other


def vectorized_expansion(
    n: int,
    esrc: Sequence[int],
    edst: Sequence[int],
    start: int,
    end: int,
) -> Tuple[List[int], List[int]]:
    """NumPy build of the Theorem 8 node-expansion edge arrays.

    Node ``k`` becomes ``k_i = 2k``, ``k_o = 2k + 1``; the ``n``
    representative ``k_i -> k_o`` edges come first (so node ``k``'s class
    is ``classes[k]``), then the original edges, then the ``end -> start``
    return edge -- identical layout to the kernel tier's Python loop.
    """
    np = numpy_or_none()
    assert np is not None, "vectorized_expansion requires NumPy"
    m = len(esrc)
    x_src = np.empty(n + m + 1, dtype=np.int64)
    x_dst = np.empty(n + m + 1, dtype=np.int64)
    reps = np.arange(n, dtype=np.int64) << 1
    x_src[:n] = reps
    x_dst[:n] = reps + 1
    x_src[n:n + m] = (_as_i64(esrc, np) << 1) + 1
    x_dst[n:n + m] = _as_i64(edst, np) << 1
    x_src[n + m] = 2 * end + 1
    x_dst[n + m] = 2 * start
    return x_src.tolist(), x_dst.tolist()


def vectorized_name_classes(
    classes: List[int],
    ue_edge: Sequence[int],
    ue_class: Sequence[int],
    n_real: int,
) -> bool:
    """Scatter bracket class ids onto edge positions in bulk.

    Replaces the kernel tier's per-edge naming loop with one fancy-indexed
    assignment (real undirected edges occupy ``ue_edge[:n_real]``; virtual
    edges follow and are unreported on every tier).  Returns False -- do it
    the scalar way -- when NumPy is unavailable or there is nothing to
    scatter.
    """
    np = numpy_or_none()
    if np is None or n_real == 0:
        return False
    uc = np.fromiter(ue_class, dtype=np.int64, count=len(ue_class))[:n_real]
    assert int((uc != -1).all()), "unlabelled undirected edge"
    ue = np.fromiter(ue_edge, dtype=np.int64, count=len(ue_edge))[:n_real]
    out = np.fromiter(classes, dtype=np.int64, count=len(classes))
    out[ue] = uc
    classes[:] = out.tolist()
    return True


def genkill_solver_compatible(problem) -> bool:
    """True iff ``problem`` is a :class:`GenKillProblem` the packed solver
    may replace the generic one for.

    A subclass that overrides any of the framework-implemented methods
    (``transfer``/``meet``/``boundary``/``top``) could diverge from the
    closed gen/kill form the bit packing assumes, so only the stock
    implementations qualify -- everything else takes the kernel tier.
    """
    if not isinstance(problem, GenKillProblem):
        return False
    cls = type(problem)
    return (
        cls.transfer is GenKillProblem.transfer
        and cls.meet is GenKillProblem.meet
        and cls.boundary is GenKillProblem.boundary
        and cls.top is GenKillProblem.top
    )


def vectorized_solve_genkill(
    frozen: FrozenCFG, problem: GenKillProblem, ticker: Optional[Ticker] = None
) -> Solution:
    """Packed bit-vector worklist solve of a stock gen/kill problem.

    Same traversal, same seed order, same ticker billing (one step per
    worklist pop, batched in :data:`TICK_CHUNK`), same ``Solution`` shape
    as :func:`repro.kernel.dataflow.kernel_solve_iterative` -- only the
    lattice values change representation: each frozenset becomes a Python
    big int with one bit per fact.  Because the packing is a bijection and
    ``int.__eq__`` agrees with frozenset equality under it, the fixpoint
    (and the number of pops to reach it) is identical.
    """
    backward = problem.direction == BACKWARD
    n = frozen.num_nodes
    if backward:
        root = frozen.end
        succ_off = frozen.pred_off
        succ_dst = frozen.pred_src
        pred_off = frozen.succ_off
        pred_src = frozen.succ_dst
    else:
        root = frozen.start
        succ_off = frozen.succ_off
        succ_dst = frozen.succ_dst
        pred_off = frozen.pred_off
        pred_src = frozen.pred_src
    if root < 0:
        raise KeyError(
            f"CFG {frozen.cfg.name!r} has no {'end' if backward else 'start'} "
            "node; the iterative solver needs a root in the solving direction"
        )
    node_ids = frozen.node_ids

    # ------------------------------------------------------------------
    # Pack the lattice: one bit per fact.  The index covers the universe
    # plus any stray facts a problem's gen sets mention beyond it, so
    # packing never drops information.
    # ------------------------------------------------------------------
    index: Dict[object, int] = {}
    for f in problem.universe():
        index.setdefault(f, len(index))
    gen_bits = [0] * n
    notk_bits = [0] * n
    universe_mask = (1 << len(index)) - 1
    for i in range(n):
        node = node_ids[i]
        g = 0
        for f in problem.gen(node):
            b = index.setdefault(f, len(index))
            g |= 1 << b
        k = 0
        for f in problem.kill(node):
            b = index.setdefault(f, len(index))
            k |= 1 << b
        gen_bits[i] = g
        notk_bits[i] = ~k
    union_meet = problem.meet_is_union
    top_bits = 0 if union_meet else universe_mask
    boundary_bits = 0

    # Seed order: reverse postorder in the solving direction (identical
    # DFS to the kernel solver, so pop order -- and billing -- match).
    visited = bytearray(n)
    visited[root] = 1
    order: List[int] = []
    stack = [[root, succ_off[root], succ_off[root + 1]]]
    while stack:
        frame = stack[-1]
        ptr = frame[1]
        end_ptr = frame[2]
        advanced = False
        while ptr < end_ptr:
            nxt = succ_dst[ptr]
            ptr += 1
            if not visited[nxt]:
                visited[nxt] = 1
                frame[1] = ptr
                stack.append([nxt, succ_off[nxt], succ_off[nxt + 1]])
                advanced = True
                break
        if not advanced:
            order.append(frame[0])
            stack.pop()
    order.reverse()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("seed_order")

    entry = [top_bits] * n
    entry[root] = boundary_bits
    exit_ = [gen_bits[i] | (entry[i] & notk_bits[i]) for i in range(n)]

    tick = None if ticker is None else ticker.tick
    pending = bytearray(n)
    for i in order:
        pending[i] = 1
    queue = deque(order)
    unbilled = 0
    if union_meet:
        while queue:
            if tick is not None:
                unbilled += 1
                if unbilled == TICK_CHUNK:
                    tick(TICK_CHUNK)
                    unbilled = 0
            node = queue.popleft()
            pending[node] = 0
            if node != root:
                value = 0
                for i in range(pred_off[node], pred_off[node + 1]):
                    value |= exit_[pred_src[i]]
                entry[node] = value
            new_exit = gen_bits[node] | (entry[node] & notk_bits[node])
            if new_exit != exit_[node]:
                exit_[node] = new_exit
                for i in range(succ_off[node], succ_off[node + 1]):
                    succ = succ_dst[i]
                    if not pending[succ]:
                        pending[succ] = 1
                        queue.append(succ)
    else:
        while queue:
            if tick is not None:
                unbilled += 1
                if unbilled == TICK_CHUNK:
                    tick(TICK_CHUNK)
                    unbilled = 0
            node = queue.popleft()
            pending[node] = 0
            if node != root:
                lo = pred_off[node]
                hi = pred_off[node + 1]
                if lo == hi:
                    # No predecessors: the meet over an empty set is top
                    # (matches the generic solver's value-is-None branch).
                    entry[node] = top_bits
                else:
                    value = exit_[pred_src[lo]]
                    for i in range(lo + 1, hi):
                        value &= exit_[pred_src[i]]
                    entry[node] = value
            new_exit = gen_bits[node] | (entry[node] & notk_bits[node])
            if new_exit != exit_[node]:
                exit_[node] = new_exit
                for i in range(succ_off[node], succ_off[node + 1]):
                    succ = succ_dst[i]
                    if not pending[succ]:
                        pending[succ] = 1
                        queue.append(succ)
    if tick is not None and unbilled:
        tick(unbilled)
    if ticker is not None and ticker.profile is not None:
        ticker.mark("worklist")

    # Decode back to frozensets, memoizing per distinct bit pattern (the
    # fixpoint typically has far fewer distinct values than nodes).
    facts = [None] * len(index)
    for f, b in index.items():
        facts[b] = f
    decoded: Dict[int, frozenset] = {}

    def decode(bits: int) -> frozenset:
        got = decoded.get(bits)
        if got is None:
            members = []
            v = bits
            while v:
                low = v & -v
                members.append(facts[low.bit_length() - 1])
                v ^= low
            got = decoded[bits] = frozenset(members)
        return got

    entry_d = {node_ids[i]: decode(entry[i]) for i in range(n)}
    exit_d = {node_ids[i]: decode(exit_[i]) for i in range(n)}
    if backward:
        # program order: `before` is the transferred (in) value.
        return Solution(before=exit_d, after=entry_d)
    return Solution(before=entry_d, after=exit_d)
