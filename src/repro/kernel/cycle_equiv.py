"""Array-based cycle equivalence (Figure 4) over CSR snapshots.

Same algorithm as :mod:`repro.core.cycle_equiv` (which is retained as the
object-graph reference oracle), with every piece of per-node / per-edge
state held in flat integer arrays instead of objects:

* the undirected multigraph is a CSR adjacency over undirected-edge ids;
* DFS state (numbering, parent edge, child lists, backedge lists) lives in
  arrays indexed by DFS number, with the per-node collections (children,
  originating/ending backedges, capping brackets) as linked lists threaded
  through ``next``-pointer arrays -- no per-node list objects;
* the :class:`~repro.core.bracketlist.BracketList` ADT becomes a doubly
  linked list threaded through ``b_next``/``b_prev`` arrays, with each
  node's list a ``(head, tail, size)`` triple -- push, delete, and concat
  stay O(1) and allocation-free.

Class ids come out identical to the reference because both follow the same
DFS and call ``new-class()`` in the same order.

The fault sites of the object implementation are preserved under the same
names (``cycle-equiv/skip-cap`` via this module's ``_FAULTS`` hook,
``bracketlist/push-bottom`` via :mod:`repro.core.bracketlist`'s hook), so
the resilience engine's detect-and-fallback behaviour is testable on the
kernel path exactly as before.
"""

from __future__ import annotations

from itertools import accumulate
from typing import List, Optional, Sequence, Tuple

from repro.cfg.graph import InvalidCFGError
from repro.kernel.csr import FrozenCFG
from repro.obs import observer as _obs
from repro.resilience.guards import Ticker

# Fault-injection hook for the "cycle-equiv/skip-cap" site (installed and
# cleared by repro.resilience.faults alongside the object-path hook).
_FAULTS = None


def kernel_cycle_equivalence(
    frozen: FrozenCFG,
    root: Optional[int] = None,
    virtual_edges: Sequence[Tuple[int, int]] = (),
    ticker: Optional[Ticker] = None,
) -> List[int]:
    """Edge cycle-equivalence classes of a strongly connected snapshot.

    Mirrors :func:`repro.core.cycle_equiv.cycle_equivalence_scc`: ``root``
    and ``virtual_edges`` use *node indices*; the return value is a list of
    class ids, one per edge index (virtual edges are not reported).
    Raises :class:`~repro.cfg.graph.InvalidCFGError` on disconnected or
    bridged inputs, like the reference.

    On the vectorized backend tier the undirected CSR is built with NumPy,
    the structural DFS skeleton is memoized on the snapshot (same contract
    as the ``undirected`` cache: derived read-only structure, keyed by the
    virtual-edge tuple and root), and the final naming pass scatters class
    ids in bulk.  Ticker billing is identical on every tier -- the DFS
    steps are charged even when the skeleton comes from the cache -- so
    step budgets and deadlines behave the same regardless of backend.
    """
    from repro.kernel.backend import vectorized_enabled

    root = frozen.start if root is None else root
    key = tuple(virtual_edges)
    use_np = vectorized_enabled()
    csr = frozen.undirected.get(key)
    if csr is None:
        if use_np:
            from repro.kernel.vectorized import vectorized_undirected_csr

            csr = vectorized_undirected_csr(
                frozen.num_nodes, frozen.edge_src, frozen.edge_dst, key
            )
        else:
            csr = _undirected_csr(
                frozen.num_nodes, frozen.edge_src, frozen.edge_dst, key
            )
        frozen.undirected[key] = csr
    skeleton = None
    sink: Optional[list] = None
    if use_np:
        skeleton_key = ("ce_dfs", key, root)
        skeleton = frozen.derived.get(skeleton_key)
        if skeleton is None:
            sink = []
    classes = _cycle_equivalence_arrays(
        frozen.num_nodes,
        frozen.edge_src,
        frozen.edge_dst,
        root,
        key,
        ticker,
        frozen.node_ids,
        csr,
        skeleton=skeleton,
        skeleton_sink=sink,
        vectorized=use_np,
    )
    if sink:
        frozen.derived[skeleton_key] = sink[0]
    return classes


def _undirected_csr(
    n: int,
    esrc: List[int],
    edst: List[int],
    virtual_edges: Sequence[Tuple[int, int]],
) -> Tuple[List[int], List[int], int, int, List[int], List[int], List[int]]:
    """Undirected multigraph CSR over undirected-edge ids.

    Returns ``(self_loops, ue_edge, n_real, n_ue, adj_off, adj,
    adj_other)``.  The result is purely structural -- never mutated by the
    Figure 4 sweep -- so :func:`kernel_cycle_equivalence` caches it on the
    frozen snapshot keyed by the virtual-edge tuple.
    """
    m = len(esrc)
    deg = [0] * n
    self_loops: List[int] = []
    if all(map(int.__ne__, esrc, edst)):  # fast path: no self-loops
        ue_edge: List[int] = list(range(m))
        ue_u: List[int] = list(esrc)
        ue_v: List[int] = list(edst)
        for u in esrc:
            deg[u] += 1
        for v in edst:
            deg[v] += 1
    else:
        ue_u = []
        ue_v = []
        ue_edge = []  # edge index, or -1 for a virtual edge
        for e in range(m):
            u = esrc[e]
            v = edst[e]
            if u == v:
                self_loops.append(e)
                continue
            ue_edge.append(e)
            ue_u.append(u)
            ue_v.append(v)
            deg[u] += 1
            deg[v] += 1
    n_real = len(ue_edge)
    for u, v in virtual_edges:
        if u == v:
            continue  # a virtual self-loop cannot affect any class
        ue_edge.append(-1)
        ue_u.append(u)
        ue_v.append(v)
        deg[u] += 1
        deg[v] += 1
    n_ue = len(ue_edge)

    adj_off = [0]
    adj_off.extend(accumulate(deg))
    acc = adj_off[n]
    adj = [0] * acc  # undirected-edge id per slot
    adj_other = [0] * acc  # the far endpoint of that edge, precomputed
    fill = adj_off[:n]
    ue = 0
    for u, v in zip(ue_u, ue_v):
        slot = fill[u]
        adj[slot] = ue
        adj_other[slot] = v
        fill[u] = slot + 1
        slot = fill[v]
        adj[slot] = ue
        adj_other[slot] = u
        fill[v] = slot + 1
        ue += 1
    return self_loops, ue_edge, n_real, n_ue, adj_off, adj, adj_other


def _dfs_skeleton(
    n: int,
    root: int,
    csr: Tuple,
    node_ids: Optional[Sequence[object]] = None,
) -> Tuple:
    """The undirected DFS of Figure 4, as a purely structural artifact.

    Returns ``(node_at, parent_ue, first_child, next_sib, ub_head,
    ub_next, db_head, db_next, ue_dest)`` -- DFS numbering, tree edges and
    backedge orientation, with the per-node collections as linked lists
    appended at the tail so iteration order matches the reference's Python
    lists exactly (class ids depend on it).

    The skeleton depends only on ``csr`` and ``root``, contains no fault
    sites, and is never written by the brackets sweep -- which is what
    makes it safe for the vectorized tier to cache on
    ``FrozenCFG.derived`` and reuse across calls.  Raises
    :class:`InvalidCFGError` when the undirected multigraph is
    disconnected (the sweep would misbehave on a partial forest).
    """
    _self_loops, _ue_edge, _n_real, n_ue, adj_off, adj, adj_other = csr
    dfsnum = [-1] * n
    dfsnum[root] = 0
    node_at = [root]
    parent_ue = [-1] * n  # by DFS number
    first_child = [-1] * n  # by DFS number; linked via next_sib
    last_child = [-1] * n
    next_sib = [-1] * n
    ub_head = [-1] * n  # backedges originating here; linked via ub_next
    ub_tail = [-1] * n
    ub_next = [-1] * n_ue
    db_head = [-1] * n  # backedges ending here; linked via db_next
    db_tail = [-1] * n
    db_next = [-1] * n_ue
    ue_dest = [0] * n_ue  # backedge destination DFS number
    processed = bytearray(n_ue)

    # frames: [node, dfsnum, next adjacency slot, row end]
    stack = [[root, 0, adj_off[root], adj_off[root + 1]]]
    while stack:
        frame = stack[-1]
        num = frame[1]
        ptr = frame[2]
        end_ptr = frame[3]
        advanced = False
        while ptr < end_ptr:
            ue = adj[ptr]
            if processed[ue]:
                ptr += 1
                continue
            processed[ue] = 1
            other = adj_other[ptr]
            ptr += 1
            onum = dfsnum[other]
            if onum == -1:
                onum = len(node_at)
                dfsnum[other] = onum
                node_at.append(other)
                parent_ue[onum] = ue
                if first_child[num] == -1:
                    first_child[num] = onum
                else:
                    next_sib[last_child[num]] = onum
                last_child[num] = onum
                frame[2] = ptr
                stack.append([other, onum, adj_off[other], adj_off[other + 1]])
                advanced = True
                break
            # Non-tree edge: in an undirected DFS it must connect `node` to a
            # proper ancestor (cross edges cannot exist).
            if onum >= num:
                raise AssertionError(
                    "undirected DFS produced a non-ancestor non-tree edge; "
                    "this indicates corrupted adjacency state"
                )
            ue_dest[ue] = onum
            if ub_head[num] == -1:
                ub_head[num] = ue
            else:
                ub_next[ub_tail[num]] = ue
            ub_tail[num] = ue
            if db_head[onum] == -1:
                db_head[onum] = ue
            else:
                db_next[db_tail[onum]] = ue
            db_tail[onum] = ue
        if not advanced:
            stack.pop()

    if len(node_at) != n:
        ids = node_ids if node_ids is not None else list(range(n))
        missing = [ids[i] for i in range(n) if dfsnum[i] == -1][:5]
        raise InvalidCFGError(
            f"graph is not connected: nodes {missing!r} unreachable from "
            f"{ids[root]!r} in the undirected multigraph (cycle equivalence "
            "requires a strongly connected input)"
        )
    return (
        node_at,
        parent_ue,
        first_child,
        next_sib,
        ub_head,
        ub_next,
        db_head,
        db_next,
        ue_dest,
    )


def _cycle_equivalence_arrays(
    n: int,
    esrc: List[int],
    edst: List[int],
    root: int,
    virtual_edges: Sequence[Tuple[int, int]],
    ticker: Optional[Ticker],
    node_ids: Optional[Sequence[object]] = None,
    csr: Optional[Tuple] = None,
    skeleton: Optional[Tuple] = None,
    skeleton_sink: Optional[list] = None,
    vectorized: bool = False,
) -> List[int]:
    """The Figure 4 kernel over raw arrays (see :func:`kernel_cycle_equivalence`).

    Exposed separately so derived graphs (the node expansion of Theorem 8)
    can run it without materializing a CFG or a snapshot.  ``csr`` is an
    optional precomputed :func:`_undirected_csr` for the same inputs;
    ``skeleton`` an optional precomputed :func:`_dfs_skeleton` over that
    CSR (computed -- and appended to ``skeleton_sink`` when given -- if
    absent).  Ticker charges are identical whether or not the skeleton is
    supplied, so cached and uncached runs burn the same step budget.
    """
    m = len(esrc)
    if n == 0:
        return []
    tick = None if ticker is None else ticker.tick
    from repro.core import bracketlist as _bracketlist_mod

    ce_faults = _FAULTS
    bl_faults = _bracketlist_mod._FAULTS

    if csr is None:
        csr = _undirected_csr(n, esrc, edst, virtual_edges)
    self_loops, ue_edge, n_real, n_ue, adj_off, adj, adj_other = csr

    # Self-loops are singleton classes up front, exactly like the reference
    # (which scans edges in order and names them as it skips them).
    classes = [-1] * m
    next_class = 0
    for e in self_loops:
        classes[e] = next_class
        next_class += 1

    if tick is not None:
        tick(n + n_real)  # the DFS (run or replayed from cache) is O(V + E)
    o = _obs._CURRENT
    if skeleton is None:
        dfs_span = o.span("cycle_equiv.dfs") if o is not None else None
        skeleton = _dfs_skeleton(n, root, csr, node_ids)
        if dfs_span is not None:
            dfs_span.finish()
        if skeleton_sink is not None:
            skeleton_sink.append(skeleton)
    if ticker is not None and ticker.profile is not None:
        ticker.mark("dfs")
    (
        node_at,
        parent_ue,
        first_child,
        next_sib,
        ub_head,
        ub_next,
        db_head,
        db_next,
        ue_dest,
    ) = skeleton

    # ------------------------------------------------------------------
    # Figure 4 main loop, reverse depth-first order.  Brackets live in
    # b_next/b_prev; ids < n_ue are the backedges themselves, higher ids
    # are capping brackets appended on demand (cap_next threads each
    # destination's caps, indexed by ``id - n_ue``).
    # ------------------------------------------------------------------
    INF = n + 1  # any value > every DFS number
    hi = [INF] * n
    b_next = [-1] * n_ue
    b_prev = [-1] * n_ue
    b_rsize = [-1] * n_ue  # recent_size
    b_rclass = [-1] * n_ue  # recent_class
    b_class = [-1] * n_ue
    b_cap = bytearray(n_ue)
    ue_class = [-1] * n_ue
    cap_head = [-1] * n  # capping brackets ending here; linked via cap_next
    cap_next: List[int] = []
    bl_head = [-1] * n
    bl_tail = [-1] * n
    bl_size = [0] * n

    if tick is not None:
        tick(n)  # the reverse depth-first sweep about to run
    bracket_span = o.span("cycle_equiv.brackets") if o is not None else None

    for num in range(n - 1, -1, -1):
        # Single pass over the children: track the highest (hi1) and second
        # highest (hi2) subtree reach while splicing their bracket lists
        # together (earlier child on top, matching the reference's concat).
        hi1 = INF
        hi2 = INF
        h = -1
        t = -1
        sz = 0
        c = first_child[num]
        while c != -1:
            child_hi = hi[c]
            if child_hi < hi1:
                hi2 = hi1
                hi1 = child_hi
            elif child_hi < hi2:
                hi2 = child_hi
            ch = bl_head[c]
            if ch != -1:
                if h == -1:
                    h = ch
                else:
                    b_next[t] = ch
                    b_prev[ch] = t
                t = bl_tail[c]
                sz += bl_size[c]
            c = next_sib[c]

        # Delete capping brackets ending here.
        b = cap_head[num]
        while b != -1:
            p = b_prev[b]
            nx = b_next[b]
            if p != -1:
                b_next[p] = nx
            else:
                h = nx
            if nx != -1:
                b_prev[nx] = p
            else:
                t = p
            sz -= 1
            b = cap_next[b - n_ue]
        # Delete real backedges ending here; orphaned ones get fresh classes.
        b = db_head[num]
        while b != -1:
            p = b_prev[b]
            nx = b_next[b]
            if p != -1:
                b_next[p] = nx
            else:
                h = nx
            if nx != -1:
                b_prev[nx] = p
            else:
                t = p
            sz -= 1
            cls = b_class[b]
            if cls == -1:
                cls = b_class[b] = next_class
                next_class += 1
            ue_class[b] = cls
            b = db_next[b]
        # Push backedges originating here (top; bottom under injection),
        # folding in hi0 -- the highest destination among them.
        hi0 = INF
        b = ub_head[num]
        while b != -1:
            d = ue_dest[b]
            if d < hi0:
                hi0 = d
            if bl_faults is not None and bl_faults.should_fire(
                "bracketlist/push-bottom"
            ):
                b_prev[b] = t
                b_next[b] = -1
                if t != -1:
                    b_next[t] = b
                t = b
                if h == -1:
                    h = b
            else:
                b_next[b] = h
                b_prev[b] = -1
                if h != -1:
                    b_prev[h] = b
                h = b
                if t == -1:
                    t = b
            sz += 1
            b = ub_next[b]
        hi[num] = hi0 if hi0 < hi1 else hi1
        # Capping backedge: needed iff a *second* child subtree reaches a
        # proper ancestor of node, higher than node's own backedges reach.
        if hi2 < hi0 and hi2 < num:
            if ce_faults is not None and ce_faults.should_fire("cycle-equiv/skip-cap"):
                pass  # injected fault: silently skip the capping bracket
            else:
                b = n_ue + len(cap_next)
                b_rsize.append(-1)
                b_rclass.append(-1)
                b_class.append(-1)
                b_cap.append(1)
                cap_next.append(cap_head[hi2])
                cap_head[hi2] = b
                if bl_faults is not None and bl_faults.should_fire(
                    "bracketlist/push-bottom"
                ):
                    b_prev.append(t)
                    b_next.append(-1)
                    if t != -1:
                        b_next[t] = b
                    t = b
                    if h == -1:
                        h = b
                else:
                    b_next.append(h)
                    b_prev.append(-1)
                    if h != -1:
                        b_prev[h] = b
                    h = b
                    if t == -1:
                        t = b
                sz += 1

        bl_head[num] = h
        bl_tail[num] = t
        bl_size[num] = sz

        # Name the equivalence class of the tree edge into node.
        if num != 0:
            if sz == 0:
                ids = node_ids if node_ids is not None else list(range(n))
                raise InvalidCFGError(
                    f"tree edge into {ids[node_at[num]]!r} has no brackets: the "
                    "undirected multigraph has a bridge, so the input is not "
                    "strongly connected"
                )
            b = h  # topmost bracket
            if b_rsize[b] != sz:
                b_rsize[b] = sz
                b_rclass[b] = next_class
                next_class += 1
            ue_class[parent_ue[num]] = b_rclass[b]
            # Theorem 4: a backedge that is the *only* bracket of a tree edge
            # is cycle equivalent to it.
            if b_rsize[b] == 1 and not b_cap[b]:
                b_class[b] = b_rclass[b]

    if bracket_span is not None:
        bracket_span.finish()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("brackets")

    naming_span = o.span("cycle_equiv.naming") if o is not None else None
    named = False
    if vectorized:
        from repro.kernel.vectorized import vectorized_name_classes

        named = vectorized_name_classes(
            classes, ue_edge, ue_class, n_real
        )
    if not named:
        for e, cls in zip(ue_edge, ue_class):
            if e == -1:
                continue
            assert cls != -1, f"unlabelled undirected edge {e}"
            classes[e] = cls
    if naming_span is not None:
        naming_span.finish()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("naming")
    return classes


def kernel_control_region_classes(
    frozen: FrozenCFG, ticker: Optional[Ticker] = None
) -> List[int]:
    """Node cycle-equivalence class per node index (Theorems 7 & 8).

    Builds the node expansion ``T(S)`` of the return-edge-augmented graph
    directly in array form (``2N`` nodes, ``N + E + 1`` edges -- never
    materialized as a CFG) and reads off the classes of the representative
    ``n_i -> n_o`` edges, which by Theorem 8 are the node classes of ``S``.

    On the vectorized tier the expansion arrays, their undirected CSR, and
    the DFS skeleton over them are built with NumPy where it pays and
    cached in ``frozen.derived`` -- all three are pure structure, so
    repeat queries against an unchanged snapshot skip straight to the
    brackets sweep.  Ticker billing is unchanged by the cache (see
    :func:`_cycle_equivalence_arrays`).
    """
    from repro.kernel.backend import vectorized_enabled

    n = frozen.num_nodes
    if n == 0:
        return []
    if frozen.start < 0 or frozen.end < 0:
        raise InvalidCFGError("CFG must have start and end nodes set")
    esrc = frozen.edge_src
    edst = frozen.edge_dst
    m = frozen.num_edges
    use_np = vectorized_enabled()
    cached = frozen.derived.get(("expansion",)) if use_np else None
    if cached is not None:
        x_src, x_dst, csr, skeleton = cached
        sink: Optional[list] = None
    else:
        if use_np:
            from repro.kernel.vectorized import vectorized_expansion

            x_src, x_dst = vectorized_expansion(
                n, esrc, edst, frozen.start, frozen.end
            )
            from repro.kernel.vectorized import vectorized_undirected_csr

            csr = vectorized_undirected_csr(2 * n, x_src, x_dst, ())
        else:
            # Node k of the snapshot becomes k_i = 2k, k_o = 2k + 1;
            # representative edges come first so node k's class is
            # classes[k].
            x_src = [0] * (n + m + 1)
            x_dst = [0] * (n + m + 1)
            for k in range(n):
                x_src[k] = 2 * k
                x_dst[k] = 2 * k + 1
            for e in range(m):
                x_src[n + e] = 2 * esrc[e] + 1
                x_dst[n + e] = 2 * edst[e]
            # The end -> start return edge of S, expanded like any other edge.
            x_src[n + m] = 2 * frozen.end + 1
            x_dst[n + m] = 2 * frozen.start
            csr = None
        skeleton = None
        sink = [] if use_np else None
    classes = _cycle_equivalence_arrays(
        2 * n,
        x_src,
        x_dst,
        2 * frozen.start,
        (),
        ticker,
        csr=csr,
        skeleton=skeleton,
        skeleton_sink=sink,
        vectorized=use_np,
    )
    if use_np and cached is None:
        if csr is not None and sink:
            frozen.derived[("expansion",)] = (x_src, x_dst, csr, sink[0])
    return classes[:n]
