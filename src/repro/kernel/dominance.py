"""Array-based Lengauer-Tarjan over CSR snapshots.

Same algorithm (and the same tick billing and fault site) as
:mod:`repro.dominance.lengauer_tarjan`'s object-graph implementation, with
node ids replaced by dense indices: the DFS walks the flat ``succ_dst``
rows, the semidominator sweep walks ``pred_src``, and the EVAL/LINK forest
is the usual set of int arrays.  Passing ``reverse=True`` swaps the roles
of the two CSR halves, which computes *post*\\ dominators without ever
materializing a reversed copy of the graph.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.kernel.backend import numpy_or_none, vectorized_enabled
from repro.kernel.csr import FrozenCFG
from repro.resilience.guards import Ticker

# Fault-injection hook for "lengauer-tarjan/semi-skew" (installed and
# cleared by repro.resilience.faults alongside the object-path hook).
_FAULTS = None


def kernel_lengauer_tarjan(
    frozen: FrozenCFG,
    root: int,
    ticker: Optional[Ticker] = None,
    reverse: bool = False,
) -> List[int]:
    """Immediate dominators by node index; ``-1`` marks unreachable nodes.

    ``idom[root] == root``.  With ``reverse=True`` the edge direction flips
    (successor rows become predecessor rows and vice versa), yielding
    postdominators when called with ``root=frozen.end``.

    On the vectorized backend tier the step 1 artifacts -- DFS numbering
    plus the predecessor rows pre-translated to DFS numbers (the batched
    form the semidominator sweep consumes) -- are purely structural per
    ``(root, reverse)``, so they are built once (the translation as one
    NumPy gather over the whole edge array) and cached on
    ``frozen.derived``.  Ticker billing is identical on every tier: the
    DFS charge lands whether or not the cache hits.
    """
    n = frozen.num_nodes
    if reverse:
        succ_off = frozen.pred_off
        succ_dst = frozen.pred_src
        pred_off = frozen.succ_off
        pred_src = frozen.succ_dst
    else:
        succ_off = frozen.succ_off
        succ_dst = frozen.succ_dst
        pred_off = frozen.pred_off
        pred_src = frozen.pred_src
    tick = None if ticker is None else ticker.tick
    faults = _FAULTS

    use_np = vectorized_enabled()
    cache_key = ("lt_dfs", root, reverse)
    cached = frozen.derived.get(cache_key) if use_np else None
    if cached is not None:
        nr, num, vertex, parent, pred_num = cached
    else:
        # --- step 1: DFS numbering (1-based; 0 is a sentinel) -------------
        num = [0] * n
        vertex = [0] * (n + 1)
        parent = [0] * (n + 1)
        dfs_stack = [(root, 0)]
        counter = 0
        while dfs_stack:
            node, par = dfs_stack.pop()
            if num[node]:
                continue
            counter += 1
            num[node] = counter
            vertex[counter] = node
            parent[counter] = par
            lo = succ_off[node]
            for i in range(succ_off[node + 1] - 1, lo - 1, -1):
                nxt = succ_dst[i]
                if not num[nxt]:
                    dfs_stack.append((nxt, counter))
        nr = counter
        pred_num = None
        if use_np:
            np = numpy_or_none()
            if np is not None and frozen.num_edges:
                # Semidominator batching: translate every predecessor row to
                # DFS numbers in one gather, shedding an indirection per edge
                # per sweep visit.
                num_a = np.fromiter(num, dtype=np.int64, count=n)
                src_a = np.fromiter(
                    pred_src, dtype=np.int64, count=len(pred_src)
                )
                pred_num = num_a[src_a].tolist()
                frozen.derived[cache_key] = (nr, num, vertex, parent, pred_num)
    if tick is not None:
        tick(2 * nr)  # the DFS numbering counts for both passes
    if ticker is not None and ticker.profile is not None:
        ticker.mark("dfs")

    # --- forest for EVAL/LINK with path compression -----------------------
    semi = list(range(nr + 1))
    ancestor = [0] * (nr + 1)
    label = list(range(nr + 1))
    idom_num = [0] * (nr + 1)
    # Buckets as linked lists: bucket_head by semi number, bucket_next by
    # vertex number (each vertex sits in at most one bucket at a time).
    bucket_head = [0] * (nr + 1)
    bucket_next = [0] * (nr + 1)
    path: List[int] = []  # reused scratch for path compression

    # --- steps 2 & 3: semidominators and implicit idoms -------------------
    if tick is not None and nr > 1:
        tick(nr - 1)  # the semidominator sweep about to run
    for w in range(nr, 1, -1):
        node = vertex[w]
        sw = semi[w]
        for i in range(pred_off[node], pred_off[node + 1]):
            v = pred_num[i] if pred_num is not None else num[pred_src[i]]
            if v == 0:
                continue  # unreachable predecessor
            # EVAL(v), inlined: this runs once per edge and dominates the
            # sweep, so the call overhead of evaluate() is worth shedding.
            if ancestor[v] == 0:
                u = v
            else:
                x = v
                while ancestor[ancestor[x]] != 0:
                    path.append(x)
                    x = ancestor[x]
                for y in reversed(path):
                    anc = ancestor[y]
                    if semi[label[anc]] < semi[label[y]]:
                        label[y] = label[anc]
                    ancestor[y] = ancestor[anc]
                del path[:]
                u = label[v]
            su = semi[u]
            if su < sw:
                sw = su
        if faults is not None and sw > 1 and faults.should_fire(
            "lengauer-tarjan/semi-skew"
        ):
            sw -= 1  # injected fault: off-by-one semidominator
        semi[w] = sw
        bucket_next[w] = bucket_head[sw]
        bucket_head[sw] = w
        ancestor[w] = parent[w]
        p = parent[w]
        v = bucket_head[p]
        bucket_head[p] = 0
        while v != 0:
            # EVAL(v), inlined as above.
            if ancestor[v] == 0:
                u = v
            else:
                x = v
                while ancestor[ancestor[x]] != 0:
                    path.append(x)
                    x = ancestor[x]
                for y in reversed(path):
                    anc = ancestor[y]
                    if semi[label[anc]] < semi[label[y]]:
                        label[y] = label[anc]
                    ancestor[y] = ancestor[anc]
                del path[:]
                u = label[v]
            idom_num[v] = u if semi[u] < semi[v] else p
            v = bucket_next[v]

    if ticker is not None and ticker.profile is not None:
        ticker.mark("semidominators")

    # --- step 4: explicit idoms -------------------------------------------
    for w in range(2, nr + 1):
        if idom_num[w] != semi[w]:
            idom_num[w] = idom_num[idom_num[w]]
    if nr:
        idom_num[1] = 1

    idom = [-1] * n
    for w in range(1, nr + 1):
        idom[vertex[w]] = vertex[idom_num[w]]
    if ticker is not None and ticker.profile is not None:
        ticker.mark("idoms")
    return idom


def kernel_immediate_dominators(
    frozen: FrozenCFG,
    root: int,
    ticker: Optional[Ticker] = None,
) -> Dict[object, object]:
    """Cooper-Harvey-Kennedy iterative idoms over the CSR snapshot.

    Array port of :func:`repro.dominance.iterative.immediate_dominators`
    (which is retained as the object-graph reference): a data-flow fixpoint
    over reverse postorder whose ``intersect`` walk *is* dominator-set
    intersection in compressed form -- walking two postorder numbers up the
    current idom forest meets the two (implicit) dominator sets without
    ever materializing them.  Same convention (``idom[root] == root``, only
    reachable nodes appear, keyed by node ids) and same billing (one step
    per node per sweep, charged at the top of each sweep).
    """
    n = frozen.num_nodes
    succ_off = frozen.succ_off
    succ_dst = frozen.succ_dst
    pred_off = frozen.pred_off
    pred_src = frozen.pred_src
    tick = None if ticker is None else ticker.tick

    # Reverse postorder, with the same mark-at-push DFS as the traversal
    # module so sweep counts (and therefore ticker charges) match the
    # reference exactly.
    visited = bytearray(n)
    visited[root] = 1
    post: List[int] = []
    stack = [[root, succ_off[root], succ_off[root + 1]]]
    while stack:
        frame = stack[-1]
        ptr = frame[1]
        end_ptr = frame[2]
        advanced = False
        while ptr < end_ptr:
            nxt = succ_dst[ptr]
            ptr += 1
            if not visited[nxt]:
                visited[nxt] = 1
                frame[1] = ptr
                stack.append([nxt, succ_off[nxt], succ_off[nxt + 1]])
                advanced = True
                break
        if not advanced:
            post.append(frame[0])
            stack.pop()
    order = post[::-1]
    nr = len(order)

    # Position in reverse postorder; -1 marks unreachable.  The reference
    # compares *postorder* numbers (higher = closer to the root), which is
    # the same as comparing RPO positions with the inequality flipped.
    rpo_pos = [-1] * n
    for i, nd in enumerate(order):
        rpo_pos[nd] = i
    idom = [-1] * n
    idom[root] = root

    changed = True
    while changed:
        changed = False
        if tick is not None:
            tick(nr)  # the sweep we are about to run
        for nd in order:
            if nd == root:
                continue
            new = -1
            for i in range(pred_off[nd], pred_off[nd + 1]):
                p = pred_src[i]
                if rpo_pos[p] < 0 or idom[p] < 0:
                    continue
                if new < 0:
                    new = p
                    continue
                a = p
                b = new
                pa = rpo_pos[a]
                pb = rpo_pos[b]
                while a != b:
                    while pa > pb:
                        a = idom[a]
                        pa = rpo_pos[a]
                    while pb > pa:
                        b = idom[b]
                        pb = rpo_pos[b]
                new = a
            if new < 0:
                continue  # no processed predecessor yet (can't happen after pass 1)
            if idom[nd] != new:
                idom[nd] = new
                changed = True

    node_ids = frozen.node_ids
    return {node_ids[i]: node_ids[idom[i]] for i in range(n) if idom[i] >= 0}
