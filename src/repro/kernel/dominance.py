"""Array-based Lengauer-Tarjan over CSR snapshots.

Same algorithm (and the same tick billing and fault site) as
:mod:`repro.dominance.lengauer_tarjan`'s object-graph implementation, with
node ids replaced by dense indices: the DFS walks the flat ``succ_dst``
rows, the semidominator sweep walks ``pred_src``, and the EVAL/LINK forest
is the usual set of int arrays.  Passing ``reverse=True`` swaps the roles
of the two CSR halves, which computes *post*\\ dominators without ever
materializing a reversed copy of the graph.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.csr import FrozenCFG
from repro.resilience.guards import Ticker

# Fault-injection hook for "lengauer-tarjan/semi-skew" (installed and
# cleared by repro.resilience.faults alongside the object-path hook).
_FAULTS = None


def kernel_lengauer_tarjan(
    frozen: FrozenCFG,
    root: int,
    ticker: Optional[Ticker] = None,
    reverse: bool = False,
) -> List[int]:
    """Immediate dominators by node index; ``-1`` marks unreachable nodes.

    ``idom[root] == root``.  With ``reverse=True`` the edge direction flips
    (successor rows become predecessor rows and vice versa), yielding
    postdominators when called with ``root=frozen.end``.
    """
    n = frozen.num_nodes
    if reverse:
        succ_off = frozen.pred_off
        succ_dst = frozen.pred_src
        pred_off = frozen.succ_off
        pred_src = frozen.succ_dst
    else:
        succ_off = frozen.succ_off
        succ_dst = frozen.succ_dst
        pred_off = frozen.pred_off
        pred_src = frozen.pred_src
    tick = None if ticker is None else ticker.tick
    faults = _FAULTS

    # --- step 1: DFS numbering (1-based; 0 is a sentinel) -----------------
    num = [0] * n
    vertex = [0] * (n + 1)
    parent = [0] * (n + 1)
    dfs_stack = [(root, 0)]
    counter = 0
    while dfs_stack:
        node, par = dfs_stack.pop()
        if num[node]:
            continue
        counter += 1
        num[node] = counter
        vertex[counter] = node
        parent[counter] = par
        lo = succ_off[node]
        for i in range(succ_off[node + 1] - 1, lo - 1, -1):
            nxt = succ_dst[i]
            if not num[nxt]:
                dfs_stack.append((nxt, counter))
    nr = counter
    if tick is not None:
        tick(2 * nr)  # the DFS numbering just done counts for both passes
    if ticker is not None and ticker.profile is not None:
        ticker.mark("dfs")

    # --- forest for EVAL/LINK with path compression -----------------------
    semi = list(range(nr + 1))
    ancestor = [0] * (nr + 1)
    label = list(range(nr + 1))
    idom_num = [0] * (nr + 1)
    # Buckets as linked lists: bucket_head by semi number, bucket_next by
    # vertex number (each vertex sits in at most one bucket at a time).
    bucket_head = [0] * (nr + 1)
    bucket_next = [0] * (nr + 1)
    path: List[int] = []  # reused scratch for path compression

    # --- steps 2 & 3: semidominators and implicit idoms -------------------
    if tick is not None and nr > 1:
        tick(nr - 1)  # the semidominator sweep about to run
    for w in range(nr, 1, -1):
        node = vertex[w]
        sw = semi[w]
        for i in range(pred_off[node], pred_off[node + 1]):
            v = num[pred_src[i]]
            if v == 0:
                continue  # unreachable predecessor
            # EVAL(v), inlined: this runs once per edge and dominates the
            # sweep, so the call overhead of evaluate() is worth shedding.
            if ancestor[v] == 0:
                u = v
            else:
                x = v
                while ancestor[ancestor[x]] != 0:
                    path.append(x)
                    x = ancestor[x]
                for y in reversed(path):
                    anc = ancestor[y]
                    if semi[label[anc]] < semi[label[y]]:
                        label[y] = label[anc]
                    ancestor[y] = ancestor[anc]
                del path[:]
                u = label[v]
            su = semi[u]
            if su < sw:
                sw = su
        if faults is not None and sw > 1 and faults.should_fire(
            "lengauer-tarjan/semi-skew"
        ):
            sw -= 1  # injected fault: off-by-one semidominator
        semi[w] = sw
        bucket_next[w] = bucket_head[sw]
        bucket_head[sw] = w
        ancestor[w] = parent[w]
        p = parent[w]
        v = bucket_head[p]
        bucket_head[p] = 0
        while v != 0:
            # EVAL(v), inlined as above.
            if ancestor[v] == 0:
                u = v
            else:
                x = v
                while ancestor[ancestor[x]] != 0:
                    path.append(x)
                    x = ancestor[x]
                for y in reversed(path):
                    anc = ancestor[y]
                    if semi[label[anc]] < semi[label[y]]:
                        label[y] = label[anc]
                    ancestor[y] = ancestor[anc]
                del path[:]
                u = label[v]
            idom_num[v] = u if semi[u] < semi[v] else p
            v = bucket_next[v]

    if ticker is not None and ticker.profile is not None:
        ticker.mark("semidominators")

    # --- step 4: explicit idoms -------------------------------------------
    for w in range(2, nr + 1):
        if idom_num[w] != semi[w]:
            idom_num[w] = idom_num[idom_num[w]]
    if nr:
        idom_num[1] = 1

    idom = [-1] * n
    for w in range(1, nr + 1):
        idom[vertex[w]] = vertex[idom_num[w]]
    if ticker is not None and ticker.profile is not None:
        ticker.mark("idoms")
    return idom
