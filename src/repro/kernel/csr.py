"""Frozen CSR snapshots of control-flow graphs.

A :class:`FrozenCFG` maps the object multigraph onto flat integer arrays:

* nodes are densely numbered ``0 .. n-1`` in the CFG's insertion order
  (``node_ids[i]`` recovers the original id, ``index_of`` the inverse);
* edges are numbered ``0 .. m-1`` *positionally* -- edge index ``e``
  corresponds to ``cfg.edges[e]``.  Positions, not ``eid``\\ s, because a
  graph that had edges removed has id gaps, and every consumer (the slow
  references included) already identifies edges positionally;
* ``succ_off``/``succ_edge`` form a CSR row per node over out-edge indices
  in adjacency insertion order, so kernel DFS orders match the object
  traversals; ``pred_off``/``pred_edge`` are the same for in-edges and
  double as the reverse graph (no ``cfg.reversed()`` copy needed).

Snapshots are immutable and carry the CFG's mutation ``version`` so
staleness is detectable (:meth:`FrozenCFG.is_stale`); parallel edges and
self-loops survive the encoding unchanged (two parallel edges are two
distinct edge indices with equal endpoints).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, NodeId


class FrozenCFG:
    """An immutable int-indexed CSR view of a :class:`~repro.cfg.graph.CFG`.

    Construct via :func:`freeze`.  All arrays are plain Python lists of
    ints, which the interpreted kernels index faster than object graphs
    (no Edge attribute loads, no NodeId hashing in inner loops).
    """

    __slots__ = (
        "_cfg_ref",
        "version",
        "num_nodes",
        "num_edges",
        "node_ids",
        "index_of",
        "start",
        "end",
        "edge_src",
        "edge_dst",
        "succ_off",
        "succ_edge",
        "succ_dst",
        "pred_off",
        "pred_edge",
        "pred_src",
        "self_loops",
        "validated",
        "undirected",
        "derived",
    )

    def __init__(
        self,
        cfg: CFG,
        version: int,
        node_ids: List[NodeId],
        index_of: Dict[NodeId, int],
        start: int,
        end: int,
        edge_src: List[int],
        edge_dst: List[int],
        succ_off: List[int],
        succ_edge: List[int],
        succ_dst: List[int],
        pred_off: List[int],
        pred_edge: List[int],
        pred_src: List[int],
        self_loops: List[int],
    ):
        # Weak, not strong: the shared-snapshot registry maps CFG -> frozen
        # in a WeakKeyDictionary, and a value that strongly referenced its
        # key would pin the entry forever -- in a long-lived server, a
        # per-request memory leak.  Snapshots are pure derived data; every
        # consumer that walks back to the object graph holds the CFG itself.
        self._cfg_ref = weakref.ref(cfg)
        self.version = version
        self.num_nodes = len(node_ids)
        self.num_edges = len(edge_src)
        self.node_ids = node_ids
        self.index_of = index_of
        self.start = start
        self.end = end
        self.edge_src = edge_src
        self.edge_dst = edge_dst
        self.succ_off = succ_off
        self.succ_edge = succ_edge
        self.succ_dst = succ_dst
        self.pred_off = pred_off
        self.pred_edge = pred_edge
        self.pred_src = pred_src
        self.self_loops = self_loops
        # Set (never cleared) once Definition 1 validation has passed for
        # this snapshot, so repeat analyses of an unchanged CFG skip the
        # O(V + E) reachability probes.  Purely a cache: a new version
        # means a new snapshot, which starts unvalidated.
        self.validated = False
        # Undirected-multigraph CSR views, built lazily by the cycle-
        # equivalence kernel and keyed by the virtual-edge tuple.  Like the
        # snapshot itself these are structural and read-only.
        self.undirected: Dict[tuple, tuple] = {}
        # Other derived *structural* caches (DFS skeletons, the Theorem 8
        # node expansion, NumPy mirrors of the arrays).  Same contract as
        # ``undirected``: entries depend only on the snapshot's structure,
        # are never mutated by consumers, and die with the snapshot -- so
        # caching them cannot leak analysis results across calls.
        self.derived: Dict[tuple, object] = {}

    @property
    def cfg(self) -> CFG:
        """The source CFG (held weakly; raises once the graph is dead)."""
        cfg = self._cfg_ref()
        if cfg is None:
            raise ReferenceError(
                "the CFG behind this FrozenCFG has been garbage collected"
            )
        return cfg

    def is_stale(self) -> bool:
        """True iff the source CFG has been mutated since the freeze."""
        return self.cfg.version != self.version

    def edges(self) -> List[Edge]:
        """The source CFG's edge list; index ``e`` is edge index ``e``."""
        return self.cfg.edges

    def out_edge_indices(self, node: int) -> List[int]:
        """Edge indices leaving node index ``node`` (adjacency order)."""
        return self.succ_edge[self.succ_off[node]:self.succ_off[node + 1]]

    def in_edge_indices(self, node: int) -> List[int]:
        """Edge indices entering node index ``node`` (adjacency order)."""
        return self.pred_edge[self.pred_off[node]:self.pred_off[node + 1]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stale = " STALE" if self.is_stale() else ""
        return (
            f"FrozenCFG({self.cfg.name!r}, |V|={self.num_nodes}, "
            f"|E|={self.num_edges}{stale})"
        )


def freeze(cfg: CFG) -> FrozenCFG:
    """Snapshot ``cfg`` into a :class:`FrozenCFG` in O(V + E).

    The snapshot is purely structural: it never runs Definition 1
    validation (degenerate graphs freeze fine) and captures nothing about
    labels -- consumers that need labels go back through ``cfg.edges``
    positionally.
    """
    version = cfg.version
    node_ids: List[NodeId] = cfg.nodes
    index_of: Dict[NodeId, int] = {node: i for i, node in enumerate(node_ids)}
    n = len(node_ids)
    edges = cfg.edges
    m = len(edges)

    edge_src: List[int] = [0] * m
    edge_dst: List[int] = [0] * m
    out_deg = [0] * n
    in_deg = [0] * n
    self_loops: List[int] = []
    for e, edge in enumerate(edges):
        s = index_of[edge.source]
        t = index_of[edge.target]
        edge_src[e] = s
        edge_dst[e] = t
        out_deg[s] += 1
        in_deg[t] += 1
        if s == t:
            self_loops.append(e)

    succ_off = [0] * (n + 1)
    pred_off = [0] * (n + 1)
    for i in range(n):
        succ_off[i + 1] = succ_off[i] + out_deg[i]
        pred_off[i + 1] = pred_off[i] + in_deg[i]

    succ_edge = [0] * m
    pred_edge = [0] * m
    succ_fill = succ_off[:n]
    pred_fill = pred_off[:n]
    # Edge order within a row must be adjacency insertion order.  Iterating
    # cfg.edges gives exactly that: add_edge appends to both the global edge
    # list and the per-node adjacency lists in the same call.
    for e in range(m):
        s = edge_src[e]
        t = edge_dst[e]
        succ_edge[succ_fill[s]] = e
        succ_fill[s] += 1
        pred_edge[pred_fill[t]] = e
        pred_fill[t] += 1
    # Flat neighbor arrays in the same row order, so kernels can walk
    # successors/predecessors with a single index per step.
    succ_dst = [edge_dst[e] for e in succ_edge]
    pred_src = [edge_src[e] for e in pred_edge]

    start = index_of[cfg.start] if cfg.start is not None and cfg.start in index_of else -1
    end = index_of[cfg.end] if cfg.end is not None and cfg.end in index_of else -1
    return FrozenCFG(
        cfg,
        version,
        node_ids,
        index_of,
        start,
        end,
        edge_src,
        edge_dst,
        succ_off,
        succ_edge,
        succ_dst,
        pred_off,
        pred_edge,
        pred_src,
        self_loops,
    )
