"""Explicit, opt-in memoization of derived analysis artifacts.

The public entry points (``cycle_equivalence_of_cfg``, ``build_pst``,
``lengauer_tarjan``, ``control_regions``) deliberately recompute on every
call -- the resilience engine's retry ladder and the fault-injection tests
depend on each call being a fresh run.  An :class:`AnalysisSession` is the
opposite contract: one object per CFG that computes each artifact *once*
and hands the same result back to every consumer, for driver code (the
CLI, :mod:`repro.analysis.report`, the benchmark harness) that asks for the
same PST or dominator tree many times over.

Every artifact is stamped with the CFG's mutation ``version`` at compute
time and re-checked per lookup, so mutating the graph between calls
transparently discards stale artifacts -- per key, not whole-cache, which
lets a delta-aware maintainer (:class:`~repro.incremental.session.EditSession`)
re-seed just the artifacts it maintained via :meth:`AnalysisSession.put_artifact`
while everything else lazily recomputes.  :meth:`AnalysisSession.invalidate`
drops artifacts explicitly -- all of them, or a named subset (the engine
does a full drop between retry attempts so a corrupted artifact is never
reused).

``session_for`` maintains one session per live CFG in a weak-key registry,
mirroring :func:`repro.kernel.registry.shared_frozen` one layer up.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import AnalysisConfig

from repro.cfg.graph import CFG, NodeId
from repro.kernel.csr import FrozenCFG
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs
from repro.obs.observer import Observer

#: Distinct default for bounded-cache lookups (None is a legal artifact).
_MISS = object()


class AnalysisSession:
    """Per-CFG cache of derived analysis artifacts.

    Each artifact is stored with the CFG ``version`` it was computed (or
    :meth:`put_artifact`-seeded) under; a lookup that finds a stale stamp
    counts it in ``stale``, reports a miss, and recomputes just that
    artifact against a fresh snapshot.

    ``observer`` (or, failing that, the ambient observer) receives a
    ``session.cache`` counter per lookup, labelled with the artifact and
    hit/miss, so cache effectiveness shows up in one metrics snapshot next
    to the engine's retry counters.
    """

    __slots__ = (
        "cfg",
        "observer",
        "max_cache_bytes",
        "_cache",
        "_lru",
        "hits",
        "misses",
        "stale",
        "__weakref__",
    )

    def __init__(
        self,
        cfg: CFG,
        observer: Optional[Observer] = None,
        max_cache_bytes: Optional[int] = None,
    ):
        self.cfg = cfg
        self.observer = observer
        #: Optional byte bound on the artifact memo (``None`` = unbounded).
        #: Artifacts are all O(V + E) structures, so each is charged the
        #: CSR byte estimate of its CFG -- cheap, monotone in graph size,
        #: and consistent with the frozen-registry accounting.
        self.max_cache_bytes = max_cache_bytes
        #: ``key -> (version, value)`` -- the stamp decides per-key staleness.
        self._cache: Dict[str, Any] = {}
        self._lru = None
        if max_cache_bytes is not None:
            from repro.service.cache import SizedLRU

            self._lru = SizedLRU(max_cache_bytes, name="kernel.session")
        self.hits = 0
        self.misses = 0
        self.stale = 0

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> FrozenCFG:
        """The current CSR snapshot (re-frozen if the CFG mutated)."""
        return shared_frozen(self.cfg)

    def invalidate(self, keys: Optional[List[str]] = None) -> None:
        """Drop cached artifacts: all of them, or just the named ``keys``.

        Selective invalidation is the delta-aware path: an incremental
        maintainer that re-seeded ``pst``/``equiv`` via :meth:`put_artifact`
        drops only the artifacts it could not maintain (e.g. ``dom``) and
        keeps the rest warm.  Unknown keys are ignored.
        """
        if keys is None:
            self._cache.clear()
            if self._lru is not None:
                self._lru.clear()
            return
        for key in keys:
            self._cache.pop(key, None)
            if self._lru is not None:
                self._lru.pop(key, None)

    def put_artifact(self, key: str, value: Any) -> None:
        """Seed ``key`` with an externally maintained ``value``.

        The value is stamped with the CFG's *current* version, so the next
        lookup treats it as fresh.  The caller vouches that ``value`` equals
        what the corresponding getter would compute from scratch -- the
        incremental layer's differential verification exists to keep that
        promise honest.
        """
        entry = (self.cfg.version, value)
        if self._lru is not None:
            from repro.service.cache import cfg_cost_bytes

            self._lru.put(key, entry, cfg_cost_bytes(self.cfg))
        else:
            self._cache[key] = entry

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss/stale counters and the number of artifacts held."""
        lru = self._lru
        size = len(self._cache) if lru is None else len(lru)
        info = {
            "hits": self.hits,
            "misses": self.misses,
            "size": size,
            "stale": self.stale,
        }
        if lru is not None:
            info["bytes"] = lru.total_bytes
            info["evictions"] = lru.evictions
        return info

    def set_max_cache_bytes(self, max_cache_bytes: Optional[int]) -> None:
        """Arm, resize, or (with ``None``) disarm the artifact byte bound.

        Used by :func:`session_for` so a long-lived shared session can be
        (re)bounded by a later config without being torn down.  Disarming
        keeps currently held artifacts; shrinking evicts immediately.
        """
        if max_cache_bytes == self.max_cache_bytes:
            return
        self.max_cache_bytes = max_cache_bytes
        if max_cache_bytes is None:
            if self._lru is not None:
                for key in self._lru.keys():
                    self._cache[key] = self._lru.get(key)
                self._lru = None
            return
        if self._lru is None:
            from repro.service.cache import SizedLRU, cfg_cost_bytes

            self._lru = SizedLRU(max_cache_bytes, name="kernel.session")
            cost = cfg_cost_bytes(self.cfg)
            for key, value in self._cache.items():
                self._lru.put(key, value, cost)
            self._cache.clear()
        else:
            self._lru.resize(max_cache_bytes)

    def _memo(self, key: str, compute: Callable[[], Any]) -> Any:
        o = self.observer if self.observer is not None else _obs._CURRENT
        version = self.cfg.version
        lru = self._lru
        sentinel = _MISS
        if lru is not None:
            entry = lru.get(key, sentinel)
        else:
            entry = self._cache.get(key, sentinel)
        if entry is not sentinel:
            if entry[0] == version:
                self.hits += 1
                if o is not None:
                    o.count("session.cache", artifact=key, result="hit")
                return entry[1]
            self.stale += 1
        self.misses += 1
        if o is not None:
            o.count("session.cache", artifact=key, result="miss")
        value = compute()
        if lru is not None:
            from repro.service.cache import cfg_cost_bytes

            lru.put(key, (version, value), cfg_cost_bytes(self.cfg))
        else:
            self._cache[key] = (version, value)
        return value

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def cycle_equivalence(self, ticker=None, validate: bool = True):
        """Cycle equivalence of the augmented graph (Figure 4 kernel).

        ``validate=False`` skips Definition-1 validation for callers (the
        resilience engine) that have already validated the graph; it does
        not change the artifact, so both spellings share one cache slot.
        """
        from repro.core.cycle_equiv import cycle_equivalence_of_cfg

        return self._memo(
            "equiv",
            lambda: cycle_equivalence_of_cfg(
                self.cfg, validate=validate, ticker=ticker
            ),
        )

    def dfs_edge_order(self) -> List[int]:
        """Edge indices in DFS visit order over the snapshot."""
        from repro.kernel.pst import kernel_dfs_edge_order

        return self._memo("dfs", lambda: kernel_dfs_edge_order(self.frozen))

    def pst(self, ticker=None):
        """The Program Structure Tree (computing cycle equivalence first)."""
        from repro.core.pst import build_pst

        return self._memo(
            "pst",
            lambda: build_pst(
                self.cfg, equiv=self.cycle_equivalence(ticker), ticker=ticker
            ),
        )

    def sese_regions(self):
        """Canonical SESE regions, in PST discovery order."""
        return self.pst().canonical_regions()

    def dominators(self, ticker=None) -> Dict[NodeId, NodeId]:
        """Immediate dominators (Lengauer-Tarjan kernel, root = start)."""
        from repro.dominance.lengauer_tarjan import lengauer_tarjan

        return self._memo("dom", lambda: lengauer_tarjan(self.cfg, ticker=ticker))

    def postdominators(self, ticker=None) -> Dict[NodeId, NodeId]:
        """Immediate postdominators (the same kernel on reversed CSR rows).

        Runs :func:`repro.kernel.dominance.kernel_lengauer_tarjan` with
        ``reverse=True`` over the existing snapshot, so no reversed CFG is
        ever materialized.
        """
        from repro.cfg.validate import require_root
        from repro.kernel.dominance import kernel_lengauer_tarjan

        def compute() -> Dict[NodeId, NodeId]:
            root = require_root(self.cfg, self.cfg.end, "postdominators")
            frozen = self.frozen
            idom = kernel_lengauer_tarjan(
                frozen, frozen.index_of[root], ticker, reverse=True
            )
            node_ids = frozen.node_ids
            return {
                node_ids[i]: node_ids[idom[i]]
                for i in range(frozen.num_nodes)
                if idom[i] != -1
            }

        return self._memo("pdom", compute)

    def control_regions(self, ticker=None, validate: bool = True) -> List[List[NodeId]]:
        """Control regions (§5 node-expansion kernel)."""
        from repro.controldep.regions_fast import control_regions

        return self._memo(
            "cr",
            lambda: control_regions(self.cfg, validate=validate, ticker=ticker),
        )


_SESSIONS: "weakref.WeakKeyDictionary[CFG, AnalysisSession]" = (
    weakref.WeakKeyDictionary()
)


def session_for(cfg: CFG, config: Optional["AnalysisConfig"] = None) -> AnalysisSession:
    """The process-wide session for ``cfg`` (created on first use).

    Sessions are held weakly, so they die with their graphs.  Callers that
    need isolation (the resilience engine) construct their own
    :class:`AnalysisSession` instead.

    ``config`` (an :class:`~repro.config.AnalysisConfig`) contributes its
    ``observer`` -- passing one (re)binds the session's metrics sink, so
    long-lived driver sessions can be pointed at a fresh registry without
    being torn down -- and its ``max_cache_bytes``, which arms (or resizes)
    the session's artifact byte bound via
    :meth:`AnalysisSession.set_max_cache_bytes`.
    """
    session = _SESSIONS.get(cfg)
    if session is None:
        session = AnalysisSession(
            cfg,
            max_cache_bytes=(
                config.max_cache_bytes if config is not None else None
            ),
        )
        _SESSIONS[cfg] = session
    elif config is not None and config.max_cache_bytes is not None:
        session.set_max_cache_bytes(config.max_cache_bytes)
    if config is not None and config.observer is not None:
        session.observer = config.observer
    return session
