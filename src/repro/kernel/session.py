"""Explicit, opt-in memoization of derived analysis artifacts.

The public entry points (``cycle_equivalence_of_cfg``, ``build_pst``,
``lengauer_tarjan``, ``control_regions``) deliberately recompute on every
call -- the resilience engine's retry ladder and the fault-injection tests
depend on each call being a fresh run.  An :class:`AnalysisSession` is the
opposite contract: one object per CFG that computes each artifact *once*
and hands the same result back to every consumer, for driver code (the
CLI, :mod:`repro.analysis.report`, the benchmark harness) that asks for the
same PST or dominator tree many times over.

Every getter re-checks the CFG's mutation ``version`` first, so mutating
the graph between calls transparently discards stale artifacts;
:meth:`AnalysisSession.invalidate` drops them explicitly (the engine does
this between retry attempts so a corrupted artifact is never reused).

``session_for`` maintains one session per live CFG in a weak-key registry,
mirroring :func:`repro.kernel.registry.shared_frozen` one layer up.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config import AnalysisConfig

from repro.cfg.graph import CFG, NodeId
from repro.kernel.csr import FrozenCFG
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs
from repro.obs.observer import Observer


class AnalysisSession:
    """Per-CFG cache of derived analysis artifacts.

    Artifacts are keyed on the frozen snapshot: whenever the CFG's
    ``version`` has moved since an artifact was stored, the whole cache is
    dropped and the next getter recomputes against a fresh snapshot.

    ``observer`` (or, failing that, the ambient observer) receives a
    ``session.cache`` counter per lookup, labelled with the artifact and
    hit/miss, so cache effectiveness shows up in one metrics snapshot next
    to the engine's retry counters.
    """

    __slots__ = (
        "cfg",
        "observer",
        "_version",
        "_cache",
        "hits",
        "misses",
        "__weakref__",
    )

    def __init__(self, cfg: CFG, observer: Optional[Observer] = None):
        self.cfg = cfg
        self.observer = observer
        self._version = cfg.version
        self._cache: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # cache plumbing
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> FrozenCFG:
        """The current CSR snapshot (re-frozen if the CFG mutated)."""
        self._refresh()
        return shared_frozen(self.cfg)

    def invalidate(self) -> None:
        """Drop every cached artifact (the snapshot refreshes on demand)."""
        self._cache.clear()
        self._version = self.cfg.version

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters and the number of artifacts currently held."""
        return {"hits": self.hits, "misses": self.misses, "size": len(self._cache)}

    def _refresh(self) -> None:
        if self._version != self.cfg.version:
            self.invalidate()

    def _memo(self, key: str, compute: Callable[[], Any]) -> Any:
        self._refresh()
        cache = self._cache
        o = self.observer if self.observer is not None else _obs._CURRENT
        if key in cache:
            self.hits += 1
            if o is not None:
                o.count("session.cache", artifact=key, result="hit")
            return cache[key]
        self.misses += 1
        if o is not None:
            o.count("session.cache", artifact=key, result="miss")
        value = compute()
        cache[key] = value
        return value

    # ------------------------------------------------------------------
    # artifacts
    # ------------------------------------------------------------------
    def cycle_equivalence(self, ticker=None, validate: bool = True):
        """Cycle equivalence of the augmented graph (Figure 4 kernel).

        ``validate=False`` skips Definition-1 validation for callers (the
        resilience engine) that have already validated the graph; it does
        not change the artifact, so both spellings share one cache slot.
        """
        from repro.core.cycle_equiv import cycle_equivalence_of_cfg

        return self._memo(
            "equiv",
            lambda: cycle_equivalence_of_cfg(
                self.cfg, validate=validate, ticker=ticker
            ),
        )

    def dfs_edge_order(self) -> List[int]:
        """Edge indices in DFS visit order over the snapshot."""
        from repro.kernel.pst import kernel_dfs_edge_order

        return self._memo("dfs", lambda: kernel_dfs_edge_order(self.frozen))

    def pst(self, ticker=None):
        """The Program Structure Tree (computing cycle equivalence first)."""
        from repro.core.pst import build_pst

        return self._memo(
            "pst",
            lambda: build_pst(
                self.cfg, equiv=self.cycle_equivalence(ticker), ticker=ticker
            ),
        )

    def sese_regions(self):
        """Canonical SESE regions, in PST discovery order."""
        return self.pst().canonical_regions()

    def dominators(self, ticker=None) -> Dict[NodeId, NodeId]:
        """Immediate dominators (Lengauer-Tarjan kernel, root = start)."""
        from repro.dominance.lengauer_tarjan import lengauer_tarjan

        return self._memo("dom", lambda: lengauer_tarjan(self.cfg, ticker=ticker))

    def postdominators(self, ticker=None) -> Dict[NodeId, NodeId]:
        """Immediate postdominators (the same kernel on reversed CSR rows).

        Runs :func:`repro.kernel.dominance.kernel_lengauer_tarjan` with
        ``reverse=True`` over the existing snapshot, so no reversed CFG is
        ever materialized.
        """
        from repro.cfg.validate import require_root
        from repro.kernel.dominance import kernel_lengauer_tarjan

        def compute() -> Dict[NodeId, NodeId]:
            root = require_root(self.cfg, self.cfg.end, "postdominators")
            frozen = self.frozen
            idom = kernel_lengauer_tarjan(
                frozen, frozen.index_of[root], ticker, reverse=True
            )
            node_ids = frozen.node_ids
            return {
                node_ids[i]: node_ids[idom[i]]
                for i in range(frozen.num_nodes)
                if idom[i] != -1
            }

        return self._memo("pdom", compute)

    def control_regions(self, ticker=None, validate: bool = True) -> List[List[NodeId]]:
        """Control regions (§5 node-expansion kernel)."""
        from repro.controldep.regions_fast import control_regions

        return self._memo(
            "cr",
            lambda: control_regions(self.cfg, validate=validate, ticker=ticker),
        )


_SESSIONS: "weakref.WeakKeyDictionary[CFG, AnalysisSession]" = (
    weakref.WeakKeyDictionary()
)


def session_for(cfg: CFG, config: Optional["AnalysisConfig"] = None) -> AnalysisSession:
    """The process-wide session for ``cfg`` (created on first use).

    Sessions are held weakly, so they die with their graphs.  Callers that
    need isolation (the resilience engine) construct their own
    :class:`AnalysisSession` instead.

    ``config`` (an :class:`~repro.config.AnalysisConfig`) currently
    contributes its ``observer``: passing one (re)binds the session's
    metrics sink, so long-lived driver sessions can be pointed at a fresh
    registry without being torn down.
    """
    session = _SESSIONS.get(cfg)
    if session is None:
        session = AnalysisSession(cfg)
        _SESSIONS[cfg] = session
    if config is not None and config.observer is not None:
        session.observer = config.observer
    return session
