"""Array-based iterative worklist solver over CSR snapshots.

Mirrors :func:`repro.dataflow.iterative.solve_iterative` with the worklist,
pending set, and per-node values all indexed by dense node ints.  Backward
problems run directly over the predecessor CSR rows (the snapshot doubles
as the reverse graph), so no ``cfg.reversed()`` copy is ever built.
Lattice values stay opaque objects -- only the graph bookkeeping around
them is flattened.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

from repro.dataflow.framework import BACKWARD, DataflowProblem, Solution
from repro.kernel.csr import FrozenCFG
from repro.resilience.guards import TICK_CHUNK, Ticker


def kernel_solve_iterative(
    frozen: FrozenCFG, problem: DataflowProblem, ticker: Optional[Ticker] = None
) -> Solution:
    """Solve ``problem`` over the snapshot to its maximal fixpoint.

    Same contract and ticker billing (one step per worklist pop, batched in
    :data:`~repro.resilience.guards.TICK_CHUNK`) as the object-graph
    reference.  Requires the root in the solving direction (``start``, or
    ``end`` for backward problems) to be present in the snapshot.
    """
    backward = problem.direction == BACKWARD
    n = frozen.num_nodes
    if backward:
        root = frozen.end
        succ_off = frozen.pred_off
        succ_dst = frozen.pred_src
        pred_off = frozen.succ_off
        pred_src = frozen.succ_dst
    else:
        root = frozen.start
        succ_off = frozen.succ_off
        succ_dst = frozen.succ_dst
        pred_off = frozen.pred_off
        pred_src = frozen.pred_src
    if root < 0:
        raise KeyError(
            f"CFG {frozen.cfg.name!r} has no {'end' if backward else 'start'} "
            "node; the iterative solver needs a root in the solving direction"
        )
    node_ids = frozen.node_ids
    transfer = problem.transfer
    meet = problem.meet

    # Seed order: reverse postorder in the solving direction.
    visited = bytearray(n)
    visited[root] = 1
    order: List[int] = []
    stack = [[root, succ_off[root], succ_off[root + 1]]]
    while stack:
        frame = stack[-1]
        ptr = frame[1]
        end_ptr = frame[2]
        advanced = False
        while ptr < end_ptr:
            nxt = succ_dst[ptr]
            ptr += 1
            if not visited[nxt]:
                visited[nxt] = 1
                frame[1] = ptr
                stack.append([nxt, succ_off[nxt], succ_off[nxt + 1]])
                advanced = True
                break
        if not advanced:
            order.append(frame[0])
            stack.pop()
    order.reverse()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("seed_order")

    # Nodes unreachable in the solving direction keep top (see the object
    # reference for why such nodes can occur transiently).  Reachable nodes
    # seed their exit with top, the meet identity, not transfer(top): a
    # transfer that is non-monotone at top (constant propagation maps an
    # UNDEF read to NAC) must not leak a pessimistic seed into a
    # successor's first meet -- see the object reference.
    entry: List[object] = [problem.top() for _ in range(n)]
    entry[root] = problem.boundary()
    exit_: List[object] = [
        problem.top() if visited[i] else transfer(node_ids[i], entry[i])
        for i in range(n)
    ]

    tick = None if ticker is None else ticker.tick
    pending = bytearray(n)
    for i in order:
        pending[i] = 1
    queue = deque(order)
    unbilled = 0
    while queue:
        if tick is not None:
            unbilled += 1
            if unbilled == TICK_CHUNK:
                tick(TICK_CHUNK)
                unbilled = 0
        node = queue.popleft()
        pending[node] = 0
        if node != root:
            value = None
            for i in range(pred_off[node], pred_off[node + 1]):
                pv = exit_[pred_src[i]]
                value = pv if value is None else meet(value, pv)
            if value is None:
                value = problem.top()
            entry[node] = value
        new_exit = transfer(node_ids[node], entry[node])
        if new_exit != exit_[node]:
            exit_[node] = new_exit
            for i in range(succ_off[node], succ_off[node + 1]):
                succ = succ_dst[i]
                if not pending[succ]:
                    pending[succ] = 1
                    queue.append(succ)
    if tick is not None and unbilled:
        tick(unbilled)
    if ticker is not None and ticker.profile is not None:
        ticker.mark("worklist")

    entry_d = {node_ids[i]: entry[i] for i in range(n)}
    exit_d = {node_ids[i]: exit_[i] for i in range(n)}
    if backward:
        # program order: `before` is the transferred (in) value.
        return Solution(before=exit_d, after=entry_d)
    return Solution(before=entry_d, after=exit_d)
