"""Kernel backend tiers: reference / kernel / vectorized.

The repo ships three generations of every hot analysis:

* ``reference`` -- the object-graph implementations (PR 1-2 era), retained
  as the oracles the fuzz matrix compares against.  Never selected here;
  callers reach them through the explicit ``*_reference`` entry points.
* ``kernel`` -- the frozen-CSR array ports (PR 3), the default.
* ``vectorized`` -- bulk-array ports of the flattest kernel loops (this
  module's reason to exist): the undirected-CSR / node-expansion builds and
  bracket-name compaction in cycle equivalence use NumPy, and the gen/kill
  dataflow solver runs on packed bit-vector rows.  Exact parity with the
  kernel tier is a hard contract (the three-way fuzz oracle pins it).

NumPy is an *optional* extra (``pip install repro[fast]``).  The vectorized
tier is only eligible when NumPy imports; otherwise every dispatch falls
back to the kernel tier silently -- same results, same API, just the PR 3
constant factor.

Selection, in precedence order:

1. an explicit :func:`use_backend` override (how
   :func:`~repro.resilience.engine.run_analysis` applies
   ``AnalysisConfig.backend`` per call, thread-safely);
2. the ``REPRO_BACKEND`` environment variable (``auto`` / ``kernel`` /
   ``vectorized``);
3. the default, ``auto`` -- vectorized when NumPy is present.

``REPRO_NO_NUMPY=1`` makes the probe report NumPy as absent even when it is
installed; the no-NumPy CI leg and the fallback tests use it to exercise
the degraded dispatch without uninstalling anything.
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from typing import Optional

#: Backend names accepted by ``AnalysisConfig.backend`` / ``REPRO_BACKEND``.
VALID_BACKENDS = ("auto", "kernel", "vectorized")

#: Cache for the NumPy probe: None = not probed yet, False = unavailable,
#: otherwise the module object itself.
_NUMPY: object = None

_OVERRIDE: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_backend_override", default=None
)


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when unavailable (probed once).

    ``REPRO_NO_NUMPY`` (any non-empty value) forces ``None``, letting tests
    and the no-NumPy CI leg prove the fallback path on hosts that do have
    NumPy installed.  The probe result is cached; tests that flip the
    environment variable should also reset :data:`_NUMPY`.
    """
    global _NUMPY
    if os.environ.get("REPRO_NO_NUMPY"):
        return None
    if _NUMPY is None:
        try:
            import numpy

            _NUMPY = numpy
        except Exception:
            _NUMPY = False
    return _NUMPY if _NUMPY is not False else None


def requested_backend() -> str:
    """The backend being *asked for* (before availability is considered)."""
    override = _OVERRIDE.get()
    if override is not None:
        return override
    env = os.environ.get("REPRO_BACKEND", "auto").strip().lower()
    return env if env in VALID_BACKENDS else "auto"


def resolve_backend() -> str:
    """The backend to *run*: ``"kernel"`` or ``"vectorized"``.

    ``auto`` (and an explicit ``vectorized`` request) resolve to
    ``vectorized`` only when NumPy is importable; everything else -- an
    explicit ``kernel`` request, or NumPy missing -- resolves to ``kernel``.
    An explicit ``vectorized`` request without NumPy is not an error: the
    whole point of the tier contract is that the kernel path computes the
    same answers, so degrading silently is always safe.
    """
    requested = requested_backend()
    if requested == "kernel":
        return "kernel"
    return "vectorized" if numpy_or_none() is not None else "kernel"


def vectorized_enabled() -> bool:
    """True iff dispatch should take the vectorized tier right now."""
    return resolve_backend() == "vectorized"


@contextmanager
def use_backend(name: Optional[str]):
    """Scoped backend override (``None`` defers to env/default).

    Uses a :class:`contextvars.ContextVar`, so concurrent server threads
    each see their own request's choice.  Invalid names raise
    ``ValueError`` eagerly -- config validation should have caught them,
    so a typo here is a programming error, not a runtime degradation.
    """
    if name is not None and name not in VALID_BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {', '.join(VALID_BACKENDS)}"
        )
    token = _OVERRIDE.set(name)
    try:
        yield
    finally:
        _OVERRIDE.reset(token)
