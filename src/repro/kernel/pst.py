"""Array-based canonical SESE regions and PST construction.

Ports the two passes that :func:`repro.core.pst.build_pst` runs after cycle
equivalence to the CSR snapshot:

1. a directed DFS over the successor rows yielding every edge index in
   visit order, from which adjacent same-class pairs become the canonical
   regions (§3.6, Definition 5);
2. a second DFS emitting the tree-edge down/up events inline, driving the
   same region stack discipline as the reference to assign nesting,
   containment, and depth.

The output is a regular :class:`~repro.core.pst.ProgramStructureTree` over
regular :class:`~repro.core.sese.SESERegion` objects -- only the traversal
bookkeeping is flattened, so results are interchangeable with (and
identical to) the reference builder's.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.csr import FrozenCFG


def kernel_dfs_edge_order(frozen: FrozenCFG, root: Optional[int] = None) -> List[int]:
    """Every edge index reachable from ``root``, in DFS visit order.

    Array mirror of :func:`repro.cfg.traversal.dfs_edges`: an edge is
    visited when its source is expanded, each edge exactly once, rows in
    adjacency order.
    """
    root = frozen.start if root is None else root
    if root < 0:
        return []
    succ_off = frozen.succ_off
    succ_edge = frozen.succ_edge
    edge_dst = frozen.edge_dst
    seen = bytearray(frozen.num_nodes)
    seen[root] = 1
    visit: List[int] = []
    stack = [[root, succ_off[root], succ_off[root + 1]]]
    while stack:
        frame = stack[-1]
        ptr = frame[1]
        end_ptr = frame[2]
        advanced = False
        while ptr < end_ptr:
            e = succ_edge[ptr]
            ptr += 1
            visit.append(e)
            t = edge_dst[e]
            if not seen[t]:
                seen[t] = 1
                frame[1] = ptr
                stack.append([t, succ_off[t], succ_off[t + 1]])
                advanced = True
                break
        if not advanced:
            stack.pop()
    return visit


def kernel_build_pst(frozen: FrozenCFG, classes: List[int]):
    """Build the PST from a snapshot and positional cycle-equivalence ids.

    ``classes[e]`` is the class of edge index ``e`` (as returned by
    :func:`repro.kernel.cycle_equiv.kernel_cycle_equivalence`).  Performs
    the same two passes as the reference builder; raises the same
    ``AssertionError`` on stack-discipline violations, which the resilience
    engine relies on to detect corrupted equivalence input.
    """
    # Imported here: repro.core.pst imports this module's package for the
    # cycle-equivalence kernel, so a top-level import would be circular.
    from repro.core.pst import ProgramStructureTree
    from repro.core.sese import SESERegion

    cfg = frozen.cfg
    edges = cfg.edges
    m = frozen.num_edges
    node_ids = frozen.node_ids
    succ_off = frozen.succ_off
    succ_edge = frozen.succ_edge
    edge_dst = frozen.edge_dst
    start = frozen.start

    # --- pass 1: one DFS fuses region discovery with event recording ------
    # Canonical regions are adjacent same-class pairs in edge visit order
    # (every edge, tree or not); the stack replay below only cares about
    # tree edges, recorded as an event stream (e >= 0 descends tree edge e,
    # ~e backtracks over it) so pass 2 never re-walks the adjacency.
    entry_at: List[Optional[SESERegion]] = [None] * m
    exit_at: List[Optional[SESERegion]] = [None] * m
    canonical: List[SESERegion] = []
    n_classes = max(classes) + 1 if classes else 0
    last_in_class = [-1] * n_classes
    events: List[int] = []
    seen = bytearray(frozen.num_nodes)
    if start >= 0:
        seen[start] = 1
        # frames: [node, next adjacency slot, row end, edge descended via]
        stack = [[start, succ_off[start], succ_off[start + 1], -1]]
    else:
        stack = []
    while stack:
        frame = stack[-1]
        ptr = frame[1]
        end_ptr = frame[2]
        advanced = False
        while ptr < end_ptr:
            e = succ_edge[ptr]
            ptr += 1
            cls = classes[e]
            prev = last_in_class[cls]
            if prev != -1:
                region = SESERegion(
                    edges[prev], edges[e], class_id=cls, region_id=len(canonical)
                )
                canonical.append(region)
                entry_at[prev] = region
                exit_at[e] = region
            last_in_class[cls] = e
            t = edge_dst[e]
            if not seen[t]:
                seen[t] = 1
                events.append(e)
                frame[1] = ptr
                stack.append([t, succ_off[t], succ_off[t + 1], e])
                advanced = True
                break
        if not advanced:
            stack.pop()
            via = frame[3]
            if via != -1:
                events.append(~via)

    # --- pass 2: replay tree-edge down/up events over the region stack ----
    root_region = SESERegion(entry=None, exit=None, region_id=-1)
    root_region.own_nodes.append(cfg.start)
    rstack: List[SESERegion] = [root_region]
    pushed_at: List[Optional[SESERegion]] = [None] * m
    popped_at: List[Optional[SESERegion]] = [None] * m

    top = root_region
    for ev in events:
        if ev >= 0:
            # "down" over tree edge ev
            closing = exit_at[ev]
            if closing is not None:
                if top is not closing:
                    raise AssertionError(
                        f"PST stack discipline violated closing {closing!r}; "
                        f"top is {top!r}"
                    )
                rstack.pop()
                top = rstack[-1]
                popped_at[ev] = closing
            opening = entry_at[ev]
            if opening is not None:
                opening.parent = top
                top.children.append(opening)
                rstack.append(opening)
                top = opening
                pushed_at[ev] = opening
            top.own_nodes.append(node_ids[edge_dst[ev]])
        else:
            # "up": backtracking over a tree edge undoes its events
            via = ~ev
            opened = pushed_at[via]
            if opened is not None:
                pushed_at[via] = None
                if top is not opened:
                    raise AssertionError(
                        "PST stack discipline violated on backtrack"
                    )
                rstack.pop()
                top = rstack[-1]
            closed = popped_at[via]
            if closed is not None:
                popped_at[via] = None
                rstack.append(closed)
                top = closed

    if len(rstack) != 1 or rstack[0] is not root_region:
        raise AssertionError("PST stack not fully unwound after DFS")

    depth_stack = [(0, root_region)]
    while depth_stack:
        depth, region = depth_stack.pop()
        region.depth = depth
        for child in reversed(region.children):
            depth_stack.append((depth + 1, child))
    return ProgramStructureTree(cfg, root_region, canonical)
