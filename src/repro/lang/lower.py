"""Lowering MiniLang ASTs to block-level CFGs with statement IR.

The output is a :class:`repro.ir.LoweredProcedure`: a CFG satisfying
Definition 1 (validated) whose straight-line sequences have been coalesced
into basic blocks, exactly the "block-level CFG" the paper computes PSTs
over.  Conditional edges are labelled ``"T"``/``"F"`` (or the case value for
``switch``), which downstream control-dependence code reports.

Procedures whose CFG violates Definition 1 -- e.g. an infinite loop that can
never reach ``end`` -- raise :class:`repro.cfg.graph.InvalidCFGError`; the
paper's framework (like most of the surrounding literature) assumes every
node lies on a ``start``-to-``end`` path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, InvalidCFGError, NodeId
from repro.cfg.validate import validate_cfg
from repro.ir import Assign as IRAssign, Branch as IRBranch, LoweredProcedure, Ret as IRRet, Stmt as IRStmt
from repro.lang import astnodes as ast


def lower_program(program: ast.Program, coalesce: bool = True) -> List[LoweredProcedure]:
    """Lower every procedure of a program."""
    return [lower_procedure(proc, coalesce=coalesce) for proc in program.procedures]


def lower_procedure(procedure: ast.Procedure, coalesce: bool = True) -> LoweredProcedure:
    """Lower one procedure to a validated block-level CFG + IR."""
    lowering = _Lowering(procedure.name)
    # `start` stays an empty synthetic entry node (and `end` a synthetic
    # exit): this way a procedure beginning with a conditional still has an
    # edge into its branch block, so the conditional can form a SESE region.
    current: Optional[NodeId] = lowering.new_block()
    lowering.cfg.add_edge(lowering.cfg.start, current)
    for param in procedure.params:
        lowering.blocks[current].append(IRAssign(param, (), text="param"))
    current = lowering.lower_block(procedure.body, current)
    if current is not None:
        lowering.blocks[current].append(IRRet(()))
        lowering.cfg.add_edge(current, lowering.cfg.end)
    lowering.resolve_gotos()
    lowering.prune_unreachable()
    if coalesce:
        lowering.coalesce()
    lowering.split_merge_branch()
    validate_cfg(lowering.cfg)
    blocks = {node: lowering.blocks.get(node, []) for node in lowering.cfg.nodes}
    return LoweredProcedure(procedure.name, lowering.cfg, blocks)


class _Lowering:
    """Mutable lowering state for one procedure."""

    def __init__(self, name: str):
        self.cfg = CFG(start="start", end="end", name=name)
        self.blocks: Dict[NodeId, List[IRStmt]] = {"start": [], "end": []}
        self._counter = 0
        self.labels: Dict[str, NodeId] = {}
        self.pending_gotos: List[Tuple[NodeId, str]] = []
        # (continue target, break target) innermost-last
        self.loop_stack: List[Tuple[NodeId, NodeId]] = []

    def new_block(self) -> NodeId:
        node = f"b{self._counter}"
        self._counter += 1
        self.cfg.add_node(node)
        self.blocks[node] = []
        return node

    def label_block(self, name: str) -> NodeId:
        if name not in self.labels:
            self.labels[name] = self.new_block()
        return self.labels[name]

    # ------------------------------------------------------------------
    # statement lowering; every method returns the block where control
    # continues, or None if control never falls through.
    # ------------------------------------------------------------------
    def lower_block(self, block: ast.Block, current: Optional[NodeId]) -> Optional[NodeId]:
        for statement in block.statements:
            if current is None and not isinstance(statement, ast.Label):
                continue  # unreachable code after break/goto/return
            current = self.lower_statement(statement, current)
        return current

    def lower_statement(self, statement: ast.Stmt, current: Optional[NodeId]) -> Optional[NodeId]:
        if isinstance(statement, ast.Assign):
            uses = sorted(statement.value.variables())
            self.blocks[current].append(
                IRAssign(statement.target, uses, statement.value.text(), expr=statement.value)
            )
            return current
        if isinstance(statement, ast.If):
            return self.lower_if(statement, current)
        if isinstance(statement, ast.While):
            return self.lower_while(statement, current)
        if isinstance(statement, ast.Repeat):
            return self.lower_repeat(statement, current)
        if isinstance(statement, ast.For):
            return self.lower_for(statement, current)
        if isinstance(statement, ast.Switch):
            return self.lower_switch(statement, current)
        if isinstance(statement, ast.Break):
            if not self.loop_stack:
                raise InvalidCFGError("'break' outside any loop")
            self.cfg.add_edge(current, self.loop_stack[-1][1])
            return None
        if isinstance(statement, ast.Continue):
            if not self.loop_stack:
                raise InvalidCFGError("'continue' outside any loop")
            self.cfg.add_edge(current, self.loop_stack[-1][0])
            return None
        if isinstance(statement, ast.Goto):
            self.pending_gotos.append((current, statement.label))
            return None
        if isinstance(statement, ast.Label):
            target = self.label_block(statement.name)
            if current is not None:
                self.cfg.add_edge(current, target)
            return target
        if isinstance(statement, ast.Return):
            uses = sorted(statement.value.variables()) if statement.value else []
            self.blocks[current].append(IRRet(uses, expr=statement.value))
            self.cfg.add_edge(current, self.cfg.end)
            return None
        raise TypeError(f"unknown statement {statement!r}")

    def lower_if(self, statement: ast.If, current: NodeId) -> Optional[NodeId]:
        uses = sorted(statement.cond.variables())
        self.blocks[current].append(IRBranch(uses, statement.cond.text(), expr=statement.cond))
        then_block = self.new_block()
        self.cfg.add_edge(current, then_block, "T")
        join: Optional[NodeId] = None

        def get_join() -> NodeId:
            nonlocal join
            if join is None:
                join = self.new_block()
            return join

        then_end = self.lower_block(statement.then, then_block)
        if then_end is not None:
            self.cfg.add_edge(then_end, get_join())
        if statement.els is not None:
            else_block = self.new_block()
            self.cfg.add_edge(current, else_block, "F")
            else_end = self.lower_block(statement.els, else_block)
            if else_end is not None:
                self.cfg.add_edge(else_end, get_join())
        else:
            self.cfg.add_edge(current, get_join(), "F")
        return join

    def lower_while(self, statement: ast.While, current: NodeId) -> NodeId:
        header = self.new_block()
        self.cfg.add_edge(current, header)
        uses = sorted(statement.cond.variables())
        self.blocks[header].append(IRBranch(uses, statement.cond.text(), expr=statement.cond))
        body = self.new_block()
        exit_block = self.new_block()
        self.cfg.add_edge(header, body, "T")
        self.cfg.add_edge(header, exit_block, "F")
        self.loop_stack.append((header, exit_block))
        body_end = self.lower_block(statement.body, body)
        self.loop_stack.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, header)
        return exit_block

    def lower_repeat(self, statement: ast.Repeat, current: NodeId) -> NodeId:
        body = self.new_block()
        self.cfg.add_edge(current, body)
        cond_block = self.new_block()
        exit_block = self.new_block()
        self.loop_stack.append((cond_block, exit_block))
        body_end = self.lower_block(statement.body, body)
        self.loop_stack.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, cond_block)
        uses = sorted(statement.cond.variables())
        self.blocks[cond_block].append(IRBranch(uses, statement.cond.text(), expr=statement.cond))
        self.cfg.add_edge(cond_block, exit_block, "T")  # until(cond): true exits
        self.cfg.add_edge(cond_block, body, "F")
        return exit_block

    def lower_for(self, statement: ast.For, current: NodeId) -> NodeId:
        lo_uses = sorted(statement.lo.variables())
        self.blocks[current].append(
            IRAssign(statement.var, lo_uses, statement.lo.text(), expr=statement.lo)
        )
        header = self.new_block()
        self.cfg.add_edge(current, header)
        hi_uses = sorted(statement.hi.variables() | {statement.var})
        bound = ast.BinOp("<=", ast.Var(statement.var), statement.hi)
        self.blocks[header].append(IRBranch(hi_uses, bound.text(), expr=bound))
        body = self.new_block()
        exit_block = self.new_block()
        increment = self.new_block()
        self.cfg.add_edge(header, body, "T")
        self.cfg.add_edge(header, exit_block, "F")
        step = ast.BinOp("+", ast.Var(statement.var), ast.Num(1))
        self.blocks[increment].append(
            IRAssign(statement.var, [statement.var], step.text(), expr=step)
        )
        self.cfg.add_edge(increment, header)
        self.loop_stack.append((increment, exit_block))
        body_end = self.lower_block(statement.body, body)
        self.loop_stack.pop()
        if body_end is not None:
            self.cfg.add_edge(body_end, increment)
        return exit_block

    def lower_switch(self, statement: ast.Switch, current: NodeId) -> Optional[NodeId]:
        uses = sorted(statement.expr.variables())
        self.blocks[current].append(IRBranch(uses, statement.expr.text(), expr=statement.expr))
        join: Optional[NodeId] = None

        def get_join() -> NodeId:
            nonlocal join
            if join is None:
                join = self.new_block()
            return join

        for value, case_block in statement.cases:
            block = self.new_block()
            self.cfg.add_edge(current, block, str(value))
            end = self.lower_block(case_block, block)
            if end is not None:
                self.cfg.add_edge(end, get_join())
        if statement.default is not None:
            block = self.new_block()
            self.cfg.add_edge(current, block, "default")
            end = self.lower_block(statement.default, block)
            if end is not None:
                self.cfg.add_edge(end, get_join())
        else:
            self.cfg.add_edge(current, get_join(), "default")
        return join

    # ------------------------------------------------------------------
    # cleanup passes
    # ------------------------------------------------------------------
    def resolve_gotos(self) -> None:
        for block, label in self.pending_gotos:
            if label not in self.labels:
                raise InvalidCFGError(f"goto to undefined label {label!r}")
            self.cfg.add_edge(block, self.labels[label])

    def prune_unreachable(self) -> None:
        from repro.cfg.traversal import reachable_from

        reachable = reachable_from(self.cfg)
        reachable.add(self.cfg.end)  # keep end even if (invalidly) unreachable
        for node in list(self.cfg.nodes):
            if node not in reachable:
                self.cfg.remove_node(node)
                self.blocks.pop(node, None)

    def split_merge_branch(self) -> None:
        """Separate nodes that are simultaneously a merge and a branch.

        The paper's block-level CFG keeps control operators (switch, merge)
        as distinct nodes: "every edge ... is either between a control
        operator and a basic block, or between two control operators"
        (§2.1).  A node with ≥2 predecessors *and* ≥2 successors fuses a
        merge into a switch, which hides the region boundary between the
        construct that merges and the construct that branches (e.g. two
        cascaded if-then-elses would melt into one unstructured region).
        Splitting restores the paper's granularity.
        """
        for node in list(self.cfg.nodes):
            if node in (self.cfg.start, self.cfg.end):
                continue
            if self.cfg.in_degree(node) < 2 or self.cfg.out_degree(node) < 2:
                continue
            switch = f"{node}$sw"
            self.cfg.add_node(switch)
            self.blocks[switch] = []
            statements = self.blocks[node]
            if statements and isinstance(statements[-1], IRBranch):
                self.blocks[switch].append(statements.pop())
            for edge in list(self.cfg.out_edges(node)):
                self.cfg.add_edge(switch, edge.target, edge.label)
                self.cfg.remove_edge(edge)
            self.cfg.add_edge(node, switch)

    def coalesce(self) -> None:
        """Merge straight-line block pairs (single successor, single pred)."""
        changed = True
        while changed:
            changed = False
            for node in list(self.cfg.nodes):
                if not self.cfg.has_node(node) or node in (self.cfg.start, self.cfg.end):
                    continue
                if self.cfg.out_degree(node) != 1:
                    continue
                (edge,) = self.cfg.out_edges(node)
                succ = edge.target
                if succ in (self.cfg.start, self.cfg.end, node):
                    continue
                if self.cfg.in_degree(succ) != 1:
                    continue
                # merge succ into node
                self.blocks[node].extend(self.blocks.pop(succ, []))
                self.cfg.remove_edge(edge)
                for out in list(self.cfg.out_edges(succ)):
                    self.cfg.add_edge(node, out.target, out.label)
                self.cfg.remove_node(succ)
                changed = True
