"""Pretty-printer: MiniLang ASTs back to (re-parseable) source text."""

from __future__ import annotations

from typing import List

from repro.lang import astnodes as ast

_INDENT = "    "


def pretty_program(program: ast.Program) -> str:
    """Render a whole program; the output re-parses to an equivalent AST."""
    return "\n".join(pretty_procedure(proc) for proc in program.procedures)


def pretty_procedure(procedure: ast.Procedure) -> str:
    lines: List[str] = [f"proc {procedure.name}({', '.join(procedure.params)}) {{"]
    _render_block_body(procedure.body, lines, 1)
    lines.append("}")
    return "\n".join(lines) + "\n"


def _render_block_body(block: ast.Block, lines: List[str], depth: int) -> None:
    for statement in block.statements:
        _render_statement(statement, lines, depth)


def _render_statement(statement: ast.Stmt, lines: List[str], depth: int) -> None:
    pad = _INDENT * depth
    if isinstance(statement, ast.Assign):
        lines.append(f"{pad}{statement.target} = {statement.value.text()};")
    elif isinstance(statement, ast.If):
        lines.append(f"{pad}if ({statement.cond.text()}) {{")
        _render_block_body(statement.then, lines, depth + 1)
        if statement.els is not None:
            lines.append(f"{pad}}} else {{")
            _render_block_body(statement.els, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(statement, ast.While):
        lines.append(f"{pad}while ({statement.cond.text()}) {{")
        _render_block_body(statement.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(statement, ast.Repeat):
        lines.append(f"{pad}repeat {{")
        _render_block_body(statement.body, lines, depth + 1)
        lines.append(f"{pad}}} until ({statement.cond.text()});")
    elif isinstance(statement, ast.For):
        lines.append(
            f"{pad}for ({statement.var} = {statement.lo.text()} to {statement.hi.text()}) {{"
        )
        _render_block_body(statement.body, lines, depth + 1)
        lines.append(f"{pad}}}")
    elif isinstance(statement, ast.Switch):
        lines.append(f"{pad}switch ({statement.expr.text()}) {{")
        for value, block in statement.cases:
            lines.append(f"{pad}case {value}: {{")
            _render_block_body(block, lines, depth + 1)
            lines.append(f"{pad}}}")
        if statement.default is not None:
            lines.append(f"{pad}default: {{")
            _render_block_body(statement.default, lines, depth + 1)
            lines.append(f"{pad}}}")
        lines.append(f"{pad}}}")
    elif isinstance(statement, ast.Break):
        lines.append(f"{pad}break;")
    elif isinstance(statement, ast.Continue):
        lines.append(f"{pad}continue;")
    elif isinstance(statement, ast.Goto):
        lines.append(f"{pad}goto {statement.label};")
    elif isinstance(statement, ast.Label):
        lines.append(f"{pad}{statement.name}:")
    elif isinstance(statement, ast.Return):
        if statement.value is None:
            lines.append(f"{pad}return;")
        else:
            lines.append(f"{pad}return {statement.value.text()};")
    else:
        raise TypeError(f"unknown statement {statement!r}")
