"""MiniLang abstract syntax trees."""

from __future__ import annotations

from typing import Optional, Sequence, Set, Tuple


class Expr:
    """Base expression; knows the variables it reads."""

    __slots__ = ()

    def variables(self) -> Set[str]:
        return set()

    def text(self) -> str:
        raise NotImplementedError


class Num(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = value

    def text(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:
        return f"Num({self.value})"


class Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def variables(self) -> Set[str]:
        return {self.name}

    def text(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name})"


class BinOp(Expr):
    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        self.op = op
        self.left = left
        self.right = right

    def variables(self) -> Set[str]:
        return self.left.variables() | self.right.variables()

    def text(self) -> str:
        return f"({self.left.text()} {self.op} {self.right.text()})"

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"


class Call(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr]):
        self.name = name
        self.args = list(args)

    def variables(self) -> Set[str]:
        out: Set[str] = set()
        for arg in self.args:
            out |= arg.variables()
        return out

    def text(self) -> str:
        return f"{self.name}({', '.join(a.text() for a in self.args)})"

    def __repr__(self) -> str:
        return f"Call({self.name!r}, {self.args!r})"


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------

class Stmt:
    __slots__ = ()


class Assign(Stmt):
    __slots__ = ("target", "value")

    def __init__(self, target: str, value: Expr):
        self.target = target
        self.value = value

    def __repr__(self) -> str:
        return f"Assign({self.target!r}, {self.value!r})"


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Stmt]):
        self.statements = list(statements)

    def __repr__(self) -> str:
        return f"Block({self.statements!r})"


class If(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond: Expr, then: Block, els: Optional[Block] = None):
        self.cond = cond
        self.then = then
        self.els = els

    def __repr__(self) -> str:
        return f"If({self.cond!r}, {self.then!r}, {self.els!r})"


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Block):
        self.cond = cond
        self.body = body

    def __repr__(self) -> str:
        return f"While({self.cond!r}, {self.body!r})"


class Repeat(Stmt):
    """``repeat { body } until (cond);`` -- body executes at least once."""

    __slots__ = ("body", "cond")

    def __init__(self, body: Block, cond: Expr):
        self.body = body
        self.cond = cond

    def __repr__(self) -> str:
        return f"Repeat({self.body!r}, {self.cond!r})"


class For(Stmt):
    """``for (v = lo to hi) { body }`` -- counted loop."""

    __slots__ = ("var", "lo", "hi", "body")

    def __init__(self, var: str, lo: Expr, hi: Expr, body: Block):
        self.var = var
        self.lo = lo
        self.hi = hi
        self.body = body

    def __repr__(self) -> str:
        return f"For({self.var!r}, {self.lo!r}, {self.hi!r}, {self.body!r})"


class Switch(Stmt):
    """``switch (expr) { case k: block ... default: block }``."""

    __slots__ = ("expr", "cases", "default")

    def __init__(self, expr: Expr, cases: Sequence[Tuple[int, Block]], default: Optional[Block]):
        self.expr = expr
        self.cases = list(cases)
        self.default = default

    def __repr__(self) -> str:
        return f"Switch({self.expr!r}, {self.cases!r}, {self.default!r})"


class Break(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Break()"


class Continue(Stmt):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Continue()"


class Goto(Stmt):
    __slots__ = ("label",)

    def __init__(self, label: str):
        self.label = label

    def __repr__(self) -> str:
        return f"Goto({self.label!r})"


class Label(Stmt):
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:
        return f"Label({self.name!r})"


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr] = None):
        self.value = value

    def __repr__(self) -> str:
        return f"Return({self.value!r})"


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------

class Procedure:
    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: Sequence[str], body: Block):
        self.name = name
        self.params = list(params)
        self.body = body

    def __repr__(self) -> str:
        return f"Procedure({self.name!r}, {self.params!r})"


def substitute(expr: Expr, mapping) -> Expr:
    """A copy of ``expr`` with variable names replaced per ``mapping``.

    Unmapped variables are kept; used by SSA renaming to keep the
    structured right-hand sides consistent with the versioned names.
    """
    if isinstance(expr, Var):
        return Var(mapping.get(expr.name, expr.name))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, substitute(expr.left, mapping), substitute(expr.right, mapping))
    if isinstance(expr, Call):
        return Call(expr.name, [substitute(arg, mapping) for arg in expr.args])
    return expr  # Num and other leaves are immutable


class Program:
    __slots__ = ("procedures",)

    def __init__(self, procedures: Sequence[Procedure]):
        self.procedures = list(procedures)

    def __repr__(self) -> str:
        return f"Program({[p.name for p in self.procedures]!r})"
