"""MiniLang lexer: a hand-rolled scanner producing a token stream."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

KEYWORDS = {
    "proc",
    "if",
    "else",
    "while",
    "repeat",
    "until",
    "for",
    "to",
    "switch",
    "case",
    "default",
    "break",
    "continue",
    "goto",
    "return",
}

TWO_CHAR_OPS = {"==", "!=", "<=", ">=", "&&", "||"}
ONE_CHAR_OPS = set("+-*/%<>=!(){}:;,")


class LexError(ValueError):
    """Raised on malformed input, with line/column context."""


class Token(NamedTuple):
    kind: str  # "kw", "ident", "num", "op", "eof"
    value: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.kind}:{self.value}@{self.line}:{self.col}"


def tokenize(source: str) -> List[Token]:
    """Tokenize MiniLang source; always ends with an ``eof`` token."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    col = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":  # comment to end of line
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            word = source[start:i]
            kind = "kw" if word in KEYWORDS else "ident"
            yield Token(kind, word, line, col)
            col += i - start
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            yield Token("num", source[start:i], line, col)
            col += i - start
            continue
        two = source[i : i + 2]
        if two in TWO_CHAR_OPS:
            yield Token("op", two, line, col)
            i += 2
            col += 2
            continue
        if ch in ONE_CHAR_OPS:
            yield Token("op", ch, line, col)
            i += 1
            col += 1
            continue
        raise LexError(f"unexpected character {ch!r} at line {line}, column {col}")
    yield Token("eof", "", line, col)
