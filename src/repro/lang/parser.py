"""MiniLang recursive-descent parser.

Grammar (EBNF)::

    program   := procedure*
    procedure := 'proc' IDENT '(' [IDENT (',' IDENT)*] ')' block
    block     := '{' statement* '}'
    statement := IDENT '=' expr ';'
               | IDENT ':'                         (label)
               | 'if' '(' expr ')' block ['else' (block | if-stmt)]
               | 'while' '(' expr ')' block
               | 'repeat' block 'until' '(' expr ')' ';'
               | 'for' '(' IDENT '=' expr 'to' expr ')' block
               | 'switch' '(' expr ')' '{' case* ['default' ':' block] '}'
               | 'break' ';' | 'continue' ';'
               | 'goto' IDENT ';' | 'return' [expr] ';'
    case      := 'case' NUM ':' block
    expr      := precedence-climbing over || && == != < <= > >= + - * / %
    primary   := NUM | IDENT | IDENT '(' [expr (',' expr)*] ')'
               | '(' expr ')' | '-' primary | '!' primary

Unary ``-e`` and ``!e`` are desugared to ``0 - e`` and ``e == 0``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.lang.astnodes import (
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    Expr,
    For,
    Goto,
    If,
    Label,
    Num,
    Procedure,
    Program,
    Repeat,
    Return,
    Stmt,
    Switch,
    Var,
    While,
)
from repro.lang.lexer import Token, tokenize

_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}


class ParseError(ValueError):
    """Raised on syntax errors, with token context."""


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value if value is not None else kind
            raise ParseError(
                f"expected {want!r} but found {token.value!r} "
                f"at line {token.line}, column {token.col}"
            )
        return self.advance()

    def at(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    # -- grammar productions --------------------------------------------
    def program(self) -> Program:
        procedures = []
        while not self.at("eof"):
            procedures.append(self.procedure())
        return Program(procedures)

    def procedure(self) -> Procedure:
        self.expect("kw", "proc")
        name = self.expect("ident").value
        self.expect("op", "(")
        params: List[str] = []
        if not self.at("op", ")"):
            params.append(self.expect("ident").value)
            while self.at("op", ","):
                self.advance()
                params.append(self.expect("ident").value)
        self.expect("op", ")")
        return Procedure(name, params, self.block())

    def block(self) -> Block:
        self.expect("op", "{")
        statements: List[Stmt] = []
        while not self.at("op", "}"):
            statements.append(self.statement())
        self.expect("op", "}")
        return Block(statements)

    def statement(self) -> Stmt:
        if self.at("kw", "if"):
            return self.if_statement()
        if self.at("kw", "while"):
            self.advance()
            self.expect("op", "(")
            cond = self.expression()
            self.expect("op", ")")
            return While(cond, self.block())
        if self.at("kw", "repeat"):
            self.advance()
            body = self.block()
            self.expect("kw", "until")
            self.expect("op", "(")
            cond = self.expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return Repeat(body, cond)
        if self.at("kw", "for"):
            self.advance()
            self.expect("op", "(")
            var = self.expect("ident").value
            self.expect("op", "=")
            lo = self.expression()
            self.expect("kw", "to")
            hi = self.expression()
            self.expect("op", ")")
            return For(var, lo, hi, self.block())
        if self.at("kw", "switch"):
            return self.switch_statement()
        if self.at("kw", "break"):
            self.advance()
            self.expect("op", ";")
            return Break()
        if self.at("kw", "continue"):
            self.advance()
            self.expect("op", ";")
            return Continue()
        if self.at("kw", "goto"):
            self.advance()
            label = self.expect("ident").value
            self.expect("op", ";")
            return Goto(label)
        if self.at("kw", "return"):
            self.advance()
            value = None if self.at("op", ";") else self.expression()
            self.expect("op", ";")
            return Return(value)
        if self.at("ident") and self.peek(1).kind == "op" and self.peek(1).value == ":":
            name = self.advance().value
            self.advance()  # ':'
            return Label(name)
        if self.at("ident"):
            target = self.advance().value
            self.expect("op", "=")
            value = self.expression()
            self.expect("op", ";")
            return Assign(target, value)
        token = self.peek()
        raise ParseError(
            f"unexpected token {token.value!r} at line {token.line}, column {token.col}"
        )

    def if_statement(self) -> If:
        self.expect("kw", "if")
        self.expect("op", "(")
        cond = self.expression()
        self.expect("op", ")")
        then = self.block()
        els: Optional[Block] = None
        if self.at("kw", "else"):
            self.advance()
            if self.at("kw", "if"):
                els = Block([self.if_statement()])
            else:
                els = self.block()
        return If(cond, then, els)

    def switch_statement(self) -> Switch:
        self.expect("kw", "switch")
        self.expect("op", "(")
        expr = self.expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[Tuple[int, Block]] = []
        default: Optional[Block] = None
        while not self.at("op", "}"):
            if self.at("kw", "case"):
                self.advance()
                value = int(self.expect("num").value)
                self.expect("op", ":")
                cases.append((value, self.block()))
            elif self.at("kw", "default"):
                self.advance()
                self.expect("op", ":")
                default = self.block()
            else:
                token = self.peek()
                raise ParseError(
                    f"expected 'case' or 'default' at line {token.line}, column {token.col}"
                )
        self.expect("op", "}")
        return Switch(expr, cases, default)

    # -- expressions -----------------------------------------------------
    def expression(self, min_precedence: int = 1) -> Expr:
        left = self.primary()
        while True:
            token = self.peek()
            if token.kind != "op":
                break
            precedence = _PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                break
            self.advance()
            right = self.expression(precedence + 1)
            left = BinOp(token.value, left, right)
        return left

    def primary(self) -> Expr:
        token = self.peek()
        if token.kind == "num":
            self.advance()
            return Num(int(token.value))
        if token.kind == "ident":
            self.advance()
            if self.at("op", "("):
                self.advance()
                args: List[Expr] = []
                if not self.at("op", ")"):
                    args.append(self.expression())
                    while self.at("op", ","):
                        self.advance()
                        args.append(self.expression())
                self.expect("op", ")")
                return Call(token.value, args)
            return Var(token.value)
        if token.kind == "op" and token.value == "(":
            self.advance()
            inner = self.expression()
            self.expect("op", ")")
            return inner
        if token.kind == "op" and token.value == "-":
            self.advance()
            return BinOp("-", Num(0), self.primary())
        if token.kind == "op" and token.value == "!":
            self.advance()
            return BinOp("==", self.primary(), Num(0))
        raise ParseError(
            f"unexpected token {token.value!r} in expression "
            f"at line {token.line}, column {token.col}"
        )


def parse_program(source: str) -> Program:
    """Parse MiniLang source into a :class:`Program`."""
    parser = _Parser(tokenize(source))
    program = parser.program()
    return program


def parse_procedure(source: str) -> Procedure:
    """Parse a single procedure (convenience for tests and examples)."""
    program = parse_program(source)
    if len(program.procedures) != 1:
        raise ParseError(f"expected exactly one procedure, found {len(program.procedures)}")
    return program.procedures[0]
