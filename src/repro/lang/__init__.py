"""MiniLang: the imperative front end standing in for the paper's FORTRAN.

The paper's empirical section is driven by 254 FORTRAN procedures parsed
with a Sigma front end; this package replaces that pipeline with a small
imperative language featuring the same control-flow vocabulary -- nested
``if``/``while``/``repeat``/``for``/``switch``, plus ``break``, ``continue``
and unstructured ``goto`` -- so both structured and irreducible CFGs arise.

Pipeline: source text -> :mod:`lexer` -> :mod:`parser` (AST in
:mod:`astnodes`) -> :mod:`lower` (block-level CFG + statement IR as a
:class:`repro.ir.LoweredProcedure`).
"""

from repro.lang.astnodes import (
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Continue,
    For,
    Goto,
    If,
    Label,
    Num,
    Procedure,
    Program,
    Repeat,
    Return,
    Switch,
    Var,
    While,
)
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse_procedure, parse_program
from repro.lang.lower import lower_procedure, lower_program
from repro.lang.pretty import pretty_program

__all__ = [
    "Assign",
    "BinOp",
    "Block",
    "Break",
    "Call",
    "Continue",
    "For",
    "Goto",
    "If",
    "Label",
    "Num",
    "Procedure",
    "Program",
    "Repeat",
    "Return",
    "Switch",
    "Var",
    "While",
    "LexError",
    "Token",
    "tokenize",
    "ParseError",
    "parse_procedure",
    "parse_program",
    "lower_procedure",
    "lower_program",
    "pretty_program",
]
