"""Resilient execution of the paper's analyses.

The fast algorithms earn their O(E) bound through delicate invariants
(bracket lists, compact names, the capping rule); this package makes the
library safe to run as a service on adversarial inputs by pairing them with
runtime protection:

* :mod:`repro.resilience.guards` -- cooperative deadline/step-budget
  checkpoints (:class:`~repro.resilience.guards.Ticker`) wired into the
  long-running loops of the core algorithms;
* :mod:`repro.resilience.engine` -- :func:`~repro.resilience.engine.run_analysis`,
  a guarded orchestrator that validates fast-path results against cheap
  postconditions and degrades to the slow reference implementations instead
  of crashing or returning a wrong answer;
* :mod:`repro.resilience.faults` -- deterministic, seeded fault injection
  used to prove that detection and fallback actually fire;
* :mod:`repro.resilience.batch` -- corpus runs with per-item isolation,
  retries with backoff, and JSONL checkpoint/resume.

See ``docs/ROBUSTNESS.md`` for the full design.
"""

from repro.errors import (
    AnalysisError,
    BudgetExceeded,
    DeadlineExceeded,
    PostconditionError,
    ReproError,
    ResourceExhausted,
)
from repro.resilience.guards import Ticker

# engine/faults/batch import the algorithm modules, and the algorithm
# modules import repro.resilience.guards (which initializes this package) --
# so these re-exports must be lazy (PEP 562) to avoid a circular import.
_LAZY = {
    "AnalysisResult": "repro.resilience.engine",
    "Attempt": "repro.resilience.engine",
    "Diagnostic": "repro.resilience.engine",
    "run_analysis": "repro.resilience.engine",
    "ALL_SITES": "repro.resilience.faults",
    "FaultPlan": "repro.resilience.faults",
    "FaultSite": "repro.resilience.faults",
    "inject": "repro.resilience.faults",
    "BatchItemResult": "repro.resilience.batch",
    "BatchReport": "repro.resilience.batch",
    "run_batch": "repro.resilience.batch",
}

# Names promoted to the canonical top-level surface; this package-attribute
# spelling still works but is deprecated.
_DEPRECATED = ("run_analysis", "run_batch")


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name in _DEPRECATED:
        import warnings

        warnings.warn(
            f"importing {name} from repro.resilience is deprecated; "
            f"use `from repro import {name}` instead",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "ALL_SITES",
    "AnalysisError",
    "AnalysisResult",
    "Attempt",
    "BatchItemResult",
    "BatchReport",
    "BudgetExceeded",
    "DeadlineExceeded",
    "Diagnostic",
    "FaultPlan",
    "FaultSite",
    "PostconditionError",
    "ReproError",
    "ResourceExhausted",
    "Ticker",
    "inject",
    "run_analysis",
    "run_batch",
]
