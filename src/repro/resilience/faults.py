"""Deterministic, seeded fault injection for the fast algorithms.

The resilience engine's whole value proposition -- "a corrupted fast path is
detected and recovered" -- is unfalsifiable without a way to *corrupt the
fast path on demand*.  This module provides named fault sites compiled into
the algorithms themselves (guarded by a module-global hook that is ``None``
in production, so the cost when disabled is one global load per site
execution):

======================================  =======================================
``bracketlist/push-bottom``             :meth:`BracketList.push` appends at the
                                        bottom instead of the top, silently
                                        corrupting the §3.5 stack order the
                                        compact ``<top, size>`` naming needs.
``cycle-equiv/skip-cap``                Figure 4's capping-bracket creation is
                                        skipped, merging bracket sets that the
                                        cap should have kept distinct.
``lengauer-tarjan/semi-skew``           A computed semidominator is decremented
                                        by one, yielding a structurally valid
                                        but wrong dominator tree.
``incremental/skip-splice``             A regional PST splice aborts with
                                        :class:`~repro.incremental.splice.RegionEscape`,
                                        exercising the edit session's
                                        degrade-to-full-recompute ladder.
======================================  =======================================

A :class:`FaultPlan` decides *which* eligible site executions actually fire:
deterministically from ``(seed, site name, occurrence index)``, so a failing
configuration is reproducible from three numbers.  ``max_fires`` arms a site
for a bounded number of firings -- ``max_fires=1`` models a transient fault
(a fast-path *retry* succeeds), ``max_fires=None`` a persistent one (only
the slow-path fallback recovers).

Plans are installed process-globally (the hooks are module globals); use the
:func:`inject` context manager so they are always uninstalled, and do not
run injected and clean computations concurrently in threads.
"""

from __future__ import annotations

import importlib
import random
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.obs import observer as _obs

# Resolved via importlib: the packages re-export same-named *functions*
# (e.g. repro.dominance.lengauer_tarjan), which would shadow the submodule
# attribute under a plain `from ... import ...`.
_bracketlist_mod = importlib.import_module("repro.core.bracketlist")
_cycle_equiv_mod = importlib.import_module("repro.core.cycle_equiv")
_lengauer_tarjan_mod = importlib.import_module("repro.dominance.lengauer_tarjan")
# The CSR kernels carry the same fault sites under the same names, so a plan
# corrupts the production (kernel) path and the object reference alike.
_kernel_cycle_equiv_mod = importlib.import_module("repro.kernel.cycle_equiv")
_kernel_dominance_mod = importlib.import_module("repro.kernel.dominance")
_incremental_splice_mod = importlib.import_module("repro.incremental.splice")


@dataclass(frozen=True)
class FaultSite:
    """A named code location that can be armed to misbehave."""

    name: str
    module: str
    description: str


ALL_SITES: Tuple[FaultSite, ...] = (
    FaultSite(
        name="bracketlist/push-bottom",
        module="repro.core.bracketlist",
        description="push appends at the bottom of the list instead of the top",
    ),
    FaultSite(
        name="cycle-equiv/skip-cap",
        module="repro.core.cycle_equiv",
        description="the Figure 4 capping bracket is not created",
    ),
    FaultSite(
        name="lengauer-tarjan/semi-skew",
        module="repro.dominance.lengauer_tarjan",
        description="a semidominator number is decremented by one",
    ),
    FaultSite(
        name="incremental/skip-splice",
        module="repro.incremental.splice",
        description="a regional PST splice aborts with RegionEscape",
    ),
)

SITES_BY_NAME: Dict[str, FaultSite] = {site.name: site for site in ALL_SITES}

# The modules carrying a `_FAULTS` hook, keyed so install() can reach them.
_HOOKED_MODULES = (
    _bracketlist_mod,
    _cycle_equiv_mod,
    _lengauer_tarjan_mod,
    _kernel_cycle_equiv_mod,
    _kernel_dominance_mod,
    _incremental_splice_mod,
)


class FaultPlan:
    """A deterministic schedule of fault firings.

    ``sites`` selects the armed site names (default: all).  ``rate`` is the
    per-execution firing probability, drawn from a stream seeded by
    ``(seed, site name)`` -- with the default ``rate=1.0`` no randomness is
    consulted and every eligible execution fires.  ``max_fires`` caps the
    number of firings per site (``None`` = unlimited); ``skip_first`` lets
    the first ``n`` eligible executions pass untouched so faults can be
    buried deep in a run.
    """

    def __init__(
        self,
        sites: Optional[Sequence[str]] = None,
        seed: int = 0,
        rate: float = 1.0,
        max_fires: Optional[int] = None,
        skip_first: int = 0,
    ):
        names = list(sites) if sites is not None else [s.name for s in ALL_SITES]
        unknown = [name for name in names if name not in SITES_BY_NAME]
        if unknown:
            raise ValueError(f"unknown fault site(s): {', '.join(unknown)}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self.sites = tuple(names)
        self.seed = seed
        self.rate = rate
        self.max_fires = max_fires
        self.skip_first = skip_first
        self.calls: Dict[str, int] = {name: 0 for name in names}
        self.fires: Dict[str, int] = {name: 0 for name in names}
        self._rngs: Dict[str, random.Random] = {
            # String hashing is randomized per process, so derive the
            # per-site seed with crc32 to stay deterministic across runs.
            name: random.Random(seed ^ zlib.crc32(name.encode("utf-8")))
            for name in names
        }

    def should_fire(self, site: str) -> bool:
        """Called from the instrumented code at each eligible execution."""
        calls = self.calls.get(site)
        if calls is None:
            return False  # site not armed by this plan
        self.calls[site] = calls + 1
        if calls < self.skip_first:
            return False
        if self.max_fires is not None and self.fires[site] >= self.max_fires:
            return False
        if self.rate < 1.0 and self._rngs[site].random() >= self.rate:
            return False
        self.fires[site] += 1
        o = _obs._CURRENT
        if o is not None:
            o.count("faults.fired", site=site)
        return True

    def total_fires(self) -> int:
        return sum(self.fires.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(sites={list(self.sites)!r}, seed={self.seed}, "
            f"rate={self.rate}, max_fires={self.max_fires!r}, fires={self.fires!r})"
        )


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, if any."""
    for module in _HOOKED_MODULES:
        if module._FAULTS is not None:
            return module._FAULTS
    return None


def install(plan: FaultPlan) -> None:
    """Install ``plan`` into every hooked module (replacing any prior plan)."""
    for module in _HOOKED_MODULES:
        module._FAULTS = plan


def uninstall() -> None:
    """Clear the hooks; production behaviour is restored."""
    for module in _HOOKED_MODULES:
        module._FAULTS = None


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of a ``with`` block."""
    previous = active_plan()
    install(plan)
    try:
        yield plan
    finally:
        if previous is not None:
            install(previous)
        else:
            uninstall()
