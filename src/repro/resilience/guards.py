"""Cooperative deadline and step-budget checkpoints.

A :class:`Ticker` is threaded through the long loops of the core algorithms
(:func:`repro.core.cycle_equiv.cycle_equivalence_scc`,
:func:`repro.dominance.lengauer_tarjan.lengauer_tarjan`,
:func:`repro.dominance.iterative.immediate_dominators`,
:func:`repro.dataflow.iterative.solve_iterative`); the loops charge one step
per unit of work, and the ticker raises
:class:`~repro.errors.DeadlineExceeded` or
:class:`~repro.errors.BudgetExceeded` once its bound is hit.  Loops whose
trip count is known and linear in the input (the phases of cycle
equivalence and Lengauer-Tarjan, the sweeps of the iterative dominator
fixpoint) bill in one bulk ``tick(n)`` at the phase boundary; only loops
whose iteration count is the very thing being bounded (the data-flow
worklist) pay per-iteration accounting, batched via :data:`TICK_CHUNK`.

Design constraints:

* **Cheap.**  ``tick()`` is two attribute operations and a comparison; the
  clock is only consulted every ``check_every`` ticks, so guard overhead on
  the fast path stays under a few percent
  (``benchmarks/bench_guard_overhead.py`` measures it).
* **Opt-in.**  Every wired algorithm takes ``ticker=None`` and hoists the
  ``None`` check out of its loops, so unguarded calls pay nothing.
* **Prompt at the boundary.**  The next checkpoint is clamped to the step
  budget, so a budget of ``n`` allows exactly ``n`` ticks regardless of
  ``check_every``; deadlines are detected within ``check_every`` ticks.

Tickers are single-use and not thread-safe: create one per guarded
computation (the engine creates one per attempt).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import BudgetExceeded, DeadlineExceeded

__all__ = ["TICK_CHUNK", "Ticker", "BudgetExceeded", "DeadlineExceeded"]

_UNBOUNDED = float("inf")

#: How many loop iterations a per-iteration-billed loop (the data-flow
#: worklist) accumulates locally before charging the ticker in one
#: ``tick(TICK_CHUNK)`` call.  A bound Python method call per iteration
#: costs ~10% on tight loops; a local integer increment plus this bulk call
#: keeps the overhead under the documented 5% while leaving step accounting
#: exact and detection latency at ``TICK_CHUNK + check_every`` steps.
TICK_CHUNK = 64


class Ticker:
    """A cooperative checkpoint counter with optional deadline and budget.

    ``deadline`` is in wall-clock seconds from construction; ``step_budget``
    is the number of ``tick()`` steps allowed.  Either may be ``None``
    (unbounded).  ``check_every`` sets how many ticks may elapse between
    clock reads; tests pass ``clock=`` to make deadline behaviour
    deterministic.
    """

    __slots__ = (
        "deadline",
        "step_budget",
        "check_every",
        "steps",
        "started",
        "profile",
        "_clock",
        "_deadline_at",
        "_next_check",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        step_budget: Optional[int] = None,
        check_every: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ):
        if check_every < 1:
            raise ValueError("check_every must be at least 1")
        if step_budget is not None and step_budget < 0:
            raise ValueError("step_budget must be non-negative")
        self.deadline = deadline
        self.step_budget = step_budget
        self.check_every = check_every
        self.steps = 0
        self.profile: Optional[list] = None
        self._clock = clock
        self.started = clock()
        self._deadline_at = _UNBOUNDED if deadline is None else self.started + deadline
        self._next_check = check_every
        if step_budget is not None and step_budget < self._next_check:
            self._next_check = step_budget

    def tick(self, n: int = 1) -> None:
        """Record ``n`` units of work; raise if a bound has been exceeded."""
        steps = self.steps = self.steps + n
        if steps >= self._next_check:
            self._checkpoint(steps)

    def elapsed(self) -> float:
        """Wall-clock seconds since the ticker was armed."""
        return self._clock() - self.started

    def remaining_budget(self) -> float:
        """Steps left before :class:`BudgetExceeded` (inf if unbounded)."""
        if self.step_budget is None:
            return _UNBOUNDED
        return max(0, self.step_budget - self.steps)

    def remaining_deadline(self) -> float:
        """Seconds left before :class:`DeadlineExceeded` (inf if unbounded)."""
        if self.deadline is None:
            return _UNBOUNDED
        return self._deadline_at - self._clock()

    def check(self) -> None:
        """Force a bound check now, regardless of ``check_every``."""
        self._checkpoint(self.steps)

    def mark(self, name: str) -> None:
        """Profiling hook at a phase boundary (the bulk-``tick`` points).

        A no-op unless a profile collector has been armed (``ticker.profile
        = []``, done by the resilience engine when
        :class:`~repro.config.AnalysisConfig` asks for profiling): then the
        phase name, cumulative step count, and elapsed seconds are
        appended.  Consumers diff consecutive entries to get per-phase
        costs.  The disabled cost is one attribute load and a ``None``
        test, well inside the guard budget.
        """
        profile = self.profile
        if profile is not None:
            profile.append(
                {
                    "phase": name,
                    "steps": self.steps,
                    "elapsed": round(self._clock() - self.started, 9),
                }
            )

    # ------------------------------------------------------------------
    def _checkpoint(self, steps: int) -> None:
        budget = self.step_budget
        if budget is not None and steps > budget:
            raise BudgetExceeded(
                f"step budget of {budget} exceeded after {steps} steps",
                steps=steps,
                elapsed=self.elapsed(),
                limit=budget,
            )
        if self._deadline_at is not _UNBOUNDED:
            now = self._clock()
            if now > self._deadline_at:
                raise DeadlineExceeded(
                    f"deadline of {self.deadline:.6g}s exceeded after "
                    f"{now - self.started:.6g}s ({steps} steps)",
                    steps=steps,
                    elapsed=now - self.started,
                    limit=self.deadline,
                )
        # Arm the next checkpoint, clamped so the budget boundary is exact.
        nxt = steps + self.check_every
        if budget is not None and budget < nxt:
            nxt = budget if budget > steps else steps + 1
        self._next_check = nxt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ticker(steps={self.steps}, deadline={self.deadline!r}, "
            f"step_budget={self.step_budget!r})"
        )
