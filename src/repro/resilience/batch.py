"""Resilient corpus runs: per-item isolation, retries, checkpoint/resume.

:func:`run_batch` drives :func:`repro.resilience.engine.run_analysis` over a
corpus of named CFGs the way a nightly analysis job must run: one item's
failure (or crash, or guard trip) never takes down the batch; failed items
are retried with exponential backoff; every completed item is appended to a
JSONL checkpoint so an interrupted run resumes where it left off instead of
recomputing; and the report summarizes partial results honestly (done /
degraded / failed / skipped-from-checkpoint).

Checkpoint format -- one JSON object per line, append-only::

    {"key": "corpus.mini::main", "status": "ok", "elapsed": 0.0012,
     "paths": {"pst": "fast", ...}, "tries": 1, "error": null}

``status`` is ``ok`` (all stages verified, fast paths), ``degraded`` (all
stages verified, but a fallback or retry was needed), ``failed`` (the engine
reported an error: invalid input, exhausted ladder, deadline), or ``error``
(the item itself could not be produced/run -- isolation caught a crash).
A resumed run skips every key already present in the checkpoint, whatever
its status; delete the line (or the file) to force recomputation.

Fresh checkpoints start with a ``{"type": "checkpoint", "version": 1}``
header line.  Resuming tolerates anything this reader understands --
headerless legacy files and same-or-older versions -- and raises
:class:`~repro.errors.CheckpointError` (exit code 2, usage/IO) on a
*newer* version, because silently skipping records a future writer meant
differently could re-run (and double-bill) completed work.  Torn final
lines (an interrupted append) and duplicate keys (an append after a torn
resume) are expected states, not errors: bad lines are skipped, later
duplicates win.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.cfg.graph import CFG
from repro.config import AnalysisConfig, _UNSET, coalesce_config
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.resilience.engine import AnalysisResult, run_analysis

#: statuses that count as a successfully analyzed item
SUCCESS_STATUSES = ("ok", "degraded")


class BatchSerialFallback(UserWarning):
    """``run_batch`` ran serially despite ``workers > 1``.

    Carries the machine-readable ``reasons`` tuple so callers can branch on
    *why* (custom engine, fault plan, custom sleep/clock) instead of
    parsing the message.  Observers are deliberately absent from the list:
    since the cross-process shard protocol they parallelize fine.
    """

    def __init__(self, workers: int, reasons: Iterable[str]):
        self.workers = workers
        self.reasons = tuple(reasons)
        super().__init__(
            f"run_batch: workers={workers} requested but running serially: "
            + ", ".join(self.reasons)
        )


class BatchPickleFallback(UserWarning):
    """A parallel ``run_batch`` shipped items by pickling, not shared memory.

    Still parallel -- only the transport degraded.  Emitted once per batch
    when ``config.shared_batch_memory`` asked for the zero-copy path but
    the platform (or ``REPRO_NO_SHM``) cannot provide it; carries the
    machine-readable ``reason`` so callers can branch without parsing.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(
            "run_batch: shared-memory transport unavailable "
            f"({reason}); falling back to pickled snapshots"
        )


def serial_fallback_reasons(
    config: AnalysisConfig,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> List[str]:
    """Why this batch cannot use the process pool (empty = it can).

    Custom engines and sleep/clock callables are arbitrary closures and a
    fault plan's injected state must stay observable in-process; none of
    them survive pickling to a worker.  Observers and profiling are *not*
    reasons: workers record into fresh shards rebuilt from
    :meth:`~repro.obs.observer.Observer.spec` and the parent merges the
    snapshots back.
    """
    reasons: List[str] = []
    if config.engine is not None:
        reasons.append("custom engine callable")
    if config.faults is not None:
        reasons.append("fault injection plan")
    if sleep is not time.sleep:
        reasons.append("custom sleep callable")
    if clock is not time.monotonic:
        reasons.append("custom clock callable")
    return reasons


@dataclass
class BatchItemResult:
    """Outcome of one corpus item (possibly restored from a checkpoint)."""

    key: str
    status: str  # "ok" | "degraded" | "failed" | "error"
    elapsed: float = 0.0
    tries: int = 1
    paths: Dict[str, str] = field(default_factory=dict)
    error: Optional[str] = None
    resumed: bool = False  # restored from the checkpoint, not recomputed

    def to_json(self) -> str:
        return json.dumps(
            {
                "key": self.key,
                "status": self.status,
                "elapsed": round(self.elapsed, 6),
                "tries": self.tries,
                "paths": self.paths,
                "error": self.error,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "BatchItemResult":
        data = json.loads(line)
        return cls(
            key=data["key"],
            status=data["status"],
            elapsed=float(data.get("elapsed", 0.0)),
            tries=int(data.get("tries", 1)),
            paths=dict(data.get("paths", {})),
            error=data.get("error"),
            resumed=True,
        )


@dataclass
class BatchReport:
    """Aggregate of a batch run, including checkpoint-restored items."""

    results: List[BatchItemResult] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return all(r.status in SUCCESS_STATUSES for r in self.results)

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for result in self.results:
            out[result.status] = out.get(result.status, 0) + 1
        return out

    def failures(self) -> List[BatchItemResult]:
        return [r for r in self.results if r.status not in SUCCESS_STATUSES]

    def render(self) -> str:
        counts = self.counts()
        resumed = sum(1 for r in self.results if r.resumed)
        parts = [f"{len(self.results)} item(s)"]
        for status in ("ok", "degraded", "failed", "error"):
            if counts.get(status):
                parts.append(f"{counts[status]} {status}")
        if resumed:
            parts.append(f"{resumed} resumed from checkpoint")
        lines = [f"batch: {', '.join(parts)} in {self.elapsed:.2f}s"]
        for result in self.results:
            if result.status in SUCCESS_STATUSES and result.status != "ok":
                lines.append(
                    f"  degraded {result.key}: paths {result.paths} "
                    f"(tries={result.tries})"
                )
        for result in self.failures():
            lines.append(
                f"  {result.status.upper()} {result.key}: {result.error} "
                f"(tries={result.tries})"
            )
        return "\n".join(lines)


#: Version this reader writes (and the newest it will resume from).
CHECKPOINT_VERSION = 1


def checkpoint_header() -> str:
    """The header line new checkpoint files start with."""
    return json.dumps(
        {"type": "checkpoint", "version": CHECKPOINT_VERSION}, sort_keys=True
    )


def load_checkpoint(path: str) -> Dict[str, BatchItemResult]:
    """Parse a JSONL checkpoint; later lines win; bad lines are skipped.

    Raises :class:`~repro.errors.CheckpointError` when the file declares a
    checkpoint version newer than :data:`CHECKPOINT_VERSION` -- a future
    format must refuse loudly, not resume wrongly.  Headerless files (the
    pre-versioning format) load as version 1.
    """
    from repro.errors import CheckpointError

    done: Dict[str, BatchItemResult] = {}
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn write from an interrupted run
                if isinstance(record, dict) and record.get("type") == "checkpoint":
                    try:
                        version = int(record.get("version", 1))
                    except (TypeError, ValueError):
                        raise CheckpointError(
                            f"{path}: unreadable checkpoint version "
                            f"{record.get('version')!r}"
                        ) from None
                    if version > CHECKPOINT_VERSION:
                        raise CheckpointError(
                            f"{path}: checkpoint version {version} is newer "
                            f"than this reader (max {CHECKPOINT_VERSION}); "
                            "refusing to resume",
                            version=version,
                        )
                    continue
                try:
                    result = BatchItemResult.from_json(line)
                except (ValueError, KeyError):
                    continue  # torn write from an interrupted run
                done[result.key] = result
    except FileNotFoundError:
        pass
    return done


def run_batch(
    items: Iterable[Tuple[str, Callable[[], CFG]]],
    *,
    checkpoint_path: Optional[str] = None,
    resume: bool = True,
    config: Optional[AnalysisConfig] = None,
    retries: object = _UNSET,
    backoff: object = _UNSET,
    backoff_factor: object = _UNSET,
    deadline: object = _UNSET,
    step_budget: object = _UNSET,
    workers: object = _UNSET,
    engine: object = _UNSET,
    on_item: Optional[Callable[[BatchItemResult], None]] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
) -> BatchReport:
    """Run the analysis engine over ``items`` with full isolation.

    ``items`` yields ``(key, thunk)`` pairs; the thunk produces the CFG so
    that even *loading* an item is inside the isolation boundary.  All
    tuning lives in ``config`` (an :class:`~repro.config.AnalysisConfig`):
    ``config.retries`` extra batch-level tries (with exponential backoff
    starting at ``config.backoff`` seconds) are spent on items whose status
    is ``failed`` or ``error`` -- this is on top of the engine's own
    internal ladder, and matters when failures come from the environment
    rather than the input.  The whole config (deadline, step budget, fast
    retries, observer, faults, ...) is forwarded to each engine call, and
    ``config.observer`` is additionally installed ambiently around the
    batch so per-item latency histograms and status counters accumulate in
    one place.  ``on_item`` observes each fresh (non-resumed) result as it
    completes.  The remaining keywords are deprecated aliases for the
    corresponding config fields.

    ``config.workers > 1`` fans the engine calls out over a process pool:
    thunks still run in this process (they are arbitrary closures), and
    each item is analyzed -- retries, backoff and all -- in a worker, so
    one item's crash cannot take down the batch or its siblings.  With
    ``config.shared_batch_memory`` (the default) on a platform offering
    ``multiprocessing.shared_memory``, the parent freezes each CFG once
    into a shared-memory CSR segment and ships only the few-dozen-byte
    handle; workers map the same read-only pages (see
    :mod:`repro.kernel.shm`).  Segments are parent-owned: each is unlinked
    when its future resolves (worker crashes included) and the batch
    sweeps any stragglers on exit.  When shared memory is unavailable (or
    ``REPRO_NO_SHM`` is set) the batch stays parallel but re-encodes each
    CFG as a plain pickled tuple, announced once via
    :class:`BatchPickleFallback`.  Results keep the submission order of
    ``items`` and the checkpoint is appended as futures complete, exactly
    as in serial mode.

    Observation survives the fan-out: the active observer never crosses
    the process boundary; instead each worker call rebuilds a fresh shard
    from :meth:`Observer.spec() <repro.obs.observer.Observer.spec>`,
    records the item's full span tree and metrics into it, and ships a
    :meth:`shard_snapshot <repro.obs.observer.Observer.shard_snapshot>`
    back with the result.  The parent absorbs each snapshot as its future
    completes -- spans re-parent under the batch's ``run_batch`` span
    (stamped with the worker pid and item key), counters sum, histograms
    merge bucket-by-bucket -- so a parallel run yields the same merged
    trace and totals a serial run would.

    Custom ``engine``/``sleep``/``clock`` callables and fault plans remain
    serial-only (arbitrary closures and in-process fault state cannot
    cross to a worker); supplying any of them with ``workers > 1`` emits a
    :class:`BatchSerialFallback` warning naming the reasons and runs the
    batch serially.
    """
    config = coalesce_config(
        config,
        "run_batch",
        {
            "retries": retries,
            "backoff": backoff,
            "backoff_factor": backoff_factor,
            "deadline": deadline,
            "step_budget": step_budget,
            "workers": workers,
            "engine": engine,
        },
    )
    started = clock()
    done = (
        load_checkpoint(checkpoint_path)
        if checkpoint_path is not None and resume
        else {}
    )
    reasons = serial_fallback_reasons(config, sleep, clock)
    parallel = config.workers > 1 and not reasons
    if config.workers > 1 and reasons:
        warnings.warn(BatchSerialFallback(config.workers, reasons), stacklevel=2)
    report = BatchReport()
    checkpoint = (
        open(checkpoint_path, "a" if resume else "w")
        if checkpoint_path is not None
        else None
    )
    if checkpoint is not None and checkpoint.tell() == 0:
        # Fresh (or truncated) file: stamp the format version first.
        checkpoint.write(checkpoint_header() + "\n")
        checkpoint.flush()
    try:
        with _obs.observe(config.observer) as o:
            if o is not None and config.workers > 1:
                for reason in reasons:
                    o.count("batch.serial_fallback", reason=reason)
            batch_span = (
                o.span("run_batch", workers=config.workers, parallel=parallel)
                if o is not None
                else None
            )
            try:
                if parallel:
                    _run_parallel(
                        items,
                        done,
                        report,
                        checkpoint,
                        on_item,
                        config=config,
                        observer=o,
                    )
                else:
                    for key, thunk in items:
                        prior = done.get(key)
                        if prior is not None:
                            report.results.append(prior)
                            continue
                        result = _run_item(
                            key,
                            thunk,
                            config=config,
                            sleep=sleep,
                            clock=clock,
                        )
                        report.results.append(result)
                        _record(result, checkpoint, on_item)
            finally:
                if batch_span is not None:
                    batch_span.set(items=len(report.results)).finish()
    finally:
        if checkpoint is not None:
            checkpoint.close()
    report.elapsed = clock() - started
    return report


def _record(result: BatchItemResult, checkpoint, on_item) -> None:
    """Checkpoint and observe one freshly computed result."""
    o = _obs._CURRENT
    if o is not None:
        o.count("batch.items", status=result.status)
        o.observe_value("batch.item_seconds", result.elapsed)
    if checkpoint is not None:
        checkpoint.write(result.to_json() + "\n")
        checkpoint.flush()
    if on_item is not None:
        try:
            on_item(result)
        except Exception:  # observers must not break the batch
            pass


def _run_parallel(
    items: Iterable[Tuple[str, Callable[[], CFG]]],
    done: Dict[str, BatchItemResult],
    report: BatchReport,
    checkpoint,
    on_item,
    *,
    config: AnalysisConfig,
    observer: Optional[Observer] = None,
) -> None:
    """Fan engine calls out over a process pool; fill ``report`` in order.

    When an observer is active, each submission carries its picklable
    :meth:`~repro.obs.observer.Observer.spec`; the worker records into a
    fresh shard and returns its snapshot, which is absorbed here -- in the
    completion loop, while the batch span is still open -- so the merged
    trace and metrics land in the parent observer incrementally.
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    from repro.kernel import shm as _shm

    use_shm = config.shared_batch_memory and _shm.shared_memory_available()
    if config.shared_batch_memory and not use_shm:
        reason = (
            "disabled by REPRO_NO_SHM"
            if os.environ.get("REPRO_NO_SHM")
            else "multiprocessing.shared_memory unavailable on this platform"
        )
        warnings.warn(BatchPickleFallback(reason), stacklevel=4)
        if observer is not None:
            observer.count("batch.pickle_fallback", reason=reason)
    spec = observer.spec() if observer is not None else None
    # config.observer cannot (and need not) cross the pool: the spec does.
    worker_config = (
        replace(config, observer=None) if config.observer is not None else config
    )
    # Slots keep submission order; each is a BatchItemResult once known.
    slots: List[Optional[BatchItemResult]] = []
    pending = {}  # future -> (slot index, key, segment name or None)
    # Segment refcounts: how many in-flight items map each segment.  A
    # sweep corpus (many keys over one graph) exports once and ships the
    # same handle per item, so release must wait for the *last* consumer;
    # the finally sweep covers whatever an interrupted batch leaves.
    live_segments: Dict[str, int] = {}
    # One export per distinct frozen snapshot for the whole batch
    # (keyed by snapshot identity; the snapshot is held to pin the id).
    export_cache: Dict[int, Tuple] = {}
    try:
        with ProcessPoolExecutor(max_workers=config.workers) as pool:
            for key, thunk in items:
                prior = done.get(key)
                if prior is not None:
                    slots.append(prior)
                    continue
                loaded = _load_item(
                    key,
                    thunk,
                    config.retries,
                    config.backoff,
                    config.backoff_factor,
                    use_shm=use_shm,
                    export_cache=export_cache,
                )
                if isinstance(loaded, BatchItemResult):  # thunk never produced a CFG
                    slots.append(loaded)
                    _record(loaded, checkpoint, on_item)
                    continue
                payload, load_tries, load_elapsed = loaded
                seg_name = payload[1][0] if payload[0] == "shm" else None
                if seg_name is not None:
                    live_segments[seg_name] = live_segments.get(seg_name, 0) + 1
                if observer is not None:
                    observer.count("batch.submit", transport=payload[0])
                index = len(slots)
                slots.append(None)
                try:
                    future = pool.submit(
                        _worker_run_item,
                        key,
                        payload,
                        worker_config,
                        load_tries,
                        load_elapsed,
                        spec,
                    )
                except Exception as error:
                    # A worker died hard enough to break the pool (SIGKILL,
                    # OOM): items not yet submitted still get honest error
                    # results instead of the whole batch raising.  Only this
                    # item's hold is dropped -- earlier in-flight items may
                    # map the same segment; the finally sweep unlinks it.
                    if seg_name is not None:
                        live_segments[seg_name] -= 1
                    result = BatchItemResult(
                        key=key,
                        status="error",
                        error=f"worker pool broken: {type(error).__name__}: {error}",
                    )
                    slots[index] = result
                    _record(result, checkpoint, on_item)
                    continue
                pending[future] = (index, key, seg_name)
            while pending:
                finished, _ = wait(list(pending), return_when=FIRST_COMPLETED)
                for future in finished:
                    index, item_key, seg_name = pending.pop(future)
                    if seg_name is not None:
                        # The item is done (or its worker died): the parent
                        # drops its hold either way -- the future resolving
                        # is the lifecycle signal, not worker goodwill.  The
                        # last consumer's resolution unlinks the segment.
                        live_segments[seg_name] -= 1
                        if live_segments[seg_name] <= 0:
                            del live_segments[seg_name]
                            _shm.release_segment(seg_name)
                    error = future.exception()
                    if error is not None:
                        # The worker process itself died (OOM, segfault, ...).
                        result = BatchItemResult(
                            key=item_key,
                            status="error",
                            error=f"worker crashed: {type(error).__name__}: {error}",
                        )
                    else:
                        data = future.result()
                        shard = data.pop("observer", None)
                        result = BatchItemResult(**data)
                        if observer is not None and shard is not None:
                            observer.absorb(shard, item=item_key)
                    slots[index] = result
                    _record(result, checkpoint, on_item)
    finally:
        for seg_name in list(live_segments):
            _shm.release_segment(seg_name)
    report.results.extend(r for r in slots if r is not None)


def _load_item(
    key: str,
    thunk: Callable[[], CFG],
    retries: int,
    backoff: float,
    backoff_factor: float,
    use_shm: bool = False,
    export_cache: Optional[Dict[int, Tuple]] = None,
):
    """Call ``thunk`` (with the batch retry policy) and package its CFG.

    Returns either ``(payload, tries, elapsed)`` on success or a finished
    ``error`` :class:`BatchItemResult` when every try raised -- loading
    happens in the parent (thunks are arbitrary closures), so its retries
    are spent here rather than in the worker.

    The payload is tagged: ``("shm", SegmentMeta)`` when ``use_shm`` and
    the export succeeds (the snapshot's CSR arrays land once in a
    parent-owned shared-memory segment; the worker attaches zero-copy), or
    ``("cfg", snapshot_tuple)`` -- the portable pickled path.  A failed
    export degrades that one item to pickling rather than failing it.

    ``export_cache`` dedups exports within one batch: items resolving to
    the same frozen snapshot (a sweep corpus re-analyzing one graph under
    many keys) ship the same segment handle instead of copying the arrays
    once per item.  Keyed by snapshot identity; the snapshot is held in
    the cache to keep its id stable for the life of the batch.
    """
    started = time.monotonic()
    pause = backoff
    last_error = "thunk produced no CFG"
    for attempt in range(retries + 1):
        if attempt > 0:
            time.sleep(pause)
            pause *= backoff_factor
        try:
            cfg = thunk()
            payload = None
            if use_shm and isinstance(cfg, CFG):
                from repro.kernel import shm as _shm
                from repro.kernel.registry import shared_frozen

                try:
                    frozen = shared_frozen(cfg)
                    cached = (
                        export_cache.get(id(frozen))
                        if export_cache is not None
                        else None
                    )
                    if cached is not None:
                        payload = ("shm", cached[0])
                    else:
                        meta = _shm.export_frozen(frozen)
                        if export_cache is not None:
                            export_cache[id(frozen)] = (meta, frozen)
                        payload = ("shm", meta)
                except Exception:
                    payload = None  # e.g. /dev/shm full: pickle this item
            if payload is None:
                payload = ("cfg", _encode_cfg(cfg))
            return payload, attempt + 1, time.monotonic() - started
        except Exception as error:
            last_error = f"{type(error).__name__}: {error}"
    return BatchItemResult(
        key=key,
        status="error",
        elapsed=time.monotonic() - started,
        tries=retries + 1,
        error=last_error,
    )


def _encode_cfg(cfg: CFG) -> Tuple[str, Any, Any, Tuple, Tuple]:
    """A picklable structural snapshot: (name, start, end, nodes, edges)."""
    return (
        cfg.name,
        cfg.start,
        cfg.end,
        tuple(cfg.nodes),
        tuple((e.source, e.target, e.label) for e in cfg.edges),
    )


def _decode_cfg(payload: Tuple[str, Any, Any, Tuple, Tuple]) -> CFG:
    """Rebuild a CFG from :func:`_encode_cfg` (same node/edge order)."""
    name, start, end, nodes, edges = payload
    cfg = CFG(name=name)
    for node in nodes:
        cfg.add_node(node)
    for source, target, label in edges:
        cfg.add_edge(source, target, label)
    cfg.start = start
    cfg.end = end
    return cfg


def _worker_run_item(
    key: str,
    payload: Tuple,
    config: AnalysisConfig,
    load_tries: int,
    load_elapsed: float,
    observer_spec: Optional[Dict[str, bool]] = None,
) -> Dict[str, Any]:
    """Process-pool entry point: materialize, run the ladder, return data.

    Must stay module-level (pickled by reference).  The config is picklable
    here by construction -- _run_parallel strips the observer (the spec
    travels instead) and run_batch forces the serial path for fault plans
    and custom engines.  ``payload`` is the tagged tuple from
    :func:`_load_item`: ``("cfg", ...)`` rebuilds the object graph from the
    pickled snapshot; ``("shm", meta)`` attaches the parent's shared CSR
    segment zero-copy through the worker's attachment cache
    (:func:`repro.kernel.shm.attach_frozen_cached`) -- repeat items on the
    same segment reuse one mapping, one CFG shell, and every structural
    cache on the adopted snapshot.  The cache owns closing (on eviction or
    worker exit); the *parent* owns the unlink.
    Returns the fields of a :class:`BatchItemResult` as a dict -- plus,
    when a spec was supplied, the ``"observer"`` shard snapshot recorded
    around this one item -- so the parent never unpickles custom classes
    from a possibly-wedged worker.
    """
    started = time.monotonic()
    shard = Observer.from_spec(observer_spec) if observer_spec is not None else None
    kind, body = payload

    def _materialize() -> CFG:
        if kind == "shm":
            from repro.kernel import shm as _shm

            return _shm.attach_frozen_cached(body)
        return _decode_cfg(body)

    with _obs.observe(shard):
        result = _run_item(
            key,
            _materialize,
            config=config,
            sleep=time.sleep,
            clock=time.monotonic,
        )
    data: Dict[str, Any] = {
        "key": result.key,
        "status": result.status,
        "elapsed": load_elapsed + (time.monotonic() - started),
        "tries": max(result.tries, load_tries),
        "paths": result.paths,
        "error": result.error,
    }
    if shard is not None:
        data["observer"] = shard.shard_snapshot()
    return data


def _run_item(
    key: str,
    thunk: Callable[[], CFG],
    *,
    config: AnalysisConfig,
    sleep: Callable[[float], None],
    clock: Callable[[], float],
) -> BatchItemResult:
    engine = config.engine
    item_started = clock()
    pause = config.backoff
    last_error: Optional[str] = None
    status = "error"
    paths: Dict[str, str] = {}
    tries = 0
    for attempt in range(config.retries + 1):
        tries = attempt + 1
        if attempt > 0:
            sleep(pause)
            pause *= config.backoff_factor
        try:
            cfg = thunk()
            if engine is None:
                result = run_analysis(cfg, config=config)
            else:
                # Custom engines keep the historical call convention.
                result = engine(
                    cfg, deadline=config.deadline, step_budget=config.step_budget
                )
        except Exception as error:  # isolation: nothing escapes the item
            status = "error"
            last_error = f"{type(error).__name__}: {error}"
            continue
        if result.ok:
            status = "degraded" if result.degraded else "ok"
            paths = result.diagnostic.paths
            last_error = None
            break
        status = "failed"
        last_error = result.error
        paths = result.diagnostic.paths
    return BatchItemResult(
        key=key,
        status=status,
        elapsed=clock() - item_started,
        tries=tries,
        paths=paths,
        error=last_error,
    )
