"""The guarded analysis orchestrator: fast path, verified fallback.

:func:`run_analysis` runs the paper's analyses the way a production service
must: the O(E) fast algorithms first, each result validated against cheap
postconditions, and -- on an invariant failure, an internal crash, or a
tripped guard -- a bounded retry ladder that degrades to the slow reference
implementations (the §3.3 bracket-set algorithm, Cooper-Harvey-Kennedy
iterative dominators, the CFS90 partition refinement).  The caller always
gets an :class:`AnalysisResult` tagged with a :class:`Diagnostic` recording
which path ran, why, and how long it took; the function itself never raises.

This is the pairing Chalupa et al. use for their strong-control-dependence
algorithms -- fast algorithm shipped together with a slow checker -- promoted
from a test-time oracle to a first-class runtime mechanism.

Postconditions per stage (all independent of the fast algorithms and of
every fault site in :mod:`repro.resilience.faults`):

* **pst** -- node ownership is a partition of the CFG's nodes; every
  canonical region's entry edge dominates its exit edge and the exit edge
  postdominates the entry edge (the Definition-of-SESE dominance conditions,
  checked on the edge-split graph with iterative dominators); and, for
  graphs within ``full_check_limit`` edges, the full cycle-equivalence
  partition is cross-checked against the §3.3 bracket-set reference.
* **dominators** -- the Lengauer-Tarjan tree is cross-checked against the
  independently derived iterative fixpoint (cheap: a couple of O(E) sweeps).
* **control-regions** -- the groups partition the node set, ``start`` and
  ``end`` share a group (both are always-executed), and graphs within
  ``full_check_limit`` edges are cross-checked against the CFS90 baseline.

The fallback ladder per stage is ``fast``, ``fast-retry`` x ``fast_retries``
(recovers transient faults), then ``slow``.  Slow results pass through the
same postconditions (minus the self-comparison), so a degraded answer is
still a *verified* answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.validate import check_cfg
from repro.controldep.regions_cfs import control_regions_cfs
from repro.core.cycle_equiv import CycleEquivalence
from repro.core.cycle_equiv_slow import cycle_equivalence_bracket_sets
from repro.core.pst import ProgramStructureTree, build_pst
from repro.dominance.iterative import immediate_dominators
from repro.dominance.tree import DominatorTree
from repro.kernel.session import AnalysisSession
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    PostconditionError,
)
from repro.resilience.guards import Ticker

ALL_ANALYSES: Tuple[str, ...] = ("pst", "dominators", "control-regions")

#: Graphs with at most this many edges get the *full* slow cross-check as a
#: postcondition (it is microseconds there); larger graphs rely on the
#: structural and dominance checks, which stay O(E).
DEFAULT_FULL_CHECK_LIMIT = 256


@dataclass
class Attempt:
    """One rung of one stage's fallback ladder."""

    stage: str
    path: str  # "fast" | "fast-retry" | "slow" | "validate"
    outcome: str  # "ok" | "postcondition" | "crash" | "budget" | "deadline" | "invalid"
    detail: str = ""
    elapsed: float = 0.0

    def describe(self) -> str:
        text = f"{self.stage}: {self.path} {self.outcome} ({self.elapsed:.4f}s)"
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class Diagnostic:
    """What :func:`run_analysis` did: every attempt, in order."""

    attempts: List[Attempt] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def paths(self) -> Dict[str, str]:
        """stage -> path of the attempt that produced the stage's result."""
        return {a.stage: a.path for a in self.attempts if a.outcome == "ok"}

    @property
    def degraded(self) -> bool:
        """True iff any stage needed more than its first fast attempt."""
        return any(a.outcome != "ok" or a.path != "fast" for a in self.attempts)

    def failures(self) -> List[Attempt]:
        return [a for a in self.attempts if a.outcome != "ok"]

    def render(self) -> str:
        lines = [a.describe() for a in self.attempts]
        lines.append(f"total elapsed: {self.elapsed:.4f}s")
        return "\n".join(lines)


@dataclass
class AnalysisResult:
    """The engine's answer: per-stage results plus the diagnostic trail.

    ``ok`` means every requested stage produced a verified result.  Stages
    that failed (or were skipped after a deadline) leave their field
    ``None`` and put the reason in ``error``.
    """

    ok: bool
    diagnostic: Diagnostic
    pst: Optional[ProgramStructureTree] = None
    idom: Optional[Dict[NodeId, NodeId]] = None
    control_regions: Optional[List[List[NodeId]]] = None
    error: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.diagnostic.degraded


def run_analysis(
    cfg: CFG,
    analyses: Sequence[str] = ALL_ANALYSES,
    *,
    deadline: Optional[float] = None,
    step_budget: Optional[int] = None,
    fast_retries: int = 1,
    full_check_limit: int = DEFAULT_FULL_CHECK_LIMIT,
    check_every: int = 512,
    clock: Callable[[], float] = time.monotonic,
) -> AnalysisResult:
    """Run the requested analyses resiliently; never raises.

    ``deadline`` (seconds) is global across all stages and attempts;
    ``step_budget`` applies per attempt (slow fallbacks get a fresh budget).
    ``fast_retries`` extra fast attempts run before falling back, which is
    what recovers *transient* corruption.
    """
    try:
        return _run_analysis(
            cfg,
            analyses,
            deadline=deadline,
            step_budget=step_budget,
            fast_retries=fast_retries,
            full_check_limit=full_check_limit,
            check_every=check_every,
            clock=clock,
        )
    except Exception as error:  # pragma: no cover - last-resort containment
        diagnostic = Diagnostic(
            attempts=[
                Attempt(
                    stage="engine",
                    path="engine",
                    outcome="crash",
                    detail=f"{type(error).__name__}: {error}",
                )
            ]
        )
        return AnalysisResult(
            ok=False,
            diagnostic=diagnostic,
            error=f"engine crash: {type(error).__name__}: {error}",
        )


def _run_analysis(
    cfg: CFG,
    analyses: Sequence[str],
    *,
    deadline: Optional[float],
    step_budget: Optional[int],
    fast_retries: int,
    full_check_limit: int,
    check_every: int,
    clock: Callable[[], float],
) -> AnalysisResult:
    unknown = [name for name in analyses if name not in ALL_ANALYSES]
    if unknown:
        return AnalysisResult(
            ok=False,
            diagnostic=Diagnostic(),
            error=f"unknown analyses: {', '.join(unknown)}",
        )

    started = clock()
    deadline_at = None if deadline is None else started + deadline
    diagnostic = Diagnostic()
    errors: List[str] = []

    # ------------------------------------------------------------------
    # Stage 0: input validation.  An invalid CFG is a *rejected input*,
    # not a degradation -- the slow references need Definition 1 too.
    # ------------------------------------------------------------------
    validate_started = clock()
    try:
        problems = check_cfg(cfg)
    except Exception as error:
        problems = [f"validation crashed: {type(error).__name__}: {error}"]
    if problems:
        detail = "; ".join(problems)
        diagnostic.attempts.append(
            Attempt(
                stage="validate",
                path="validate",
                outcome="invalid",
                detail=detail,
                elapsed=clock() - validate_started,
            )
        )
        diagnostic.elapsed = clock() - started
        return AnalysisResult(
            ok=False, diagnostic=diagnostic, error=f"invalid CFG: {detail}"
        )

    # One private session per engine call: fast paths share the frozen
    # snapshot and each artifact is computed once across stages, but the
    # ladder invalidates it before every retry/fallback so a corrupted
    # artifact is never reused (fault injection sees fresh runs).
    session = AnalysisSession(cfg)
    stages = _build_stages(cfg, session, full_check_limit)
    results: Dict[str, object] = {}
    aborted = False

    for name in analyses:
        if aborted:
            diagnostic.attempts.append(
                Attempt(stage=name, path="-", outcome="deadline", detail="skipped")
            )
            errors.append(f"{name}: skipped after deadline")
            continue
        fast, slow, checker = stages[name]
        ladder: List[Tuple[str, Callable, bool]] = [("fast", fast, True)]
        ladder.extend(("fast-retry", fast, True) for _ in range(fast_retries))
        ladder.append(("slow", slow, False))

        stage_ok = False
        for path, compute, cross_check in ladder:
            if path != "fast":
                session.invalidate()
            attempt_started = clock()
            remaining = None if deadline_at is None else deadline_at - attempt_started
            if remaining is not None and remaining <= 0:
                diagnostic.attempts.append(
                    Attempt(stage=name, path=path, outcome="deadline",
                            detail="deadline passed before attempt")
                )
                aborted = True
                break
            ticker = (
                None
                if remaining is None and step_budget is None
                else Ticker(
                    deadline=remaining,
                    step_budget=step_budget,
                    check_every=check_every,
                    clock=clock,
                )
            )
            try:
                value = compute(ticker)
                checker(value, cross_check, ticker)
            except DeadlineExceeded as error:
                diagnostic.attempts.append(
                    Attempt(stage=name, path=path, outcome="deadline",
                            detail=str(error), elapsed=clock() - attempt_started)
                )
                aborted = True
                break
            except BudgetExceeded as error:
                diagnostic.attempts.append(
                    Attempt(stage=name, path=path, outcome="budget",
                            detail=str(error), elapsed=clock() - attempt_started)
                )
                continue
            except PostconditionError as error:
                diagnostic.attempts.append(
                    Attempt(stage=name, path=path, outcome="postcondition",
                            detail=str(error), elapsed=clock() - attempt_started)
                )
                continue
            except Exception as error:
                diagnostic.attempts.append(
                    Attempt(stage=name, path=path, outcome="crash",
                            detail=f"{type(error).__name__}: {error}",
                            elapsed=clock() - attempt_started)
                )
                continue
            diagnostic.attempts.append(
                Attempt(stage=name, path=path, outcome="ok",
                        elapsed=clock() - attempt_started)
            )
            results[name] = value
            stage_ok = True
            break

        if aborted:
            errors.append(f"{name}: deadline exceeded")
        elif not stage_ok:
            errors.append(f"{name}: all attempts failed (fallback ladder exhausted)")

    diagnostic.elapsed = clock() - started
    pst = results.get("pst")
    return AnalysisResult(
        ok=not errors,
        diagnostic=diagnostic,
        pst=pst[1] if pst is not None else None,
        idom=results.get("dominators"),
        control_regions=results.get("control-regions"),
        error="; ".join(errors) if errors else None,
    )


# ----------------------------------------------------------------------
# stage definitions: (fast, slow, checker) triples
# ----------------------------------------------------------------------

def _build_stages(cfg: CFG, session: "AnalysisSession", full_check_limit: int):
    def pst_fast(ticker):
        equiv = session.cycle_equivalence(ticker, validate=False)
        return equiv, session.pst(ticker)

    def pst_slow(ticker):
        equiv = _slow_cycle_equivalence(cfg)
        return equiv, build_pst(cfg, equiv)

    def pst_check(value, cross_check, ticker):
        equiv, pst = value
        _check_pst_structure(cfg, pst)
        _check_sese_dominance(cfg, pst, ticker)
        if cross_check and cfg.num_edges <= full_check_limit:
            _check_equiv_against_reference(cfg, equiv)

    def dom_fast(ticker):
        return session.dominators(ticker)

    def dom_slow(ticker):
        return immediate_dominators(cfg, ticker=ticker)

    def dom_check(value, cross_check, ticker):
        if not cross_check:
            return  # the iterative fixpoint is the reference
        reference = immediate_dominators(cfg, ticker=ticker)
        if value != reference:
            diffs = [
                f"{node!r}: fast={value.get(node)!r} reference={reference.get(node)!r}"
                for node in set(value) | set(reference)
                if value.get(node) != reference.get(node)
            ]
            raise PostconditionError(
                "idom mismatch vs iterative reference: " + "; ".join(sorted(diffs)[:5])
            )

    def cr_fast(ticker):
        return session.control_regions(ticker, validate=False)

    def cr_slow(ticker):
        return control_regions_cfs(cfg)

    def cr_check(value, cross_check, ticker):
        _check_control_partition(cfg, value)
        if cross_check and cfg.num_edges <= full_check_limit:
            reference = control_regions_cfs(cfg)
            if value != reference:
                raise PostconditionError(
                    f"control regions diverge from CFS90 reference: "
                    f"fast={value} reference={reference}"
                )

    return {
        "pst": (pst_fast, pst_slow, pst_check),
        "dominators": (dom_fast, dom_slow, dom_check),
        "control-regions": (cr_fast, cr_slow, cr_check),
    }


# ----------------------------------------------------------------------
# postconditions
# ----------------------------------------------------------------------

def _check_pst_structure(cfg: CFG, pst: ProgramStructureTree) -> None:
    """Node ownership must partition the CFG's nodes."""
    seen = set()
    for region in pst.regions():
        for node in region.own_nodes:
            if node in seen:
                raise PostconditionError(f"PST: node {node!r} owned by two regions")
            seen.add(node)
    missing = [n for n in cfg.nodes if n not in seen]
    if missing:
        raise PostconditionError(f"PST: nodes {missing[:5]!r} not owned by any region")


def _check_sese_dominance(
    cfg: CFG, pst: ProgramStructureTree, ticker: Optional[Ticker]
) -> None:
    """Definition-of-SESE dominance conditions for every canonical region.

    Checked on the edge-split graph with *iterative* dominators, which share
    no code with the fast path (and carry no fault sites).
    """
    regions = pst.canonical_regions()
    if not regions:
        return
    split, split_node = cfg.edge_split()
    dom = DominatorTree(
        immediate_dominators(split, ticker=ticker), split.start
    )
    rsplit = split.reversed()
    pdom = DominatorTree(
        immediate_dominators(rsplit, ticker=ticker), rsplit.start
    )
    for region in regions:
        a, b = split_node[region.entry], split_node[region.exit]
        if a not in dom or b not in dom:
            raise PostconditionError(
                f"PST: region {region.describe()} has an unreachable boundary edge"
            )
        if not dom.dominates(a, b):
            raise PostconditionError(
                f"PST: region {region.describe()}: entry does not dominate exit"
            )
        if not pdom.dominates(b, a):
            raise PostconditionError(
                f"PST: region {region.describe()}: exit does not postdominate entry"
            )


def _slow_cycle_equivalence(cfg: CFG) -> CycleEquivalence:
    """The §3.3 bracket-set reference, adapted to ``cfg``'s own edges.

    The slow algorithm runs on the materialized augmented graph; its edges
    correspond *positionally* to ``cfg.edges`` (``with_return_edge`` copies
    them in order), with the return edge last.  The mapping must be by
    position, not edge id -- the copy renumbers edges, and graphs that had
    edges removed have id gaps.
    """
    augmented, back = cfg.with_return_edge()
    slow = cycle_equivalence_bracket_sets(augmented)
    key_to_class: Dict[object, int] = {}
    classes: Dict[Edge, int] = {}
    copies = [edge for edge in augmented.edges if edge is not back]
    assert len(copies) == len(cfg.edges)
    for original, copy in zip(cfg.edges, copies):
        classes[original] = key_to_class.setdefault(slow[copy], len(key_to_class))
    return CycleEquivalence(classes)


def _partition_of(classes: Dict[Edge, object]):
    groups: Dict[object, List[int]] = {}
    for edge, cls in classes.items():
        groups.setdefault(cls, []).append(edge.eid)
    return {frozenset(eids) for eids in groups.values()}


def _check_equiv_against_reference(cfg: CFG, equiv: CycleEquivalence) -> None:
    """Full partition cross-check against the §3.3 slow reference."""
    reference = _slow_cycle_equivalence(cfg)
    fast_partition = _partition_of(equiv.class_of)
    slow_partition = _partition_of(reference.class_of)
    if fast_partition != slow_partition:
        only_fast = sorted(sorted(s) for s in fast_partition - slow_partition)
        only_slow = sorted(sorted(s) for s in slow_partition - fast_partition)
        raise PostconditionError(
            "cycle-equivalence partition diverges from bracket-set reference: "
            f"fast-only {only_fast} vs reference-only {only_slow} (edge ids)"
        )


def _check_control_partition(cfg: CFG, groups: List[List[NodeId]]) -> None:
    """Groups must partition the node set; start and end must share one."""
    seen: Dict[NodeId, int] = {}
    for index, group in enumerate(groups):
        for node in group:
            if node in seen:
                raise PostconditionError(
                    f"control regions: node {node!r} appears in two groups"
                )
            seen[node] = index
    missing = [n for n in cfg.nodes if n not in seen]
    if missing:
        raise PostconditionError(
            f"control regions: nodes {missing[:5]!r} missing from the partition"
        )
    extra = [n for n in seen if not cfg.has_node(n)]
    if extra:
        raise PostconditionError(
            f"control regions: unknown nodes {extra[:5]!r} in the partition"
        )
    if seen[cfg.start] != seen[cfg.end]:
        raise PostconditionError(
            "control regions: start and end (both always-executed) are in "
            "different groups"
        )
