"""The guarded analysis orchestrator: fast path, verified fallback.

:func:`run_analysis` runs the paper's analyses the way a production service
must: the O(E) fast algorithms first, each result validated against cheap
postconditions, and -- on an invariant failure, an internal crash, or a
tripped guard -- a bounded retry ladder that degrades to the slow reference
implementations (the §3.3 bracket-set algorithm, Cooper-Harvey-Kennedy
iterative dominators, the CFS90 partition refinement).  The caller always
gets an :class:`AnalysisResult` tagged with a :class:`Diagnostic` recording
which path ran, why, and how long it took; the function itself never raises.

This is the pairing Chalupa et al. use for their strong-control-dependence
algorithms -- fast algorithm shipped together with a slow checker -- promoted
from a test-time oracle to a first-class runtime mechanism.

Postconditions per stage (all independent of the fast algorithms and of
every fault site in :mod:`repro.resilience.faults`):

* **pst** -- node ownership is a partition of the CFG's nodes; every
  canonical region's entry edge dominates its exit edge and the exit edge
  postdominates the entry edge (the Definition-of-SESE dominance conditions,
  checked on the edge-split graph with iterative dominators); and, for
  graphs within ``full_check_limit`` edges, the full cycle-equivalence
  partition is cross-checked against the §3.3 bracket-set reference.
* **dominators** -- the Lengauer-Tarjan tree is cross-checked against the
  independently derived iterative fixpoint (cheap: a couple of O(E) sweeps).
* **control-regions** -- the groups partition the node set, ``start`` and
  ``end`` share a group (both are always-executed), and graphs within
  ``full_check_limit`` edges are cross-checked against the CFS90 baseline.

The fallback ladder per stage is ``fast``, ``fast-retry`` x ``fast_retries``
(recovers transient faults), then ``slow``.  Slow results pass through the
same postconditions (minus the self-comparison), so a degraded answer is
still a *verified* answer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.validate import check_cfg
from repro.controldep.regions_cfs import control_regions_cfs
from repro.core.cycle_equiv import CycleEquivalence
from repro.core.cycle_equiv_slow import cycle_equivalence_bracket_sets
from repro.core.pst import ProgramStructureTree, build_pst
from repro.dominance.iterative import immediate_dominators
from repro.dominance.tree import DominatorTree
from repro.kernel import backend as _backend
from repro.kernel.session import AnalysisSession
from repro.config import (
    ALL_ANALYSES,
    DEFAULT_FULL_CHECK_LIMIT,
    AnalysisConfig,
    _UNSET,
    coalesce_config,
)
from repro.errors import (
    BudgetExceeded,
    DeadlineExceeded,
    PostconditionError,
)
from repro.obs import observer as _obs
from repro.resilience import faults as faults_mod
from repro.resilience.guards import Ticker


@dataclass
class Attempt:
    """One rung of one stage's fallback ladder."""

    stage: str
    path: str  # "fast" | "fast-retry" | "slow" | "validate"
    outcome: str  # "ok" | "postcondition" | "crash" | "budget" | "deadline" | "invalid"
    detail: str = ""
    elapsed: float = 0.0
    #: Per-phase timing marks (see :meth:`~repro.resilience.guards.Ticker.mark`),
    #: populated only when the config asked for profiling.
    profile: Optional[List[dict]] = None

    def describe(self) -> str:
        text = f"{self.stage}: {self.path} {self.outcome} ({self.elapsed:.4f}s)"
        if self.detail:
            text += f" -- {self.detail}"
        return text


@dataclass
class Diagnostic:
    """What :func:`run_analysis` did: every attempt, in order."""

    attempts: List[Attempt] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def paths(self) -> Dict[str, str]:
        """stage -> path of the attempt that produced the stage's result."""
        return {a.stage: a.path for a in self.attempts if a.outcome == "ok"}

    @property
    def degraded(self) -> bool:
        """True iff any stage needed more than its first fast attempt."""
        return any(a.outcome != "ok" or a.path != "fast" for a in self.attempts)

    def failures(self) -> List[Attempt]:
        return [a for a in self.attempts if a.outcome != "ok"]

    def render(self) -> str:
        lines = [a.describe() for a in self.attempts]
        lines.append(f"total elapsed: {self.elapsed:.4f}s")
        return "\n".join(lines)


@dataclass
class AnalysisResult:
    """The engine's answer: per-stage results plus the diagnostic trail.

    ``ok`` means every requested stage produced a verified result.  Stages
    that failed (or were skipped after a deadline) leave their field
    ``None`` and put the reason in ``error``.
    """

    ok: bool
    diagnostic: Diagnostic
    pst: Optional[ProgramStructureTree] = None
    idom: Optional[Dict[NodeId, NodeId]] = None
    control_regions: Optional[List[List[NodeId]]] = None
    error: Optional[str] = None

    @property
    def degraded(self) -> bool:
        return self.diagnostic.degraded


def run_analysis(
    cfg: CFG,
    analyses: Optional[Sequence[str]] = None,
    *,
    config: Optional[AnalysisConfig] = None,
    deadline: object = _UNSET,
    step_budget: object = _UNSET,
    fast_retries: object = _UNSET,
    full_check_limit: object = _UNSET,
    check_every: object = _UNSET,
    clock: Callable[[], float] = time.monotonic,
) -> AnalysisResult:
    """Run the requested analyses resiliently; never raises.

    All tuning lives in ``config`` (an
    :class:`~repro.config.AnalysisConfig`): ``deadline`` (seconds) is global
    across all stages and attempts; ``step_budget`` applies per attempt
    (slow fallbacks get a fresh budget); ``fast_retries`` extra fast
    attempts run before falling back, which is what recovers *transient*
    corruption.  ``config.observer`` is installed ambiently for the call so
    one trace covers fast path, retries, and slow fallback alike;
    ``config.faults`` is injected for the call's duration;
    ``config.profile`` arms per-phase timers on every attempt's ticker.

    ``analyses`` overrides ``config.analyses`` when given (default: all
    stages).  The remaining keywords are deprecated aliases for the
    corresponding config fields.
    """
    config = coalesce_config(
        config,
        "run_analysis",
        {
            "deadline": deadline,
            "step_budget": step_budget,
            "fast_retries": fast_retries,
            "full_check_limit": full_check_limit,
            "check_every": check_every,
        },
    )
    if analyses is None:
        analyses = config.analyses if config.analyses is not None else ALL_ANALYSES
    try:
        with _obs.observe(config.observer), _backend.use_backend(config.backend):
            if config.faults is not None:
                with faults_mod.inject(config.faults):
                    return _run_analysis(cfg, analyses, config, clock)
            return _run_analysis(cfg, analyses, config, clock)
    except Exception as error:  # pragma: no cover - last-resort containment
        diagnostic = Diagnostic(
            attempts=[
                Attempt(
                    stage="engine",
                    path="engine",
                    outcome="crash",
                    detail=f"{type(error).__name__}: {error}",
                )
            ]
        )
        return AnalysisResult(
            ok=False,
            diagnostic=diagnostic,
            error=f"engine crash: {type(error).__name__}: {error}",
        )


def _run_analysis(
    cfg: CFG,
    analyses: Sequence[str],
    config: AnalysisConfig,
    clock: Callable[[], float],
) -> AnalysisResult:
    o = _obs._CURRENT
    if o is None:
        return _run_ladders(cfg, analyses, config, clock, None)
    started = clock()
    with o.span(
        "run_analysis",
        cfg=str(cfg.name),
        n_nodes=cfg.num_nodes,
        n_edges=cfg.num_edges,
        analyses=",".join(analyses),
    ) as root:
        result = _run_ladders(cfg, analyses, config, clock, o)
        if not result.ok:
            root.fail(result.error or "analysis failed")
        # Engine-side latency histogram: recorded inside the worker shard
        # on parallel batches, so cross-process merges carry real per-run
        # timings, not just the parent's batch.item_seconds.
        o.observe_value("engine.run_seconds", clock() - started)
        return result


def _run_ladders(
    cfg: CFG,
    analyses: Sequence[str],
    config: AnalysisConfig,
    clock: Callable[[], float],
    o,
) -> AnalysisResult:
    unknown = [name for name in analyses if name not in ALL_ANALYSES]
    if unknown:
        return AnalysisResult(
            ok=False,
            diagnostic=Diagnostic(),
            error=f"unknown analyses: {', '.join(unknown)}",
        )

    started = clock()
    deadline_at = None if config.deadline is None else started + config.deadline
    diagnostic = Diagnostic()
    errors: List[str] = []

    def record(attempt: Attempt, span=None) -> None:
        # One call per Attempt: the engine.* counters and the diagnostic
        # trail stay in lockstep by construction.
        diagnostic.attempts.append(attempt)
        if o is not None:
            o.count(
                "engine.attempts",
                stage=attempt.stage,
                path=attempt.path,
                outcome=attempt.outcome,
            )
            if attempt.path == "fast-retry":
                o.count("engine.retries", stage=attempt.stage)
            elif attempt.path == "slow":
                o.count("engine.fallbacks", stage=attempt.stage)
        if span is not None:
            if attempt.profile is not None:
                span.set(profile=attempt.profile)
            if attempt.outcome != "ok":
                span.fail(attempt.detail or attempt.outcome)
            span.finish()

    # ------------------------------------------------------------------
    # Stage 0: input validation.  An invalid CFG is a *rejected input*,
    # not a degradation -- the slow references need Definition 1 too.
    # ------------------------------------------------------------------
    validate_started = clock()
    vspan = None if o is None else o.span("validate")
    try:
        problems = check_cfg(cfg)
    except Exception as error:
        problems = [f"validation crashed: {type(error).__name__}: {error}"]
    if problems:
        detail = "; ".join(problems)
        record(
            Attempt(
                stage="validate",
                path="validate",
                outcome="invalid",
                detail=detail,
                elapsed=clock() - validate_started,
            ),
            vspan,
        )
        diagnostic.elapsed = clock() - started
        return AnalysisResult(
            ok=False, diagnostic=diagnostic, error=f"invalid CFG: {detail}"
        )
    if vspan is not None:
        vspan.finish()

    # One private session per engine call: fast paths share the frozen
    # snapshot and each artifact is computed once across stages, but the
    # ladder invalidates it before every retry/fallback so a corrupted
    # artifact is never reused (fault injection sees fresh runs).  A
    # configured byte bound also arms the process-wide frozen registry,
    # so long-lived callers get one knob for every analysis cache.
    if config.max_cache_bytes is not None:
        from repro.kernel import registry as _registry

        _registry.configure(config.max_cache_bytes)
    session = AnalysisSession(cfg, max_cache_bytes=config.max_cache_bytes)
    stages = _build_stages(cfg, session, config.full_check_limit)
    results: Dict[str, object] = {}
    aborted = False
    # Profiling is armed by the config, or by an ambient observer that asked
    # for it (Observer(profile=True)) without threading a config through.
    profile_on = config.profile or (o is not None and o.profile)

    for name in analyses:
        if aborted:
            record(Attempt(stage=name, path="-", outcome="deadline", detail="skipped"))
            errors.append(f"{name}: skipped after deadline")
            continue
        fast, slow, checker = stages[name]
        ladder: List[Tuple[str, Callable, bool]] = [("fast", fast, True)]
        ladder.extend(("fast-retry", fast, True) for _ in range(config.fast_retries))
        ladder.append(("slow", slow, False))

        stage_span = None if o is None else o.span(f"stage:{name}")
        stage_ok = False
        for path, compute, cross_check in ladder:
            if path != "fast":
                session.invalidate()
            attempt_started = clock()
            remaining = None if deadline_at is None else deadline_at - attempt_started
            if remaining is not None and remaining <= 0:
                record(
                    Attempt(stage=name, path=path, outcome="deadline",
                            detail="deadline passed before attempt")
                )
                aborted = True
                break
            ticker = (
                None
                if remaining is None and config.step_budget is None and not profile_on
                else Ticker(
                    deadline=remaining,
                    step_budget=config.step_budget,
                    check_every=config.check_every,
                    clock=clock,
                )
            )
            if ticker is not None and profile_on:
                ticker.profile = []
            aspan = None if o is None else o.span(f"attempt:{path}", stage=name)
            try:
                value = compute(ticker)
                checker(value, cross_check, ticker)
            except DeadlineExceeded as error:
                record(
                    Attempt(stage=name, path=path, outcome="deadline",
                            detail=str(error), elapsed=clock() - attempt_started,
                            profile=None if ticker is None else ticker.profile),
                    aspan,
                )
                aborted = True
                break
            except BudgetExceeded as error:
                record(
                    Attempt(stage=name, path=path, outcome="budget",
                            detail=str(error), elapsed=clock() - attempt_started,
                            profile=None if ticker is None else ticker.profile),
                    aspan,
                )
                continue
            except PostconditionError as error:
                record(
                    Attempt(stage=name, path=path, outcome="postcondition",
                            detail=str(error), elapsed=clock() - attempt_started,
                            profile=None if ticker is None else ticker.profile),
                    aspan,
                )
                continue
            except Exception as error:
                record(
                    Attempt(stage=name, path=path, outcome="crash",
                            detail=f"{type(error).__name__}: {error}",
                            elapsed=clock() - attempt_started,
                            profile=None if ticker is None else ticker.profile),
                    aspan,
                )
                continue
            record(
                Attempt(stage=name, path=path, outcome="ok",
                        elapsed=clock() - attempt_started,
                        profile=None if ticker is None else ticker.profile),
                aspan,
            )
            results[name] = value
            stage_ok = True
            break

        if aborted:
            errors.append(f"{name}: deadline exceeded")
        elif not stage_ok:
            errors.append(f"{name}: all attempts failed (fallback ladder exhausted)")
        if stage_span is not None:
            if not stage_ok:
                stage_span.fail(errors[-1])
            stage_span.finish()

    diagnostic.elapsed = clock() - started
    pst = results.get("pst")
    return AnalysisResult(
        ok=not errors,
        diagnostic=diagnostic,
        pst=pst[1] if pst is not None else None,
        idom=results.get("dominators"),
        control_regions=results.get("control-regions"),
        error="; ".join(errors) if errors else None,
    )


# ----------------------------------------------------------------------
# stage definitions: (fast, slow, checker) triples
# ----------------------------------------------------------------------

def _build_stages(cfg: CFG, session: "AnalysisSession", full_check_limit: int):
    def pst_fast(ticker):
        equiv = session.cycle_equivalence(ticker, validate=False)
        return equiv, session.pst(ticker)

    def pst_slow(ticker):
        equiv = _slow_cycle_equivalence(cfg)
        return equiv, build_pst(cfg, equiv)

    def pst_check(value, cross_check, ticker):
        equiv, pst = value
        _check_pst_structure(cfg, pst)
        _check_sese_dominance(cfg, pst, ticker)
        if cross_check and cfg.num_edges <= full_check_limit:
            _check_equiv_against_reference(cfg, equiv)

    def dom_fast(ticker):
        return session.dominators(ticker)

    def dom_slow(ticker):
        return immediate_dominators(cfg, ticker=ticker)

    def dom_check(value, cross_check, ticker):
        if not cross_check:
            return  # the iterative fixpoint is the reference
        reference = immediate_dominators(cfg, ticker=ticker)
        if value != reference:
            diffs = [
                f"{node!r}: fast={value.get(node)!r} reference={reference.get(node)!r}"
                for node in set(value) | set(reference)
                if value.get(node) != reference.get(node)
            ]
            raise PostconditionError(
                "idom mismatch vs iterative reference: " + "; ".join(sorted(diffs)[:5])
            )

    def cr_fast(ticker):
        return session.control_regions(ticker, validate=False)

    def cr_slow(ticker):
        return control_regions_cfs(cfg)

    def cr_check(value, cross_check, ticker):
        _check_control_partition(cfg, value)
        if cross_check and cfg.num_edges <= full_check_limit:
            reference = control_regions_cfs(cfg)
            if value != reference:
                raise PostconditionError(
                    f"control regions diverge from CFS90 reference: "
                    f"fast={value} reference={reference}"
                )

    return {
        "pst": (pst_fast, pst_slow, pst_check),
        "dominators": (dom_fast, dom_slow, dom_check),
        "control-regions": (cr_fast, cr_slow, cr_check),
    }


# ----------------------------------------------------------------------
# postconditions
# ----------------------------------------------------------------------

def _check_pst_structure(cfg: CFG, pst: ProgramStructureTree) -> None:
    """Node ownership must partition the CFG's nodes."""
    seen = set()
    for region in pst.regions():
        for node in region.own_nodes:
            if node in seen:
                raise PostconditionError(f"PST: node {node!r} owned by two regions")
            seen.add(node)
    missing = [n for n in cfg.nodes if n not in seen]
    if missing:
        raise PostconditionError(f"PST: nodes {missing[:5]!r} not owned by any region")


def _check_sese_dominance(
    cfg: CFG, pst: ProgramStructureTree, ticker: Optional[Ticker]
) -> None:
    """Definition-of-SESE dominance conditions for every canonical region.

    Checked on the edge-split graph with *iterative* dominators, which share
    no code with the fast path (and carry no fault sites).
    """
    regions = pst.canonical_regions()
    if not regions:
        return
    split, split_node = cfg.edge_split()
    dom = DominatorTree(
        immediate_dominators(split, ticker=ticker), split.start
    )
    rsplit = split.reversed()
    pdom = DominatorTree(
        immediate_dominators(rsplit, ticker=ticker), rsplit.start
    )
    for region in regions:
        a, b = split_node[region.entry], split_node[region.exit]
        if a not in dom or b not in dom:
            raise PostconditionError(
                f"PST: region {region.describe()} has an unreachable boundary edge"
            )
        if not dom.dominates(a, b):
            raise PostconditionError(
                f"PST: region {region.describe()}: entry does not dominate exit"
            )
        if not pdom.dominates(b, a):
            raise PostconditionError(
                f"PST: region {region.describe()}: exit does not postdominate entry"
            )


def _slow_cycle_equivalence(cfg: CFG) -> CycleEquivalence:
    """The §3.3 bracket-set reference, adapted to ``cfg``'s own edges.

    The slow algorithm runs on the materialized augmented graph; its edges
    correspond *positionally* to ``cfg.edges`` (``with_return_edge`` copies
    them in order), with the return edge last.  The mapping must be by
    position, not edge id -- the copy renumbers edges, and graphs that had
    edges removed have id gaps.
    """
    augmented, back = cfg.with_return_edge()
    slow = cycle_equivalence_bracket_sets(augmented)
    key_to_class: Dict[object, int] = {}
    classes: Dict[Edge, int] = {}
    copies = [edge for edge in augmented.edges if edge is not back]
    assert len(copies) == len(cfg.edges)
    for original, copy in zip(cfg.edges, copies):
        classes[original] = key_to_class.setdefault(slow[copy], len(key_to_class))
    return CycleEquivalence(classes)


def _partition_of(classes: Dict[Edge, object]):
    groups: Dict[object, List[int]] = {}
    for edge, cls in classes.items():
        groups.setdefault(cls, []).append(edge.eid)
    return {frozenset(eids) for eids in groups.values()}


def _check_equiv_against_reference(cfg: CFG, equiv: CycleEquivalence) -> None:
    """Full partition cross-check against the §3.3 slow reference."""
    reference = _slow_cycle_equivalence(cfg)
    fast_partition = _partition_of(equiv.class_of)
    slow_partition = _partition_of(reference.class_of)
    if fast_partition != slow_partition:
        only_fast = sorted(sorted(s) for s in fast_partition - slow_partition)
        only_slow = sorted(sorted(s) for s in slow_partition - fast_partition)
        raise PostconditionError(
            "cycle-equivalence partition diverges from bracket-set reference: "
            f"fast-only {only_fast} vs reference-only {only_slow} (edge ids)"
        )


def _check_control_partition(cfg: CFG, groups: List[List[NodeId]]) -> None:
    """Groups must partition the node set; start and end must share one."""
    seen: Dict[NodeId, int] = {}
    for index, group in enumerate(groups):
        for node in group:
            if node in seen:
                raise PostconditionError(
                    f"control regions: node {node!r} appears in two groups"
                )
            seen[node] = index
    missing = [n for n in cfg.nodes if n not in seen]
    if missing:
        raise PostconditionError(
            f"control regions: nodes {missing[:5]!r} missing from the partition"
        )
    extra = [n for n in seen if not cfg.has_node(n)]
    if extra:
        raise PostconditionError(
            f"control regions: unknown nodes {extra[:5]!r} in the partition"
        )
    if seen[cfg.start] != seen[cfg.end]:
        raise PostconditionError(
            "control regions: start and end (both always-executed) are in "
            "different groups"
        )
