"""Command-line interface: run the paper's analyses on MiniLang sources.

Usage (also via ``python -m repro``)::

    python -m repro program.mini                # summary of every procedure
    python -m repro program.mini --pst          # print the PST
    python -m repro program.mini --regions      # canonical SESE regions
    python -m repro program.mini --control-regions
    python -m repro program.mini --ssa          # SSA form (PST φ-placement)
    python -m repro program.mini --dot          # CFG as Graphviz DOT
    python -m repro program.mini --proc name    # restrict to one procedure

With ``-`` as the file name, source is read from stdin.

The ``fuzz`` subcommand runs the differential fuzzing harness (see
:mod:`repro.fuzz` and ``docs/TESTING.md``)::

    python -m repro fuzz --seed 0 --count 500   # a full campaign
    python -m repro fuzz --oracle dominators/matrix --budget 10
    python -m repro fuzz --count 1000 --fail-fast

The ``batch`` subcommand runs the resilient analysis engine over a corpus
of source files with per-item isolation and JSONL checkpoint/resume (see
:mod:`repro.resilience.batch` and ``docs/ROBUSTNESS.md``)::

    python -m repro batch corpus/*.mini --checkpoint run.jsonl

The ``bench`` subcommand times the array kernels against their
object-graph references and writes machine-readable JSON under
``benchmarks/results/`` (see :mod:`repro.analysis.bench` and
``docs/PERFORMANCE.md``)::

    python -m repro bench --sizes 500 2000
    python -m repro bench --check benchmarks/results/perf_smoke_baseline.json

The ``trace`` subcommand runs the guarded engine with a full
:class:`~repro.obs.observer.Observer` attached and emits the trace as JSONL
(see :mod:`repro.obs` and ``docs/OBSERVABILITY.md``)::

    python -m repro trace program.mini --out run.jsonl
    python -m repro trace --synth-seed 0 --synth-size 40 --render
    python -m repro trace --check run.jsonl     # validate against the schema
    python -m repro trace --aggregate run.jsonl other.jsonl --render
    python -m repro trace --check-linearity a.jsonl b.jsonl c.jsonl

``--aggregate`` computes per-span-name latency statistics and critical
paths over one or many recorded traces; ``--check-linearity`` fits a
log-log duration-vs-size exponent per analysis phase (spans carry
``n_nodes``/``n_edges`` attributes) and fails with exit 3 when any phase
scales worse than ``--max-exponent`` (default 1.3) -- the paper's O(E)
claim as a continuously enforceable gate.

The ``metrics`` subcommand turns the metric dumps embedded in trace files
into Prometheus text exposition (format 0.0.4)::

    python -m repro metrics render run.jsonl          # print exposition
    python -m repro metrics lint exposition.txt       # format lint
    python -m repro metrics serve run.jsonl --port 0  # stdlib HTTP exporter

The ``serve`` subcommand runs the admission-controlled analysis service
(JSON over HTTP, stdlib only; see :mod:`repro.service` and
``docs/ROBUSTNESS.md``), and ``soak`` its deterministic chaos harness.
Besides ``/run_analysis`` and ``/run_batch`` the service exposes
``POST /apply_delta``: incremental CFG edits against a per-client live
:class:`~repro.incremental.EditSession` (see ``docs/INCREMENTAL.md``);
the soak mixes edits into its workload at ``--edit-rate``::

    python -m repro serve --port 8014 --rate 200 --max-inflight 16
    python -m repro soak --duration 60 --clients 8 --seed 0 --edit-rate 0.25 \
        --out soak.json --update-bench benchmarks/results/BENCH_perf.json

Exit codes (all commands; a multi-procedure run reports the worst):

====  ==============================================================
0     success
1     parse/lowering diagnostics, no such procedure, fuzz divergence,
      trace schema violations, exposition lint problems
2     usage or I/O errors (unreadable file, bad flag value, a batch
      checkpoint written by a newer format version)
3     a declared budget was exceeded: a procedure's CFG violates
      Definition 1 (invalid CFG), ``bench --check`` measured a perf
      ratio over its regression budget, ``bench --slo`` found a p99
      over its band budget, or ``trace --check-linearity`` fitted a
      scaling exponent over --max-exponent
4     analysis failure: internal error, guard trip, or divergence
      detected while analyzing a valid CFG; batch items failed; a
      chaos soak's assertions failed
5     request shed by admission control (HTTP 429/503; the
      ``service.shed`` taxonomy)
6     request refused because the server is draining (HTTP 503)
====  ==============================================================

Analysis errors never surface as raw tracebacks: each procedure is
isolated, and failures print one structured ``error[...]`` line naming the
procedure and the failure class.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cfg.dot import cfg_to_dot, pst_to_dot
from repro.cfg.graph import InvalidCFGError
from repro.core.region_kinds import classify_pst
from repro.kernel.session import session_for
from repro.errors import (
    EXIT_ANALYSIS_FAILED,
    EXIT_BUDGET_EXCEEDED,
    EXIT_DIAGNOSTICS,
    EXIT_OK,
    EXIT_USAGE_IO,
    AnalysisError,
    ReproError,
    ResourceExhausted,
    exit_code_for,
)
from repro.ir import LoweredProcedure
from repro.lang import lower_program, parse_program
from repro.ssa.pst_phi import place_phis_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.verify import verify_ssa

# Historical alias: an invalid CFG is the "budget" of Definition 1 being
# exceeded; both spellings map to the same documented exit code 3.
EXIT_INVALID_CFG = EXIT_BUDGET_EXCEEDED


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Program Structure Tree analyses (Johnson, Pearson & Pingali, PLDI 1994)",
    )
    parser.add_argument("source", help="MiniLang source file, or '-' for stdin")
    parser.add_argument("--proc", help="analyze only the procedure with this name")
    parser.add_argument("--pst", action="store_true", help="print the program structure tree")
    parser.add_argument("--regions", action="store_true", help="list canonical SESE regions")
    parser.add_argument(
        "--control-regions", action="store_true", help="print control regions (O(E) algorithm)"
    )
    parser.add_argument("--ssa", action="store_true", help="print the SSA form")
    parser.add_argument("--dot", action="store_true", help="print the CFG in Graphviz DOT")
    return parser


def build_fuzz_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing: cross-check every fast/slow algorithm pair",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (case i uses seed+i)")
    parser.add_argument("--count", type=int, default=100, help="number of CFGs to generate")
    parser.add_argument("--size", type=int, default=10, help="approximate interior node budget")
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="stop the campaign early after this many seconds",
    )
    parser.add_argument(
        "--oracle", action="append", default=None, metavar="NAME",
        help="restrict to one oracle (repeatable); see --list-oracles",
    )
    parser.add_argument(
        "--list-oracles", action="store_true", help="list oracle names and exit"
    )
    parser.add_argument(
        "--emit-tests", metavar="PATH", default=None,
        help="append shrunk regression tests for any divergences to PATH",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop the campaign at the first diverging case",
    )
    return parser


def build_batch_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description="Resilient corpus run: analyze every procedure of every "
        "file through the guarded engine, with per-item isolation, retries, "
        "and JSONL checkpoint/resume",
    )
    parser.add_argument("sources", nargs="+", help="MiniLang source files")
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="JSONL checkpoint file: completed items are appended and "
        "skipped on re-runs",
    )
    parser.add_argument(
        "--no-resume", action="store_true",
        help="ignore (and truncate) an existing checkpoint instead of resuming",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="extra batch-level tries for failed items (default 1)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="initial backoff between retries, doubled each time (default 0.05)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-item wall-clock deadline forwarded to the engine",
    )
    parser.add_argument(
        "--step-budget", type=int, default=None, metavar="STEPS",
        help="per-attempt step budget forwarded to the engine",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="analyze items on N worker processes (default 1: serial)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record the batch under an observer and write the merged "
        "trace (spans + metrics footers) as JSONL here; with --workers, "
        "worker shards are stitched under the batch span",
    )
    return parser


def build_trace_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run the guarded engine with tracing + metrics attached "
        "and emit the trace as JSONL (one trace per procedure), or validate "
        "an existing trace file against docs/trace_schema.json",
    )
    parser.add_argument(
        "source", nargs="?", default=None,
        help="MiniLang source file, or '-' for stdin (omit with --synth-seed "
        "or --check)",
    )
    parser.add_argument("--proc", help="trace only the procedure with this name")
    parser.add_argument(
        "--synth-seed", type=int, default=None, metavar="SEED",
        help="trace a synthetic procedure generated from SEED instead of a file",
    )
    parser.add_argument(
        "--synth-size", type=int, default=30, metavar="STATEMENTS",
        help="target statement count for --synth-seed (default 30)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the JSONL trace here (default: stdout)",
    )
    parser.add_argument(
        "--render", action="store_true",
        help="print the indented span tree instead of raw JSONL",
    )
    parser.add_argument(
        "--check", metavar="PATH", default=None,
        help="validate an existing JSONL trace file against the schema and exit",
    )
    parser.add_argument(
        "--schema", metavar="PATH", default=None,
        help="schema to validate against (default: docs/trace_schema.json)",
    )
    parser.add_argument(
        "--aggregate", nargs="+", metavar="PATH", default=None,
        help="aggregate one or more recorded trace files: per-span-name "
        "latency stats and critical paths, as JSONL (or a table with "
        "--render)",
    )
    parser.add_argument(
        "--check-linearity", nargs="+", metavar="PATH", default=None,
        dest="check_linearity",
        help="fit duration-vs-size exponents per analysis phase over the "
        "given trace files; exit 3 if any exceeds --max-exponent",
    )
    parser.add_argument(
        "--max-exponent", type=float, default=None, metavar="X",
        help="scaling-exponent budget for --check-linearity (default 1.3)",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-procedure engine deadline",
    )
    parser.add_argument(
        "--step-budget", type=int, default=None, metavar="STEPS",
        help="per-attempt engine step budget",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="arm per-phase ticker timers (attached to attempt spans)",
    )
    return parser


def trace_main(argv: List[str], out) -> int:
    from repro.config import AnalysisConfig
    from repro.obs.observer import Observer
    from repro.obs.schema import default_schema_path, load_schema, validate_trace
    from repro.obs.trace import read_jsonl, render_trace
    from repro.resilience.engine import run_analysis

    args = build_trace_arg_parser().parse_args(argv)

    # --- aggregate / linearity modes: analytics over recorded traces ------
    if args.aggregate is not None or args.check_linearity is not None:
        import json as _json

        from repro.obs.aggregate import (
            MAX_EXPONENT,
            aggregate_spans,
            critical_paths,
            fit_linearity,
            linearity_violations,
            render_aggregate,
            render_linearity,
        )

        paths = args.aggregate if args.aggregate is not None else args.check_linearity
        record_lists = []
        try:
            for path in paths:
                with open(path) as handle:
                    record_lists.append(read_jsonl(handle))
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO
        if args.check_linearity is not None:
            budget = args.max_exponent if args.max_exponent is not None else MAX_EXPONENT
            fits = fit_linearity(record_lists)
            if args.render:
                print(render_linearity(fits, budget), file=out)
            else:
                for fit in fits:
                    print(_json.dumps(fit, sort_keys=True), file=out)
            violations = linearity_violations(fits, budget)
            if violations:
                names = ", ".join(str(v["name"]) for v in violations)
                print(
                    f"linearity budget exceeded (> {budget:g}): {names}",
                    file=sys.stderr,
                )
                return EXIT_BUDGET_EXCEEDED
            return EXIT_OK
        aggregates = aggregate_spans(record_lists)
        chains = critical_paths(record_lists)
        if args.render:
            print(render_aggregate(aggregates, chains), file=out)
        else:
            for record in aggregates + chains:
                print(_json.dumps(record, sort_keys=True), file=out)
        return EXIT_OK

    # --- check mode: validate an existing trace file ----------------------
    if args.check is not None:
        try:
            schema = load_schema(args.schema or default_schema_path())
            with open(args.check) as handle:
                records = read_jsonl(handle)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO
        problems = validate_trace(records, schema)
        if problems:
            for problem in problems:
                print(f"schema violation: {problem}", file=out)
            print(f"{args.check}: {len(problems)} problem(s)", file=out)
            return EXIT_DIAGNOSTICS
        spans = sum(1 for r in records if r.get("type") == "span")
        print(f"{args.check}: valid ({spans} span(s))", file=out)
        return EXIT_OK

    # --- record mode: run the engine under an observer --------------------
    if (args.source is None) == (args.synth_seed is None):
        print(
            "error: give exactly one of a source file or --synth-seed",
            file=sys.stderr,
        )
        return EXIT_USAGE_IO
    if args.synth_seed is not None:
        from repro.synth.structured import random_lowered_procedure

        procedures = [
            random_lowered_procedure(args.synth_seed, args.synth_size)
        ]
    else:
        if args.source == "-":
            source = sys.stdin.read()
        else:
            try:
                with open(args.source) as handle:
                    source = handle.read()
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return EXIT_USAGE_IO
        try:
            procedures = lower_program(parse_program(source))
        except Exception as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_DIAGNOSTICS
        if args.proc is not None:
            procedures = [p for p in procedures if p.name == args.proc]
            if not procedures:
                print(f"error: no procedure named {args.proc!r}", file=sys.stderr)
                return EXIT_DIAGNOSTICS

    sink = None
    if args.out is not None:
        try:
            sink = open(args.out, "w")
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO
    worst = EXIT_OK
    try:
        for proc in procedures:
            observer = Observer(profile=args.profile)
            config = AnalysisConfig(
                deadline=args.deadline,
                step_budget=args.step_budget,
                observer=observer,
                profile=args.profile,
            )
            result = run_analysis(proc.cfg, config=config)
            if not result.ok:
                print(
                    f"error[analysis]: proc {proc.name}: {result.error}",
                    file=sys.stderr,
                )
                worst = max(worst, EXIT_ANALYSIS_FAILED)
            if args.render:
                records = read_jsonl(observer.recorder.jsonl_lines(
                    observer.metrics_snapshot()
                ))
                print(render_trace(records), file=out)
            else:
                observer.write_jsonl(sink if sink is not None else out)
    finally:
        if sink is not None:
            sink.close()
    return worst


def batch_main(argv: List[str], out) -> int:
    from repro.config import AnalysisConfig
    from repro.obs.observer import Observer
    from repro.resilience.batch import run_batch

    args = build_batch_arg_parser().parse_args(argv)
    if args.retries < 0:
        print("error: --retries must be >= 0", file=sys.stderr)
        return EXIT_USAGE_IO
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return EXIT_USAGE_IO

    def items():
        for path in args.sources:
            try:
                with open(path) as handle:
                    source = handle.read()
                procedures = lower_program(parse_program(source))
            except Exception as error:
                # The whole file is one failed item; the batch moves on.
                message = f"{type(error).__name__}: {error}"
                yield path, _raiser(RuntimeError(f"cannot load {path}: {message}"))
                continue
            for proc in procedures:
                yield f"{path}::{proc.name}", (lambda p=proc: p.cfg)

    observer = Observer() if args.trace is not None else None
    config = AnalysisConfig(
        retries=args.retries,
        backoff=args.backoff,
        deadline=args.deadline,
        step_budget=args.step_budget,
        workers=args.workers,
        observer=observer,
    )
    try:
        report = run_batch(
            items(),
            checkpoint_path=args.checkpoint,
            resume=not args.no_resume,
            config=config,
        )
    except OSError as error:  # checkpoint file unusable
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE_IO
    except ReproError as error:  # e.g. a newer-version checkpoint
        print(f"error[{type(error).__name__}]: {error}", file=sys.stderr)
        return exit_code_for(error)
    if observer is not None:
        try:
            with open(args.trace, "w") as handle:
                observer.write_jsonl(handle)
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO
    print(report.render(), file=out)
    return EXIT_OK if report.ok else EXIT_ANALYSIS_FAILED


def _raiser(error: Exception):
    def thunk():
        raise error

    return thunk


def build_metrics_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro metrics",
        description="Prometheus text exposition (format 0.0.4) from the "
        "metric dumps embedded in recorded trace files",
    )
    parser.add_argument(
        "action", choices=("render", "serve", "lint"),
        help="render: print the exposition; serve: stdlib HTTP exporter "
        "(/metrics, /healthz); lint: check an exposition file's format",
    )
    parser.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="trace JSONL files (render/serve; metric dumps are merged), "
        "or one exposition text file, '-' for stdin (lint)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address for serve"
    )
    parser.add_argument(
        "--port", type=int, default=9464,
        help="bind port for serve (0 picks an ephemeral port; default 9464)",
    )
    return parser


def metrics_main(argv: List[str], out) -> int:
    from repro.obs.export import (
        dumps_from_trace_records,
        lint_exposition,
        registry_from_dumps,
        serve_metrics,
    )
    from repro.obs.trace import read_jsonl

    args = build_metrics_arg_parser().parse_args(argv)

    if args.action == "lint":
        if len(args.paths) != 1:
            print("error: lint takes exactly one exposition file", file=sys.stderr)
            return EXIT_USAGE_IO
        try:
            if args.paths[0] == "-":
                text = sys.stdin.read()
            else:
                with open(args.paths[0]) as handle:
                    text = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO
        problems = lint_exposition(text)
        for problem in problems:
            print(f"exposition lint: {problem}", file=out)
        if problems:
            print(f"{args.paths[0]}: {len(problems)} problem(s)", file=out)
            return EXIT_DIAGNOSTICS
        print(f"{args.paths[0]}: valid exposition", file=out)
        return EXIT_OK

    dumps = []
    try:
        for path in args.paths:
            with open(path) as handle:
                dumps.extend(dumps_from_trace_records(read_jsonl(handle)))
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE_IO
    if not dumps:
        print(
            "error: no metrics_dump records found (record traces with "
            "`repro trace` or `repro batch --trace`)",
            file=sys.stderr,
        )
        return EXIT_DIAGNOSTICS
    registry = registry_from_dumps(dumps)
    if args.action == "render":
        out.write(registry.render_prometheus())
        return EXIT_OK
    serve_metrics(registry, host=args.host, port=args.port, announce=out)
    return EXIT_OK


def build_serve_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Long-lived analysis service: JSON over HTTP with "
        "bounded caches, admission control, load shedding, and graceful "
        "drain on SIGINT/SIGTERM (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8014,
        help="bind port (0 picks an ephemeral port; default 8014)",
    )
    parser.add_argument(
        "--max-cache-bytes", type=int, default=32 * 1024 * 1024, metavar="N",
        help="total byte budget for session caches and the frozen-CSR "
        "registry (default 32MiB)",
    )
    parser.add_argument(
        "--max-clients", type=int, default=64, metavar="N",
        help="client session shards kept before LRU eviction (default 64)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, metavar="RPS",
        help="sustained requests/second before 429s (default: unlimited)",
    )
    parser.add_argument(
        "--burst", type=int, default=None, metavar="N",
        help="token-bucket burst size (default: ~1s of --rate)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="concurrent requests before 503s (default 8)",
    )
    parser.add_argument(
        "--soft-inflight", type=int, default=None, metavar="N",
        help="concurrent requests past which work degrades "
        "(default: half of --max-inflight)",
    )
    parser.add_argument(
        "--default-deadline", type=float, default=5.0, metavar="SECONDS",
        help="engine deadline when the request names none (default 5)",
    )
    parser.add_argument(
        "--max-deadline", type=float, default=30.0, metavar="SECONDS",
        help="cap on request-supplied deadlines (default 30)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="flush per-request spans + metrics dump here on drain",
    )
    return parser


def serve_main(argv: List[str], out) -> int:
    from repro.service.server import AnalysisServer, ServiceConfig

    args = build_serve_arg_parser().parse_args(argv)
    if args.max_inflight < 1:
        print("error: --max-inflight must be >= 1", file=sys.stderr)
        return EXIT_USAGE_IO
    if args.max_cache_bytes < 0:
        print("error: --max-cache-bytes must be >= 0", file=sys.stderr)
        return EXIT_USAGE_IO
    try:
        server = AnalysisServer(
            ServiceConfig(
                host=args.host,
                port=args.port,
                max_cache_bytes=args.max_cache_bytes,
                max_clients=args.max_clients,
                rate=args.rate,
                burst=args.burst,
                max_inflight=args.max_inflight,
                soft_inflight=args.soft_inflight,
                default_deadline=args.default_deadline,
                max_deadline=args.max_deadline,
                trace_path=args.trace,
            )
        )
        server.serve_forever(announce=out)
    except (OSError, ValueError) as error:  # bad bind address, bad knobs
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE_IO
    print("drained cleanly", file=out)
    return EXIT_OK


def build_soak_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro soak",
        description="Deterministic chaos soak of the analysis service: "
        "concurrent seeded clients, fault injection, shed/drain probes, "
        "and per-size-band p99 SLO rows (see docs/ROBUSTNESS.md)",
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="workload duration (default 10)",
    )
    parser.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="concurrent client threads (default 8)",
    )
    parser.add_argument("--seed", type=int, default=0, help="workload + fault seed")
    parser.add_argument(
        "--fault-rate", type=float, default=0.02, metavar="P",
        help="per-execution fault firing probability (default 0.02)",
    )
    parser.add_argument(
        "--edit-rate", type=float, default=0.25, metavar="P",
        help="fraction of workload requests that POST /apply_delta edits "
        "instead of /run_analysis (default 0.25; 0 = pure analyze)",
    )
    parser.add_argument(
        "--max-cache-bytes", type=int, default=8 * 1024 * 1024, metavar="N",
        help="service cache budget under test (default 8MiB)",
    )
    parser.add_argument(
        "--max-inflight", type=int, default=12, metavar="N",
        help="service inflight cap under test (default 12)",
    )
    parser.add_argument(
        "--rate", type=float, default=400.0, metavar="RPS",
        help="service rate limit under test (default 400)",
    )
    parser.add_argument(
        "--burst", type=int, default=100, metavar="N",
        help="token-bucket burst under test (default 100)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="write the full JSON report here",
    )
    parser.add_argument(
        "--update-bench", metavar="PATH", default=None,
        help="write the SLO rows into this BENCH_perf.json (key service_slo)",
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="flush the service's request trace here on drain",
    )
    return parser


def soak_main(argv: List[str], out) -> int:
    import json as _json

    from repro.service.soak import SoakConfig, run_soak, update_bench_perf

    args = build_soak_arg_parser().parse_args(argv)
    if args.clients < 1 or args.duration <= 0:
        print("error: --clients must be >= 1 and --duration > 0", file=sys.stderr)
        return EXIT_USAGE_IO
    if not 0.0 <= args.edit_rate <= 1.0:
        print("error: --edit-rate must be within [0, 1]", file=sys.stderr)
        return EXIT_USAGE_IO
    config = SoakConfig(
        duration=args.duration,
        clients=args.clients,
        seed=args.seed,
        fault_rate=args.fault_rate,
        edit_rate=args.edit_rate,
        max_cache_bytes=args.max_cache_bytes,
        max_inflight=args.max_inflight,
        rate=args.rate,
        burst=args.burst,
        trace_path=args.trace,
    )
    report = run_soak(config, out=out)
    try:
        if args.out is not None:
            with open(args.out, "w") as handle:
                _json.dump(report.to_json(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.update_bench is not None:
            update_bench_perf(report, args.update_bench)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE_IO
    return EXIT_OK if report.passed else EXIT_ANALYSIS_FAILED


def fuzz_main(argv: List[str], out) -> int:
    from repro.fuzz.oracles import ALL_ORACLES, ORACLES_BY_NAME
    from repro.fuzz.runner import run_fuzz

    args = build_fuzz_arg_parser().parse_args(argv)
    if args.list_oracles:
        for oracle in ALL_ORACLES:
            print(oracle.name, file=out)
        return EXIT_OK
    oracles = None
    if args.oracle:
        unknown = [name for name in args.oracle if name not in ORACLES_BY_NAME]
        if unknown:
            print(f"error: unknown oracle(s) {', '.join(unknown)}", file=sys.stderr)
            return EXIT_USAGE_IO
        oracles = [ORACLES_BY_NAME[name] for name in args.oracle]

    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        size=args.size,
        oracles=oracles,
        time_budget=args.budget,
        fail_fast=args.fail_fast,
    )
    print(report.render(), file=out)
    if args.emit_tests and report.divergences:
        with open(args.emit_tests, "a") as handle:
            for item in report.divergences:
                handle.write("\n\n" + item.test_source)
        print(f"wrote {len(report.divergences)} regression test(s) to {args.emit_tests}", file=out)
    return EXIT_OK if report.ok else EXIT_DIAGNOSTICS


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = sys.stdout if out is None else out
    argv = sys.argv[1:] if argv is None else argv
    try:
        if argv and argv[0] == "fuzz":
            return fuzz_main(argv[1:], out)
        if argv and argv[0] == "batch":
            return batch_main(argv[1:], out)
        if argv and argv[0] == "bench":
            from repro.analysis.bench import bench_main

            return bench_main(argv[1:], out)
        if argv and argv[0] == "trace":
            return trace_main(argv[1:], out)
        if argv and argv[0] == "metrics":
            return metrics_main(argv[1:], out)
        if argv and argv[0] == "serve":
            return serve_main(argv[1:], out)
        if argv and argv[0] == "soak":
            return soak_main(argv[1:], out)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe: the Unix
        # convention is a silent exit, not a traceback.
        return EXIT_OK
    args = build_arg_parser().parse_args(argv)

    if args.source == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USAGE_IO

    try:
        procedures = lower_program(parse_program(source))
    except Exception as error:  # lex/parse/lowering diagnostics
        print(f"error: {error}", file=sys.stderr)
        return EXIT_DIAGNOSTICS

    if args.proc is not None:
        procedures = [p for p in procedures if p.name == args.proc]
        if not procedures:
            print(f"error: no procedure named {args.proc!r}", file=sys.stderr)
            return EXIT_DIAGNOSTICS

    worst = EXIT_OK
    for proc in procedures:
        worst = max(worst, _report_one(proc, args, out))
    return worst


def _report_one(proc: LoweredProcedure, args, out) -> int:
    """Analyze one procedure; never lets a traceback escape.

    Failures are printed as one structured ``error[class]`` line naming the
    procedure, and mapped to the documented exit codes: 3 for an invalid
    CFG, 4 for any analysis failure (guard trip, internal invariant
    violation, divergence) on a valid one.
    """
    try:
        _report(proc, args, out)
        return EXIT_OK
    except InvalidCFGError as error:
        print(f"error[invalid-cfg]: proc {proc.name}: {error}", file=sys.stderr)
        return EXIT_INVALID_CFG
    except ResourceExhausted as error:
        print(f"error[resource]: proc {proc.name}: {error}", file=sys.stderr)
        return EXIT_ANALYSIS_FAILED
    except ReproError as error:
        print(f"error[analysis]: proc {proc.name}: {error}", file=sys.stderr)
        return exit_code_for(error)
    except Exception as error:  # internal invariant violations etc.
        print(
            f"error[internal]: proc {proc.name}: {type(error).__name__}: {error}",
            file=sys.stderr,
        )
        return EXIT_ANALYSIS_FAILED


def _report(proc: LoweredProcedure, args, out) -> None:
    session = session_for(proc.cfg)
    pst = session.pst()
    print(
        f"proc {proc.name}: {proc.cfg.num_nodes} blocks, {proc.cfg.num_edges} edges, "
        f"{proc.num_statements()} statements, {len(pst.canonical_regions())} SESE regions, "
        f"max depth {pst.max_depth()}",
        file=out,
    )
    if args.dot:
        print(cfg_to_dot(proc.cfg, title=proc.name), file=out)
    if args.regions:
        kinds = classify_pst(pst)
        for region in pst.canonical_regions():
            print(f"  {region.describe()}  depth={region.depth}  kind={kinds[region].value}", file=out)
    if args.pst:
        kinds = classify_pst(pst)

        def show(region, indent):
            label = "root" if region.is_root else region.describe()
            print("  " * indent + f"- {label} [{kinds[region].value}]", file=out)
            for child in region.children:
                show(child, indent + 1)

        show(pst.root, 1)
        if args.dot:
            print(pst_to_dot(pst, title=f"{proc.name}.pst"), file=out)
    if args.control_regions:
        for group in session.control_regions():
            print(f"  control region: {group}", file=out)
    if args.ssa:
        placement = place_phis_pst(proc, pst).phi_blocks
        ssa = construct_ssa(proc, placement=placement)
        problems = verify_ssa(ssa)
        if problems:
            raise AnalysisError(
                f"SSA verification failed: {'; '.join(map(str, problems))}"
            )
        for block in ssa.cfg.nodes:
            statements = ssa.blocks.get(block, [])
            if statements:
                print(f"  {block}:", file=out)
                for stmt in statements:
                    print(f"      {stmt!r}", file=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
