"""Command-line interface: run the paper's analyses on MiniLang sources.

Usage (also via ``python -m repro``)::

    python -m repro program.mini                # summary of every procedure
    python -m repro program.mini --pst          # print the PST
    python -m repro program.mini --regions      # canonical SESE regions
    python -m repro program.mini --control-regions
    python -m repro program.mini --ssa          # SSA form (PST φ-placement)
    python -m repro program.mini --dot          # CFG as Graphviz DOT
    python -m repro program.mini --proc name    # restrict to one procedure

With ``-`` as the file name, source is read from stdin.

The ``fuzz`` subcommand runs the differential fuzzing harness (see
:mod:`repro.fuzz` and ``docs/TESTING.md``)::

    python -m repro fuzz --seed 0 --count 500   # a full campaign
    python -m repro fuzz --oracle dominators/matrix --budget 10
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cfg.dot import cfg_to_dot, pst_to_dot
from repro.controldep import control_regions
from repro.core.pst import build_pst
from repro.core.region_kinds import classify_pst
from repro.ir import LoweredProcedure
from repro.lang import lower_program, parse_program
from repro.ssa.pst_phi import place_phis_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.verify import verify_ssa


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Program Structure Tree analyses (Johnson, Pearson & Pingali, PLDI 1994)",
    )
    parser.add_argument("source", help="MiniLang source file, or '-' for stdin")
    parser.add_argument("--proc", help="analyze only the procedure with this name")
    parser.add_argument("--pst", action="store_true", help="print the program structure tree")
    parser.add_argument("--regions", action="store_true", help="list canonical SESE regions")
    parser.add_argument(
        "--control-regions", action="store_true", help="print control regions (O(E) algorithm)"
    )
    parser.add_argument("--ssa", action="store_true", help="print the SSA form")
    parser.add_argument("--dot", action="store_true", help="print the CFG in Graphviz DOT")
    return parser


def build_fuzz_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description="Differential fuzzing: cross-check every fast/slow algorithm pair",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed (case i uses seed+i)")
    parser.add_argument("--count", type=int, default=100, help="number of CFGs to generate")
    parser.add_argument("--size", type=int, default=10, help="approximate interior node budget")
    parser.add_argument(
        "--budget", type=float, default=None, metavar="SECONDS",
        help="stop the campaign early after this many seconds",
    )
    parser.add_argument(
        "--oracle", action="append", default=None, metavar="NAME",
        help="restrict to one oracle (repeatable); see --list-oracles",
    )
    parser.add_argument(
        "--list-oracles", action="store_true", help="list oracle names and exit"
    )
    parser.add_argument(
        "--emit-tests", metavar="PATH", default=None,
        help="append shrunk regression tests for any divergences to PATH",
    )
    return parser


def fuzz_main(argv: List[str], out) -> int:
    from repro.fuzz.oracles import ALL_ORACLES, ORACLES_BY_NAME
    from repro.fuzz.runner import run_fuzz

    args = build_fuzz_arg_parser().parse_args(argv)
    if args.list_oracles:
        for oracle in ALL_ORACLES:
            print(oracle.name, file=out)
        return 0
    oracles = None
    if args.oracle:
        unknown = [name for name in args.oracle if name not in ORACLES_BY_NAME]
        if unknown:
            print(f"error: unknown oracle(s) {', '.join(unknown)}", file=sys.stderr)
            return 2
        oracles = [ORACLES_BY_NAME[name] for name in args.oracle]

    report = run_fuzz(
        seed=args.seed,
        count=args.count,
        size=args.size,
        oracles=oracles,
        time_budget=args.budget,
    )
    print(report.render(), file=out)
    if args.emit_tests and report.divergences:
        with open(args.emit_tests, "a") as handle:
            for item in report.divergences:
                handle.write("\n\n" + item.test_source)
        print(f"wrote {len(report.divergences)} regression test(s) to {args.emit_tests}", file=out)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = sys.stdout if out is None else out
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:], out)
    args = build_arg_parser().parse_args(argv)

    if args.source == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.source) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    try:
        procedures = lower_program(parse_program(source))
    except Exception as error:  # lex/parse/lowering diagnostics
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.proc is not None:
        procedures = [p for p in procedures if p.name == args.proc]
        if not procedures:
            print(f"error: no procedure named {args.proc!r}", file=sys.stderr)
            return 1

    for proc in procedures:
        _report(proc, args, out)
    return 0


def _report(proc: LoweredProcedure, args, out) -> None:
    pst = build_pst(proc.cfg)
    print(
        f"proc {proc.name}: {proc.cfg.num_nodes} blocks, {proc.cfg.num_edges} edges, "
        f"{proc.num_statements()} statements, {len(pst.canonical_regions())} SESE regions, "
        f"max depth {pst.max_depth()}",
        file=out,
    )
    if args.dot:
        print(cfg_to_dot(proc.cfg, title=proc.name), file=out)
    if args.regions:
        kinds = classify_pst(pst)
        for region in pst.canonical_regions():
            print(f"  {region.describe()}  depth={region.depth}  kind={kinds[region].value}", file=out)
    if args.pst:
        kinds = classify_pst(pst)

        def show(region, indent):
            label = "root" if region.is_root else region.describe()
            print("  " * indent + f"- {label} [{kinds[region].value}]", file=out)
            for child in region.children:
                show(child, indent + 1)

        show(pst.root, 1)
        if args.dot:
            print(pst_to_dot(pst, title=f"{proc.name}.pst"), file=out)
    if args.control_regions:
        for group in control_regions(proc.cfg):
            print(f"  control region: {group}", file=out)
    if args.ssa:
        placement = place_phis_pst(proc, pst).phi_blocks
        ssa = construct_ssa(proc, placement=placement)
        problems = verify_ssa(ssa)
        assert not problems, problems
        for block in ssa.cfg.nodes:
            statements = ssa.blocks.get(block, [])
            if statements:
                print(f"  {block}:", file=out)
                for stmt in statements:
                    print(f"      {stmt!r}", file=out)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
