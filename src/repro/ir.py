"""A minimal statement-level IR attached to CFG basic blocks.

The PST itself is a pure graph construct, but the paper's applications
(SSA conversion, sparse dataflow) need statements with defs and uses.  This
module provides that substrate: a :class:`LoweredProcedure` couples a
block-level CFG with an ordered list of statements per block.

Statements are deliberately simple -- assignments, conditional-branch
guards, returns, and (after SSA conversion) φ-functions -- because that is
all the paper's experiments require.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.cfg.graph import CFG, Edge, NodeId


class Stmt:
    """Base statement: defines at most one variable, uses several."""

    __slots__ = ()

    @property
    def target(self) -> Optional[str]:
        return None

    @property
    def uses(self) -> Tuple[str, ...]:
        return ()


class Assign(Stmt):
    """``target = <expr over uses>``; ``text`` is a display form of the rhs.

    ``expr`` optionally carries the structured right-hand side (a
    :mod:`repro.lang.astnodes` expression) for analyses that interpret
    values, e.g. constant propagation.  Analyses that only need def/use
    information ignore it.
    """

    __slots__ = ("_target", "_uses", "text", "expr")

    def __init__(self, target: str, uses: Sequence[str], text: str = "", expr: object = None):
        self._target = target
        self._uses = tuple(uses)
        self.text = text or f"f({', '.join(self._uses)})"
        self.expr = expr

    @property
    def target(self) -> Optional[str]:
        return self._target

    @property
    def uses(self) -> Tuple[str, ...]:
        return self._uses

    def __repr__(self) -> str:
        return f"{self._target} = {self.text}"


class Branch(Stmt):
    """A block terminator guarding a multi-way branch; uses only."""

    __slots__ = ("_uses", "text", "expr")

    def __init__(self, uses: Sequence[str], text: str = "", expr: object = None):
        self._uses = tuple(uses)
        self.text = text or f"branch({', '.join(self._uses)})"
        self.expr = expr

    @property
    def uses(self) -> Tuple[str, ...]:
        return self._uses

    def __repr__(self) -> str:
        return f"if {self.text}"


class Ret(Stmt):
    """Procedure return; ``expr`` optionally carries the returned expression."""

    __slots__ = ("_uses", "expr")

    def __init__(self, uses: Sequence[str], expr: object = None):
        self._uses = tuple(uses)
        self.expr = expr

    @property
    def uses(self) -> Tuple[str, ...]:
        return self._uses

    def __repr__(self) -> str:
        return f"return {', '.join(self._uses)}"


class Copy(Stmt):
    """``target = source``: the compiler-inserted move of out-of-SSA
    translation.  Kept distinct from :class:`Assign` so interpreters and
    traces can treat it as transparent plumbing rather than a user-level
    assignment."""

    __slots__ = ("_target", "source")

    def __init__(self, target: str, source: str):
        self._target = target
        self.source = source

    @property
    def target(self) -> Optional[str]:
        return self._target

    @property
    def uses(self) -> Tuple[str, ...]:
        return (self.source,)

    def __repr__(self) -> str:
        return f"{self._target} = {self.source}  (copy)"


class Phi(Stmt):
    """An SSA φ-function: ``target = φ(args per incoming edge)``."""

    __slots__ = ("_target", "args")

    def __init__(self, target: str, args: Optional[Dict[Edge, str]] = None):
        self._target = target
        self.args: Dict[Edge, str] = args if args is not None else {}

    @property
    def target(self) -> Optional[str]:
        return self._target

    def set_target(self, name: str) -> None:
        """Rename the φ target (used by SSA renaming)."""
        self._target = name

    @property
    def uses(self) -> Tuple[str, ...]:
        return tuple(self.args.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{e.source}:{v}" for e, v in self.args.items())
        return f"{self._target} = phi({inner})"


class LoweredProcedure:
    """A block-level CFG plus per-block statement lists."""

    def __init__(self, name: str, cfg: CFG, blocks: Optional[Dict[NodeId, List[Stmt]]] = None):
        self.name = name
        self.cfg = cfg
        self.blocks: Dict[NodeId, List[Stmt]] = blocks if blocks is not None else {}
        for node in cfg.nodes:
            self.blocks.setdefault(node, [])

    # ------------------------------------------------------------------
    def statements(self) -> Iterable[Tuple[NodeId, Stmt]]:
        """All ``(block, statement)`` pairs in block order."""
        for node in self.cfg.nodes:
            for stmt in self.blocks.get(node, []):
                yield node, stmt

    def variables(self) -> List[str]:
        """All variable names, defined or used, sorted."""
        names: Set[str] = set()
        for _, stmt in self.statements():
            if stmt.target is not None:
                names.add(stmt.target)
            names.update(stmt.uses)
        return sorted(names)

    def defs_of(self, var: str) -> List[NodeId]:
        """Blocks containing at least one definition of ``var``."""
        out: List[NodeId] = []
        for node in self.cfg.nodes:
            if any(stmt.target == var for stmt in self.blocks.get(node, [])):
                out.append(node)
        return out

    def uses_of(self, var: str) -> List[NodeId]:
        """Blocks containing at least one use of ``var``."""
        out: List[NodeId] = []
        for node in self.cfg.nodes:
            if any(var in stmt.uses for stmt in self.blocks.get(node, [])):
                out.append(node)
        return out

    def num_statements(self) -> int:
        return sum(len(stmts) for stmts in self.blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LoweredProcedure({self.name!r}, blocks={self.cfg.num_nodes}, stmts={self.num_statements()})"


def statement_level(proc: "LoweredProcedure") -> "LoweredProcedure":
    """Explode a block-level procedure into its statement-level CFG.

    Every block with k statements becomes a chain of k single-statement
    nodes ``(block, 0) .. (block, k-1)``; empty blocks (including the
    synthetic start/end) stay single nodes.  This is the granularity the
    paper's §6.2 measurements use: in statement-level CFGs, straight-line
    runs form chains of trivial SESE regions that a quick propagation graph
    can bypass individually.
    """
    cfg = proc.cfg
    out_cfg = CFG(name=f"{cfg.name}.stmts")
    lengths = {node: max(1, len(proc.blocks.get(node, []))) for node in cfg.nodes}

    def first(node: NodeId) -> NodeId:
        return node if lengths[node] == 1 else (node, 0)

    def last(node: NodeId) -> NodeId:
        return node if lengths[node] == 1 else (node, lengths[node] - 1)

    blocks: Dict[NodeId, List[Stmt]] = {}
    for node in cfg.nodes:
        statements = proc.blocks.get(node, [])
        if lengths[node] == 1:
            out_cfg.add_node(node)
            blocks[node] = list(statements)
        else:
            for index, stmt in enumerate(statements):
                out_cfg.add_node((node, index))
                blocks[(node, index)] = [stmt]
                if index > 0:
                    out_cfg.add_edge((node, index - 1), (node, index))
    for edge in cfg.edges:
        out_cfg.add_edge(last(edge.source), first(edge.target), edge.label)
    out_cfg.start = first(cfg.start)
    out_cfg.end = last(cfg.end)
    return LoweredProcedure(f"{proc.name}.stmts", out_cfg, blocks)
