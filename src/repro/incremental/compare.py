"""Order-insensitive fingerprints for differential verification.

Incrementally maintained artifacts are allowed to differ from a
recompute-from-scratch in *representation* -- class ids are allocated from
a different counter, region ids are fresh, sibling order in ``_canonical``
reflects splice history rather than one global DFS -- while having to agree
exactly in *meaning*.  These helpers canonicalize both sides to the
meaning: the edge partition as a set of eid-sets, and the PST as a
recursively sorted shape keyed by boundary-edge eids.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.cfg.graph import Edge
from repro.core.pst import ProgramStructureTree
from repro.core.sese import SESERegion


def partition_fingerprint(class_of: Dict[Edge, int]) -> FrozenSet[FrozenSet[int]]:
    """The edge partition as a set of eid-sets (class ids erased)."""
    groups: Dict[int, List[int]] = {}
    for edge, cls in class_of.items():
        groups.setdefault(cls, []).append(edge.eid)
    return frozenset(frozenset(eids) for eids in groups.values())


def region_fingerprint(region: SESERegion) -> tuple:
    """One region's shape: boundary eids, owned nodes, sorted children."""
    entry = None if region.entry is None else region.entry.eid
    exit_ = None if region.exit is None else region.exit.eid
    children = tuple(
        sorted(
            (region_fingerprint(child) for child in region.children),
            key=lambda fp: (fp[0], fp[1]),
        )
    )
    return (entry, exit_, frozenset(region.own_nodes), children)


def pst_fingerprint(pst: ProgramStructureTree) -> tuple:
    """The whole tree's shape, insensitive to sibling and id ordering."""
    return region_fingerprint(pst.root)


def diff_artifacts(
    maintained_classes: Dict[Edge, int],
    maintained_pst: ProgramStructureTree,
    scratch_classes: Dict[Edge, int],
    scratch_pst: ProgramStructureTree,
) -> Optional[str]:
    """``None`` when maintained == scratch, else a human-readable diff."""
    fast_p = partition_fingerprint(maintained_classes)
    slow_p = partition_fingerprint(scratch_classes)
    if fast_p != slow_p:
        only_fast = sorted(sorted(s) for s in fast_p - slow_p)
        only_slow = sorted(sorted(s) for s in slow_p - fast_p)
        return (
            f"cycle-equivalence partitions differ: incremental-only classes "
            f"{only_fast} vs scratch-only {only_slow} (edge ids)"
        )
    if pst_fingerprint(maintained_pst) != pst_fingerprint(scratch_pst):
        fast_pairs = _canonical_pairs(maintained_pst)
        slow_pairs = _canonical_pairs(scratch_pst)
        if fast_pairs != slow_pairs:
            return (
                f"canonical regions differ: incremental {fast_pairs} != "
                f"scratch {slow_pairs} (entry/exit edge-id pairs)"
            )
        return "PST node ownership or nesting differs (same canonical regions)"
    return None


def _canonical_pairs(pst: ProgramStructureTree) -> List[Tuple[int, int]]:
    return sorted(
        (region.entry.eid, region.exit.eid) for region in pst.canonical_regions()
    )
