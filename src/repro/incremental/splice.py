"""Regional recomputation and PST subtree splicing (§6.3).

The paper's empirical claim (Figs 5/6) is that PSTs are broad and shallow,
so most edits touch one small canonical region.  This module exploits it:
given a cached PST and an edit whose touched nodes all lie inside one
canonical SESE region ``R = (a, b)``, :func:`splice_region` re-runs the
full cycle-equivalence + PST pipeline on a *regional* CFG and splices the
result back into the cached tree, leaving everything outside ``R``
untouched.

Why this is sound (the argument the edit-stream fuzz oracle re-checks
case by case):

* An edit interior to ``R`` adds no boundary crossings, so ``(a, b)``
  remains a SESE pair: every path into the interior still enters via
  ``a``, every path out still exits via ``b``.
* Cycle equivalence of edges *outside* ``R`` depends on the exterior
  structure plus the mere existence of an interior ``a``-to-``b`` path
  (any cycle through ``R`` is an interior traversal glued to an exterior
  return path, and which exterior edges it contains does not depend on
  the traversal chosen).  Interior edits change neither, so exterior
  classes -- including whether ``a`` is equivalent to any exterior edge
  -- are preserved.  If the edit severs every interior path the regional
  graph fails validation and the delta is rejected.
* An interior edge can only be equivalent to ``a`` itself (when every
  interior ``a``-to-``b`` path crosses it -- a chain separator) or to
  other interior edges: equivalence with an exterior edge would force
  every interior traversal through it, which is the separator case.
* Hence the global partition after the edit = exterior classes unchanged
  + the boundary class possibly gaining/losing interior separators + a
  fresh interior partition; and the canonical pairing turns ``R`` into
  the chain ``(a, d1), (d1, d2) .. (dk, b)``.

The regional CFG ``Rg`` has synthetic ``$entry$``/``$exit$`` nodes
standing for the cut boundary edges; its PST root owns exactly those two
sentinels and its root children are exactly the chain that replaces ``R``.
Anything that violates these expectations raises :class:`RegionEscape`,
which the caller (:class:`~repro.incremental.session.EditSession`) treats
as "fall back to full recompute" -- never an error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.validate import check_cfg
from repro.core.cycle_equiv import CycleEquivalence, cycle_equivalence_of_cfg
from repro.core.pst import REGION_ENTRY, REGION_EXIT, ProgramStructureTree, build_pst
from repro.core.sese import SESERegion
from repro.incremental.delta import DeltaValidationError

# Fault-injection hook (repro.resilience.faults installs/clears a plan here;
# see site "incremental/skip-splice").  Always None in production.
_FAULTS = None


class RegionEscape(Exception):
    """The edit cannot be absorbed by a regional recompute.

    Raised when an edit's effects are not provably confined to one
    canonical region (boundary-crossing edges, sentinel collisions, a
    regional PST with unexpected shape, or an injected fault).  The caller
    degrades to full recompute; this exception never reaches users.
    """


@dataclass
class SpliceOutcome:
    """What a successful splice changed, for downstream invalidation."""

    parent: SESERegion                      #: the spliced subtree's parent
    chain: List[SESERegion]                 #: new children replacing the region
    new_regions: List[SESERegion] = field(default_factory=list)  #: preorder
    removed_region_ids: List[int] = field(default_factory=list)
    interior_size: int = 0                  #: nodes in the recomputed region


def nca_region(a: SESERegion, b: SESERegion) -> SESERegion:
    """Nearest common ancestor of two PST regions (by parent/depth walk)."""
    while a is not b:
        if a.depth >= b.depth:
            assert a.parent is not None
            a = a.parent
        else:
            assert b.parent is not None
            b = b.parent
    return a


def locate_region(
    pst: ProgramStructureTree, touched: Sequence[NodeId]
) -> Optional[SESERegion]:
    """Smallest canonical region containing every touched node, or ``None``.

    Nodes absent from the PST (just added by the delta) carry no anchor of
    their own -- their neighbors, also in ``touched``, anchor them.  Returns
    ``None`` when the smallest enclosing region is the root pseudo-region
    (the edit touches top-level structure; only a full recompute is safe).
    """
    anchor: Optional[SESERegion] = None
    for node in touched:
        region = pst.region_of_node.get(node)
        if region is None:
            continue
        anchor = region if anchor is None else nca_region(anchor, region)
        if anchor.is_root:
            return None
    if anchor is None or anchor.is_root:
        return None
    return anchor


def _regional_cfg(
    pst: ProgramStructureTree,
    region: SESERegion,
    added_nodes: Sequence[NodeId],
) -> Tuple[CFG, Dict[Edge, Edge], Set[NodeId]]:
    """Build ``Rg`` for ``region``'s (post-edit) interior.

    Returns ``(rg, edge_map, interior)`` where ``edge_map`` maps each edge
    of ``rg`` to the original edge it stands for (the synthetic boundary
    edges map to ``region.entry``/``region.exit``).  The in/out boundary
    scans are defensive: the caller guarantees the edit was interior, so a
    trip means the cached tree disagrees with the graph -- escape and let
    the full recompute resolve it.
    """
    g = pst.cfg
    entry, exit_ = region.entry, region.exit
    assert entry is not None and exit_ is not None
    ordered: List[NodeId] = [n for n in region.nodes() if g.has_node(n)]
    seen = set(ordered)
    for node in added_nodes:
        if node not in seen:
            ordered.append(node)
            seen.add(node)
    interior = seen
    if REGION_ENTRY in interior or REGION_EXIT in interior:
        raise RegionEscape("interior node collides with a boundary sentinel")
    if entry.target not in interior or exit_.source not in interior:
        raise RegionEscape("region boundary nodes are not interior")
    if entry.source in interior or exit_.target in interior:
        raise RegionEscape("region boundary edges do not cross the interior cut")

    rg = CFG(start=REGION_ENTRY, end=REGION_EXIT, name=f"{g.name}.inc{region.region_id}")
    for node in ordered:
        rg.add_node(node)
    edge_map: Dict[Edge, Edge] = {}
    edge_map[rg.add_edge(REGION_ENTRY, entry.target, entry.label)] = entry
    for node in ordered:
        for edge in g.iter_out_edges(node):
            if edge is exit_:
                edge_map[rg.add_edge(edge.source, REGION_EXIT, edge.label)] = exit_
            elif edge.target in interior:
                edge_map[rg.add_edge(edge.source, edge.target, edge.label)] = edge
            else:
                raise RegionEscape(
                    f"edge {edge.source!r}->{edge.target!r} leaves the region"
                )
        for edge in g.iter_in_edges(node):
            if edge is not entry and edge.source not in interior:
                raise RegionEscape(
                    f"edge {edge.source!r}->{edge.target!r} enters the region"
                )
    return rg, edge_map, interior


def splice_region(
    pst: ProgramStructureTree,
    equiv: CycleEquivalence,
    region: SESERegion,
    added_nodes: Sequence[NodeId],
    removed_nodes: Sequence[NodeId],
    alloc_class_id: Callable[[], int],
    alloc_region_id: Callable[[], int],
) -> SpliceOutcome:
    """Recompute ``region``'s subtree from its post-edit interior and splice.

    Mutates ``pst`` (tree structure, node/edge indices, caches) and
    ``equiv.class_of`` (interior edges get their new classes; the boundary
    class keeps its old id) in place.  All conversion work happens *before*
    the first mutation, so a raised :class:`RegionEscape` or
    :class:`DeltaValidationError` leaves both untouched.

    ``removed_nodes`` must already be gone from ``pst.cfg`` (the delta layer
    applied the mutation first); they are dropped from the node index here.
    """
    faults = _FAULTS
    if faults is not None and faults.should_fire("incremental/skip-splice"):
        raise RegionEscape("injected fault: incremental/skip-splice")

    parent = region.parent
    if parent is None:
        raise RegionEscape("cannot splice the root pseudo-region")

    rg, edge_map, interior = _regional_cfg(pst, region, added_nodes)
    problems = check_cfg(rg)
    if problems:
        raise DeltaValidationError(
            f"delta leaves region {region.describe()} invalid: "
            + "; ".join(problems),
            problems=problems,
        )
    rg_equiv = cycle_equivalence_of_cfg(rg, validate=False)
    rg_pst = build_pst(rg, rg_equiv)
    if set(rg_pst.root.own_nodes) != {REGION_ENTRY, REGION_EXIT}:
        raise RegionEscape("regional PST root owns more than the sentinels")
    if not rg_pst.root.children:
        raise RegionEscape("regional PST has no chain to splice")

    # ------------------------------------------------------------------
    # conversion (no mutation yet): regional regions/classes -> global
    # ------------------------------------------------------------------
    rg_class_of = rg_equiv.class_of
    entry_edge = region.entry
    assert entry_edge is not None
    boundary_class = rg_class_of[next(iter(rg.iter_out_edges(REGION_ENTRY)))]
    old_entry_class = equiv.class_of[entry_edge]
    class_map: Dict[int, int] = {boundary_class: old_entry_class}

    def to_global_class(cls: int) -> int:
        mapped = class_map.get(cls)
        if mapped is None:
            mapped = class_map[cls] = alloc_class_id()
        return mapped

    new_regions: List[SESERegion] = []
    chain: List[SESERegion] = []
    # Iterative preorder conversion (regional trees can nest deeply).
    stack: List[Tuple[SESERegion, Optional[SESERegion]]] = [
        (child, None) for child in reversed(rg_pst.root.children)
    ]
    while stack:
        src, dst_parent = stack.pop()
        assert src.entry is not None and src.exit is not None
        converted = SESERegion(
            entry=edge_map[src.entry],
            exit=edge_map[src.exit],
            class_id=to_global_class(rg_class_of[src.entry]),
            region_id=alloc_region_id(),
        )
        converted.own_nodes = list(src.own_nodes)
        if dst_parent is None:
            converted.parent = parent
            converted.depth = parent.depth + 1
            chain.append(converted)
        else:
            converted.parent = dst_parent
            converted.depth = dst_parent.depth + 1
            dst_parent.children.append(converted)
        new_regions.append(converted)
        for child in reversed(src.children):
            stack.append((child, converted))

    edge_class_updates = {
        edge_map[rg_edge]: to_global_class(cls)
        for rg_edge, cls in rg_class_of.items()
    }

    # ------------------------------------------------------------------
    # splice (pure mutation; cannot fail)
    # ------------------------------------------------------------------
    old_regions = [region] + region.descendants()
    index = next(i for i, c in enumerate(parent.children) if c is region)
    parent.children[index : index + 1] = chain

    class_of = equiv.class_of
    for edge, cls in edge_class_updates.items():
        class_of[edge] = cls
    equiv.positional = None  # stale positional view, rebuilt on full recompute

    for old in old_regions:
        pst.entry_region.pop(old.entry, None)
        pst.exit_region.pop(old.exit, None)
        for node in old.own_nodes:
            pst.region_of_node.pop(node, None)
    for node in removed_nodes:
        pst.region_of_node.pop(node, None)
    for fresh in new_regions:
        pst.entry_region[fresh.entry] = fresh
        pst.exit_region[fresh.exit] = fresh
        for node in fresh.own_nodes:
            pst.region_of_node[node] = fresh

    # O(1) instead of a full-list patch: every non-root region is
    # canonical, so the tree is the authority and the flat list can be
    # rebuilt lazily (ProgramStructureTree.canonical_regions).
    pst._canonical = None
    pst._edges_by_level = None
    pst._collapsed_cache.clear()

    return SpliceOutcome(
        parent=parent,
        chain=chain,
        new_regions=new_regions,
        removed_region_ids=[old.region_id for old in old_regions],
        interior_size=len(interior),
    )
