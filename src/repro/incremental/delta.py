"""Atomic, validated CFG edit deltas with exact undo.

A :class:`Delta` is a declarative description of one structural edit --
add/remove an edge, add a node with its connecting edges, remove a node
with everything incident -- that :func:`apply_delta_to_cfg` turns into an
all-or-nothing mutation of a live :class:`~repro.cfg.graph.CFG`:

* **static validation first**: a delta that references unknown nodes,
  gives ``end`` a successor, gives ``start`` a predecessor, or names a
  missing/ambiguous edge raises :class:`DeltaValidationError` *before any
  mutation*;
* **an undo log second**: every primitive mutation records its exact
  inverse (including list positions), so :func:`undo_applied` restores the
  graph byte-for-byte -- same ``Edge`` objects, same adjacency order, same
  ``_edges`` order -- which matters because DFS determinism (and therefore
  PST construction) depends on insertion order.

Deltas whose *result* violates Definition 1 (e.g. removing the only path
through a node) pass this layer -- the damage is only visible globally --
and are rejected with a rollback by the maintenance layer on top
(:class:`~repro.incremental.session.EditSession`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, InvalidCFGError, NodeId


class DeltaValidationError(InvalidCFGError):
    """A delta was rejected: malformed, or its result violates Definition 1.

    Subclasses :class:`~repro.cfg.graph.InvalidCFGError`, so it inherits
    the library's structured exit code and existing ``except`` clauses.
    ``problems`` carries the individual violations when the rejection came
    from a full-graph validity check.
    """

    def __init__(self, message: str, problems: Optional[List[str]] = None):
        super().__init__(message)
        self.problems: List[str] = list(problems or [])


# ----------------------------------------------------------------------
# delta types
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class AddEdge:
    """Add one edge between two *existing* nodes (parallel edges legal)."""

    source: NodeId
    target: NodeId
    label: Optional[str] = None
    op = "add_edge"

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "source": self.source, "target": self.target}
        if self.label is not None:
            out["label"] = self.label
        return out


@dataclass(frozen=True)
class RemoveEdge:
    """Remove one edge; ``eid`` disambiguates parallel edges."""

    source: NodeId
    target: NodeId
    eid: Optional[int] = None
    op = "remove_edge"

    def to_json(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "source": self.source, "target": self.target}
        if self.eid is not None:
            out["eid"] = self.eid
        return out


@dataclass(frozen=True)
class AddNode:
    """Add a new node plus its connecting edges in one atomic step.

    ``preds``/``succs`` name existing nodes; at least one of each is
    required so the new node lies on a start-to-end path (Definition 1) --
    which makes an ``AddNode`` the only delta that can never invalidate a
    valid graph.
    """

    node: NodeId
    preds: Tuple[NodeId, ...] = ()
    succs: Tuple[NodeId, ...] = ()
    op = "add_node"

    def __post_init__(self) -> None:
        # Normalize any iterable so deltas stay hashable/comparable.
        object.__setattr__(self, "preds", tuple(self.preds))
        object.__setattr__(self, "succs", tuple(self.succs))

    def to_json(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "node": self.node,
            "preds": list(self.preds),
            "succs": list(self.succs),
        }


@dataclass(frozen=True)
class RemoveNode:
    """Remove a node and every incident edge (never ``start``/``end``)."""

    node: NodeId
    op = "remove_node"

    def to_json(self) -> Dict[str, Any]:
        return {"op": self.op, "node": self.node}


#: Every concrete delta type, keyed by its wire-format ``op``.
DELTA_TYPES = {cls.op: cls for cls in (AddEdge, RemoveEdge, AddNode, RemoveNode)}


def delta_from_json(spec: Any):
    """Decode one delta from its wire format (see each type's ``to_json``)."""
    if not isinstance(spec, dict):
        raise DeltaValidationError(f"delta must be an object, got {type(spec).__name__}")
    op = spec.get("op")
    if op not in DELTA_TYPES:
        known = ", ".join(sorted(DELTA_TYPES))
        raise DeltaValidationError(f"unknown delta op {op!r} (expected one of: {known})")
    try:
        if op == "add_edge":
            return AddEdge(spec["source"], spec["target"], spec.get("label"))
        if op == "remove_edge":
            eid = spec.get("eid")
            if eid is not None and not isinstance(eid, int):
                raise DeltaValidationError("remove_edge eid must be an integer")
            return RemoveEdge(spec["source"], spec["target"], eid)
        if op == "add_node":
            return AddNode(spec["node"], tuple(spec.get("preds", ())), tuple(spec.get("succs", ())))
        return RemoveNode(spec["node"])
    except KeyError as missing:
        raise DeltaValidationError(f"delta op {op!r} is missing key {missing.args[0]!r}") from None
    except TypeError as error:
        raise DeltaValidationError(f"malformed delta for op {op!r}: {error}") from None


# ----------------------------------------------------------------------
# application with an exact undo log
# ----------------------------------------------------------------------

@dataclass
class AppliedDelta:
    """One applied delta plus everything needed to reverse or re-analyze it.

    ``undo_ops`` is the primitive-inverse log (replayed in reverse by
    :func:`undo_applied`).  ``touched_nodes`` are the nodes whose incident
    structure changed -- the anchors the incremental maintainer uses to
    locate the smallest enclosing SESE region.
    """

    delta: Any
    undo_ops: List[tuple] = field(default_factory=list)
    touched_nodes: Tuple[NodeId, ...] = ()
    added_edges: Tuple[Edge, ...] = ()
    removed_edges: Tuple[Edge, ...] = ()
    added_nodes: Tuple[NodeId, ...] = ()
    removed_nodes: Tuple[NodeId, ...] = ()

    def inverse_view(self) -> "AppliedDelta":
        """The applied record as seen *after* an undo (adds/removes swapped).

        The maintenance layer re-analyzes an undo exactly like a forward
        delta; only the added/removed bookkeeping flips.
        """
        return AppliedDelta(
            delta=self.delta,
            undo_ops=[],
            touched_nodes=self.touched_nodes,
            added_edges=self.removed_edges,
            removed_edges=self.added_edges,
            added_nodes=self.removed_nodes,
            removed_nodes=self.added_nodes,
        )


def _edge_list_index(edges: List[Edge], edge: Edge) -> int:
    """Index of ``edge`` in ``edges``, exploiting the eid-sorted invariant.

    ``CFG._edges`` is appended with monotonically increasing eids, removals
    preserve order, and undo re-inserts at the recorded index -- so the
    list stays sorted by eid and a binary search finds the position in
    O(log E).  Falls back to a linear scan if the invariant ever breaks
    (e.g. a hand-built graph), trading speed for correctness.
    """
    lo, hi = 0, len(edges)
    eid = edge.eid
    while lo < hi:
        mid = (lo + hi) // 2
        if edges[mid].eid < eid:
            lo = mid + 1
        else:
            hi = mid
    if lo < len(edges) and edges[lo] is edge:
        return lo
    return edges.index(edge)


def _record_add_edge(cfg: CFG, ops: List[tuple], source: NodeId, target: NodeId, label) -> Edge:
    edge = cfg.add_edge(source, target, label)
    ops.append(("pop_edge", edge))
    return edge


def _record_remove_edge(cfg: CFG, ops: List[tuple], edge: Edge) -> None:
    e_idx = _edge_list_index(cfg._edges, edge)
    s_list = cfg._succs[edge.source]
    p_list = cfg._preds[edge.target]
    s_idx = s_list.index(edge)
    p_idx = p_list.index(edge)
    del cfg._edges[e_idx]
    del s_list[s_idx]
    del p_list[p_idx]
    cfg._version += 1
    ops.append(("insert_edge", edge, e_idx, s_idx, p_idx))


def _require_node(cfg: CFG, node: NodeId, role: str) -> None:
    if not cfg.has_node(node):
        raise DeltaValidationError(
            f"{role} {node!r} is not a node of the graph "
            "(use an add_node delta to introduce new nodes)"
        )


def apply_delta_to_cfg(cfg: CFG, delta) -> AppliedDelta:
    """Validate ``delta`` statically, then mutate ``cfg``, logging inverses.

    Raises :class:`DeltaValidationError` with the graph untouched when the
    delta is statically ill-formed.  Whole-graph validity of the *result*
    is the caller's concern (it needs regional or full analysis anyway).
    """
    ops: List[tuple] = []
    if isinstance(delta, AddEdge):
        _require_node(cfg, delta.source, "edge source")
        _require_node(cfg, delta.target, "edge target")
        if delta.source == cfg.end:
            raise DeltaValidationError("end must have no successors (Definition 1)")
        if delta.target == cfg.start:
            raise DeltaValidationError("start must have no predecessors (Definition 1)")
        edge = _record_add_edge(cfg, ops, delta.source, delta.target, delta.label)
        return AppliedDelta(
            delta=delta,
            undo_ops=ops,
            touched_nodes=(delta.source, delta.target),
            added_edges=(edge,),
        )

    if isinstance(delta, RemoveEdge):
        _require_node(cfg, delta.source, "edge source")
        candidates = cfg.find_edges(delta.source, delta.target)
        if delta.eid is not None:
            candidates = [e for e in candidates if e.eid == delta.eid]
        if not candidates:
            raise DeltaValidationError(
                f"no edge {delta.source!r}->{delta.target!r}"
                + (f" with eid {delta.eid}" if delta.eid is not None else "")
            )
        if len(candidates) > 1:
            eids = sorted(e.eid for e in candidates)
            raise DeltaValidationError(
                f"{len(candidates)} parallel edges {delta.source!r}->{delta.target!r} "
                f"(eids {eids}); pass eid to disambiguate"
            )
        edge = candidates[0]
        _record_remove_edge(cfg, ops, edge)
        return AppliedDelta(
            delta=delta,
            undo_ops=ops,
            touched_nodes=(delta.source, delta.target),
            removed_edges=(edge,),
        )

    if isinstance(delta, AddNode):
        if cfg.has_node(delta.node):
            raise DeltaValidationError(f"node {delta.node!r} already exists")
        if not delta.preds or not delta.succs:
            raise DeltaValidationError(
                "a new node needs at least one predecessor and one successor "
                "so it lies on a start-to-end path (Definition 1)"
            )
        for pred in delta.preds:
            _require_node(cfg, pred, "predecessor")
            if pred == cfg.end:
                raise DeltaValidationError("end must have no successors (Definition 1)")
        for succ in delta.succs:
            _require_node(cfg, succ, "successor")
            if succ == cfg.start:
                raise DeltaValidationError("start must have no predecessors (Definition 1)")
        cfg.add_node(delta.node)
        ops.append(("del_node", delta.node))
        added = []
        for pred in delta.preds:
            added.append(_record_add_edge(cfg, ops, pred, delta.node, None))
        for succ in delta.succs:
            added.append(_record_add_edge(cfg, ops, delta.node, succ, None))
        return AppliedDelta(
            delta=delta,
            undo_ops=ops,
            touched_nodes=(delta.node,) + delta.preds + delta.succs,
            added_edges=tuple(added),
            added_nodes=(delta.node,),
        )

    if isinstance(delta, RemoveNode):
        _require_node(cfg, delta.node, "node")
        if delta.node == cfg.start or delta.node == cfg.end:
            raise DeltaValidationError("cannot remove the start or end node")
        incident: List[Edge] = list(cfg.iter_in_edges(delta.node))
        for edge in cfg.iter_out_edges(delta.node):
            if not edge.is_self_loop:  # self-loops already in the in-edge list
                incident.append(edge)
        neighbors: List[NodeId] = []
        for edge in incident:
            other = edge.source if edge.target == delta.node else edge.target
            if other != delta.node and other not in neighbors:
                neighbors.append(other)
        for edge in incident:
            _record_remove_edge(cfg, ops, edge)
        del cfg._succs[delta.node]
        del cfg._preds[delta.node]
        cfg._version += 1
        ops.append(("add_node", delta.node))
        return AppliedDelta(
            delta=delta,
            undo_ops=ops,
            touched_nodes=(delta.node,) + tuple(neighbors),
            removed_edges=tuple(incident),
            removed_nodes=(delta.node,),
        )

    raise DeltaValidationError(f"unknown delta type {type(delta).__name__}")


def undo_applied(cfg: CFG, applied: AppliedDelta) -> None:
    """Replay the inverse log in reverse, restoring the exact prior graph.

    The same ``Edge`` objects return to the same positions in ``_edges``
    and the adjacency lists (only the node-dict insertion position of a
    restored node is not preserved -- semantically irrelevant).  Must be
    called in LIFO discipline relative to other mutations.
    """
    for op in reversed(applied.undo_ops):
        kind = op[0]
        if kind == "pop_edge":
            edge = op[1]
            for lst in (cfg._edges, cfg._succs[edge.source], cfg._preds[edge.target]):
                if lst and lst[-1] is edge:
                    lst.pop()
                else:
                    lst.remove(edge)
        elif kind == "insert_edge":
            _, edge, e_idx, s_idx, p_idx = op
            cfg._edges.insert(e_idx, edge)
            cfg._succs[edge.source].insert(s_idx, edge)
            cfg._preds[edge.target].insert(p_idx, edge)
        elif kind == "add_node":
            node = op[1]
            cfg._succs[node] = []
            cfg._preds[node] = []
        elif kind == "del_node":
            node = op[1]
            del cfg._succs[node]
            del cfg._preds[node]
        else:  # pragma: no cover - log corruption
            raise AssertionError(f"unknown undo op {kind!r}")
    cfg._version += 1
