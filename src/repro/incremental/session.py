"""The edit-session API: validated CFG deltas with maintained analyses.

:class:`EditSession` is the top-level entry point of the incremental
layer::

    from repro import EditSession, build_cfg

    session = EditSession(cfg)
    session.add_edge("b", "d")            # convenience spelling
    session.apply(RemoveEdge("a", "c"))   # explicit delta
    pst = session.pst                     # maintained, not recomputed
    session.undo()                        # exact rollback, analyses follow

Per accepted delta the session locates the smallest canonical SESE region
enclosing the touched nodes in the cached PST, recomputes cycle
equivalence and the PST subtree regionally, and splices the result in
(:mod:`repro.incremental.splice`); the wrapped
:class:`~repro.kernel.session.AnalysisSession` keeps the maintained
``pst``/``equiv`` artifacts warm while dominators and friends go stale
per-key and lazily recompute.  Anything the splice path cannot absorb --
the edit escapes to the root, a defensive invariant trips, an injected
fault fires -- degrades to a verified full recompute; it never raises.
Invalid deltas (statically malformed, or leaving the graph in violation
of Definition 1) raise :class:`~repro.incremental.delta.DeltaValidationError`
with the graph rolled back exactly.

``verify_incremental_rate`` samples accepted deltas for differential
verification against recompute-from-scratch (the production arm of the
``incremental/edit-stream`` fuzz oracle); a mismatch adopts the scratch
result and increments ``stats.verify_mismatches``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.cfg.graph import CFG, NodeId
from repro.cfg.validate import check_cfg, validate_cfg
from repro.config import _UNSET, AnalysisConfig, coalesce_config
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.core.pst import build_pst
from repro.incremental.compare import diff_artifacts
from repro.incremental.delta import (
    AddEdge,
    AddNode,
    AppliedDelta,
    DeltaValidationError,
    RemoveEdge,
    RemoveNode,
    apply_delta_to_cfg,
    delta_from_json,
    undo_applied,
)
from repro.incremental.splice import locate_region, splice_region
from repro.kernel.session import AnalysisSession

#: Artifacts the splice path maintains; everything else is dropped eagerly
#: after a structural edit (per-key stamps would catch them lazily anyway,
#: but dropping releases the memory of superseded dominator maps etc.).
_MAINTAINED = ("equiv", "pst")
_DERIVED = ("dfs", "dom", "pdom", "cr")


@dataclass
class EditStats:
    """Counters describing how the session has handled its deltas."""

    deltas_applied: int = 0
    rejected: int = 0
    splices: int = 0
    full_recomputes: int = 0
    region_escapes: int = 0
    oversize_regions: int = 0
    splice_fallbacks: int = 0
    verify_checks: int = 0
    verify_mismatches: int = 0
    undos: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}


class EditSession:
    """Atomic, validated edits over one CFG with maintained analyses.

    ``config`` follows the standard :class:`~repro.config.AnalysisConfig`
    surface (``incremental``, ``verify_incremental_rate``, ``observer``,
    ``max_cache_bytes``); with no config at all, ``incremental`` defaults
    *on* -- an edit session exists to maintain, not recompute.  The
    ``incremental=`` / ``verify_incremental_rate=`` keywords are the
    deprecated legacy spelling and warn like every other entry point.
    """

    def __init__(
        self,
        cfg: CFG,
        config: Optional[AnalysisConfig] = None,
        *,
        incremental: Any = _UNSET,
        verify_incremental_rate: Any = _UNSET,
    ):
        resolved = coalesce_config(
            config,
            "EditSession",
            {
                "incremental": incremental,
                "verify_incremental_rate": verify_incremental_rate,
            },
        )
        if config is None and incremental is _UNSET:
            resolved = resolved.replace(incremental=True)
        self.config = resolved
        self.cfg = cfg
        validate_cfg(cfg)
        self.session = AnalysisSession(
            cfg,
            observer=resolved.observer,
            max_cache_bytes=resolved.max_cache_bytes,
        )
        self.stats = EditStats()
        self.equiv = None
        self.pst = None
        self.last_verify_detail: Optional[str] = None
        self._log: List[AppliedDelta] = []
        self._dataflow: List[Any] = []
        self._next_class_id = 0
        self._next_region_id = 0
        self._verify_rng = random.Random(0xED17)
        self._full(validate=False)

    # ------------------------------------------------------------------
    # the edit surface
    # ------------------------------------------------------------------
    def apply(self, delta) -> AppliedDelta:
        """Apply one delta atomically, maintaining every cached analysis.

        Raises :class:`DeltaValidationError` -- with the graph and all
        analyses restored exactly -- when the delta is malformed or its
        result violates Definition 1.
        """
        try:
            if isinstance(delta, dict):
                delta = delta_from_json(delta)
            applied = apply_delta_to_cfg(self.cfg, delta)
        except DeltaValidationError:
            # Statically rejected: nothing was mutated, just count it.
            self.stats.rejected += 1
            raise
        try:
            self._maintain(applied)
        except DeltaValidationError:
            undo_applied(self.cfg, applied)
            # The maintained artifacts still describe the restored graph;
            # restamp them so the rejection costs nothing downstream.
            self.session.put_artifact("equiv", self.equiv)
            self.session.put_artifact("pst", self.pst)
            self.stats.rejected += 1
            raise
        self.stats.deltas_applied += 1
        self._log.append(applied)
        return applied

    def undo(self) -> Any:
        """Reverse the most recent applied delta; analyses follow along.

        Returns the delta that was undone.  The inverse edit goes through
        the same maintenance path as a forward delta (it cannot be
        rejected: the restored graph was valid by construction).
        """
        if not self._log:
            raise DeltaValidationError("nothing to undo")
        applied = self._log.pop()
        undo_applied(self.cfg, applied)
        self.stats.undos += 1
        self._maintain(applied.inverse_view())
        return applied.delta

    def add_edge(self, source: NodeId, target: NodeId, label=None) -> AppliedDelta:
        return self.apply(AddEdge(source, target, label))

    def remove_edge(self, source: NodeId, target: NodeId, eid=None) -> AppliedDelta:
        return self.apply(RemoveEdge(source, target, eid))

    def add_node(self, node: NodeId, preds, succs) -> AppliedDelta:
        return self.apply(AddNode(node, tuple(preds), tuple(succs)))

    def remove_node(self, node: NodeId) -> AppliedDelta:
        return self.apply(RemoveNode(node))

    @property
    def applied_deltas(self) -> int:
        return len(self._log)

    # ------------------------------------------------------------------
    # analyses (delegated to the wrapped AnalysisSession)
    # ------------------------------------------------------------------
    def dominators(self):
        return self.session.dominators()

    def postdominators(self):
        return self.session.postdominators()

    def control_regions(self):
        return self.session.control_regions()

    def sese_regions(self):
        return self.pst.canonical_regions()

    def attach_dataflow(self, problem):
        """Attach an incrementally maintained dataflow engine.

        Returns a :class:`~repro.dataflow.incremental.IncrementalDataflow`
        the session keeps current across structural edits (regional
        re-summarization after a splice, full rebuild otherwise).
        """
        from repro.dataflow.incremental import IncrementalDataflow

        engine = IncrementalDataflow(self.cfg, problem, pst=self.pst)
        self._dataflow.append(engine)
        return engine

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def _maintain(self, applied: AppliedDelta) -> None:
        if not self.config.incremental:
            self._full(validate=True)
            self.stats.full_recomputes += 1
            self._rebuild_dataflow()
            return
        region = locate_region(self.pst, applied.touched_nodes)
        if region is None:
            self.stats.region_escapes += 1
            self._full(validate=True)
            self.stats.full_recomputes += 1
            self._rebuild_dataflow()
            return
        # A splice costs a constant factor more per node than the scratch
        # pipeline (regional copy, subtree conversion, canonical surgery),
        # so once the enclosing region covers a large fraction of the graph
        # a full recompute is strictly cheaper.  Degrade deliberately; the
        # region.size() probe is a pure traversal, bounded by full-recompute
        # cost itself.
        if region.size() > max(32, self.cfg.num_nodes // 4):
            self.stats.oversize_regions += 1
            self._full(validate=True)
            self.stats.full_recomputes += 1
            self._rebuild_dataflow()
            return
        try:
            outcome = splice_region(
                self.pst,
                self.equiv,
                region,
                applied.added_nodes,
                applied.removed_nodes,
                self._alloc_class_id,
                self._alloc_region_id,
            )
        except DeltaValidationError:
            raise
        except Exception:
            # RegionEscape, a tripped invariant, an injected fault: the
            # verified-fallback ladder -- degrade, never raise.
            self.stats.splice_fallbacks += 1
            self._full(validate=True)
            self.stats.full_recomputes += 1
            self._rebuild_dataflow()
            return
        self.stats.splices += 1
        class_of = self.equiv.class_of
        for edge in applied.removed_edges:
            class_of.pop(edge, None)
        self.session.put_artifact("equiv", self.equiv)
        self.session.put_artifact("pst", self.pst)
        self.session.invalidate(keys=list(_DERIVED))
        for engine in self._dataflow:
            try:
                engine.structural_update(
                    outcome.new_regions,
                    outcome.removed_region_ids,
                    outcome.parent,
                    removed_nodes=applied.removed_nodes,
                )
            except Exception:
                engine.rebuild(self.pst)
        self._maybe_verify()

    def _full(self, validate: bool) -> None:
        """Recompute everything from scratch (bootstrap and fallback path)."""
        if validate:
            problems = check_cfg(self.cfg)
            if problems:
                raise DeltaValidationError(
                    "delta leaves the graph invalid: " + "; ".join(problems),
                    problems=problems,
                )
        equiv = cycle_equivalence_of_cfg(self.cfg, validate=False)
        class_of = equiv.class_of  # materialize before any later mutation
        pst = build_pst(self.cfg, equiv)
        self.equiv = equiv
        self.pst = pst
        self._next_class_id = max(class_of.values(), default=0) + 1
        self._next_region_id = (
            max((r.region_id for r in pst.canonical_regions()), default=0) + 1
        )
        self.session.invalidate()
        self.session.put_artifact("equiv", equiv)
        self.session.put_artifact("pst", pst)

    def _rebuild_dataflow(self) -> None:
        for engine in self._dataflow:
            engine.rebuild(self.pst)

    def _alloc_class_id(self) -> int:
        value = self._next_class_id
        self._next_class_id += 1
        return value

    def _alloc_region_id(self) -> int:
        value = self._next_region_id
        self._next_region_id += 1
        return value

    def _maybe_verify(self) -> None:
        rate = self.config.verify_incremental_rate
        if rate <= 0.0 or self._verify_rng.random() >= rate:
            return
        self.stats.verify_checks += 1
        scratch_equiv = cycle_equivalence_of_cfg(self.cfg, validate=False)
        scratch_pst = build_pst(self.cfg, scratch_equiv)
        detail = diff_artifacts(
            self.equiv.class_of, self.pst, scratch_equiv.class_of, scratch_pst
        )
        if detail is None:
            return
        # Adopt the scratch truth; count, never raise.
        self.stats.verify_mismatches += 1
        self.last_verify_detail = detail
        scratch_equiv.class_of  # materialize
        self.equiv = scratch_equiv
        self.pst = scratch_pst
        self._next_class_id = max(scratch_equiv.class_of.values(), default=0) + 1
        self._next_region_id = (
            max((r.region_id for r in scratch_pst.canonical_regions()), default=0)
            + 1
        )
        self.session.invalidate()
        self.session.put_artifact("equiv", scratch_equiv)
        self.session.put_artifact("pst", scratch_pst)
        self._rebuild_dataflow()


def apply_delta(session: EditSession, delta) -> AppliedDelta:
    """Apply one delta (an object or its JSON wire form) to a session.

    The functional spelling of :meth:`EditSession.apply`, promoted to the
    top-level ``repro`` namespace alongside :class:`EditSession`.
    """
    return session.apply(delta)
