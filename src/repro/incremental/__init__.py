"""Incremental analysis maintenance under CFG edit deltas (§6.3).

Public surface (also promoted to the top-level ``repro`` namespace):

* :class:`~repro.incremental.session.EditSession` -- atomic, validated
  edits with maintained PST/cycle-equivalence artifacts;
* :func:`~repro.incremental.session.apply_delta` -- functional spelling;
* the delta types :class:`AddEdge`, :class:`RemoveEdge`, :class:`AddNode`,
  :class:`RemoveNode` and :class:`DeltaValidationError`;
* :class:`~repro.dataflow.incremental.IncrementalDataflow` re-exported
  here as its canonical home (structural-edit support lives in this
  layer's maintenance loop).
"""

from repro.dataflow.incremental import IncrementalDataflow
from repro.incremental.delta import (
    AddEdge,
    AddNode,
    AppliedDelta,
    DeltaValidationError,
    RemoveEdge,
    RemoveNode,
    delta_from_json,
)
from repro.incremental.session import EditSession, EditStats, apply_delta

__all__ = [
    "AddEdge",
    "AddNode",
    "AppliedDelta",
    "DeltaValidationError",
    "EditSession",
    "EditStats",
    "IncrementalDataflow",
    "RemoveEdge",
    "RemoveNode",
    "apply_delta",
    "delta_from_json",
]
