"""The :class:`Observer`: one object tying tracing + metrics together.

Instrumented code never imports recorders or registries directly; it asks
for the *ambient* observer::

    from repro.obs import observer as _obs

    o = _obs._CURRENT
    if o is not None:
        with o.span("cycle_equiv", n_edges=cfg.num_edges):
            ...

The module-global ``_CURRENT`` is ``None`` by default -- the "no-op
recorder" -- so the disabled cost on a hot path is one module-attribute
load plus an ``is None`` test per *call* (never per loop iteration).  The
extended ``benchmarks/bench_guard_overhead.py`` holds this within the
existing <5% guard budget.

An observer is installed either ambiently (:func:`observe` /
:func:`install`) or explicitly through
:class:`repro.config.AnalysisConfig` -- ``run_analysis`` installs
``config.observer`` for the duration of the call so one trace covers the
fast path, every retry, and the slow fallback, with kernel-level child
spans attached in the right place.

Spans degrade gracefully: ``Observer(trace=False)`` hands out a shared
no-op span, so call sites never branch on whether tracing is on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, TraceRecorder


class _NoopSpan:
    """Shared do-nothing span for observers with tracing disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def fail(self, error: str) -> "_NoopSpan":
        return self

    def finish(self, error: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Observer:
    """Tracing + metrics + profiling switches for one observed scope.

    ``trace`` enables span recording, ``metrics`` the instrument registry,
    ``profile`` the :meth:`repro.resilience.guards.Ticker.mark` phase
    timers (the engine arms a profile list on every ticker it creates when
    this is set).  All three default to on -- an *installed* observer is
    assumed to be wanted; the cheap path is not installing one.
    """

    __slots__ = ("recorder", "metrics", "profile")

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ):
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(trace_id=trace_id, clock=clock) if trace else None
        )
        self.metrics: Optional[MetricsRegistry] = MetricsRegistry() if metrics else None
        self.profile = profile

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Start a span (or the shared no-op when tracing is off)."""
        recorder = self.recorder
        if recorder is None:
            return NOOP_SPAN
        return recorder.start(name, **attrs)

    # ------------------------------------------------------------------
    # metrics conveniences
    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1.0, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.counter(name, **labels).inc(n)

    def observe_value(self, name: str, value: float, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.gauge(name, **labels).set(value)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Optional[Dict[str, object]]:
        return self.metrics.snapshot() if self.metrics is not None else None

    def write_jsonl(self, handle) -> int:
        """Dump the trace (and metrics footers) as JSONL; returns lines.

        Both metric footers travel: the human ``{"type": "metrics"}``
        snapshot and the mergeable ``{"type": "metrics_dump"}`` record
        that ``repro metrics render`` feeds back into a registry.
        """
        if self.recorder is None:
            raise ValueError("this observer has tracing disabled")
        dump = self.metrics.dump() if self.metrics is not None else None
        return self.recorder.write_jsonl(handle, self.metrics_snapshot(), dump)

    # ------------------------------------------------------------------
    # cross-process shards (the run_batch --workers N protocol)
    # ------------------------------------------------------------------
    def spec(self) -> Dict[str, bool]:
        """The picklable switch set a worker needs to build a shard.

        Observers themselves never cross the process boundary -- a worker
        constructs a fresh shard from this spec, records into it, and ships
        a :meth:`shard_snapshot` back for the parent to :meth:`absorb`.
        """
        return {
            "trace": self.recorder is not None,
            "metrics": self.metrics is not None,
            "profile": self.profile,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, bool]) -> "Observer":
        return cls(
            trace=bool(spec.get("trace")),
            metrics=bool(spec.get("metrics")),
            profile=bool(spec.get("profile")),
        )

    def shard_snapshot(self) -> Dict[str, object]:
        """Serialize this shard for the trip back through the pool.

        Spans travel in their JSONL wire form (the same bytes
        ``write_jsonl`` would emit), metrics as the registry's
        full-fidelity :meth:`~repro.obs.metrics.MetricsRegistry.dump`.
        """
        import os

        return {
            "pid": os.getpid(),
            "spans": (
                list(self.recorder.jsonl_lines()) if self.recorder is not None else []
            ),
            "metrics": self.metrics.dump() if self.metrics is not None else None,
        }

    def absorb(self, snapshot: Dict[str, object], **root_attrs: object) -> None:
        """Merge a worker shard's :meth:`shard_snapshot` into this observer.

        Span records are re-parented under the currently open span (see
        :meth:`~repro.obs.trace.TraceRecorder.absorb`) with ``root_attrs``
        plus the worker's pid stamped on the shard's root spans; metric
        instruments merge per :meth:`~repro.obs.metrics.MetricsRegistry.merge`.
        """
        from repro.obs.trace import read_jsonl

        lines = snapshot.get("spans") or []
        if self.recorder is not None and lines:
            self.recorder.absorb(
                read_jsonl(lines), worker_pid=snapshot.get("pid"), **root_attrs
            )
        dump = snapshot.get("metrics")
        if self.metrics is not None and dump is not None:
            self.metrics.merge(dump)


# ----------------------------------------------------------------------
# the ambient observer
# ----------------------------------------------------------------------

#: The installed observer, or None (the no-op default).  Hot paths read
#: this module attribute directly; everything else goes through current().
_CURRENT: Optional[Observer] = None


def current() -> Optional[Observer]:
    """The ambient observer, or ``None`` when observation is off."""
    return _CURRENT


def install(observer: Optional[Observer]) -> Optional[Observer]:
    """Install ``observer`` ambiently; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = observer
    return previous


@contextmanager
def observe(observer: Optional[Observer]) -> Iterator[Optional[Observer]]:
    """Ambiently install ``observer`` for a ``with`` block.

    ``observe(None)`` leaves whatever is installed untouched (it does
    *not* disable an outer observer), so callers can pass an optional
    observer straight through.
    """
    if observer is None:
        yield _CURRENT
        return
    previous = install(observer)
    try:
        yield observer
    finally:
        install(previous)
