"""The :class:`Observer`: one object tying tracing + metrics together.

Instrumented code never imports recorders or registries directly; it asks
for the *ambient* observer::

    from repro.obs import observer as _obs

    o = _obs._CURRENT
    if o is not None:
        with o.span("cycle_equiv", edges=cfg.num_edges):
            ...

The module-global ``_CURRENT`` is ``None`` by default -- the "no-op
recorder" -- so the disabled cost on a hot path is one module-attribute
load plus an ``is None`` test per *call* (never per loop iteration).  The
extended ``benchmarks/bench_guard_overhead.py`` holds this within the
existing <5% guard budget.

An observer is installed either ambiently (:func:`observe` /
:func:`install`) or explicitly through
:class:`repro.config.AnalysisConfig` -- ``run_analysis`` installs
``config.observer`` for the duration of the call so one trace covers the
fast path, every retry, and the slow fallback, with kernel-level child
spans attached in the right place.

Spans degrade gracefully: ``Observer(trace=False)`` hands out a shared
no-op span, so call sites never branch on whether tracing is on.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Span, TraceRecorder


class _NoopSpan:
    """Shared do-nothing span for observers with tracing disabled."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NoopSpan":
        return self

    def fail(self, error: str) -> "_NoopSpan":
        return self

    def finish(self, error: Optional[str] = None) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Observer:
    """Tracing + metrics + profiling switches for one observed scope.

    ``trace`` enables span recording, ``metrics`` the instrument registry,
    ``profile`` the :meth:`repro.resilience.guards.Ticker.mark` phase
    timers (the engine arms a profile list on every ticker it creates when
    this is set).  All three default to on -- an *installed* observer is
    assumed to be wanted; the cheap path is not installing one.
    """

    __slots__ = ("recorder", "metrics", "profile")

    def __init__(
        self,
        *,
        trace: bool = True,
        metrics: bool = True,
        profile: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        trace_id: Optional[str] = None,
    ):
        self.recorder: Optional[TraceRecorder] = (
            TraceRecorder(trace_id=trace_id, clock=clock) if trace else None
        )
        self.metrics: Optional[MetricsRegistry] = MetricsRegistry() if metrics else None
        self.profile = profile

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object):
        """Start a span (or the shared no-op when tracing is off)."""
        recorder = self.recorder
        if recorder is None:
            return NOOP_SPAN
        return recorder.start(name, **attrs)

    # ------------------------------------------------------------------
    # metrics conveniences
    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1.0, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.counter(name, **labels).inc(n)

    def observe_value(self, name: str, value: float, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.histogram(name, **labels).observe(value)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        registry = self.metrics
        if registry is not None:
            registry.gauge(name, **labels).set(value)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> Optional[Dict[str, object]]:
        return self.metrics.snapshot() if self.metrics is not None else None

    def write_jsonl(self, handle) -> int:
        """Dump the trace (and metrics footer) as JSONL; returns lines."""
        if self.recorder is None:
            raise ValueError("this observer has tracing disabled")
        return self.recorder.write_jsonl(handle, self.metrics_snapshot())


# ----------------------------------------------------------------------
# the ambient observer
# ----------------------------------------------------------------------

#: The installed observer, or None (the no-op default).  Hot paths read
#: this module attribute directly; everything else goes through current().
_CURRENT: Optional[Observer] = None


def current() -> Optional[Observer]:
    """The ambient observer, or ``None`` when observation is off."""
    return _CURRENT


def install(observer: Optional[Observer]) -> Optional[Observer]:
    """Install ``observer`` ambiently; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = observer
    return previous


@contextmanager
def observe(observer: Optional[Observer]) -> Iterator[Optional[Observer]]:
    """Ambiently install ``observer`` for a ``with`` block.

    ``observe(None)`` leaves whatever is installed untouched (it does
    *not* disable an outer observer), so callers can pass an optional
    observer straight through.
    """
    if observer is None:
        yield _CURRENT
        return
    previous = install(observer)
    try:
        yield observer
    finally:
        install(previous)
