"""Trace analytics: turn recorded JSONL traces into answers.

PR 4 made traces recordable; this module makes them *legible*.  Three
consumers, all fed by parsed record lists (:func:`repro.obs.trace.read_jsonl`,
one list per trace file):

* :func:`aggregate_spans` -- per-span-name latency statistics
  (count/mean/p50/p99/max) plus the self-time vs. child-time split, the
  flame-graph numbers without the flame graph.  Emitted by
  ``repro trace --aggregate`` as ``{"type": "aggregate"}`` JSONL records
  (``docs/trace_schema.json`` describes the format).
* :func:`critical_paths` -- the heaviest root-to-leaf chain of each trace
  (``{"type": "critical_path"}`` records): where an optimization would
  actually shorten the run.
* :func:`fit_linearity` + :func:`linearity_violations` -- the empirical
  watchdog for the paper's central O(E) claim.  Dispatch-wrapper spans
  carry ``n_nodes``/``n_edges`` attributes, so span duration vs.
  ``|N| + |E|`` is a measurable scaling curve; a log-log least-squares fit
  per span name turns it into one exponent, and ``repro trace
  --check-linearity`` exits with the budget-exceeded code when any phase's
  exponent drifts past the threshold (default :data:`MAX_EXPONENT`).
  This is ``benchmarks/bench_scaling_linearity.py``'s per-edge-band check
  promoted to a continuously enforceable gate over production traces.

Everything here is arithmetic over parsed dicts -- no clocks, no I/O -- so
the CLI and tests drive it with synthetic records directly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.metrics import percentile_of

#: Default ceiling for a fitted duration-vs-size exponent.  A truly linear
#: phase fits below 1.0 on small sizes (constant per-call overhead damps
#: the slope); 1.3 tolerates allocator/cache superlinearity while still
#: catching an accidentally quadratic phase long before it fits 2.0.
MAX_EXPONENT = 1.3

#: A phase needs this many distinct sizes, spanning at least this ratio
#: between largest and smallest, before an exponent is fit at all.
MIN_SIZES = 3
MIN_SPREAD = 4.0

#: Floor for measured durations before taking logs: perf_counter deltas
#: are rounded to nanoseconds on emission, so zero is representable.
_MIN_DURATION = 1e-9


def _spans(records: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    return [r for r in records if r.get("type") == "span"]


def _self_times(spans: Sequence[Dict[str, object]]) -> Dict[int, float]:
    """span id -> elapsed minus the sum of direct children's elapsed."""
    child_sum: Dict[Optional[int], float] = {}
    for span in spans:
        child_sum[span.get("parent")] = child_sum.get(span.get("parent"), 0.0) + float(
            span.get("elapsed", 0.0)
        )
    return {
        span["span"]: max(
            0.0, float(span.get("elapsed", 0.0)) - child_sum.get(span["span"], 0.0)
        )
        for span in spans
    }


def aggregate_spans(
    record_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """Per-span-name latency stats across one or many parsed traces.

    Returns ``{"type": "aggregate"}`` records sorted by total time
    (descending): ``count``, ``total_s``, ``mean_s``, ``p50_s``, ``p99_s``,
    ``max_s`` over individual span durations, plus ``self_s`` (time spent
    in spans of this name *outside* their children) and ``child_s`` (the
    complement) -- the two numbers that distinguish "this phase is slow"
    from "this phase contains the slow phase".
    """
    durations: Dict[str, List[float]] = {}
    self_totals: Dict[str, float] = {}
    errors: Dict[str, int] = {}
    for records in record_lists:
        spans = _spans(records)
        selfs = _self_times(spans)
        for span in spans:
            name = str(span.get("name"))
            durations.setdefault(name, []).append(float(span.get("elapsed", 0.0)))
            self_totals[name] = self_totals.get(name, 0.0) + selfs[span["span"]]
            if span.get("status") != "ok":
                errors[name] = errors.get(name, 0) + 1
    out: List[Dict[str, object]] = []
    for name, series in durations.items():
        ordered = sorted(series)
        total = sum(series)
        self_s = self_totals.get(name, 0.0)
        out.append(
            {
                "type": "aggregate",
                "name": name,
                "count": len(series),
                "errors": errors.get(name, 0),
                "total_s": round(total, 9),
                "mean_s": round(total / len(series), 9),
                "p50_s": round(percentile_of(ordered, 50), 9),
                "p99_s": round(percentile_of(ordered, 99), 9),
                "max_s": round(ordered[-1], 9),
                "self_s": round(self_s, 9),
                "child_s": round(max(0.0, total - self_s), 9),
            }
        )
    out.sort(key=lambda r: (-r["total_s"], r["name"]))
    return out


def critical_paths(
    record_lists: Iterable[List[Dict[str, object]]],
) -> List[Dict[str, object]]:
    """The heaviest root-to-leaf span chain of each trace.

    One ``{"type": "critical_path"}`` record per input trace: starting from
    the longest root span, repeatedly descend into the longest child.
    ``steps`` carry each span's name, elapsed, and self time, so the record
    reads as "where the time would go if everything else were free".
    """
    out: List[Dict[str, object]] = []
    for records in record_lists:
        spans = _spans(records)
        if not spans:
            continue
        selfs = _self_times(spans)
        children: Dict[Optional[int], List[Dict[str, object]]] = {}
        for span in spans:
            children.setdefault(span.get("parent"), []).append(span)
        roots = children.get(None, [])
        if not roots:
            continue
        current = max(roots, key=lambda s: float(s.get("elapsed", 0.0)))
        steps = []
        while current is not None:
            steps.append(
                {
                    "name": current.get("name"),
                    "elapsed_s": float(current.get("elapsed", 0.0)),
                    "self_s": round(selfs[current["span"]], 9),
                }
            )
            below = children.get(current["span"])
            current = (
                max(below, key=lambda s: float(s.get("elapsed", 0.0)))
                if below
                else None
            )
        headers = [r for r in records if r.get("type") == "trace"]
        out.append(
            {
                "type": "critical_path",
                "trace": headers[0].get("trace") if headers else None,
                "elapsed_s": steps[0]["elapsed_s"],
                "steps": steps,
            }
        )
    return out


def render_aggregate(
    aggregates: Sequence[Dict[str, object]],
    paths: Sequence[Dict[str, object]] = (),
) -> str:
    """A human-readable table of :func:`aggregate_spans` output."""
    from repro.analysis.tables import format_table

    rows = [
        [
            str(a["name"]),
            str(a["count"]),
            f"{1000 * a['mean_s']:.3f}",
            f"{1000 * a['p50_s']:.3f}",
            f"{1000 * a['p99_s']:.3f}",
            f"{1000 * a['max_s']:.3f}",
            f"{1000 * a['self_s']:.3f}",
            f"{1000 * a['child_s']:.3f}",
        ]
        for a in aggregates
    ]
    text = format_table(
        ["span", "count", "mean ms", "p50 ms", "p99 ms", "max ms", "self ms", "child ms"],
        rows,
    )
    for path in paths:
        chain = " > ".join(str(step["name"]) for step in path["steps"])
        text += (
            f"\ncritical path [{path.get('trace')}]: "
            f"{1000 * path['elapsed_s']:.3f} ms: {chain}"
        )
    return text


# ----------------------------------------------------------------------
# the empirical-linearity watchdog
# ----------------------------------------------------------------------

def _size_of(span: Dict[str, object]) -> Optional[int]:
    """|N| + |E| from a span's attributes, or None when it carries no size."""
    attrs = span.get("attrs") or {}
    nodes = attrs.get("n_nodes", attrs.get("nodes"))
    edges = attrs.get("n_edges", attrs.get("edges"))
    if isinstance(nodes, bool) or isinstance(edges, bool):
        return None
    if not isinstance(nodes, int) or not isinstance(edges, int):
        return None
    size = nodes + edges
    return size if size > 0 else None


def fit_linearity(
    record_lists: Iterable[List[Dict[str, object]]],
    *,
    min_sizes: int = MIN_SIZES,
    min_spread: float = MIN_SPREAD,
) -> List[Dict[str, object]]:
    """Fit duration ~ size^exponent per span name across traces.

    Only spans carrying ``n_nodes``/``n_edges`` attributes participate (the
    dispatch wrappers and the engine root).  Per name, the *minimum*
    duration observed at each distinct size forms the scaling curve --
    minima shed scheduler noise the way the benchmarks' best-of sampling
    does -- and a least-squares line through the log-log points yields the
    exponent.  Names with fewer than ``min_sizes`` distinct sizes, or whose
    sizes span less than ``min_spread``x, are reported with exponent None:
    a fit over a narrow size band would be noise, not evidence.

    Returns ``{"type": "linearity"}`` records sorted by name: ``points``
    (spans measured), ``sizes`` (distinct sizes), ``spread`` (max/min
    size), and ``exponent`` (float, or None when not fittable).
    """
    by_name: Dict[str, Dict[int, float]] = {}
    points: Dict[str, int] = {}
    for records in record_lists:
        for span in _spans(records):
            size = _size_of(span)
            if size is None:
                continue
            name = str(span.get("name"))
            elapsed = max(_MIN_DURATION, float(span.get("elapsed", 0.0)))
            best = by_name.setdefault(name, {})
            points[name] = points.get(name, 0) + 1
            if size not in best or elapsed < best[size]:
                best[size] = elapsed
    out: List[Dict[str, object]] = []
    for name in sorted(by_name):
        best = by_name[name]
        sizes = sorted(best)
        spread = sizes[-1] / sizes[0] if sizes else 0.0
        record: Dict[str, object] = {
            "type": "linearity",
            "name": name,
            "points": points[name],
            "sizes": len(sizes),
            "spread": round(spread, 3),
            "exponent": None,
        }
        if len(sizes) >= min_sizes and spread >= min_spread:
            xs = [math.log(size) for size in sizes]
            ys = [math.log(best[size]) for size in sizes]
            record["exponent"] = round(_slope(xs, ys), 4)
        out.append(record)
    return out


def _slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``ys`` against ``xs``."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    var_x = sum((x - mean_x) ** 2 for x in xs)
    if var_x == 0.0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return cov / var_x


def linearity_violations(
    fits: Sequence[Dict[str, object]], max_exponent: float = MAX_EXPONENT
) -> List[Dict[str, object]]:
    """The fitted records whose exponent exceeds ``max_exponent``."""
    return [
        fit
        for fit in fits
        if fit.get("exponent") is not None and fit["exponent"] > max_exponent
    ]


def render_linearity(
    fits: Sequence[Dict[str, object]], max_exponent: float = MAX_EXPONENT
) -> str:
    """One line per phase: fitted exponent and its verdict."""
    lines = []
    for fit in fits:
        exponent = fit.get("exponent")
        if exponent is None:
            verdict = (
                f"not fitted ({fit['sizes']} size(s), spread {fit['spread']:g}x)"
            )
        elif exponent > max_exponent:
            verdict = f"SUPERLINEAR (budget {max_exponent:g})"
        else:
            verdict = "ok"
        shown = "-" if exponent is None else f"{exponent:.3f}"
        lines.append(
            f"linearity {fit['name']}: exponent={shown} "
            f"over {fit['sizes']} size(s) [{verdict}]"
        )
    return "\n".join(lines)
