"""Observability: structured tracing, metrics, and profiling hooks.

The layer the ROADMAP's serving ambitions require: the paper's O(E) claims
(cycle equivalence via bracket lists, PST construction, control regions)
are validated offline by the benchmarks, but a running service needs to
show *where* time, cache hits, retries, and fault recoveries actually go.

* :mod:`repro.obs.trace` -- nested spans collected by a
  :class:`~repro.obs.trace.TraceRecorder`, emitted as JSONL
  (``docs/trace_schema.json``), rendered by ``repro trace --render``.
* :mod:`repro.obs.metrics` -- a process-local
  :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges, and
  histograms (kernel-vs-reference dispatches, session/frozen cache
  hits/misses, engine retries/fallbacks, fault activations, batch
  latencies).
* :mod:`repro.obs.observer` -- the :class:`~repro.obs.observer.Observer`
  object threaded through ``run_analysis`` / ``AnalysisSession`` /
  ``run_batch`` (via :class:`repro.config.AnalysisConfig`), plus the
  ambient-install mechanism instrumented hot paths consult.  The default
  is *no observer installed*: one module load + ``is None`` test per call,
  inside the <5% guard budget (``benchmarks/bench_guard_overhead.py``).
* :mod:`repro.obs.schema` -- dependency-free validation of emitted JSONL
  against the checked-in schema (the CI trace-schema job).
* :mod:`repro.obs.aggregate` -- trace analytics: per-span-name latency
  statistics, critical paths, and the empirical-linearity watchdog
  (``repro trace --aggregate`` / ``--check-linearity``).
* :mod:`repro.obs.export` -- Prometheus text exposition: registry rebuild
  from trace metric dumps, a format lint, and the stdlib ``/metrics``
  HTTP exporter (``repro metrics``).

See ``docs/OBSERVABILITY.md`` for the span taxonomy and metric names.
"""

from repro.obs.aggregate import (
    aggregate_spans,
    critical_paths,
    fit_linearity,
    linearity_violations,
)
from repro.obs.export import lint_exposition, registry_from_dumps
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    percentile_of,
)
from repro.obs.observer import NOOP_SPAN, Observer, current, install, observe
from repro.obs.trace import Span, TraceRecorder, read_jsonl, render_trace
from repro.obs.schema import load_schema, validate_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observer",
    "Span",
    "TraceRecorder",
    "aggregate_spans",
    "critical_paths",
    "current",
    "fit_linearity",
    "install",
    "linearity_violations",
    "lint_exposition",
    "load_schema",
    "observe",
    "percentile_of",
    "read_jsonl",
    "registry_from_dumps",
    "render_trace",
    "validate_trace",
]
