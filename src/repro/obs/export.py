"""Prometheus exposition: rebuild, lint, and serve metric registries.

The first brick of the ROADMAP's analysis service: anything that holds a
:class:`~repro.obs.metrics.MetricsRegistry` can expose it in the Prometheus
text format (version 0.0.4) via
:meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus`, and this
module supplies the surrounding plumbing, all stdlib-only:

* :func:`registry_from_dumps` -- fold worker/trace metric dumps back into
  one registry (the ``repro metrics render`` path);
* :func:`lint_exposition` -- a dependency-free format lint for the text
  exposition, used by the CI observatory job in place of ``promtool``;
* :func:`make_metrics_server` / :func:`serve_metrics` -- an
  ``http.server``-based ``/metrics`` + ``/healthz`` endpoint
  (``repro metrics serve``).

Traces carry metrics in two shapes: the human-facing ``snapshot()`` footer
(``{"type": "metrics"}`` records) and, since the cross-process observatory,
the full-fidelity ``{"type": "metrics_dump"}`` records ``repro trace``
writes alongside.  Only dumps can be merged exactly; snapshots are summary
data, so :func:`registry_from_dumps` consumes dumps.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE = re.compile(
    rf"^({_NAME})(\{{[^{{}}]*\}})? (?:[-+]?(?:\d+(?:\.\d+)?(?:[eE][-+]?\d+)?)|[-+]?Inf|NaN)$"
)
_LABELS = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def registry_from_dumps(dumps: Iterable[Dict[str, object]]) -> MetricsRegistry:
    """One registry holding the merged contents of every dump."""
    registry = MetricsRegistry()
    for dump in dumps:
        registry.merge(dump)
    return registry


def dumps_from_trace_records(
    records: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Extract mergeable metric dumps from parsed trace JSONL records."""
    return [
        r["metrics"]
        for r in records
        if r.get("type") == "metrics_dump" and isinstance(r.get("metrics"), dict)
    ]


def lint_exposition(text: str) -> List[str]:
    """All format violations of a Prometheus text exposition (empty = ok).

    Checks the subset of the format a scraper actually depends on: comment
    lines are well-formed ``# HELP``/``# TYPE`` with a declared name and a
    known type; every sample line parses as ``name{labels} value``; every
    sample's family name was declared by a preceding ``# TYPE`` (allowing
    the ``_total``/``_sum``/``_count``/``_bucket`` suffixes the types
    imply); histogram ``_bucket`` samples carry an ``le`` label and each
    histogram family ends its buckets with ``le="+Inf"``; and the
    exposition ends with a newline.
    """
    problems: List[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    declared: Dict[str, str] = {}
    inf_seen: Dict[str, bool] = {}
    for number, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {number}: malformed comment {line!r}")
                continue
            if not re.fullmatch(_NAME, parts[2]):
                problems.append(f"line {number}: bad metric name {parts[2]!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    problems.append(f"line {number}: bad TYPE line {line!r}")
                else:
                    declared[parts[2]] = parts[3]
                    if parts[3] == "histogram":
                        inf_seen[parts[2]] = False
            continue
        match = _SAMPLE.match(line)
        if match is None:
            problems.append(f"line {number}: unparsable sample {line!r}")
            continue
        name, labels = match.group(1), match.group(2)
        if labels is not None:
            body = labels[1:-1]
            for part in _split_labels(body):
                if part and not _LABELS.match(part):
                    problems.append(f"line {number}: malformed label {part!r}")
        family = _family_of(name, declared)
        if family is None:
            problems.append(f"line {number}: sample {name!r} has no # TYPE declaration")
            continue
        if declared[family] == "histogram" and name == family + "_bucket":
            if labels is None or 'le="' not in labels:
                problems.append(f"line {number}: histogram bucket without le label")
            elif 'le="+Inf"' in labels:
                inf_seen[family] = True
    for family, seen in inf_seen.items():
        if not seen:
            problems.append(f"histogram {family!r} has no le=\"+Inf\" bucket")
    return problems


def _split_labels(body: str) -> List[str]:
    """Split ``k="v",k2="v2"`` on commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def _family_of(name: str, declared: Dict[str, str]) -> Optional[str]:
    if name in declared:
        return name
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix) and name[: -len(suffix)] in declared:
            return name[: -len(suffix)]
    return None


# ----------------------------------------------------------------------
# the HTTP exporter
# ----------------------------------------------------------------------

#: The content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def make_metrics_server(
    exposition: Callable[[], str],
    host: str = "127.0.0.1",
    port: int = 0,
):
    """An ``http.server`` serving ``/metrics`` (and ``/healthz``).

    ``exposition`` is called per scrape, so a live registry re-renders on
    every request.  ``port=0`` binds an ephemeral port; read it back from
    ``server.server_address``.  The caller owns the lifecycle:
    ``serve_forever()`` to block, ``shutdown()``/``server_close()`` to stop
    (what the tests do from a thread).
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler's convention
            if self.path.split("?", 1)[0] == "/metrics":
                body = exposition().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
            elif self.path.split("?", 1)[0] == "/healthz":
                body = b"ok\n"
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
            else:
                body = b"try /metrics\n"
                self.send_response(404)
                self.send_header("Content-Type", "text/plain; charset=utf-8")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format, *args):  # silence per-request stderr spam
            pass

    return ThreadingHTTPServer((host, port), Handler)


def serve_metrics(
    registry: MetricsRegistry,
    host: str = "127.0.0.1",
    port: int = 9464,
    announce=None,
    drain=None,
) -> None:
    """Serve ``registry`` until signalled (the ``repro metrics serve`` loop).

    Shutdown goes through :func:`repro.service.drain.serve_until_shutdown`:
    SIGINT *and* SIGTERM both stop the accept loop, let in-flight scrapes
    complete, and close the socket -- the historical loop only caught
    ``KeyboardInterrupt``, so a SIGTERM (what a supervisor actually sends)
    killed scrapes mid-response and leaked the listening socket.  Passing a
    :class:`~repro.service.drain.DrainController` lets callers (tests, the
    analysis server embedding an exporter) trigger the drain explicitly.
    """
    from repro.service.drain import serve_until_shutdown

    server = make_metrics_server(registry.render_prometheus, host, port)
    bound_host, bound_port = server.server_address[:2]
    if announce is not None:
        print(
            f"serving Prometheus metrics on http://{bound_host}:{bound_port}/metrics",
            file=announce,
            flush=True,
        )
    serve_until_shutdown(server, drain, announce=announce)
