"""Process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a plain in-process store -- no background
threads, no sockets, no sampling.  Instruments are identified by a name
plus an optional set of string labels (``counter("engine.attempts",
stage="pst", path="fast")``), mirroring the Prometheus data model so a
future exporter only needs to walk :meth:`MetricsRegistry.snapshot`.

The registry is deliberately *not* global: it lives on an
:class:`~repro.obs.observer.Observer`, and code paths consult the ambient
observer (one module-global load plus a ``None`` check) so the disabled
cost stays within the guard-overhead budget measured by
``benchmarks/bench_guard_overhead.py``.

Histograms keep exact count/sum/min/max plus a bounded reservoir of recent
samples (for percentiles in reports); the reservoir cap keeps a pathological
million-item batch from holding a million floats.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: How many raw samples a histogram retains for percentile estimates.
RESERVOIR_SIZE = 1024

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += n


class Gauge:
    """A value that can go up and down (e.g. live cache size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """Exact count/sum/min/max plus a bounded sample reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        samples = self._samples
        if len(samples) < RESERVOIR_SIZE:
            samples.append(value)
        else:  # ring-buffer overwrite: keep the most recent window
            samples[self.count % RESERVOIR_SIZE] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0..100) from the reservoir."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class MetricsRegistry:
    """All instruments of one observer, keyed by (name, labels)."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_of(self, name: str, **labels: str) -> float:
        """Current value of a counter (0.0 if it never incremented)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def counts_matching(self, name: str) -> Dict[str, float]:
        """All counters with ``name``, keyed by rendered label string."""
        return {
            _render_key(n, key): c.value
            for (n, key), c in self._counters.items()
            if n == name
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict dump of every instrument (JSON-serializable)."""
        return {
            "counters": {
                _render_key(name, key): counter.value
                for (name, key), counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(name, key): gauge.value
                for (name, key), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(name, key): histogram.summary()
                for (name, key), histogram in sorted(self._histograms.items())
            },
        }

    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        snap = self.snapshot()
        lines: List[str] = []
        for key, value in snap["counters"].items():
            lines.append(f"counter {key} = {value:g}")
        for key, value in snap["gauges"].items():
            lines.append(f"gauge {key} = {value:g}")
        for key, summary in snap["histograms"].items():
            lines.append(
                f"histogram {key}: count={summary['count']} "
                f"mean={summary['mean']:.6g} p95={summary['p95']:.6g} "
                f"max={summary['max']:.6g}"
            )
        return "\n".join(lines)
