"""Process-local metrics: counters, gauges, histograms.

A :class:`MetricsRegistry` is a plain in-process store -- no background
threads, no sockets, no sampling.  Instruments are identified by a name
plus an optional set of string labels (``counter("engine.attempts",
stage="pst", path="fast")``), mirroring the Prometheus data model so the
exporter (:mod:`repro.obs.export`) only needs to walk
:meth:`MetricsRegistry.render_prometheus`.

The registry is deliberately *not* global: it lives on an
:class:`~repro.obs.observer.Observer`, and code paths consult the ambient
observer (one module-global load plus a ``None`` check) so the disabled
cost stays within the guard-overhead budget measured by
``benchmarks/bench_guard_overhead.py``.

Histograms keep exact count/sum/min/max, exact Prometheus-style bucket
counts (fixed latency-oriented boundaries, so shards merge by summing),
plus a bounded reservoir of recent samples (for percentiles in reports);
the reservoir cap keeps a pathological million-item batch from holding a
million floats.

Registries are *mergeable*: :meth:`MetricsRegistry.dump` produces a
full-fidelity, JSON/pickle-safe serialization and
:meth:`MetricsRegistry.merge` folds such a dump into the receiver --
counters sum, histograms combine (counts, sums, buckets, reservoirs),
gauges take the last write.  This is how ``run_batch --workers N`` stitches
per-worker observer shards back into one parent registry.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Tuple

#: How many raw samples a histogram retains for percentile estimates.
RESERVOIR_SIZE = 1024

#: Fixed histogram bucket upper bounds (seconds; Prometheus's default
#: latency ladder).  Fixed boundaries are what make cross-process merge a
#: plain elementwise sum.
BUCKET_BOUNDS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, key: LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f"{k}={v}" for k, v in key)
    return f"{name}{{{inner}}}"


def percentile_of(ordered: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) of an already-sorted sequence.

    Linear interpolation between closest ranks (NumPy's default method):
    ``q=0`` is the minimum, ``q=100`` the maximum, a single sample answers
    every ``q``, and out-of-range ``q`` clamps to the boundaries instead of
    indexing out of the sequence.
    """
    if not ordered:
        return 0.0
    if q <= 0.0:
        return ordered[0]
    if q >= 100.0:
        return ordered[-1]
    rank = q / 100.0 * (len(ordered) - 1)
    lower = int(rank)
    frac = rank - lower
    if frac == 0.0 or lower + 1 >= len(ordered):
        return ordered[lower]
    return ordered[lower] + frac * (ordered[lower + 1] - ordered[lower])


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a Gauge")
        self.value += n


class Gauge:
    """A value that can go up and down (e.g. live cache size)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, n: float = 1.0) -> None:
        self.value += n


class Histogram:
    """Exact count/sum/min/max/buckets plus a bounded sample reservoir."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        # One slot per boundary plus the +Inf overflow slot; per-bucket
        # (non-cumulative) counts, cumulated only at render time.
        self._buckets: List[int] = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[bisect.bisect_left(BUCKET_BOUNDS, value)] += 1
        samples = self._samples
        if len(samples) < RESERVOIR_SIZE:
            samples.append(value)
        else:  # ring-buffer overwrite: keep the most recent window
            samples[self.count % RESERVOIR_SIZE] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (0..100) from the reservoir.

        Exact when fewer than :data:`RESERVOIR_SIZE` values were observed;
        a recent-window estimate beyond that.  ``q`` outside [0, 100]
        clamps to the min/max sample rather than mis-indexing.
        """
        return percentile_of(sorted(self._samples), q)

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(upper-bound, cumulative count)`` pairs, ending with +Inf."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, n in zip(BUCKET_BOUNDS, self._buckets):
            running += n
            out.append((format(bound, "g"), running))
        out.append(("+Inf", running + self._buckets[-1]))
        return out

    def summary(self) -> Dict[str, float]:
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": percentile_of(ordered, 50),
            "p95": percentile_of(ordered, 95),
            "p99": percentile_of(ordered, 99),
        }

    # ------------------------------------------------------------------
    # merge support
    # ------------------------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Full-fidelity serialization (everything merge needs)."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "samples": list(self._samples),
            "buckets": list(self._buckets),
        }

    def absorb(self, state: Dict[str, object]) -> None:
        """Fold another histogram's :meth:`state` into this one."""
        self.count += int(state.get("count", 0))
        self.total += float(state.get("total", 0.0))
        for bound in ("min", "max"):
            theirs = state.get(bound)
            if theirs is None:
                continue
            ours = getattr(self, bound)
            if ours is None:
                setattr(self, bound, float(theirs))
            elif bound == "min":
                self.min = min(ours, float(theirs))
            else:
                self.max = max(ours, float(theirs))
        buckets = state.get("buckets") or []
        for i, n in enumerate(buckets):
            if i < len(self._buckets):
                self._buckets[i] += int(n)
        room = RESERVOIR_SIZE - len(self._samples)
        if room > 0:
            self._samples.extend(float(v) for v in (state.get("samples") or [])[:room])


class MetricsRegistry:
    """All instruments of one observer, keyed by (name, labels)."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # instrument accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        key = (name, _label_key(labels))
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = (name, _label_key(labels))
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, **labels: str) -> Histogram:
        key = (name, _label_key(labels))
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def count_of(self, name: str, **labels: str) -> float:
        """Current value of a counter (0.0 if it never incremented)."""
        instrument = self._counters.get((name, _label_key(labels)))
        return instrument.value if instrument is not None else 0.0

    def counts_matching(self, name: str) -> Dict[str, float]:
        """All counters with ``name``, keyed by rendered label string."""
        return {
            _render_key(n, key): c.value
            for (n, key), c in self._counters.items()
            if n == name
        }

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A plain-dict dump of every instrument (JSON-serializable)."""
        return {
            "counters": {
                _render_key(name, key): counter.value
                for (name, key), counter in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(name, key): gauge.value
                for (name, key), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(name, key): histogram.summary()
                for (name, key), histogram in sorted(self._histograms.items())
            },
        }

    # ------------------------------------------------------------------
    # cross-process merge (the run_batch --workers N shard protocol)
    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, List]:
        """A full-fidelity, JSON/pickle-safe serialization for merging.

        Unlike :meth:`snapshot` (a human-facing summary), a dump carries
        everything :meth:`merge` needs to reconstruct the registry's
        contribution exactly: raw label pairs, histogram reservoirs, and
        per-bucket counts.
        """
        # Label pairs as lists (not tuples) so a dump is *canonical* JSON:
        # json.loads(json.dumps(dump)) == dump, wire-format friendly.
        return {
            "counters": [
                [name, [list(pair) for pair in key], counter.value]
                for (name, key), counter in sorted(self._counters.items())
            ],
            "gauges": [
                [name, [list(pair) for pair in key], gauge.value]
                for (name, key), gauge in sorted(self._gauges.items())
            ],
            "histograms": [
                [name, [list(pair) for pair in key], histogram.state()]
                for (name, key), histogram in sorted(self._histograms.items())
            ],
        }

    def merge(self, dump: Dict[str, List]) -> None:
        """Fold a :meth:`dump` into this registry.

        Counters sum, histograms combine exactly (counts, sums, min/max,
        buckets; reservoirs concatenate up to the cap), and gauges take the
        incoming value -- last write wins, matching what a sequential run
        would have left behind.
        """
        for name, key, value in dump.get("counters", []):
            self.counter(name, **dict(key)).inc(float(value))
        for name, key, value in dump.get("gauges", []):
            self.gauge(name, **dict(key)).set(float(value))
        for name, key, state in dump.get("histograms", []):
            self.histogram(name, **dict(key)).absorb(state)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable one-line-per-instrument dump."""
        snap = self.snapshot()
        lines: List[str] = []
        for key, value in snap["counters"].items():
            lines.append(f"counter {key} = {value:g}")
        for key, value in snap["gauges"].items():
            lines.append(f"gauge {key} = {value:g}")
        for key, summary in snap["histograms"].items():
            lines.append(
                f"histogram {key}: count={summary['count']} "
                f"mean={summary['mean']:.6g} p95={summary['p95']:.6g} "
                f"max={summary['max']:.6g}"
            )
        return "\n".join(lines)

    def render_prometheus(self, prefix: str = "repro") -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument.

        Counters get the conventional ``_total`` suffix, histograms emit
        cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``, and
        each metric family is announced once with ``# HELP``/``# TYPE``.
        Instrument names are sanitized to the Prometheus grammar (dots
        become underscores) and prefixed with ``<prefix>_``.
        """
        lines: List[str] = []

        def family(name: str, kind: str, original: str) -> None:
            lines.append(f"# HELP {name} repro {kind} {original!r}")
            lines.append(f"# TYPE {name} {kind}")

        by_name: Dict[str, List[Tuple[LabelKey, Counter]]] = {}
        for (name, key), counter in sorted(self._counters.items()):
            by_name.setdefault(name, []).append((key, counter))
        for name, instruments in by_name.items():
            prom = _prom_name(prefix, name) + "_total"
            family(prom, "counter", name)
            for key, counter in instruments:
                lines.append(f"{prom}{_prom_labels(key)} {counter.value:g}")

        gauges_by_name: Dict[str, List[Tuple[LabelKey, Gauge]]] = {}
        for (name, key), gauge in sorted(self._gauges.items()):
            gauges_by_name.setdefault(name, []).append((key, gauge))
        for name, instruments in gauges_by_name.items():
            prom = _prom_name(prefix, name)
            family(prom, "gauge", name)
            for key, gauge in instruments:
                lines.append(f"{prom}{_prom_labels(key)} {gauge.value:g}")

        hists_by_name: Dict[str, List[Tuple[LabelKey, Histogram]]] = {}
        for (name, key), histogram in sorted(self._histograms.items()):
            hists_by_name.setdefault(name, []).append((key, histogram))
        for name, instruments in hists_by_name.items():
            prom = _prom_name(prefix, name)
            family(prom, "histogram", name)
            for key, histogram in instruments:
                for le, cumulative in histogram.cumulative_buckets():
                    bucket_key = key + (("le", le),)
                    lines.append(
                        f"{prom}_bucket{_prom_labels(bucket_key)} {cumulative}"
                    )
                lines.append(f"{prom}_sum{_prom_labels(key)} {histogram.total:g}")
                lines.append(f"{prom}_count{_prom_labels(key)} {histogram.count}")
        return "\n".join(lines) + "\n" if lines else ""


def _prom_name(prefix: str, name: str) -> str:
    """Sanitize to the metric-name grammar ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = "".join(
        c if c.isascii() and (c.isalnum() or c in "_:") else "_" for c in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"{prefix}_{cleaned}" if prefix else cleaned


def _prom_label_name(name: str) -> str:
    cleaned = "".join(
        c if c.isascii() and (c.isalnum() or c == "_") else "_" for c in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _prom_labels(key: LabelKey) -> str:
    if not key:
        return ""
    parts = []
    for name, value in key:
        escaped = (
            str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")
        )
        parts.append(f'{_prom_label_name(name)}="{escaped}"')
    return "{" + ",".join(parts) + "}"
