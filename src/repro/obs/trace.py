"""Structured nested spans and their JSONL wire format.

A :class:`TraceRecorder` collects :class:`Span` records for one logical
trace (one ``run_analysis`` call, one batch, one CLI invocation).  Spans
nest through a recorder-level stack: a span started while another is open
becomes its child, which is exactly the call-tree shape of the engine
(``run_analysis`` > ``stage:pst`` > ``attempt`` > ``cycle_equiv`` >
``cycle_equiv.dfs``).

The wire format is JSON Lines (``docs/trace_schema.json`` is the
checked-in schema; ``repro trace --check`` validates against it):

* one ``{"type": "trace"}`` header line with the trace id and clock origin,
* one ``{"type": "span"}`` line per finished span (in finish order --
  children before parents, like flame-graph emitters),
* optionally one ``{"type": "metrics"}`` footer with the registry snapshot.

Timestamps are seconds relative to the recorder's creation, so traces are
diffable across runs and carry no wall-clock information.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional

_TRACE_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"trace-{os.getpid()}-{next(_TRACE_IDS)}"


class Span:
    """One timed, named, attributed section of work.

    Spans are started by :meth:`TraceRecorder.start` and closed with
    :meth:`finish` (or by using the span as a context manager, which also
    marks the span ``error`` when the block raises).
    """

    __slots__ = (
        "recorder",
        "span_id",
        "parent_id",
        "name",
        "started",
        "attrs",
        "status",
        "error",
        "finished",
    )

    def __init__(
        self,
        recorder: "TraceRecorder",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        started: float,
        attrs: Dict[str, object],
    ):
        self.recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.started = started
        self.attrs = attrs
        self.status = "ok"
        self.error: Optional[str] = None
        self.finished = False

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)
        return self

    def fail(self, error: str) -> "Span":
        """Mark the span as failed; :meth:`finish` keeps the status."""
        self.status = "error"
        self.error = error
        return self

    def finish(self, error: Optional[str] = None) -> None:
        if self.finished:  # idempotent: double-finish keeps the first record
            return
        if error is not None:
            self.fail(error)
        self.finished = True
        self.recorder._finish(self)

    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None and self.status == "ok":
            self.fail(f"{exc_type.__name__}: {exc}")
        self.finish()
        return False  # never swallow


class TraceRecorder:
    """Collects the spans of one trace; single-threaded by design."""

    __slots__ = ("trace_id", "records", "_clock", "_origin", "_stack", "_ids")

    def __init__(
        self,
        trace_id: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.records: List[Dict[str, object]] = []
        self._clock = clock
        self._origin = clock()
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def start(self, name: str, **attrs: object) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            self,
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            started=self._clock() - self._origin,
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        # Normal case: the finishing span is the innermost open one.  A span
        # finished out of order (a bug in instrumentation, or an exception
        # unwinding past explicit finish calls) closes everything above it
        # so the stack can never wedge.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            if not top.finished:
                top.finished = True
                self._record(top)
        self._record(span)

    def _record(self, span: Span) -> None:
        end = self._clock() - self._origin
        self.records.append(
            {
                "type": "span",
                "trace": self.trace_id,
                "span": span.span_id,
                "parent": span.parent_id,
                "name": span.name,
                "start": round(span.started, 9),
                "end": round(end, 9),
                "elapsed": round(end - span.started, 9),
                "status": span.status,
                "error": span.error,
                "attrs": span.attrs,
            }
        )

    def open_spans(self) -> int:
        """How many spans are currently started but not finished."""
        return len(self._stack)

    # ------------------------------------------------------------------
    # cross-process stitching (the run_batch --workers N shard protocol)
    # ------------------------------------------------------------------
    def absorb(
        self,
        spans: Iterable[Dict[str, object]],
        **root_attrs: object,
    ) -> int:
        """Stitch finished span records from another recorder into this one.

        ``spans`` are parsed ``{"type": "span"}`` records as emitted by a
        worker shard's :meth:`jsonl_lines`.  Each gets a fresh span id from
        this recorder's counter, parent references are remapped alongside,
        and the shard's root spans (``parent: null``) are re-parented under
        this recorder's innermost *open* span -- the batch span -- with
        ``root_attrs`` (worker pid, item key) merged into their attributes.

        Timestamps are rebased so the shard's last finish lands at this
        recorder's *now*: relative ordering and every duration inside the
        shard are preserved exactly, and because the worker ran within the
        batch span's open interval, containment holds for the validator.
        Returns the number of spans absorbed.
        """
        spans = [s for s in spans if s.get("type") == "span"]
        if not spans:
            return 0
        now = self._clock() - self._origin
        parent = self._stack[-1].span_id if self._stack else None
        offset = now - max(float(s["end"]) for s in spans)
        mapping = {s["span"]: next(self._ids) for s in spans}
        for span in spans:
            record = dict(span)
            record["trace"] = self.trace_id
            record["span"] = mapping[span["span"]]
            old_parent = span.get("parent")
            if old_parent is None:
                record["parent"] = parent
                if root_attrs:
                    attrs = dict(record.get("attrs") or {})
                    attrs.update(root_attrs)
                    record["attrs"] = attrs
            else:
                record["parent"] = mapping.get(old_parent)
            record["start"] = round(float(span["start"]) + offset, 9)
            record["end"] = round(float(span["end"]) + offset, 9)
            self.records.append(record)
        return len(spans)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def header(self) -> Dict[str, object]:
        return {"type": "trace", "trace": self.trace_id, "spans": len(self.records)}

    def jsonl_lines(
        self,
        metrics_snapshot: Optional[Dict[str, object]] = None,
        metrics_dump: Optional[Dict[str, object]] = None,
    ) -> Iterator[str]:
        yield json.dumps(self.header(), sort_keys=True)
        for record in self.records:
            yield json.dumps(record, sort_keys=True, default=str)
        if metrics_snapshot is not None:
            yield json.dumps(
                {"type": "metrics", "trace": self.trace_id, "metrics": metrics_snapshot},
                sort_keys=True,
                default=str,
            )
        if metrics_dump is not None:
            # The mergeable twin of the human-facing snapshot footer:
            # `repro metrics render` rebuilds a registry from these.
            yield json.dumps(
                {
                    "type": "metrics_dump",
                    "trace": self.trace_id,
                    "metrics": metrics_dump,
                },
                sort_keys=True,
                default=str,
            )

    def write_jsonl(
        self,
        handle,
        metrics_snapshot: Optional[Dict[str, object]] = None,
        metrics_dump: Optional[Dict[str, object]] = None,
    ) -> int:
        """Write the trace to a file object; returns the line count."""
        count = 0
        for line in self.jsonl_lines(metrics_snapshot, metrics_dump):
            handle.write(line + "\n")
            count += 1
        return count


# ----------------------------------------------------------------------
# reading + rendering (the `repro trace --render` path)
# ----------------------------------------------------------------------

def read_jsonl(lines: Iterable[str]) -> List[Dict[str, object]]:
    """Parse JSONL lines into record dicts; blank lines are skipped."""
    records: List[Dict[str, object]] = []
    for number, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as error:
            raise ValueError(f"line {number}: not valid JSON: {error}") from None
        if not isinstance(record, dict):
            raise ValueError(f"line {number}: expected a JSON object")
        records.append(record)
    return records


def render_trace(records: List[Dict[str, object]]) -> str:
    """An indented tree view of a parsed trace (children under parents)."""
    spans = [r for r in records if r.get("type") == "span"]
    by_parent: Dict[Optional[int], List[Dict[str, object]]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: (s.get("start", 0.0), s.get("span", 0)))

    lines: List[str] = []
    trace_headers = [r for r in records if r.get("type") == "trace"]
    if trace_headers:
        lines.append(f"trace {trace_headers[0].get('trace')}")

    def walk(parent: Optional[int], depth: int) -> None:
        for span in by_parent.get(parent, []):
            marker = "" if span.get("status") == "ok" else "  !! " + str(
                span.get("error") or span.get("status")
            )
            attrs = span.get("attrs") or {}
            attr_text = (
                " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
                if attrs
                else ""
            )
            lines.append(
                "  " * depth
                + f"- {span.get('name')} ({1000 * float(span.get('elapsed', 0.0)):.3f} ms)"
                + attr_text
                + marker
            )
            walk(span.get("span"), depth + 1)  # type: ignore[arg-type]

    walk(None, 0 if not lines else 1)

    metrics = [r for r in records if r.get("type") == "metrics"]
    if metrics:
        counters = metrics[0].get("metrics", {}).get("counters", {})  # type: ignore[union-attr]
        if counters:
            lines.append("metrics:")
            for key, value in sorted(counters.items()):
                lines.append(f"  counter {key} = {value:g}")
    return "\n".join(lines)
