"""Validate emitted trace JSONL against the checked-in schema.

``docs/trace_schema.json`` describes each record type with a small,
dependency-free subset of JSON Schema (the container has no ``jsonschema``
package, and the trace format does not need one):

* ``required``: field names that must be present,
* ``properties``: per-field ``{"type": ...}`` where type is one of
  ``string | number | integer | boolean | object | array | null`` or a
  list of those (unions), plus optional ``enum``,
* unknown fields are allowed (the format is forward-compatible).

On top of the per-record checks, :func:`validate_trace` enforces the
structural invariants a well-formed trace must satisfy: exactly one
header per trace (files holding only derived records -- aggregates,
critical paths, linearity fits -- may omit it, but spans require one),
span ids unique, every parent id resolvable to an *earlier-started*
span, child intervals contained in their parents (within a small clock
tolerance), and every span carrying the header's trace id.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

#: Relative tolerance for child-interval containment: perf_counter deltas
#: are rounded to nanoseconds on emission, so exact comparison is too strict.
_EPSILON = 1e-6

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "null": lambda v: v is None,
}


def default_schema_path() -> str:
    """The checked-in schema, located relative to the repository root."""
    here = os.path.dirname(os.path.abspath(__file__))
    # src/repro/obs -> repository root is three levels up.
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "docs", "trace_schema.json")


def load_schema(path: Optional[str] = None) -> Dict:
    with open(path if path is not None else default_schema_path()) as handle:
        return json.load(handle)


def _check_type(value, spec) -> bool:
    types = spec if isinstance(spec, list) else [spec]
    return any(_TYPE_CHECKS[t](value) for t in types if t in _TYPE_CHECKS)


def _validate_record(record: Dict, schema: Dict, line: int) -> List[str]:
    problems: List[str] = []
    kind = record.get("type")
    record_schemas = schema.get("records", {})
    if kind not in record_schemas:
        problems.append(f"line {line}: unknown record type {kind!r}")
        return problems
    spec = record_schemas[kind]
    for field in spec.get("required", []):
        if field not in record:
            problems.append(f"line {line}: {kind} record missing field {field!r}")
    for field, field_spec in spec.get("properties", {}).items():
        if field not in record:
            continue
        value = record[field]
        if "type" in field_spec and not _check_type(value, field_spec["type"]):
            problems.append(
                f"line {line}: {kind}.{field} has type "
                f"{type(value).__name__}, expected {field_spec['type']}"
            )
            continue
        if "enum" in field_spec and value not in field_spec["enum"]:
            problems.append(
                f"line {line}: {kind}.{field} = {value!r} not in {field_spec['enum']}"
            )
    return problems


def validate_trace(records: List[Dict], schema: Optional[Dict] = None) -> List[str]:
    """All schema and structural violations of a parsed trace (empty = ok)."""
    if schema is None:
        schema = load_schema()
    problems: List[str] = []
    for line, record in enumerate(records, 1):
        problems.extend(_validate_record(record, schema, line))
    if problems:
        return problems  # field-level breakage makes structure checks noise

    headers = [r for r in records if r["type"] == "trace"]
    spans = [r for r in records if r["type"] == "span"]
    if len(headers) > 1:
        problems.append(f"expected at most one trace header, found {len(headers)}")
        return problems
    if not headers:
        # Derived-record files (aggregate/critical_path/linearity output)
        # legitimately carry no header -- but spans without one are a bug.
        if spans:
            problems.append(f"{len(spans)} span(s) but no trace header")
        return problems
    trace_id = headers[0]["trace"]
    by_id: Dict[int, Dict] = {}
    for span in spans:
        if span["trace"] != trace_id:
            problems.append(
                f"span {span['span']} carries trace id {span['trace']!r}, "
                f"header says {trace_id!r}"
            )
        if span["span"] in by_id:
            problems.append(f"duplicate span id {span['span']}")
        by_id[span["span"]] = span
        if span["end"] + _EPSILON < span["start"]:
            problems.append(f"span {span['span']} ends before it starts")
    for span in spans:
        parent_id = span["parent"]
        if parent_id is None:
            continue
        parent = by_id.get(parent_id)
        if parent is None:
            problems.append(
                f"span {span['span']} references unknown parent {parent_id}"
            )
            continue
        if parent["start"] > span["start"] + _EPSILON:
            problems.append(
                f"span {span['span']} starts before its parent {parent_id}"
            )
        if span["end"] > parent["end"] + _EPSILON:
            problems.append(
                f"span {span['span']} ends after its parent {parent_id}"
            )
    return problems
