"""The deterministic fuzz-campaign driver behind ``repro fuzz``.

A campaign is fully determined by ``(seed, count, size)``: case ``i`` uses
seed ``seed + i`` and the strategy round-robin of
:func:`repro.fuzz.generator.generate_case`, so any divergence is
reproducible from the numbers in its report line alone.  Each divergence is
immediately shrunk and rendered as a pytest regression case; a campaign
with ``zero unshrunk divergences`` is the repo's release criterion for the
fast/slow pairs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.cfg.graph import CFG
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.oracles import ALL_ORACLES, Divergence, Oracle, ORACLES_BY_NAME
from repro.fuzz.shrink import regression_test_source, shrink_cfg


@dataclass
class ShrunkDivergence:
    """A divergence plus its minimized graph and regression-test rendering."""

    divergence: Divergence
    shrunk_cfg: CFG
    test_source: str


@dataclass
class FuzzReport:
    """Outcome of one campaign."""

    seed: int
    count: int
    size: int
    cases_run: int = 0
    elapsed: float = 0.0
    per_strategy: Dict[str, int] = field(default_factory=dict)
    divergences: List[ShrunkDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    @property
    def throughput(self) -> float:
        """Cases per second through the full oracle matrix."""
        return self.cases_run / self.elapsed if self.elapsed > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} count={self.count} size={self.size}",
            f"  cases run: {self.cases_run} in {self.elapsed:.1f}s "
            f"({self.throughput:.1f} CFGs/s through the oracle matrix)",
        ]
        for strategy, n in sorted(self.per_strategy.items()):
            lines.append(f"    {strategy}: {n}")
        if self.ok:
            lines.append("  divergences: none")
        else:
            lines.append(f"  divergences: {len(self.divergences)}")
            for item in self.divergences:
                d = item.divergence
                lines.append(f"  - {d.summary()}")
                lines.append(
                    f"    shrunk to |V|={item.shrunk_cfg.num_nodes} "
                    f"|E|={item.shrunk_cfg.num_edges}; regression test:"
                )
                lines.extend("      " + line for line in item.test_source.splitlines())
        return "\n".join(lines)


def run_fuzz(
    seed: int = 0,
    count: int = 100,
    size: int = 10,
    oracles: Optional[Sequence[Oracle]] = None,
    time_budget: Optional[float] = None,
    on_case: Optional[Callable[[FuzzCase], None]] = None,
    fail_fast: bool = False,
) -> FuzzReport:
    """Run a deterministic campaign; shrink every divergence found.

    ``time_budget`` (seconds) stops the campaign early once exceeded --
    determinism is preserved for the cases that did run, since case ``i``
    depends only on ``seed + i``.  ``oracles`` restricts the matrix (by
    default all cross-checks run on every case).  ``fail_fast`` stops the
    campaign at the first diverging case (its full oracle matrix still runs,
    and shrinking still happens) -- the debugging loop wants the first
    counterexample now, not the whole census.
    """
    matrix = list(oracles) if oracles is not None else list(ALL_ORACLES)
    report = FuzzReport(seed=seed, count=count, size=size)
    started = time.monotonic()
    for index in range(count):
        if time_budget is not None and time.monotonic() - started > time_budget:
            break
        case = generate_case(seed + index, size=size)
        if on_case is not None:
            on_case(case)
        report.cases_run += 1
        report.per_strategy[case.strategy] = report.per_strategy.get(case.strategy, 0) + 1
        for divergence in _run_matrix(case, matrix):
            report.divergences.append(_shrink_divergence(divergence, matrix))
        if fail_fast and report.divergences:
            break
    report.elapsed = time.monotonic() - started
    return report


def _run_matrix(case: FuzzCase, matrix: Sequence[Oracle]) -> List[Divergence]:
    out: List[Divergence] = []
    for oracle in matrix:
        divergence = oracle.run(case)
        if divergence is not None:
            out.append(divergence)
    return out


def _shrink_divergence(divergence: Divergence, matrix: Sequence[Oracle]) -> ShrunkDivergence:
    oracle = ORACLES_BY_NAME[divergence.oracle]

    def still_diverges(candidate: CFG) -> bool:
        case = FuzzCase(seed=divergence.seed, strategy=divergence.strategy, cfg=candidate)
        return oracle.run(case) is not None

    shrunk = shrink_cfg(divergence.cfg, still_diverges)
    source = regression_test_source(
        shrunk,
        divergence.oracle,
        divergence.seed,
        divergence.strategy,
        detail=divergence.detail,
    )
    return ShrunkDivergence(divergence=divergence, shrunk_cfg=shrunk, test_source=source)
