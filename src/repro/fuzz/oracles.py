"""The oracle matrix: one differential cross-check per redundant pair.

Each :class:`Oracle` compares a fast algorithm against its slow,
independently derived counterpart on one :class:`~repro.fuzz.generator.FuzzCase`
and returns ``None`` (agreement) or a human-readable description of the
disagreement.  An exception escaping either side counts as a divergence
too -- a crash on a valid CFG is as much a bug as a wrong answer.

The matrix covers every pair named in the repo's redundancy inventory:

====================  =================================================
cycle equivalence     Figure 4 vs §3.3 bracket sets vs brute-force
                      cycle enumeration (tiny graphs only)
SESE / PST            canonical regions from the fast partition vs the
                      slow partition; definitional SESE check (edge
                      dominance/postdominance) per region; PST stack
                      discipline (asserted during construction)
dominators            iterative (Cooper et al.) vs Lengauer-Tarjan vs
                      PST divide-and-conquer; same on the reverse CFG
                      for postdominators
control regions       O(E) node-cycle-equivalence vs the FOW87
                      definition (Theorem 7) vs the CFS90 refinement
CSR kernels           every array kernel vs its retained object-graph
                      reference, exact (identical ids and shapes, not
                      just equal partitions)
backend tiers         reference vs array kernel vs vectorized
                      (NumPy/packed-bit) under ``use_backend``, same
                      exactness, including dataflow fixpoints
dataflow              iterative fixpoint vs PST elimination vs QPG
                      sparse solve, for RD / LV / AE
φ-placement           iterated dominance frontiers vs PST placement
resilience            the guarded engine under persistent fault
                      injection at every site vs the clean verified run
incremental           an :class:`~repro.incremental.EditSession` driven
                      through a seeded random edit stream vs recompute-
                      from-scratch after every accepted delta; rejected
                      deltas must restore the graph exactly
====================  =================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.cfg.graph import CFG, Edge
from repro.core.cycle_equiv import (
    cycle_equivalence_of_cfg,
    cycle_equivalence_of_cfg_reference,
    cycle_equivalence_scc,
)
from repro.core.cycle_equiv_slow import (
    cycle_equivalence_bracket_sets,
    cycle_equivalence_bruteforce,
    group_by_class,
)
from repro.core.pst import build_pst, build_pst_reference
from repro.core.sese import canonical_sese_regions
from repro.controldep.fow import control_regions_by_definition
from repro.controldep.regions_cfs import control_regions_cfs
from repro.controldep.regions_fast import control_regions, control_regions_reference
from repro.dataflow.elimination import solve_elimination
from repro.dataflow.iterative import solve_iterative, solve_iterative_reference
from repro.dataflow.problems import (
    AvailableExpressions,
    LiveVariables,
    ReachingDefinitions,
)
from repro.dataflow.qpg import solve_qpg
from repro.dominance.iterative import (
    immediate_dominators,
    immediate_dominators_reference,
)
from repro.dominance.lengauer_tarjan import lengauer_tarjan, lengauer_tarjan_reference
from repro.dominance.pst_dominators import pst_immediate_dominators
from repro.dominance.tree import DominatorTree
from repro.fuzz.generator import FuzzCase
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import phi_blocks_pst

# Size gate for the exponential brute-force cycle enumerator.
BRUTEFORCE_MAX_NODES = 9
BRUTEFORCE_MAX_EDGES = 16


@dataclass
class Divergence:
    """A structured record of one fast/slow disagreement."""

    oracle: str
    seed: int
    strategy: str
    detail: str
    cfg: CFG

    def summary(self) -> str:
        return (
            f"[{self.oracle}] seed={self.seed} strategy={self.strategy} "
            f"|V|={self.cfg.num_nodes} |E|={self.cfg.num_edges}: {self.detail}"
        )


@dataclass
class Oracle:
    """A named cross-check over one fuzz case."""

    name: str
    check: Callable[[FuzzCase], Optional[str]]

    def run(self, case: FuzzCase) -> Optional[Divergence]:
        try:
            detail = self.check(case)
        except Exception as error:  # crashes are divergences, not aborts
            detail = f"raised {type(error).__name__}: {error}"
        if detail is None:
            return None
        return Divergence(
            oracle=self.name,
            seed=case.seed,
            strategy=case.strategy,
            detail=detail,
            cfg=case.cfg,
        )


# ----------------------------------------------------------------------
# partition helpers
# ----------------------------------------------------------------------

def _partition_by_eid(classes: Dict[Edge, object]) -> Sequence[frozenset]:
    groups = group_by_class(classes)
    return sorted(
        (frozenset(e.eid for e in edges) for edges in groups.values()),
        key=lambda s: min(s),
    )


def _diff_partitions(fast, slow) -> Optional[str]:
    fast_p, slow_p = _partition_by_eid(fast), _partition_by_eid(slow)
    if set(fast_p) == set(slow_p):
        return None
    only_fast = [sorted(s) for s in fast_p if s not in slow_p]
    only_slow = [sorted(s) for s in slow_p if s not in fast_p]
    return f"fast-only classes {only_fast} vs slow-only classes {only_slow} (edge ids)"


# ----------------------------------------------------------------------
# cycle equivalence
# ----------------------------------------------------------------------

def _check_cycle_equiv_bracket_sets(case: FuzzCase) -> Optional[str]:
    augmented, _ = case.cfg.with_return_edge()
    fast = cycle_equivalence_scc(augmented, root=augmented.start).class_of
    slow = cycle_equivalence_bracket_sets(augmented)
    return _diff_partitions(fast, slow)


def _check_cycle_equiv_bruteforce(case: FuzzCase) -> Optional[str]:
    augmented, _ = case.cfg.with_return_edge()
    if (
        augmented.num_nodes > BRUTEFORCE_MAX_NODES
        or augmented.num_edges > BRUTEFORCE_MAX_EDGES
    ):
        return None  # exponential oracle; skip large graphs
    fast = cycle_equivalence_scc(augmented, root=augmented.start).class_of
    brute = cycle_equivalence_bruteforce(augmented)
    return _diff_partitions(fast, brute)


# ----------------------------------------------------------------------
# SESE regions and the PST
# ----------------------------------------------------------------------

def _check_sese_slow_partition(case: FuzzCase) -> Optional[str]:
    """Canonical regions derived from the fast vs the slow edge partition.

    The slow partition is computed on the augmented graph and mapped back to
    the original edges positionally (``with_return_edge`` copies edges in
    order), then fed through the same §3.6 DFS pairing.
    """
    cfg = case.cfg
    augmented, back = cfg.with_return_edge()
    slow = cycle_equivalence_bracket_sets(augmented)
    # Augmented edge i corresponds to cfg.edges[i]; the return edge is last.
    by_eid = {edge.eid: slow[edge] for edge in augmented.edges if edge is not back}

    class _SlowEquiv:
        class_of = {edge: by_eid[edge.eid] for edge in cfg.edges}

    fast_regions = canonical_sese_regions(cfg)
    slow_regions = canonical_sese_regions(cfg, _SlowEquiv())
    fast_pairs = sorted((r.entry.eid, r.exit.eid) for r in fast_regions)
    slow_pairs = sorted((r.entry.eid, r.exit.eid) for r in slow_regions)
    if fast_pairs != slow_pairs:
        return f"fast canonical regions {fast_pairs} != slow-derived {slow_pairs} (edge-id pairs)"
    return None


def _check_sese_definition(case: FuzzCase) -> Optional[str]:
    """Every canonical region satisfies Definition 2 literally.

    Edge dominance/postdominance is checked on the edge-split graph:
    ``a`` dominates ``b`` iff split(a) dominates split(b).
    """
    cfg = case.cfg
    regions = canonical_sese_regions(cfg)
    if not regions:
        return None
    split, split_node = cfg.edge_split()
    dom = DominatorTree(immediate_dominators(split, root=split.start), split.start)
    rsplit = split.reversed()
    pdom = DominatorTree(immediate_dominators(rsplit, root=rsplit.start), rsplit.start)
    for region in regions:
        a, b = split_node[region.entry], split_node[region.exit]
        if not dom.dominates(a, b):
            return f"region {region.describe()}: entry does not dominate exit"
        if not pdom.dominates(b, a):
            return f"region {region.describe()}: exit does not postdominate entry"
    return None


def _check_pst_structure(case: FuzzCase) -> Optional[str]:
    """PST construction invariants: coverage, nesting, stack discipline.

    The stack-discipline assertions fire inside :func:`build_pst`; this
    check adds node-coverage and parent-containment validation on top.
    """
    cfg = case.cfg
    pst = build_pst(cfg)
    seen = {}
    for region in pst.regions():
        for node in region.own_nodes:
            if node in seen:
                return f"node {node!r} owned by two regions"
            seen[node] = region
    missing = [n for n in cfg.nodes if n not in seen]
    if missing:
        return f"nodes {missing!r} not owned by any region"
    for region in pst.canonical_regions():
        parent = region.parent
        if parent is None:
            return f"canonical region {region.describe()} has no parent"
        interior = set(region.nodes())
        for node in interior:
            if not pst.contains(region, node):
                return f"containment query disagrees with nodes() for {node!r}"
    return None


# ----------------------------------------------------------------------
# CSR kernel vs object-graph references
# ----------------------------------------------------------------------

def _pst_signature(pst) -> List[tuple]:
    out: List[tuple] = []

    def walk(region, depth: int) -> None:
        out.append(
            (
                depth,
                None if region.entry is None else region.entry.eid,
                None if region.exit is None else region.exit.eid,
                tuple(region.own_nodes),
            )
        )
        for child in region.children:
            walk(child, depth + 1)

    walk(pst.root, 0)
    return out


def _check_kernel_reference(case: FuzzCase) -> Optional[str]:
    """The array kernels agree *exactly* with their object-graph references.

    Stricter than the partition-level oracles above: class ids must be
    identical (not merely the same partition), the PST must have the same
    shape region by region, and Lengauer-Tarjan / control-region outputs
    must match verbatim -- the kernels promise bit-identical results, so
    any slack here would hide a divergence.
    """
    cfg = case.cfg
    kernel = cycle_equivalence_of_cfg(cfg, validate=False)
    reference = cycle_equivalence_of_cfg_reference(cfg, validate=False)
    if kernel.class_of != reference.class_of:
        diffs = [
            f"eid {edge.eid}: kernel={kernel.class_of[edge]} "
            f"reference={reference.class_of[edge]}"
            for edge in cfg.edges
            if kernel.class_of[edge] != reference.class_of[edge]
        ]
        return "cycle-equiv class ids differ: " + "; ".join(diffs[:5])

    diff = _diff_idoms(
        lengauer_tarjan(cfg), lengauer_tarjan_reference(cfg), "kernel", "reference"
    )
    if diff:
        return diff

    kernel_pst = _pst_signature(build_pst(cfg))
    reference_pst = _pst_signature(build_pst_reference(cfg))
    if kernel_pst != reference_pst:
        return f"PST structure differs: kernel {kernel_pst} != reference {reference_pst}"

    kernel_cr = control_regions(cfg, validate=False)
    reference_cr = control_regions_reference(cfg, validate=False)
    if kernel_cr != reference_cr:
        return f"control regions differ: kernel {kernel_cr} != reference {reference_cr}"
    return None


def _check_backend_three_way(case: FuzzCase) -> Optional[str]:
    """Reference vs array kernel vs vectorized tier agree *exactly*.

    Same strictness as :func:`_check_kernel_reference`, one axis more: the
    public entry points are run under ``use_backend("kernel")`` and
    ``use_backend("vectorized")`` and both tiers must return bit-identical
    cycle-equivalence class ids, idoms, PST shape, control regions, and
    dataflow fixpoints -- and match the object-graph references.  Without
    NumPy the vectorized leg resolves to the array kernels (the documented
    degradation), so the check never skips, it just collapses to two-way.
    """
    from repro.kernel.backend import use_backend

    cfg = case.cfg
    proc = case.proc

    def tier_snapshot() -> tuple:
        ce = cycle_equivalence_of_cfg(cfg, validate=False)
        class_ids = tuple(ce.class_of[edge] for edge in cfg.edges)
        idom = immediate_dominators(cfg)
        pst = _pst_signature(build_pst(cfg))
        cr = control_regions(cfg, validate=False)
        flows = tuple(
            solve_iterative(proc.cfg, problem_cls(proc))
            for problem_cls in (ReachingDefinitions, LiveVariables, AvailableExpressions)
        )
        return class_ids, idom, pst, cr, flows

    with use_backend("kernel"):
        kernel = tier_snapshot()
    with use_backend("vectorized"):
        vectorized = tier_snapshot()
    reference = (
        tuple(
            cycle_equivalence_of_cfg_reference(cfg, validate=False).class_of[edge]
            for edge in cfg.edges
        ),
        immediate_dominators_reference(cfg),
        _pst_signature(build_pst_reference(cfg)),
        control_regions_reference(cfg, validate=False),
        tuple(
            solve_iterative_reference(proc.cfg, problem_cls(proc))
            for problem_cls in (ReachingDefinitions, LiveVariables, AvailableExpressions)
        ),
    )
    labels = ("cycle-equiv class ids", "idoms", "PST shape", "control regions", "dataflow fixpoints")
    for name, k, v, r in zip(labels, kernel, vectorized, reference):
        if k != v:
            return f"{name}: kernel tier != vectorized tier"
        if k != r:
            return f"{name}: kernel tier != reference"
    return None


# ----------------------------------------------------------------------
# dominators
# ----------------------------------------------------------------------

def _diff_idoms(a: Dict, b: Dict, la: str, lb: str) -> Optional[str]:
    if a == b:
        return None
    keys = set(a) | set(b)
    diffs = [
        f"{node!r}: {la}={a.get(node)!r} {lb}={b.get(node)!r}"
        for node in keys
        if a.get(node) != b.get(node)
    ]
    return f"idom mismatch ({la} vs {lb}): " + "; ".join(sorted(diffs)[:5])


def _check_dominators(case: FuzzCase) -> Optional[str]:
    cfg = case.cfg
    iterative = immediate_dominators(cfg)
    lt = lengauer_tarjan(cfg)
    pst_based = pst_immediate_dominators(cfg)
    return (
        _diff_idoms(iterative, lt, "iterative", "lengauer-tarjan")
        or _diff_idoms(iterative, pst_based, "iterative", "pst")
    )


def _check_postdominators(case: FuzzCase) -> Optional[str]:
    reverse = case.cfg.reversed()
    iterative = immediate_dominators(reverse)
    lt = lengauer_tarjan(reverse)
    return _diff_idoms(iterative, lt, "iterative", "lengauer-tarjan")


# ----------------------------------------------------------------------
# control regions (Theorem 7)
# ----------------------------------------------------------------------

def _check_control_regions(case: FuzzCase) -> Optional[str]:
    cfg = case.cfg
    fast = control_regions(cfg, validate=False)
    by_def = control_regions_by_definition(cfg)
    if fast != by_def:
        return f"fast {fast} != definitional {by_def}"
    cfs = control_regions_cfs(cfg)
    if fast != cfs:
        return f"fast {fast} != CFS90 {cfs}"
    return None


# ----------------------------------------------------------------------
# dataflow solvers
# ----------------------------------------------------------------------

def _diff_solutions(a, b, la: str, lb: str, nodes) -> Optional[str]:
    for node in nodes:
        if a.before[node] != b.before[node]:
            return (
                f"{la}.before[{node!r}]={sorted(map(repr, a.before[node]))} != "
                f"{lb}.before[{node!r}]={sorted(map(repr, b.before[node]))}"
            )
        if a.after[node] != b.after[node]:
            return (
                f"{la}.after[{node!r}]={sorted(map(repr, a.after[node]))} != "
                f"{lb}.after[{node!r}]={sorted(map(repr, b.after[node]))}"
            )
    return None


def _check_dataflow(case: FuzzCase) -> Optional[str]:
    proc = case.proc
    pst = build_pst(proc.cfg)
    for problem_cls in (ReachingDefinitions, LiveVariables, AvailableExpressions):
        problem = problem_cls(proc)
        iterative = solve_iterative(proc.cfg, problem)
        elimination = solve_elimination(proc.cfg, problem, pst)
        diff = _diff_solutions(
            iterative, elimination, "iterative", f"elimination[{problem_cls.__name__}]",
            proc.cfg.nodes,
        )
        if diff:
            return diff
        sparse = solve_qpg(proc.cfg, problem, pst).solution
        diff = _diff_solutions(
            iterative, sparse, "iterative", f"qpg[{problem_cls.__name__}]",
            proc.cfg.nodes,
        )
        if diff:
            return diff
    return None


# ----------------------------------------------------------------------
# resilience engine under fault injection
# ----------------------------------------------------------------------

def _check_fault_recovery(case: FuzzCase) -> Optional[str]:
    """The resilience engine must absorb every injected fault.

    For each fault site, a persistent fault is injected and
    :func:`repro.resilience.engine.run_analysis` is run; the engine must
    report success (detecting the corruption and falling back, or the fault
    being masked) and its results must equal the clean run's -- which the
    engine itself has already verified against the slow references.
    """
    from repro.resilience import engine as _engine
    from repro.resilience import faults as _faults

    cfg = case.cfg
    clean = _engine.run_analysis(cfg)
    if not clean.ok:
        return f"engine failed on clean input: {clean.error}"
    if clean.degraded:
        return (
            "engine degraded on clean input: "
            + "; ".join(a.describe() for a in clean.diagnostic.failures())
        )
    clean_pst = sorted((r.entry.eid, r.exit.eid) for r in clean.pst.canonical_regions())
    for site in _faults.ALL_SITES:
        plan = _faults.FaultPlan(sites=[site.name], seed=case.seed)
        with _faults.inject(plan):
            injected = _engine.run_analysis(cfg)
        if not injected.ok:
            return f"[{site.name}] engine failed under injection: {injected.error}"
        if injected.idom != clean.idom:
            return f"[{site.name}] recovered idoms differ from the clean run"
        if injected.control_regions != clean.control_regions:
            return f"[{site.name}] recovered control regions differ from the clean run"
        injected_pst = sorted(
            (r.entry.eid, r.exit.eid) for r in injected.pst.canonical_regions()
        )
        if injected_pst != clean_pst:
            return (
                f"[{site.name}] recovered PST regions {injected_pst} != "
                f"clean {clean_pst} (edge-id pairs)"
            )
    return None


# ----------------------------------------------------------------------
# incremental maintenance under edit streams
# ----------------------------------------------------------------------

EDIT_STREAM_STEPS = 24


def _graph_snapshot(cfg: CFG) -> tuple:
    return (
        tuple(sorted(map(repr, cfg.nodes))),
        tuple(sorted((e.eid, repr(e.source), repr(e.target), e.label) for e in cfg.edges)),
    )


def _check_incremental_edit_stream(case: FuzzCase) -> Optional[str]:
    """The fast/slow differential for the edit layer (ISSUE 10's oracle).

    Drives an :class:`~repro.incremental.EditSession` through a seeded
    random stream of deltas (edge/node insertions and removals plus
    undos) over a copy of the case's CFG.  After every *accepted* delta
    the maintained cycle-equivalence partition and PST must equal a
    recompute-from-scratch, and the session's cached dominators must
    equal a fresh Lengauer-Tarjan run (exercising the per-key stale
    invalidation).  Every *rejected* delta must leave the graph -- node
    set, edge ids, labels -- exactly as it was.
    """
    import random as _random

    from repro.incremental import DeltaValidationError, EditSession
    from repro.incremental.compare import diff_artifacts

    cfg = case.cfg.copy()
    session = EditSession(cfg)
    rng = _random.Random(case.seed ^ 0xED17)
    fresh = 0

    for step in range(EDIT_STREAM_STEPS):
        nodes = list(cfg.nodes)
        interior = [n for n in nodes if n != cfg.start and n != cfg.end]
        roll = rng.random()
        before = _graph_snapshot(cfg)
        try:
            if roll < 0.40 or not interior:
                # Deliberately unrestricted endpoints: some of these are
                # invalid (into start, out of end, severing paths) and
                # exercise the rejection/rollback arm.
                session.add_edge(rng.choice(nodes), rng.choice(nodes))
            elif roll < 0.60:
                edge = rng.choice(cfg.edges)
                session.remove_edge(edge.source, edge.target, eid=edge.eid)
            elif roll < 0.72:
                anchor = rng.choice(interior)
                fresh += 1
                session.add_node(
                    ("fresh", case.seed, fresh),
                    preds=[anchor],
                    succs=[rng.choice(interior)],
                )
            elif roll < 0.84:
                session.remove_node(rng.choice(interior))
            elif session.applied_deltas:
                session.undo()
            else:
                continue
        except DeltaValidationError:
            if _graph_snapshot(cfg) != before:
                return f"step {step}: rejected delta did not restore the graph exactly"
            continue
        scratch_equiv = cycle_equivalence_of_cfg(cfg, validate=False)
        scratch_pst = build_pst(cfg, scratch_equiv)
        detail = diff_artifacts(
            session.equiv.class_of, session.pst, scratch_equiv.class_of, scratch_pst
        )
        if detail is not None:
            return f"step {step}: maintained artifacts diverged: {detail}"
        if session.dominators() != lengauer_tarjan(cfg):
            return f"step {step}: session dominators diverged from fresh Lengauer-Tarjan"
    return None


# ----------------------------------------------------------------------
# φ-placement
# ----------------------------------------------------------------------

def _check_phi_placement(case: FuzzCase) -> Optional[str]:
    proc = case.proc
    cytron = phi_blocks_cytron(proc)
    pst_based = phi_blocks_pst(proc)
    if cytron == pst_based:
        return None
    for var in sorted(set(cytron) | set(pst_based)):
        a, b = cytron.get(var, set()), pst_based.get(var, set())
        if a != b:
            return (
                f"φ-blocks for {var!r}: cytron={sorted(map(repr, a))} "
                f"pst={sorted(map(repr, b))}"
            )
    return None


ALL_ORACLES: List[Oracle] = [
    Oracle("cycle-equiv/bracket-sets", _check_cycle_equiv_bracket_sets),
    Oracle("cycle-equiv/bruteforce", _check_cycle_equiv_bruteforce),
    Oracle("sese/slow-partition", _check_sese_slow_partition),
    Oracle("sese/definition", _check_sese_definition),
    Oracle("pst/structure", _check_pst_structure),
    Oracle("kernel/reference", _check_kernel_reference),
    Oracle("backend/three-way", _check_backend_three_way),
    Oracle("dominators/matrix", _check_dominators),
    Oracle("postdominators/pair", _check_postdominators),
    Oracle("control-regions/matrix", _check_control_regions),
    Oracle("dataflow/solvers", _check_dataflow),
    Oracle("phi/placement", _check_phi_placement),
    Oracle("resilience/fault-recovery", _check_fault_recovery),
    Oracle("incremental/edit-stream", _check_incremental_edit_stream),
]

ORACLES_BY_NAME: Dict[str, Oracle] = {oracle.name: oracle for oracle in ALL_ORACLES}


def run_oracles(
    case: FuzzCase, oracles: Optional[Sequence[Oracle]] = None
) -> List[Divergence]:
    """Run (a subset of) the matrix on one case; empty list means agreement."""
    out: List[Divergence] = []
    for oracle in oracles if oracles is not None else ALL_ORACLES:
        divergence = oracle.run(case)
        if divergence is not None:
            out.append(divergence)
    return out
