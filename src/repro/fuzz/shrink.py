"""Greedy divergence-preserving CFG minimization.

Given a divergent CFG and a predicate that re-checks the divergence, the
shrinker repeatedly tries structure-removing mutations -- delete an edge,
delete a node with its incident edges, collapse a chain node -- keeping a
mutation only when the result is still a *valid* CFG (Definition 1) on
which the divergence persists.  The passes loop to a fixpoint, so the
result is 1-minimal with respect to the mutation set: removing any single
remaining edge or node either breaks validity or makes the disagreement
disappear.

The payoff is :func:`regression_test_source`: a shrunk divergence becomes a
self-contained, ready-to-paste pytest case that rebuilds the minimal graph
edge-by-edge and asserts the oracle pair agrees, pinning the fix forever.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.cfg.validate import is_valid_cfg
from repro.fuzz.generator import cfg_from_edges, edges_of

#: Predicate: True iff the CFG still exhibits the divergence being shrunk.
Property = Callable[[CFG], bool]


def _rebuild(
    start: NodeId, end: NodeId, pairs: List[Tuple[NodeId, NodeId]], name: str
) -> CFG:
    cfg = cfg_from_edges(start, end, pairs, name=name)
    # Preserve isolated start/end (cfg_from_edges adds them); interior nodes
    # only exist through edges, which is exactly what minimization wants.
    return cfg


def _still_fails(candidate: CFG, prop: Property) -> bool:
    if not is_valid_cfg(candidate):
        return False
    try:
        return prop(candidate)
    except Exception:
        # The property itself crashing on a smaller graph usually means the
        # divergence mutated into a different bug; keep the current shape.
        return False


def shrink_cfg(cfg: CFG, prop: Property, max_rounds: int = 50) -> CFG:
    """Minimize ``cfg`` while ``prop`` holds; returns the shrunk graph.

    ``prop`` must be True for ``cfg`` itself (otherwise there is nothing to
    shrink, and the input is returned unchanged).
    """
    if not _still_fails(cfg, prop):
        return cfg
    start, end, name = cfg.start, cfg.end, f"{cfg.name}.shrunk"
    pairs = [tuple(p) for p in edges_of(cfg)]

    for _ in range(max_rounds):
        changed = False

        # Pass 1: drop single edges (back to front: later edges are usually
        # the sprinkled adversarial ones, so this converges fastest).
        index = len(pairs) - 1
        while index >= 0:
            candidate_pairs = pairs[:index] + pairs[index + 1:]
            candidate = _rebuild(start, end, candidate_pairs, name)
            if _still_fails(candidate, prop):
                pairs = candidate_pairs
                changed = True
            index -= 1

        # Pass 2: drop whole nodes (all incident edges at once) -- removes
        # nodes whose every edge is individually load-bearing for validity.
        for node in _interior_nodes(start, end, pairs):
            candidate_pairs = [
                p for p in pairs if p[0] != node and p[1] != node
            ]
            if len(candidate_pairs) == len(pairs):
                continue
            candidate = _rebuild(start, end, candidate_pairs, name)
            if _still_fails(candidate, prop):
                pairs = candidate_pairs
                changed = True

        # Pass 3: splice out chain nodes (unique pred and succ): replace
        # ``u -> n -> v`` by ``u -> v``, shortening spines the edge/node
        # passes cannot touch without breaking validity.
        for node in _interior_nodes(start, end, pairs):
            incoming = [p for p in pairs if p[1] == node]
            outgoing = [p for p in pairs if p[0] == node]
            if len(incoming) != 1 or len(outgoing) != 1:
                continue
            u, v = incoming[0][0], outgoing[0][1]
            if u == node or v == node:
                continue  # self-loop chain; pass 1/2 territory
            candidate_pairs = [
                p for p in pairs if p[0] != node and p[1] != node
            ]
            candidate_pairs.append((u, v))
            candidate = _rebuild(start, end, candidate_pairs, name)
            if _still_fails(candidate, prop):
                pairs = candidate_pairs
                changed = True

        if not changed:
            break
    return _rebuild(start, end, pairs, name)


def _interior_nodes(
    start: NodeId, end: NodeId, pairs: List[Tuple[NodeId, NodeId]]
) -> List[NodeId]:
    seen: List[NodeId] = []
    for source, target in pairs:
        for node in (source, target):
            if node not in (start, end) and node not in seen:
                seen.append(node)
    return seen


def regression_test_source(
    cfg: CFG,
    oracle_name: str,
    seed: int,
    strategy: str,
    detail: str = "",
    test_name: Optional[str] = None,
) -> str:
    """A ready-to-paste pytest case asserting the oracle passes on ``cfg``.

    The emitted test rebuilds the shrunk graph explicitly (no generator
    involved, so it stays stable if generation strategies evolve) and
    asserts the named oracle reports agreement.
    """
    safe = oracle_name.replace("/", "_").replace("-", "_")
    test_name = test_name or f"test_{safe}_seed{seed}"
    pair_lines = "".join(
        f"        ({source!r}, {target!r}),\n" for source, target in edges_of(cfg)
    )
    comment = f"    # {detail}\n" if detail else ""
    return (
        f"def {test_name}():\n"
        f'    """Shrunk from `repro fuzz` seed={seed} strategy={strategy}."""\n'
        f"{comment}"
        f"    cfg = cfg_from_edges({cfg.start!r}, {cfg.end!r}, [\n"
        f"{pair_lines}"
        f"    ])\n"
        f"    case = FuzzCase(seed={seed}, strategy={strategy!r}, cfg=cfg)\n"
        f"    divergence = ORACLES_BY_NAME[{oracle_name!r}].run(case)\n"
        f"    assert divergence is None, divergence.detail\n"
    )
