"""Differential fuzzing of the fast/slow algorithm pairs.

The repo deliberately keeps a slow, independently derived counterpart next
to every linear-time algorithm from the paper (Figure 4 cycle equivalence
vs §3.3 bracket sets, the three dominator algorithms, O(E) control regions
vs the FOW87 definition and the CFS90 refinement, PST-elimination and QPG
dataflow vs the iterative fixpoint, PST φ-placement vs iterated dominance
frontiers).  This package hammers each pair with adversarial control-flow
graphs and reports any disagreement:

* :mod:`repro.fuzz.generator` -- seeded generators for the shapes the
  hand-written corpus under-samples (parallel edges, self-loops,
  irreducible loops, degenerate graphs, deep nesting, random edges
  injected into structured skeletons);
* :mod:`repro.fuzz.oracles` -- the oracle matrix: one named cross-check
  per redundant pair, producing structured :class:`Divergence` records;
* :mod:`repro.fuzz.shrink` -- greedy divergence-preserving minimizer that
  turns a failing CFG into a ready-to-paste pytest regression case;
* :mod:`repro.fuzz.runner` -- the deterministic campaign driver behind
  ``repro fuzz`` and the ``fuzz-smoke`` pytest marker.

See ``docs/TESTING.md`` for how to run a campaign and how a divergence
becomes a pinned regression test.
"""

from repro.fuzz.generator import (
    FuzzCase,
    STRATEGIES,
    attach_statements,
    cfg_from_edges,
    edges_of,
    generate_case,
)
from repro.fuzz.oracles import ALL_ORACLES, Divergence, Oracle, run_oracles
from repro.fuzz.runner import FuzzReport, run_fuzz
from repro.fuzz.shrink import regression_test_source, shrink_cfg

__all__ = [
    "FuzzCase",
    "STRATEGIES",
    "attach_statements",
    "cfg_from_edges",
    "edges_of",
    "generate_case",
    "ALL_ORACLES",
    "Divergence",
    "Oracle",
    "run_oracles",
    "FuzzReport",
    "run_fuzz",
    "regression_test_source",
    "shrink_cfg",
]
