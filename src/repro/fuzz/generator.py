"""Seeded adversarial CFG generation for the differential fuzzer.

Every strategy is deterministic in its seed and produces a *valid* CFG
(Definition 1) by construction: each starts from a start-to-end spine (or a
lowered structured procedure, which is valid by construction) and only adds
edges whose source is not ``end`` and whose target is not ``start``, which
preserves both reachability invariants.

The strategies deliberately over-sample the shapes the hand-written test
corpus under-samples -- parallel edges, self-loops, irreducible loops,
start-to-end degenerate graphs, deep nesting, and random edges injected
into structured skeletons -- because those are where multigraph- and
boundary-condition bugs hide.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.cfg.validate import is_valid_cfg
from repro.ir import Assign, Branch, LoweredProcedure, Ret
from repro.synth.structured import random_lowered_procedure


def cfg_from_edges(
    start: NodeId, end: NodeId, edges: Iterable[Tuple[NodeId, NodeId]], name: str = "fuzz"
) -> CFG:
    """Rebuild a CFG from its ``(source, target)`` pair list.

    The canonical serialized form used by the shrinker's regression-test
    output; edge insertion order (hence edge ids) follows the pair order.
    """
    cfg = CFG(start=start, end=end, name=name)
    for source, target in edges:
        cfg.add_edge(source, target)
    return cfg


def edges_of(cfg: CFG) -> List[Tuple[NodeId, NodeId]]:
    """The ``(source, target)`` pair list accepted by :func:`cfg_from_edges`."""
    return [edge.pair for edge in cfg.edges]


@dataclass
class FuzzCase:
    """One generated input: a CFG plus the recipe that produced it."""

    seed: int
    strategy: str
    cfg: CFG
    _proc: Optional[LoweredProcedure] = field(default=None, repr=False)

    @property
    def proc(self) -> LoweredProcedure:
        """A statement-bearing procedure over ``cfg`` (lazily attached)."""
        if self._proc is None:
            self._proc = attach_statements(self.cfg, random.Random(self.seed ^ 0x5F5F))
        return self._proc

    def describe(self) -> str:
        return (
            f"seed={self.seed} strategy={self.strategy} "
            f"|V|={self.cfg.num_nodes} |E|={self.cfg.num_edges}"
        )


# ----------------------------------------------------------------------
# strategy helpers
# ----------------------------------------------------------------------

def _spine(interior: int, name: str) -> Tuple[CFG, List[NodeId]]:
    cfg = CFG(start="start", end="end", name=name)
    nodes: List[NodeId] = [f"n{i}" for i in range(interior)]
    previous: NodeId = "start"
    for node in nodes:
        cfg.add_edge(previous, node)
        previous = node
    cfg.add_edge(previous, "end")
    return cfg, nodes


def _sprinkle(
    cfg: CFG,
    interior: Sequence[NodeId],
    rng: random.Random,
    count: int,
    self_loop_rate: float = 0.0,
    parallel_rate: float = 0.0,
) -> None:
    """Add ``count`` random validity-preserving edges."""
    sources = [cfg.start] + list(interior)
    targets = list(interior) + [cfg.end]
    for _ in range(count):
        roll = rng.random()
        if interior and roll < self_loop_rate:
            node = rng.choice(list(interior))
            cfg.add_edge(node, node)
        elif roll < self_loop_rate + parallel_rate:
            source = rng.choice(sources)
            target = rng.choice(targets)
            for _ in range(rng.randint(2, 3)):
                cfg.add_edge(source, target)
        else:
            cfg.add_edge(rng.choice(sources), rng.choice(targets))


def _gen_spine_random(seed: int, size: int) -> CFG:
    """Spine plus uniformly random extra edges (mildly adversarial)."""
    rng = random.Random(seed)
    interior = max(1, rng.randint(1, size))
    cfg, nodes = _spine(interior, f"spine{seed}")
    _sprinkle(cfg, nodes, rng, rng.randint(0, 2 * interior), 0.08, 0.08)
    return cfg


def _gen_multigraph_storm(seed: int, size: int) -> CFG:
    """Heavy parallel-edge and self-loop density on a short spine."""
    rng = random.Random(seed)
    interior = max(1, rng.randint(1, max(2, size // 2)))
    cfg, nodes = _spine(interior, f"multi{seed}")
    _sprinkle(cfg, nodes, rng, rng.randint(interior, 3 * interior + 2), 0.35, 0.45)
    return cfg


def _gen_irreducible(seed: int, size: int) -> CFG:
    """Loops entered in the middle: classic irreducible shapes.

    Builds the spine, then repeatedly picks ``i < j < k`` and adds the
    retreating edge ``n_k -> n_j`` together with the side entry
    ``start/n_i -> n_k`` region-skipping edge, producing loops with two
    entries (the canonical irreducible triangle) at several scales.
    """
    rng = random.Random(seed)
    interior = max(3, rng.randint(3, max(4, size)))
    cfg, nodes = _spine(interior, f"irred{seed}")
    for _ in range(rng.randint(1, 1 + interior // 3)):
        i, j, k = sorted(rng.sample(range(interior), 3)) if interior >= 3 else (0, 1, 2)
        cfg.add_edge(nodes[k], nodes[j])          # retreating edge: loop j..k
        entry_source = rng.choice(["start", nodes[i]])
        cfg.add_edge(entry_source, nodes[k])      # second entry into the loop
    _sprinkle(cfg, nodes, rng, rng.randint(0, interior // 2), 0.1, 0.1)
    return cfg


def _gen_deep_nesting(seed: int, size: int) -> CFG:
    """A tower of nested single-entry single-exit loops and diamonds.

    Exercises deep PSTs (the paper's corpus tops out at depth 13; this goes
    well beyond) and the bracket-list concat/delete chains that come with
    them.
    """
    rng = random.Random(seed)
    depth = max(2, rng.randint(2, max(3, size)))
    cfg = CFG(start="start", end="end", name=f"deep{seed}")
    outer_in: NodeId = "start"
    outer_out: NodeId = "end"
    opening: List[Tuple[NodeId, NodeId]] = []
    for level in range(depth):
        head, tail = f"h{level}", f"t{level}"
        cfg.add_edge(outer_in, head)
        opening.append((head, tail))
        outer_in = head
    previous: Optional[NodeId] = None
    for head, tail in reversed(opening):
        if previous is None:
            cfg.add_edge(head, tail)              # innermost body
        else:
            cfg.add_edge(previous, tail)
        kind = rng.random()
        if kind < 0.45:
            cfg.add_edge(tail, head)              # loop: tail back to head
            cfg.add_edge(tail, f"x{head}")
            tail = f"x{head}"
        elif kind < 0.7:
            cfg.add_edge(head, tail)              # diamond: parallel arm
        previous = tail
    cfg.add_edge(previous, outer_out)
    return cfg


def _gen_structured_skeleton(seed: int, size: int) -> CFG:
    """A lowered MiniLang procedure with random edges spliced in.

    Structured skeletons have realistic region nesting; the injected edges
    (including gotos into loop bodies) break the structure in ways the
    front end never produces.
    """
    rng = random.Random(seed)
    proc = random_lowered_procedure(
        seed,
        target_statements=max(4, min(40, size * 2)),
        goto_rate=rng.choice([0.0, 0.0, 0.3]),
        name=f"skel{seed}",
    )
    cfg = proc.cfg.copy(name=f"skel{seed}")
    interior = [n for n in cfg.nodes if n not in (cfg.start, cfg.end)]
    if interior:
        _sprinkle(cfg, interior, rng, rng.randint(1, 4), 0.15, 0.2)
    return cfg


def _gen_degenerate(seed: int, size: int) -> CFG:
    """Tiny boundary-condition graphs: the smallest legal CFGs.

    Cycles through a fixed menu -- single edge, parallel start->end edges,
    one interior node with self-loops, two-node ping-pong -- so every
    campaign covers each shape regardless of ``count``.
    """
    rng = random.Random(seed)
    menu = seed % 5
    cfg = CFG(start="start", end="end", name=f"degen{seed}")
    if menu == 0:
        cfg.add_edge("start", "end")
    elif menu == 1:
        for _ in range(rng.randint(2, 4)):
            cfg.add_edge("start", "end")
    elif menu == 2:
        cfg.add_edge("start", "a")
        for _ in range(rng.randint(1, 3)):
            cfg.add_edge("a", "a")
        cfg.add_edge("a", "end")
    elif menu == 3:
        cfg.add_edge("start", "a")
        cfg.add_edge("a", "b")
        cfg.add_edge("b", "a")
        cfg.add_edge("a", "end")
        if rng.random() < 0.5:
            cfg.add_edge("b", "b")
    else:
        cfg.add_edge("start", "a")
        cfg.add_edge("start", "a")
        cfg.add_edge("a", "a")
        cfg.add_edge("a", "end")
        cfg.add_edge("a", "end")
    return cfg


STRATEGIES: Dict[str, Callable[[int, int], CFG]] = {
    "spine_random": _gen_spine_random,
    "multigraph_storm": _gen_multigraph_storm,
    "irreducible": _gen_irreducible,
    "deep_nesting": _gen_deep_nesting,
    "structured_skeleton": _gen_structured_skeleton,
    "degenerate": _gen_degenerate,
}

_STRATEGY_ORDER = list(STRATEGIES)


def generate_case(seed: int, size: int = 10, strategy: Optional[str] = None) -> FuzzCase:
    """The fuzz case for ``seed``: strategy round-robins unless pinned.

    ``size`` loosely bounds interior node counts; each strategy draws its
    exact dimensions from the seed so shapes vary within a campaign.
    """
    name = strategy or _STRATEGY_ORDER[seed % len(_STRATEGY_ORDER)]
    cfg = STRATEGIES[name](seed, size)
    assert is_valid_cfg(cfg), f"generator {name!r} produced an invalid CFG for seed {seed}"
    return FuzzCase(seed=seed, strategy=name, cfg=cfg)


def attach_statements(cfg: CFG, rng: random.Random, num_vars: int = 4) -> LoweredProcedure:
    """Random def/use statements over ``cfg`` for the dataflow/SSA oracles.

    Every block gets 0-2 assignments over a small variable pool; branching
    blocks get a guard using a random variable; ``end`` gets a return.  The
    same CFG object is shared, not copied, so shrinking the graph and
    re-attaching statements stays cheap.
    """
    variables = [f"v{i}" for i in range(num_vars)]
    blocks: Dict[NodeId, List] = {}
    for node in cfg.nodes:
        stmts: List = []
        for _ in range(rng.randint(0, 2)):
            target = rng.choice(variables)
            uses = rng.sample(variables, rng.randint(0, 2))
            stmts.append(Assign(target, uses))
        if cfg.out_degree(node) > 1:
            stmts.append(Branch([rng.choice(variables)]))
        if node == cfg.end:
            stmts.append(Ret([rng.choice(variables)]))
        blocks[node] = stmts
    return LoweredProcedure(f"{cfg.name}_proc", cfg, blocks)
