"""Out-of-SSA translation: replace φ-functions with explicit copies.

The standard pitfalls are handled:

* **critical edges** (predecessor with several successors into a block with
  several predecessors) are split with a fresh block, so a copy inserted
  for one edge cannot execute on another path;
* **parallel-copy semantics** (φs of one block all read their arguments
  simultaneously; naive sequential copies break swaps like
  ``x, y = y, x``) are preserved by staging every transfer through a fresh
  temporary: ``tmp_i = a_i`` for all i, then ``t_i = tmp_i``.

The result is a new :class:`~repro.ir.LoweredProcedure` over a new CFG
(edge splitting changes the graph); it is ordinary, φ-free code that the
reference interpreter executes identically to the SSA input -- the
round-trip property the tests check on random programs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.ir import Branch, Copy, LoweredProcedure, Phi, Stmt


def destruct_ssa(proc: LoweredProcedure) -> LoweredProcedure:
    """Replace every φ with copies on the incoming edges."""
    # -- 1. decide which edges need splitting ---------------------------
    needs_copies: Dict[Edge, List[Tuple[str, str]]] = {}
    for block in proc.cfg.nodes:
        phis = [s for s in proc.blocks.get(block, []) if isinstance(s, Phi)]
        for phi in phis:
            for edge, source in phi.args.items():
                needs_copies.setdefault(edge, []).append((phi.target, source))

    split: Dict[Edge, NodeId] = {}
    counter = 0
    for edge in needs_copies:
        if proc.cfg.out_degree(edge.source) > 1 and proc.cfg.in_degree(edge.target) > 1:
            split[edge] = f"$split{counter}$"
            counter += 1

    # -- 2. rebuild the CFG with split edges ----------------------------
    cfg = CFG(start=proc.cfg.start, end=proc.cfg.end, name=f"{proc.cfg.name}.nossa")
    for node in proc.cfg.nodes:
        cfg.add_node(node)
    edge_image: Dict[Edge, Edge] = {}
    for edge in proc.cfg.edges:
        middle = split.get(edge)
        if middle is None:
            edge_image[edge] = cfg.add_edge(edge.source, edge.target, edge.label)
        else:
            cfg.add_edge(edge.source, middle, edge.label)
            edge_image[edge] = cfg.add_edge(middle, edge.target)

    # -- 3. statements: drop φs, place staged copies --------------------
    out = LoweredProcedure(f"{proc.name}.nossa", cfg)
    for block in proc.cfg.nodes:
        out.blocks[block] = [
            s for s in proc.blocks.get(block, []) if not isinstance(s, Phi)
        ]

    tmp_counter = 0
    for edge, moves in needs_copies.items():
        target_block = split.get(edge, edge.source)
        staged: List[Stmt] = []
        finals: List[Stmt] = []
        for phi_target, source in moves:
            tmp = f"$t{tmp_counter}$"
            tmp_counter += 1
            staged.append(Copy(tmp, source))
            finals.append(Copy(phi_target, tmp))
        copies = staged + finals
        statements = out.blocks[target_block]
        # keep a trailing Branch (the block terminator) after the copies
        if statements and isinstance(statements[-1], Branch):
            out.blocks[target_block] = statements[:-1] + copies + [statements[-1]]
        else:
            out.blocks[target_block] = statements + copies
    return out
