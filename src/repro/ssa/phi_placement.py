"""Classic φ-placement via iterated dominance frontiers ([CFR+91]).

A φ-function for variable ``v`` is needed at exactly the iterated dominance
frontier of ``v``'s definition sites.  The CFG entry counts as an implicit
definition site of every variable (possibly-uninitialized semantics), so
the algorithms here and in :mod:`repro.ssa.pst_phi` agree block-for-block.

This is the paper's comparison baseline: its total dominance-frontier size
is Θ(N²) on nested repeat-until loops (§6.1), which
``benchmarks/bench_perf_ssa_worstcase.py`` demonstrates.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.cfg.graph import NodeId
from repro.dominance.frontier import dominance_frontiers, iterated_dominance_frontier
from repro.dominance.tree import dominator_tree
from repro.ir import LoweredProcedure


def phi_blocks_cytron(proc: LoweredProcedure, variables: List[str] = None) -> Dict[str, Set[NodeId]]:
    """For each variable, the set of blocks needing a φ-function."""
    if variables is None:
        variables = proc.variables()
    dtree = dominator_tree(proc.cfg)
    frontiers = dominance_frontiers(proc.cfg, dtree)
    placement: Dict[str, Set[NodeId]] = {}
    for var in variables:
        defs = set(proc.defs_of(var))
        defs.add(proc.cfg.start)  # implicit definition at entry
        placement[var] = iterated_dominance_frontier(frontiers, defs)
    return placement


def place_phis_cytron(proc: LoweredProcedure) -> Dict[NodeId, List[str]]:
    """Blocks -> variables needing φ there (all variables of the procedure)."""
    placement = phi_blocks_cytron(proc)
    out: Dict[NodeId, List[str]] = {}
    for var, blocks in placement.items():
        for block in blocks:
            out.setdefault(block, []).append(var)
    for block in out:
        out[block].sort()
    return out
