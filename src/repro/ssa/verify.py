"""SSA invariant verification.

Checks the structural SSA properties on a renamed
:class:`~repro.ir.LoweredProcedure`:

* **single assignment** -- every SSA name has exactly one definition;
* **dominance of uses** -- the definition of a name dominates every ordinary
  use (same block counts when the definition appears earlier);
* **φ well-formedness** -- every φ has exactly one argument per incoming
  CFG edge, and each argument's definition dominates the corresponding
  predecessor block.

Used by the test suite to validate :func:`repro.ssa.rename.construct_ssa`
over both φ-placement algorithms.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cfg.graph import NodeId
from repro.dominance.tree import dominator_tree
from repro.ir import LoweredProcedure, Phi


class SSAViolation(AssertionError):
    """Raised by :func:`check_ssa` when an SSA invariant fails."""


def verify_ssa(proc: LoweredProcedure) -> List[str]:
    """Return a list of violated-invariant descriptions (empty if valid)."""
    problems: List[str] = []
    dtree = dominator_tree(proc.cfg)

    # Definition sites: name -> (block, statement index)
    defs: Dict[str, Tuple[NodeId, int]] = {}
    for block in proc.cfg.nodes:
        for index, stmt in enumerate(proc.blocks.get(block, [])):
            name = stmt.target
            if name is None:
                continue
            if name in defs:
                problems.append(f"{name} defined more than once ({defs[name]} and {(block, index)})")
            defs[name] = (block, index)

    def def_dominates(name: str, block: NodeId, index: int) -> bool:
        if name not in defs:
            return False
        dblock, dindex = defs[name]
        if dblock == block:
            return dindex < index
        return dtree.dominates(dblock, block)

    for block in proc.cfg.nodes:
        statements = proc.blocks.get(block, [])
        seen_ordinary = False
        for index, stmt in enumerate(statements):
            if isinstance(stmt, Phi):
                if seen_ordinary:
                    problems.append(f"φ after ordinary statement in block {block!r}")
                in_edges = proc.cfg.in_edges(block)
                if set(stmt.args.keys()) != set(in_edges):
                    problems.append(
                        f"φ {stmt.target} in block {block!r} does not cover its "
                        f"{len(in_edges)} incoming edges"
                    )
                for edge, name in stmt.args.items():
                    if name not in defs:
                        problems.append(f"φ argument {name} has no definition")
                    else:
                        dblock, _ = defs[name]
                        if not dtree.dominates(dblock, edge.source):
                            problems.append(
                                f"φ argument {name} (defined in {dblock!r}) does not "
                                f"dominate predecessor {edge.source!r}"
                            )
            else:
                seen_ordinary = True
                for name in stmt.uses:
                    if name not in defs:
                        problems.append(f"use of undefined name {name} in block {block!r}")
                    elif not def_dominates(name, block, index):
                        problems.append(
                            f"definition of {name} does not dominate its use in block {block!r}"
                        )
    return problems


def check_ssa(proc: LoweredProcedure) -> None:
    """Raise :class:`SSAViolation` when ``proc`` is not valid SSA."""
    problems = verify_ssa(proc)
    if problems:
        raise SSAViolation("; ".join(problems[:10]))
