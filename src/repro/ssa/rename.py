"""SSA renaming: dominator-tree walk with version stacks ([CFR+91] §5.2).

Produces a *new* :class:`~repro.ir.LoweredProcedure` sharing the input CFG:
φ-functions are materialized as :class:`repro.ir.Phi` statements at the
head of their blocks (arguments keyed by incoming CFG edge), every
definition gets a fresh ``name#version`` target, and every use is rewired
to the dominating version.  Version 0 of each variable is materialized as
an explicit ``undef``/parameter definition in the start block, so the
result is self-contained: every SSA name has exactly one definition.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import NodeId
from repro.dominance.tree import DominatorTree, dominator_tree
from repro.ir import Assign, Branch, LoweredProcedure, Phi, Ret, Stmt
from repro.ssa.phi_placement import phi_blocks_cytron


def construct_ssa(
    proc: LoweredProcedure,
    placement: Optional[Dict[str, Set[NodeId]]] = None,
    dtree: Optional[DominatorTree] = None,
) -> LoweredProcedure:
    """Convert ``proc`` to SSA form.

    ``placement`` maps each variable to its φ blocks; by default the classic
    Cytron placement is used (the PST-based placement from
    :mod:`repro.ssa.pst_phi` yields the same sets and can be passed in).
    """
    variables = proc.variables()
    if placement is None:
        placement = phi_blocks_cytron(proc, variables)
    if dtree is None:
        dtree = dominator_tree(proc.cfg)

    out = LoweredProcedure(f"{proc.name}.ssa", proc.cfg)
    phis: Dict[NodeId, Dict[str, Phi]] = {}
    for var in variables:
        for block in placement.get(var, ()):
            phi = Phi(var)  # target renamed during the walk
            phis.setdefault(block, {})[var] = phi

    counters: Dict[str, int] = {var: 0 for var in variables}
    stacks: Dict[str, List[str]] = {var: [f"{var}#0"] for var in variables}
    start = proc.cfg.start
    for var in variables:
        out.blocks[start].append(Assign(f"{var}#0", (), text="undef"))

    def fresh(var: str) -> str:
        counters[var] += 1
        return f"{var}#{counters[var]}"

    def rename_statement(stmt: Stmt) -> Stmt:
        uses = tuple(stacks[use][-1] for use in stmt.uses)
        expr = getattr(stmt, "expr", None)
        if expr is not None:
            # keep the structured rhs executable: rewrite its variables to
            # the current versions
            from repro.lang.astnodes import substitute

            expr = substitute(expr, {use: stacks[use][-1] for use in stmt.uses})
        if isinstance(stmt, Assign):
            name = fresh(stmt.target)
            stacks[stmt.target].append(name)
            return Assign(name, uses, stmt.text, expr=expr)
        if isinstance(stmt, Branch):
            return Branch(uses, stmt.text, expr=expr)
        if isinstance(stmt, Ret):
            return Ret(uses, expr=expr)
        raise TypeError(f"unexpected statement {stmt!r}")

    # Iterative dominator-tree preorder walk with explicit undo log.
    walk: List = [("visit", dtree.root)]
    while walk:
        action, payload = walk.pop()
        if action == "pop":
            var, count = payload
            del stacks[var][-count:]
            continue
        block = payload
        pushed: Dict[str, int] = {}
        # 1. φ targets first: they define before any ordinary statement.
        for var, phi in sorted(phis.get(block, {}).items()):
            name = fresh(var)
            phi.set_target(name)
            stacks[var].append(name)
            pushed[var] = pushed.get(var, 0) + 1
            out.blocks[block].append(phi)
        # 2. ordinary statements.
        for stmt in proc.blocks.get(block, []):
            renamed = rename_statement(stmt)
            out.blocks[block].append(renamed)
            if isinstance(stmt, Assign):
                pushed[stmt.target] = pushed.get(stmt.target, 0) + 1
        # 3. fill φ arguments of successors.
        for edge in proc.cfg.out_edges(block):
            for var, phi in phis.get(edge.target, {}).items():
                phi.args[edge] = stacks[var][-1]
        # 4. schedule children, then the undo of this block's pushes.
        for var, count in pushed.items():
            walk.append(("pop", (var, count)))
        for child in reversed(dtree.children(block)):
            walk.append(("visit", child))
    return out
