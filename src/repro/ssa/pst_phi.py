"""PST-based sparse φ-placement (§6.1, Theorem 9).

Theorem 9: if a merge node needs a φ-function for ``v``, it lies in the
iterated dominance frontier of some assignment to ``v`` *in the same SESE
region* as the merge.  The algorithm therefore:

1. marks every region containing an assignment to ``v`` (a walk up the PST
   from each defining block -- time proportional to the number of marked
   regions);
2. in each marked region, collapses immediately nested regions to single
   summary statements -- a nested region counts as a definition iff it is
   itself marked, and as a no-op otherwise;
3. runs ordinary dominance-frontier φ-placement on each marked region's
   collapsed CFG, treating the region entry as a definition (and its exit
   as a use).

Unmarked regions are never even looked at, which is the sparsity the paper
measures in Figure 10; nesting keeps each dominance-frontier computation
local, which defuses the Θ(N²) worst case of whole-procedure frontiers.

With ``specialize_kinds=True`` the §6.1 "algorithm specialization" remark
("it is trivial to convert if-then-else and loop structures into SSA
form") is realized too: regions whose collapsed shape is a simple case
construct (the merge is the only join) or a simple loop (the header is the
only join) are placed by a closed-form rule with no dominator or frontier
computation at all, falling back to the generic path otherwise.

The test suite asserts the φ sets equal the classic Cytron placement,
block for block, for every variable, with and without specialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cfg.graph import NodeId
from repro.core.pst import ProgramStructureTree
from repro.kernel.session import session_for
from repro.core.sese import SESERegion
from repro.dominance.frontier import dominance_frontiers, iterated_dominance_frontier
from repro.dominance.tree import dominator_tree
from repro.ir import LoweredProcedure


@dataclass
class PSTPhiResult:
    """φ-placement plus the sparsity statistics behind Figure 10."""

    phi_blocks: Dict[str, Set[NodeId]]
    regions_examined: Dict[str, int] = field(default_factory=dict)
    total_regions: int = 0
    specialized_placements: int = 0  # regions handled by closed-form rules
    generic_placements: int = 0

    def examined_fraction(self, var: str) -> float:
        """Fraction of PST regions examined while placing φs for ``var``."""
        if self.total_regions == 0:
            return 0.0
        return self.regions_examined[var] / self.total_regions


def place_phis_pst(
    proc: LoweredProcedure,
    pst: Optional[ProgramStructureTree] = None,
    variables: Optional[List[str]] = None,
    specialize_kinds: bool = False,
) -> PSTPhiResult:
    """Theorem 9 φ-placement for every variable of ``proc``.

    ``pst`` may be supplied to amortize PST construction across calls.
    The CFG entry is an implicit definition of every variable, so the root
    region is always marked and the result matches
    :func:`repro.ssa.phi_placement.phi_blocks_cytron` exactly.
    ``specialize_kinds`` enables the closed-form case/loop rules of §6.1.
    """
    if pst is None:
        pst = session_for(proc.cfg).pst()
    if variables is None:
        variables = proc.variables()
    # root + canonical regions: the denominator of the Figure 10 fraction.
    total_regions = len(pst.canonical_regions()) + 1

    result = PSTPhiResult({}, {}, total_regions)
    shapes: Dict[int, Optional[tuple]] = {}  # region_id -> cached shape info
    for var in variables:
        marked = _mark_regions(pst, proc.defs_of(var))
        marked.add(pst.root)  # the entry's implicit definition lives at root
        phi_blocks: Set[NodeId] = set()
        for region in marked:
            placed: Optional[Set[NodeId]] = None
            if specialize_kinds:
                placed = _region_phis_specialized(proc, pst, region, var, marked, shapes)
            if placed is None:
                result.generic_placements += 1
                placed = _region_phis(proc, pst, region, var, marked)
            else:
                result.specialized_placements += 1
            phi_blocks.update(placed)
        result.phi_blocks[var] = phi_blocks
        result.regions_examined[var] = len(marked)
    return result


def phi_blocks_pst(proc: LoweredProcedure, pst: Optional[ProgramStructureTree] = None) -> Dict[str, Set[NodeId]]:
    """Just the φ sets (same shape as ``phi_blocks_cytron``)."""
    return place_phis_pst(proc, pst).phi_blocks


def _mark_regions(pst: ProgramStructureTree, def_blocks: List[NodeId]) -> Set[SESERegion]:
    """Regions containing a definition: innermost regions plus ancestors.

    Proportional to the number of regions marked (walks stop at the first
    already-marked ancestor).
    """
    marked: Set[SESERegion] = set()
    for block in def_blocks:
        region: Optional[SESERegion] = pst.region_of(block)
        while region is not None and region not in marked:
            marked.add(region)
            region = region.parent
    return marked


def _region_phis_specialized(
    proc: LoweredProcedure,
    pst: ProgramStructureTree,
    region: SESERegion,
    var: str,
    marked: Set[SESERegion],
    shapes: Dict[int, Optional[tuple]],
) -> Optional[Set[NodeId]]:
    """Closed-form φ rules for simple case/loop shapes (§6.1).

    * **case shape** (the merge is the only join): a φ is needed at the
      merge iff some definition sits strictly between the branch and the
      merge (an arm definition meets the entry/branch definition there);
    * **loop shape** (the header is the only join): a φ is needed at the
      header iff some definition can reach the header around a latch.

    Returns None when the region's collapsed graph is not one of the two
    shapes; the caller falls back to the generic IDF computation.  Both
    rules place φs only at real blocks (the join is always an own node).
    """
    shape = shapes.get(region.region_id, _UNCACHED)
    if shape is _UNCACHED:
        shape = _region_shape(pst, region)
        shapes[region.region_id] = shape
    if shape is None:
        return None
    kind, join, contributors = shape
    has_def = False
    own = set(region.own_nodes)
    for node in contributors:
        if node in own:
            if any(stmt.target == var for stmt in proc.blocks.get(node, [])):
                has_def = True
                break
        else:  # child summary node
            child = _child_by_summary(pst, region, node)
            if child is not None and child in marked:
                has_def = True
                break
    return {join} if has_def else set()


_UNCACHED = ("uncached",)


def _region_shape(pst: ProgramStructureTree, region: SESERegion) -> Optional[tuple]:
    """Classify a region's collapsed graph for the closed-form rules.

    Returns ``("case", merge, arm_nodes)``, ``("loop", header,
    reaching_nodes)``, or None.  A shape qualifies only when exactly one
    node has more than one predecessor (the join the rule places φs at).
    """
    if region.is_root:
        return None
    sub, _ = pst.collapsed_cfg(region)
    joins = [
        node
        for node in sub.nodes
        if node != sub.start and sub.in_degree(node) > 1
    ]
    if len(joins) != 1:
        return None
    join = joins[0]
    if join not in set(region.own_nodes):
        return None  # a φ host must be a real block (it always is; be safe)

    # reverse reachability from the join (who can contribute a value to it)
    reach: Set[NodeId] = set()
    stack = [join]
    while stack:
        node = stack.pop()
        for pred in sub.predecessors(node):
            if pred not in reach and pred != sub.start:
                reach.add(pred)
                stack.append(pred)
    if join in reach:
        # The join lies on a cycle: loop shape.  A definition needs a φ at
        # the header iff it sits *on a cycle through the header* -- a def
        # above the loop flows identically around it (no φ), a def on a
        # dead branch or past the loop exit never comes back.  With every
        # other node having a single predecessor these are exactly the
        # nodes both reaching and reachable from the header.
        forward: Set[NodeId] = set()
        stack = [join]
        while stack:
            node = stack.pop()
            for succ in sub.successors(node):
                if succ not in forward and succ != sub.end:
                    forward.add(succ)
                    stack.append(succ)
        return ("loop", join, reach & forward)
    # case shape: contributors are the nodes strictly between the branch
    # (the join's idom-ish first node) and the merge: everything reaching
    # the merge except the entry-side prefix shared by all paths.  With a
    # single join, the shared prefix is exactly the chain from start to the
    # branch node; nodes on it reach the merge on *every* path and cannot
    # cause a φ.  Identify the branch as the last multi-successor node of
    # the prefix chain.
    prefix: Set[NodeId] = set()
    node = sub.start
    while True:
        outs = sub.out_edges(node)
        if len(outs) != 1:
            break
        nxt = outs[0].target
        if nxt == join or nxt in prefix:
            break
        prefix.add(nxt)
        node = nxt
    contributors = reach - prefix
    return ("case", join, contributors)


def _child_by_summary(pst: ProgramStructureTree, region: SESERegion, summary: NodeId):
    if isinstance(summary, tuple) and len(summary) == 2 and summary[0] == "region":
        for child in region.children:
            if child.region_id == summary[1]:
                return child
    return None


def _region_phis(
    proc: LoweredProcedure,
    pst: ProgramStructureTree,
    region: SESERegion,
    var: str,
    marked: Set[SESERegion],
) -> Set[NodeId]:
    """φ-needing blocks of one marked region's collapsed CFG."""
    sub, _ = pst.collapsed_cfg(region)
    defs: Set[NodeId] = {sub.start}  # the region entry acts as a definition
    own = set(region.own_nodes)
    for node in region.own_nodes:
        if any(stmt.target == var for stmt in proc.blocks.get(node, [])):
            defs.add(node)
    for child in region.children:
        if child in marked:
            defs.add(pst.child_summary_id(child))
    dtree = dominator_tree(sub)
    frontiers = dominance_frontiers(sub, dtree)
    idf = iterated_dominance_frontier(frontiers, defs)
    # Only real blocks of this region can need φs: summary nodes have a
    # single incoming edge (the child's entry), synthetic entry/exit too.
    return {node for node in idf if node in own}
