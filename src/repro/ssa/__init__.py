"""SSA construction: classic (Cytron et al.) and PST-based (§6.1).

* :mod:`repro.ssa.phi_placement` -- the dominance-frontier φ-placement of
  [CFR+91]: the baseline the paper accelerates.
* :mod:`repro.ssa.pst_phi` -- the paper's Theorem 9 algorithm: per-variable
  φ-placement restricted to marked SESE regions with nested regions
  collapsed, exploiting both nesting structure and sparsity.  Also exports
  the "fraction of regions examined" statistic behind Figure 10.
* :mod:`repro.ssa.rename` -- SSA renaming (dominator-tree walk).
* :mod:`repro.ssa.verify` -- SSA invariant checking used by the tests.

Both placement algorithms treat the CFG entry as an implicit definition of
every variable (the usual minimal-SSA convention for possibly-uninitialized
variables), which makes their results directly comparable; the test suite
asserts they place identical φ sets.
"""

from repro.ssa.phi_placement import phi_blocks_cytron, place_phis_cytron
from repro.ssa.pst_phi import PSTPhiResult, phi_blocks_pst, place_phis_pst
from repro.ssa.rename import construct_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.verify import SSAViolation, verify_ssa

__all__ = [
    "destruct_ssa",
    "phi_blocks_cytron",
    "place_phis_cytron",
    "PSTPhiResult",
    "phi_blocks_pst",
    "place_phis_pst",
    "construct_ssa",
    "SSAViolation",
    "verify_ssa",
]
